//! `ratel-lint`: the workspace source lint gate.
//!
//! Scans first-party sources (`crates/*/src`, root `src/`, `tools/*/src`)
//! for patterns that the concurrency audit (ISSUE 10) banned from library
//! code:
//!
//! * **`no-unwrap`** — `.unwrap()` / `.expect(...)` in non-test library
//!   code. Panics in the executor/storage/obs sync layer poison locks and
//!   turn recoverable I/O faults into aborts; library code must surface
//!   typed `RatelError` / `StorageError` values instead. Test modules
//!   (`#[cfg(test)]`), `tests/` and `benches/` directories are exempt.
//! * **`no-sleep-under-lock`** — `thread::sleep` while a lock guard from
//!   a `.lock()` binding is live in the enclosing scope. Sleeping under a
//!   lock serializes every other party on the sleeper's clock; back off
//!   *after* dropping the guard (see `ratel_check::lockorder`, which
//!   enforces the same rule at runtime in debug builds).
//! * **`no-static-mut`** — `static mut` items; use interior mutability
//!   through the checked primitives in `ratel_check::sync`.
//! * **`no-wall-clock-in-sim`** — bare `Instant::now()` inside
//!   `crates/sim`: the simulator must read its virtual clock so runs stay
//!   deterministic and replayable.
//!
//! Findings are suppressed by `ratel-lint.allow` at the workspace root.
//! Each non-comment line is `<rule> <path>` and waives that rule for that
//! file; entries that match nothing are reported as stale (non-fatal).
//! Exit status is non-zero iff any unsuppressed finding remains, so CI
//! can use the binary as a hard gate.
//!
//! Vendored dependency shims under `vendor/` are third-party API surface
//! and are not scanned.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A lint rule identifier, as used in findings and the allowlist.
// Variants mirror the kebab-case rule names (`no-unwrap`, …) verbatim.
#[allow(clippy::enum_variant_names)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    NoUnwrap,
    NoSleepUnderLock,
    NoStaticMut,
    NoWallClockInSim,
}

impl Rule {
    fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NoSleepUnderLock => "no-sleep-under-lock",
            Rule::NoStaticMut => "no-static-mut",
            Rule::NoWallClockInSim => "no-wall-clock-in-sim",
        }
    }

    fn parse(s: &str) -> Option<Rule> {
        match s {
            "no-unwrap" => Some(Rule::NoUnwrap),
            "no-sleep-under-lock" => Some(Rule::NoSleepUnderLock),
            "no-static-mut" => Some(Rule::NoStaticMut),
            "no-wall-clock-in-sim" => Some(Rule::NoWallClockInSim),
            _ => None,
        }
    }
}

/// One lint hit: rule, file, 1-based line, and the offending source line.
struct Finding {
    rule: Rule,
    path: PathBuf,
    line: usize,
    text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule.name(),
            self.text.trim()
        )
    }
}

/// Strips comments and string-literal contents from a source file so the
/// pattern scans below do not fire on prose. Line structure is preserved
/// (the output has the same number of lines as the input); string bodies
/// are blanked rather than removed so column-free heuristics still see
/// the surrounding tokens.
fn sanitize(src: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let mut st = St::Code;
    let mut out = Vec::new();
    let mut cur = String::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied().unwrap_or('\0');
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            out.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match st {
            St::Code => match c {
                '/' if next == '/' => {
                    st = St::LineComment;
                    i += 2;
                }
                '/' if next == '*' => {
                    st = St::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    cur.push('"');
                    st = St::Str;
                    i += 1;
                }
                '\'' => {
                    // Char literal vs lifetime. A literal closes with a
                    // `'` within a few chars (`'x'`, `'\n'`, `'\u{..}'`);
                    // a lifetime never does. Blank literal bodies so
                    // quotes and braces inside them don't confuse the
                    // string/brace tracking.
                    let mut j = i + 1;
                    if bytes.get(j) == Some(&'\\') {
                        j += 2; // skip the escape introducer + escaped char
                        while j < bytes.len() && bytes[j] != '\'' && bytes[j] != '\n' {
                            j += 1;
                        }
                    } else if bytes.get(j).is_some_and(|c| *c != '\'') {
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'\'') && j > i + 1 {
                        cur.push_str("' '");
                        i = j + 1;
                    } else {
                        cur.push('\'');
                        i += 1;
                    }
                }
                'r' if next == '"' || next == '#' => {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        cur.push('"');
                        st = St::RawStr(hashes);
                        i = j + 1;
                    } else {
                        cur.push(c);
                        i += 1;
                    }
                }
                _ => {
                    cur.push(c);
                    i += 1;
                }
            },
            St::LineComment => {
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && next == '/' {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == '*' {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    // Skip only the backslash when it escapes a newline
                    // (string line-continuation), so the top-of-loop
                    // newline handler still keeps line counts aligned.
                    i += if next == '\n' { 1 } else { 2 };
                } else if c == '"' {
                    cur.push('"');
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.push('"');
                        st = St::Code;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.is_empty() || st == St::LineComment {
        out.push(cur);
    }
    out
}

/// Marks each (sanitized) line that lies inside a `#[cfg(test)]` item —
/// the module (or function) the attribute decorates, tracked by brace
/// depth. Lines inside are exempt from `no-unwrap`.
fn test_mask(lines: &[String]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // When inside a test item: the depth *outside* it; exit once depth
    // returns to this value after the opening brace was consumed.
    let mut in_test: Option<i64> = None;
    let mut pending_attr = false;
    let mut entered = false;
    for (idx, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        if let Some(outer) = in_test {
            mask[idx] = true;
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth -= 1;
                        if entered && depth == outer {
                            in_test = None;
                        }
                    }
                    _ => {}
                }
            }
            continue;
        }
        if trimmed.contains("#[cfg(test)]") || trimmed.contains("#[test]") {
            pending_attr = true;
        } else if pending_attr
            && !trimmed.is_empty()
            && !trimmed.starts_with("#[")
            && !trimmed.starts_with("#!")
        {
            // The item the attribute decorates starts here.
            in_test = Some(depth);
            entered = false;
            pending_attr = false;
            mask[idx] = true;
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth -= 1;
                        if entered && depth == in_test.unwrap_or(0) {
                            in_test = None;
                        }
                    }
                    _ => {}
                }
            }
            continue;
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    mask
}

/// Scans one file and appends findings.
fn scan_file(path: &Path, rel: &Path, findings: &mut Vec<Finding>) {
    let Ok(src) = fs::read_to_string(path) else {
        return;
    };
    let lines = sanitize(&src);
    let in_test = test_mask(&lines);
    let in_sim = rel.starts_with("crates/sim");

    // Live lock-guard scopes: (binding name, brace depth at binding).
    let mut guards: Vec<(String, i64)> = Vec::new();
    let mut depth: i64 = 0;

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let orig = src.lines().nth(idx).unwrap_or("").to_string();
        let mut report = |rule: Rule| {
            findings.push(Finding {
                rule,
                path: rel.to_path_buf(),
                line: lineno,
                text: orig.clone(),
            });
        };

        if line.contains("static mut") {
            report(Rule::NoStaticMut);
        }
        if in_sim && line.contains("Instant::now()") {
            report(Rule::NoWallClockInSim);
        }
        // `.expect("` (string-literal message) rather than `.expect(`:
        // panicking expects take a message, so this skips unrelated
        // `Result`-returning parser methods that happen to share the
        // name (`self.expect(b'{')?`). Sanitized strings keep their
        // quotes, so the literal is still visible here.
        if !in_test[idx] && (line.contains(".unwrap()") || line.contains(".expect(\"")) {
            report(Rule::NoUnwrap);
        }

        // Guard-scope tracking for no-sleep-under-lock. A binding like
        // `let g = x.lock();` (or `.lock().unwrap()`) opens a guard scope
        // that closes when the enclosing block does or when `drop(g)` /
        // `mem::drop(g)` runs. `let _ = x.lock()` drops immediately.
        if !guards.is_empty() && line.contains("sleep(") {
            report(Rule::NoSleepUnderLock);
        }
        if line.contains(".lock(") {
            if let Some(name) = guard_binding(line) {
                guards.push((name, depth));
            }
        }
        for (j, _) in line.match_indices("drop(") {
            let inner: String = line[j + 5..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            guards.retain(|(n, _)| *n != inner);
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|(_, d)| *d <= depth);
                }
                _ => {}
            }
        }
    }
}

/// Extracts the binding name from `let [mut] NAME = x.lock();` — but only
/// when the binding actually *holds* the guard. `let v = *x.lock();`
/// deref-copies and `x.lock().push(..)` / `.lock().clone()` hold only for
/// the statement, so neither opens a scope (a deliberate
/// under-approximation; `expect`/`unwrap`/`?` adapters are seen through).
/// Expects a [`sanitize`]d line, so string literals are already blanked.
fn guard_binding(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" {
        return None;
    }
    let rhs = rest.split_once('=')?.1.trim_start();
    if rhs.starts_with('*') {
        return None; // deref-copy: the guard is a temporary
    }
    // After `.lock()`, only unwrap/expect/`?` may follow before the `;`;
    // any further projection means the guard itself is not what's bound.
    let tail = &line[line.rfind(".lock(")? + ".lock(".len()..];
    let mut tail = tail.strip_prefix(')').unwrap_or(tail).trim_end();
    tail = tail.strip_suffix(';').unwrap_or(tail);
    loop {
        let t = tail.trim_start();
        tail = if let Some(r) = t.strip_prefix(".unwrap()") {
            r
        } else if let Some(r) = t.strip_prefix(".expect(\"\")") {
            r
        } else if let Some(r) = t.strip_prefix('?') {
            r
        } else {
            break;
        };
    }
    if !tail.trim().is_empty() {
        return None;
    }
    Some(name)
}

/// Recursively collects `.rs` files under `dir`, skipping `tests/`,
/// `benches/`, `examples/`, and `target/` directories.
fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if matches!(name, "tests" | "benches" | "examples" | "target") {
                continue;
            }
            collect(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Workspace roots to scan, relative to the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tools"];

fn run(root: &Path, allow_path: &Path) -> ExitCode {
    // Allowlist: `<rule> <path>` per line; `#` starts a comment.
    let mut allow: Vec<(Rule, String, bool)> = Vec::new();
    if let Ok(body) = fs::read_to_string(allow_path) {
        for (n, raw) in body.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(path)) = (parts.next(), parts.next()) else {
                eprintln!(
                    "ratel-lint: {}:{}: malformed allowlist entry: {raw:?}",
                    allow_path.display(),
                    n + 1
                );
                return ExitCode::from(2);
            };
            let Some(rule) = Rule::parse(rule) else {
                eprintln!(
                    "ratel-lint: {}:{}: unknown rule {rule:?}",
                    allow_path.display(),
                    n + 1
                );
                return ExitCode::from(2);
            };
            allow.push((rule, path.to_string(), false));
        }
    }

    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        collect(&root.join(sub), &mut files);
    }

    let mut findings = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path);
        scan_file(path, rel, &mut findings);
    }

    let mut shown = 0usize;
    let mut suppressed = 0usize;
    for f in &findings {
        let rel = f.path.to_string_lossy();
        let waived = allow.iter_mut().any(|(rule, path, used)| {
            if *rule == f.rule && rel.as_ref() == path.as_str() {
                *used = true;
                true
            } else {
                false
            }
        });
        if waived {
            suppressed += 1;
        } else {
            println!("{f}");
            shown += 1;
        }
    }
    let stale: BTreeSet<String> = allow
        .iter()
        .filter(|(_, _, used)| !used)
        .map(|(rule, path, _)| format!("{} {}", rule.name(), path))
        .collect();
    for entry in &stale {
        eprintln!("ratel-lint: stale allowlist entry (matched nothing): {entry}");
    }
    eprintln!(
        "ratel-lint: {} file(s), {} finding(s) ({} allowlisted)",
        files.len(),
        shown,
        suppressed
    );
    if shown == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = None;
    let mut allow = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--allow" => allow = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "usage: ratel-lint [--root <workspace-root>] [--allow <allowlist>]\n\
                     Scans crates/, src/, and tools/ for banned patterns; exits 1 on findings."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ratel-lint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: walk up from cwd to the directory holding Cargo.toml
    // with a [workspace] table (cargo runs binaries from the workspace
    // root, so cwd alone is usually right).
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let mut dir = cwd.as_path();
        loop {
            let manifest = dir.join("Cargo.toml");
            if let Ok(body) = fs::read_to_string(&manifest) {
                if body.contains("[workspace]") {
                    return dir.to_path_buf();
                }
            }
            match dir.parent() {
                Some(p) => dir = p,
                None => return cwd,
            }
        }
    });
    let allow = allow.unwrap_or_else(|| root.join("ratel-lint.allow"));
    run(&root, &allow)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_src(src: &str, rel: &str) -> Vec<(Rule, usize)> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static PROBE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ratel-lint-test-{}-{}",
            std::process::id(),
            PROBE.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("probe.rs");
        fs::write(&file, src).unwrap();
        let mut findings = Vec::new();
        scan_file(&file, Path::new(rel), &mut findings);
        let _ = fs::remove_dir_all(&dir);
        findings.into_iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn flags_unwrap_in_library_code() {
        let hits = scan_src("fn f() {\n    x.unwrap();\n}\n", "crates/x/src/lib.rs");
        assert_eq!(hits, vec![(Rule::NoUnwrap, 2)]);
    }

    #[test]
    fn skips_unwrap_in_cfg_test_module() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        assert!(scan_src(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn skips_unwrap_in_comments_and_strings() {
        let src = "// call .unwrap() here\nfn f() { let s = \".unwrap()\"; }\n";
        assert!(scan_src(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f() { x.unwrap_or_else(|e| e.into_inner()); }\n";
        assert!(scan_src(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn flags_sleep_under_held_guard_but_not_after_drop() {
        let src = "fn f() {\n    let g = m.lock();\n    thread::sleep(d);\n    drop(g);\n    thread::sleep(d);\n}\n";
        assert_eq!(
            scan_src(src, "crates/x/src/lib.rs"),
            vec![(Rule::NoSleepUnderLock, 3)]
        );
    }

    #[test]
    fn deref_copy_and_projected_locks_hold_no_guard() {
        // `*x.lock()` copies out and `.lock().clone()` projects; both drop
        // the guard at the end of the statement.
        let src = "fn f() {\n    let v = *x.lock();\n    let p = x.lock().clone();\n    thread::sleep(d);\n}\n";
        assert!(scan_src(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn char_literals_do_not_break_string_or_brace_tracking() {
        // A `'\"'` char literal must not flip string parity (or the later
        // "static mut" string content would scan as code), and `'{'`
        // must not perturb brace depth.
        let src = "fn f(c: char) {\n    if c == '\"' {}\n    if c == '{' {}\n    let s = \"static mut\";\n}\n";
        assert!(scan_src(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn string_line_continuation_keeps_lines_aligned() {
        // The continuation makes the literal span lines 2-3, so the
        // unwrap sits on line 4 — a sanitizer that swallowed the escaped
        // newline would report it at 3.
        let src = "fn f() {\n    let s = \"a \\\n        b\";\n    x.unwrap();\n}\n";
        assert_eq!(
            scan_src(src, "crates/x/src/lib.rs"),
            vec![(Rule::NoUnwrap, 4)]
        );
    }

    #[test]
    fn guard_scope_ends_with_block() {
        let src = "fn f() {\n    {\n        let g = m.lock();\n    }\n    thread::sleep(d);\n}\n";
        assert!(scan_src(src, "crates/x/src/lib.rs").is_empty());
    }

    #[test]
    fn flags_static_mut_and_sim_wall_clock() {
        let hits = scan_src("static mut X: u32 = 0;\n", "crates/x/src/lib.rs");
        assert_eq!(hits, vec![(Rule::NoStaticMut, 1)]);
        let hits = scan_src(
            "fn f() { let t = Instant::now(); }\n",
            "crates/sim/src/lib.rs",
        );
        assert_eq!(hits, vec![(Rule::NoWallClockInSim, 1)]);
        // Outside crates/sim the wall clock is fine.
        assert!(scan_src(
            "fn f() { let t = Instant::now(); }\n",
            "crates/x/src/lib.rs"
        )
        .is_empty());
    }
}
