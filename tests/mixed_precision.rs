//! Mixed-precision integration tests: loss scaling, overflow handling,
//! and per-layer gradient clipping — identical between the out-of-core
//! engine and the in-memory reference.

use ratel_repro::core::engine::scaler::ScalePolicy;
use ratel_repro::prelude::*;

fn tiny() -> GptConfig {
    GptConfig {
        vocab: 128,
        seq: 16,
        hidden: 32,
        heads: 4,
        layers: 3,
        batch: 2,
    }
}

fn engine_with(policy: ScalePolicy, clip: Option<f32>) -> RatelEngine {
    let model = tiny();
    RatelEngine::new(EngineConfig {
        model,
        seed: 17,
        adam: AdamParams::default(),
        act_decisions: vec![ActDecision::SwapToHost; model.layers],
        gpu_capacity: None,
        host_capacity: None,
        execution: ExecutionOptions::default(),
        loss_scale: policy,
        grad_clip: clip,
        lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
        dropout: None,
        frozen_layers: Vec::new(),
    })
    .unwrap()
}

/// With a sane static scale, scaled training matches the reference bit
/// for bit and matches *unscaled* training up to f16 rounding effects.
#[test]
fn static_scaling_matches_reference_exactly() {
    let model = tiny();
    let policy = ScalePolicy::Static(1024.0);
    let mut engine = engine_with(policy, None);
    let mut reference =
        ReferenceTrainer::with_policy(model, 17, AdamParams::default(), policy, None);
    for s in 0..4 {
        let (t, y) = random_batch(&model, 200 + s);
        let stats = engine.train_step(&t, &y).unwrap();
        let ref_loss = reference.train_step(&t, &y);
        assert_eq!(stats.loss, ref_loss, "step {s}");
        assert_eq!(stats.loss_scale, 1024.0);
        assert_eq!(stats.skipped_layers, 0, "1024x should not overflow");
    }
    for l in 0..engine.layer_count() {
        assert_eq!(engine.master_params(l).unwrap(), reference.master_params(l));
    }
}

/// Scaling preserves small gradients: with a large scale the G16 round
/// trip keeps components that unscaled f16 would flush to zero, so the
/// scaled run makes at least as much progress.
#[test]
fn scaling_rescues_tiny_gradients_from_f16_underflow() {
    use ratel_repro::tensor::dtype::round_to_f16;
    // A direct demonstration on the codec: a gradient of 1e-9 dies in
    // f16; scaled by 2^16 it survives and unscales back.
    let g = 1e-9f32;
    assert_eq!(round_to_f16(g), 0.0);
    let scaled = round_to_f16(g * 65536.0) / 65536.0;
    assert!(scaled != 0.0 && (scaled - g).abs() / g < 0.01);
}

/// An absurd static scale overflows every layer: all updates skip, the
/// parameters stay exactly put, and the engine agrees with the reference.
#[test]
fn overflow_skips_updates_without_corruption() {
    let model = tiny();
    let policy = ScalePolicy::Static(1e30);
    let mut engine = engine_with(policy, None);
    let before: Vec<Vec<f32>> = (0..engine.layer_count())
        .map(|l| engine.master_params(l).unwrap())
        .collect();
    let (t, y) = random_batch(&model, 5);
    let stats = engine.train_step(&t, &y).unwrap();
    assert_eq!(stats.skipped_layers, engine.layer_count());
    for (l, expected) in before.iter().enumerate() {
        assert_eq!(
            &engine.master_params(l).unwrap(),
            expected,
            "layer {l} moved"
        );
    }
    // Reference behaves identically.
    let mut reference =
        ReferenceTrainer::with_policy(model, 17, AdamParams::default(), policy, None);
    reference.train_step(&t, &y);
    for l in 0..engine.layer_count() {
        assert_eq!(engine.master_params(l).unwrap(), reference.master_params(l));
    }
}

/// Dynamic scaling recovers: it starts absurdly high, backs off across
/// steps until updates apply, and training proceeds — with the engine and
/// reference in lockstep the whole way.
#[test]
fn dynamic_scaling_backs_off_and_trains() {
    let model = tiny();
    let policy = ScalePolicy::Dynamic {
        init: 1e30,
        backoff: 1e-8,
        growth: 2.0,
        growth_interval: 50,
    };
    let mut engine = engine_with(policy, None);
    let mut reference =
        ReferenceTrainer::with_policy(model, 17, AdamParams::default(), policy, None);
    let (t, y) = random_batch(&model, 6);
    let mut saw_overflow = false;
    let mut saw_clean = false;
    for _ in 0..6 {
        let stats = engine.train_step(&t, &y).unwrap();
        let ref_loss = reference.train_step(&t, &y);
        assert_eq!(stats.loss, ref_loss);
        if stats.skipped_layers > 0 {
            saw_overflow = true;
        } else if saw_overflow {
            saw_clean = true;
        }
    }
    assert!(saw_overflow, "initial scale should overflow");
    assert!(saw_clean, "scale should back off enough to train");
    for l in 0..engine.layer_count() {
        assert_eq!(engine.master_params(l).unwrap(), reference.master_params(l));
    }
}

/// Per-layer gradient clipping changes the trajectory (vs no clipping)
/// but keeps engine == reference.
#[test]
fn clipping_matches_reference_and_changes_updates() {
    let model = tiny();
    let clip = Some(0.05f32);
    let mut clipped = engine_with(ScalePolicy::None, clip);
    let mut unclipped = engine_with(ScalePolicy::None, None);
    let mut reference =
        ReferenceTrainer::with_policy(model, 17, AdamParams::default(), ScalePolicy::None, clip);
    let (t, y) = random_batch(&model, 7);
    for _ in 0..3 {
        let a = clipped.train_step(&t, &y).unwrap();
        let b = unclipped.train_step(&t, &y).unwrap();
        let r = reference.train_step(&t, &y);
        assert_eq!(a.loss, r);
        // Clipping alters the optimization path after the first step.
        let _ = b;
    }
    assert_ne!(
        clipped.master_params(1).unwrap(),
        unclipped.master_params(1).unwrap(),
        "a 0.05 clip must bite on fresh Adam steps"
    );
    for l in 0..clipped.layer_count() {
        assert_eq!(
            clipped.master_params(l).unwrap(),
            reference.master_params(l)
        );
    }
}

/// A warmup+cosine learning-rate schedule runs identically in the engine
/// and the reference, and actually changes the trajectory vs constant LR.
#[test]
fn lr_schedule_matches_reference() {
    use ratel_repro::core::engine::lr::LrSchedule;
    let model = tiny();
    let schedule = LrSchedule::WarmupCosine {
        warmup_steps: 2,
        total_steps: 8,
        min_factor: 0.1,
    };
    let mut engine = RatelEngine::new(EngineConfig {
        model,
        seed: 17,
        adam: AdamParams::default(),
        act_decisions: vec![ActDecision::SwapToHost; model.layers],
        gpu_capacity: None,
        host_capacity: None,
        execution: ExecutionOptions::default(),
        loss_scale: ScalePolicy::None,
        grad_clip: None,
        lr_schedule: schedule,
        dropout: None,
        frozen_layers: Vec::new(),
    })
    .unwrap();
    let mut reference =
        ReferenceTrainer::with_policy(model, 17, AdamParams::default(), ScalePolicy::None, None)
            .with_lr_schedule(schedule);
    let mut constant = engine_with(ScalePolicy::None, None);
    let (t, y) = random_batch(&model, 8);
    for _ in 0..5 {
        let a = engine.train_step(&t, &y).unwrap();
        let r = reference.train_step(&t, &y);
        constant.train_step(&t, &y).unwrap();
        assert_eq!(a.loss, r);
    }
    for l in 0..engine.layer_count() {
        assert_eq!(engine.master_params(l).unwrap(), reference.master_params(l));
    }
    assert_ne!(
        engine.master_params(1).unwrap(),
        constant.master_params(1).unwrap(),
        "the schedule must change the trajectory"
    );
}

/// Gradient accumulation matches the reference bit for bit, and a
/// single-micro-batch "accumulated" step equals a plain step.
#[test]
fn gradient_accumulation_matches_reference() {
    let model = tiny();
    let micro: Vec<_> = (0..3).map(|s| random_batch(&model, 300 + s)).collect();

    let mut engine = engine_with(ScalePolicy::Static(256.0), Some(1.0));
    let mut reference = ReferenceTrainer::with_policy(
        model,
        17,
        AdamParams::default(),
        ScalePolicy::Static(256.0),
        Some(1.0),
    );
    for _ in 0..2 {
        let stats = engine.train_step_accumulated(&micro).unwrap();
        let ref_loss = reference.train_step_accumulated(&micro);
        assert_eq!(stats.loss, ref_loss);
    }
    for l in 0..engine.layer_count() {
        assert_eq!(engine.master_params(l).unwrap(), reference.master_params(l));
    }

    // n = 1 degenerates to the plain step.
    let mut a = engine_with(ScalePolicy::None, None);
    let mut b = engine_with(ScalePolicy::None, None);
    let one = vec![micro[0].clone()];
    let s1 = a.train_step_accumulated(&one).unwrap();
    let s2 = b.train_step(&one[0].0, &one[0].1).unwrap();
    assert_eq!(s1.loss, s2.loss);
    assert_eq!(a.master_params(1).unwrap(), b.master_params(1).unwrap());
}

/// Accumulated gradients leave no residue: the host tier drains fully and
/// the accumulators are consumed by the final micro-batch.
#[test]
fn accumulation_cleans_up_host_tier() {
    use ratel_repro::storage::Tier;
    let model = tiny();
    let micro: Vec<_> = (0..2).map(|s| random_batch(&model, 500 + s)).collect();
    let mut engine = engine_with(ScalePolicy::None, None);
    engine.train_step_accumulated(&micro).unwrap();
    assert_eq!(engine.store().used(Tier::Host), 0);
    assert_eq!(engine.store().used(Tier::Gpu), 0);
}

/// Dropout: deterministic masks make the offloaded engine match the
/// reference exactly, *including* blocks whose forward is recomputed
/// during backward (the RNG-state rematerialization problem).
#[test]
fn dropout_is_deterministic_across_rematerialization() {
    use ratel_repro::core::engine::lr::LrSchedule;
    let model = tiny();
    let build = |acts: Vec<ActDecision>| {
        RatelEngine::new(EngineConfig {
            model,
            seed: 17,
            adam: AdamParams::default(),
            act_decisions: acts,
            gpu_capacity: None,
            host_capacity: None,
            execution: ExecutionOptions::default(),
            loss_scale: ScalePolicy::None,
            grad_clip: None,
            lr_schedule: LrSchedule::Constant,
            dropout: Some(0.2),
            frozen_layers: Vec::new(),
        })
        .unwrap()
    };
    let mut swapped = build(vec![ActDecision::SwapToHost; model.layers]);
    let mut recomputed = build(vec![ActDecision::Recompute; model.layers]);
    let mut reference =
        ReferenceTrainer::with_policy(model, 17, AdamParams::default(), ScalePolicy::None, None)
            .with_dropout(0.2);
    let (t, y) = random_batch(&model, 11);
    for _ in 0..3 {
        let a = swapped.train_step(&t, &y).unwrap();
        let b = recomputed.train_step(&t, &y).unwrap();
        let r = reference.train_step(&t, &y);
        assert_eq!(a.loss, r, "swap path diverged");
        assert_eq!(
            b.loss, r,
            "recompute path diverged (mask not rematerialized)"
        );
    }
    for l in 0..swapped.layer_count() {
        assert_eq!(
            swapped.master_params(l).unwrap(),
            reference.master_params(l)
        );
        assert_eq!(
            recomputed.master_params(l).unwrap(),
            reference.master_params(l)
        );
    }
}

/// Dropout actually drops: masks differ across steps, and training with
/// dropout takes a different trajectory than without.
#[test]
fn dropout_changes_the_trajectory_per_step() {
    use ratel_repro::core::engine::lr::LrSchedule;
    let model = tiny();
    let mut with = RatelEngine::new(EngineConfig {
        model,
        seed: 17,
        adam: AdamParams::default(),
        act_decisions: vec![ActDecision::SwapToHost; model.layers],
        gpu_capacity: None,
        host_capacity: None,
        execution: ExecutionOptions::default(),
        loss_scale: ScalePolicy::None,
        grad_clip: None,
        lr_schedule: LrSchedule::Constant,
        dropout: Some(0.3),
        frozen_layers: Vec::new(),
    })
    .unwrap();
    let mut without = engine_with(ScalePolicy::None, None);
    let (t, y) = random_batch(&model, 13);
    let l1 = with.train_step(&t, &y).unwrap().loss;
    let l2 = with.train_step(&t, &y).unwrap().loss;
    without.train_step(&t, &y).unwrap();
    // Same data, but step-2 masks differ from step-1 masks; and the
    // dropout trajectory differs from the no-dropout one.
    assert_ne!(l1, l2);
    assert_ne!(
        with.master_params(1).unwrap(),
        without.master_params(1).unwrap()
    );
}

/// Partial freezing: frozen layers' masters never move, their optimizer
/// I/O disappears, training still works, and the engine matches the
/// reference bit for bit.
#[test]
fn frozen_layers_train_correctly_and_cheaply() {
    use ratel_repro::core::engine::lr::LrSchedule;
    use ratel_repro::storage::Route;
    let model = tiny();
    let l = model.layers;
    // Freeze everything except the head (linear probing).
    let frozen: Vec<usize> = (0..=l).collect();
    let mut engine = RatelEngine::new(EngineConfig {
        model,
        seed: 17,
        adam: AdamParams::default(),
        act_decisions: vec![ActDecision::SwapToHost; l],
        gpu_capacity: None,
        host_capacity: None,
        execution: ExecutionOptions::default(),
        loss_scale: ScalePolicy::None,
        grad_clip: None,
        lr_schedule: LrSchedule::Constant,
        dropout: None,
        frozen_layers: frozen.clone(),
    })
    .unwrap();
    let mut reference =
        ReferenceTrainer::with_policy(model, 17, AdamParams::default(), ScalePolicy::None, None)
            .with_frozen_layers(frozen.clone());
    let before_block = engine.master_params(1).unwrap();
    let (t, y) = random_batch(&model, 21);
    let mut stats = None;
    for _ in 0..3 {
        let s = engine.train_step(&t, &y).unwrap();
        let r = reference.train_step(&t, &y);
        assert_eq!(s.loss, r);
        stats = Some(s);
    }
    // Frozen layers did not move; the head did.
    assert_eq!(engine.master_params(1).unwrap(), before_block);
    assert_ne!(
        engine.master_params(l + 1).unwrap(),
        reference.p16_params(l + 1),
        "sanity: head params are non-trivial"
    );
    for layer in 0..engine.layer_count() {
        assert_eq!(
            engine.master_params(layer).unwrap(),
            reference.master_params(layer)
        );
    }
    // Optimizer-state traffic collapsed to the head's share: SSD writes
    // are 14 bytes per *head* parameter only.
    let head_params = engine.layer_param_count(l + 1) as u64;
    let h2s = stats.unwrap().traffic.bytes(Route::HostToSsd);
    assert_eq!(h2s, head_params * 14, "frozen layers still paid state I/O");
}
