//! Property-based tests on the core data structures and invariants,
//! spanning crates: f16 codec, Adam, the simulator, the planner's
//! convexity/optimality, and the tiered store.

use proptest::prelude::*;

use ratel_repro::core::planner::ActivationPlanner;
use ratel_repro::core::profile::HardwareProfile;
use ratel_repro::model::{ModelConfig, ModelProfile};
use ratel_repro::sim::{simulate, Stage, TaskGraph};
use ratel_repro::storage::{Tier, TierConfig, TieredStore};
use ratel_repro::tensor::dtype::{decode_f16, encode_f16, round_to_f16};
use ratel_repro::tensor::{Adam, AdamParams};

proptest! {
    /// Half-precision encode/decode is a projection: applying it twice
    /// equals applying it once, and it never increases magnitude error
    /// beyond one ULP of the half format.
    #[test]
    fn f16_round_trip_is_idempotent(v in -1e5f32..1e5f32) {
        let once = round_to_f16(v);
        let twice = round_to_f16(once);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
        let bytes = encode_f16(&[v]);
        prop_assert_eq!(decode_f16(&bytes)[0].to_bits(), once.to_bits());
    }

    /// f16 rounding is monotone: a <= b implies round(a) <= round(b).
    #[test]
    fn f16_rounding_is_monotone(a in -6e4f32..6e4f32, b in -6e4f32..6e4f32) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(round_to_f16(lo) <= round_to_f16(hi));
    }

    /// Adam with zero gradients and no weight decay never moves params.
    #[test]
    fn adam_fixed_point_at_zero_gradient(params in proptest::collection::vec(-10f32..10.0, 1..32)) {
        let mut adam = Adam::new(params.len());
        let mut p = params.clone();
        let g = vec![0.0f32; params.len()];
        for _ in 0..5 {
            adam.step(&mut p, &g, &AdamParams::default());
        }
        prop_assert_eq!(p, params);
    }

    /// Adam state round-trips through the flat blob after arbitrary steps.
    #[test]
    fn adam_blob_round_trip(
        grads in proptest::collection::vec(-1f32..1.0, 4..16),
        steps in 1usize..5,
    ) {
        let n = grads.len();
        let mut adam = Adam::new(n);
        let mut p = vec![0.5f32; n];
        for _ in 0..steps {
            adam.step(&mut p, &grads, &AdamParams::default());
        }
        let restored = Adam::from_flat(&adam.to_flat(), adam.t);
        prop_assert_eq!(restored, adam);
    }

    /// Simulator invariants for random fork-join graphs: the makespan is
    /// at least the critical path, at least each resource's total work,
    /// and at most the total work of all tasks (serial execution).
    #[test]
    fn simulator_makespan_bounds(
        services in proptest::collection::vec((0.01f64..5.0, 0usize..3), 1..40),
        extra_dep in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut g = TaskGraph::new();
        let resources = [
            g.add_resource("r0"),
            g.add_resource("r1"),
            g.add_resource("r2"),
        ];
        let mut prev = None;
        let mut total = 0.0;
        for (i, &(service, r)) in services.iter().enumerate() {
            let mut deps = Vec::new();
            if extra_dep.get(i).copied().unwrap_or(false) {
                if let Some(p) = prev {
                    deps.push(p);
                }
            }
            let t = g.add_task(resources[r], service, Stage::Forward, &deps);
            total += service;
            prev = Some(t);
        }
        let report = simulate(&g);
        prop_assert!(report.makespan >= g.critical_path() - 1e-9);
        for r in resources {
            prop_assert!(report.makespan >= g.total_service(r) - 1e-9);
        }
        prop_assert!(report.makespan <= total + 1e-9);
    }

    /// Planner: the iteration-time curve along the benefit order is
    /// convex for arbitrary (sane) hardware profiles, and Algorithm 1
    /// matches the exhaustive prefix minimum.
    #[test]
    fn planner_convex_and_optimal(
        thp_tflops in 20f64..400.0,
        bw_gpu_gb in 5f64..64.0,
        ssd_read_gb in 1f64..40.0,
        ssd_write_gb in 1f64..40.0,
        mem_avail_gb in 1f64..800.0,
        batch in 1usize..64,
        layers in 2usize..24,
        hidden_k in 1usize..8,
    ) {
        let model_cfg = ModelConfig::decoder_lm("prop", layers, 8, hidden_k * 1024);
        let model = ModelProfile::new(&model_cfg, batch);
        let hw = HardwareProfile {
            thp_gpu: thp_tflops * 1e12,
            bw_gpu: bw_gpu_gb * 1e9,
            bw_s2m: ssd_read_gb * 1e9,
            bw_m2s: ssd_write_gb * 1e9,
            mem_avail: mem_avail_gb * 1e9,
            cpu_adam_params_per_sec: 0.55e9,
            state_io_efficiency: 0.7,
        };
        let planner = ActivationPlanner::new(&hw, &model);

        // Convexity of T_iter along the benefit-ordered curve.
        let mut a = model.inter_act_bytes();
        let mut fr = planner.full_recompute_flops();
        let mut points = vec![(a, planner.iter_time(a, fr).total())];
        for u in model.units_by_benefit() {
            a += u.bytes;
            fr -= u.recompute_flops;
            points.push((a, planner.iter_time(a, fr).total()));
        }
        let mut last_slope = f64::NEG_INFINITY;
        for w in points.windows(2) {
            let slope = (w[1].1 - w[0].1) / (w[1].0 - w[0].0);
            prop_assert!(slope >= last_slope - 1e-9, "slope {last_slope} -> {slope}");
            last_slope = slope;
        }

        // Algorithm 1 == exhaustive prefix search.
        let alg = planner.plan();
        let oracle = planner.exhaustive_best();
        prop_assert!((alg.predicted.total() - oracle.predicted.total()).abs() < 1e-6);
        // The floor is respected and the spill never exceeds A_G2M.
        prop_assert!(alg.a_g2m >= model.inter_act_bytes() - 1.0);
        prop_assert!(alg.spill_bytes <= alg.a_g2m + 1.0);
    }

    /// Tiered store: any sequence of put/move/remove keeps usage exactly
    /// equal to the sum of live blob sizes per tier.
    #[test]
    fn store_usage_accounting_is_exact(
        ops in proptest::collection::vec((0usize..3, 0usize..6, 1usize..2048), 1..60),
    ) {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        let tiers = [Tier::Gpu, Tier::Host, Tier::Ssd];
        let mut live: std::collections::HashMap<String, (Tier, usize)> =
            std::collections::HashMap::new();
        for (i, &(op, slot, size)) in ops.iter().enumerate() {
            let key = format!("k{slot}");
            match op {
                0 => {
                    let tier = tiers[i % 3];
                    if store.put(&key, tier, vec![0u8; size]).is_ok() {
                        live.insert(key, (tier, size));
                    }
                }
                1 => {
                    let target = tiers[(i + 1) % 3];
                    if store.move_to(&key, target).is_ok() {
                        if let Some(e) = live.get_mut(&key) {
                            e.0 = target;
                        }
                    }
                }
                _ => {
                    if store.remove(&key).is_ok() {
                        live.remove(&key);
                    }
                }
            }
            for tier in tiers {
                let expected: u64 = live
                    .values()
                    .filter(|(t, _)| *t == tier)
                    .map(|(_, s)| *s as u64)
                    .sum();
                prop_assert_eq!(store.used(tier), expected);
            }
        }
    }
}

mod engine_equivalence {
    use proptest::prelude::*;
    use ratel_repro::core::engine::data::random_batch;
    use ratel_repro::core::engine::lr::LrSchedule;
    use ratel_repro::core::engine::reference::ReferenceTrainer;
    use ratel_repro::core::engine::scaler::ScalePolicy;
    use ratel_repro::core::engine::{
        ActDecision, EngineConfig, ExecutionOptions, ExecutorOptions, RatelEngine,
    };
    use ratel_repro::core::offload::GradOffloadMode;
    use ratel_repro::tensor::{AdamParams, GptConfig};

    fn decision_strategy() -> impl Strategy<Value = ActDecision> {
        prop_oneof![
            Just(ActDecision::SwapToHost),
            Just(ActDecision::SwapToSsd),
            Just(ActDecision::Recompute),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The flagship invariant under fuzzing: for random activation
        /// policies, loss-scaling settings, clipping, offload modes, and
        /// seeds, the out-of-core engine is bit-identical to in-memory
        /// training.
        #[test]
        fn offloaded_training_equals_reference_under_random_configs(
            decisions in proptest::collection::vec(decision_strategy(), 3),
            seed in 0u64..1000,
            exec_kind in 0u8..4,
            workers in 1usize..5,
            scale_pow in 0u32..12,
            clip in proptest::option::of(0.01f32..2.0),
            lr_milli in 1u32..20,
            freeze_mask in 0u8..32,
        ) {
            let model = GptConfig {
                vocab: 64,
                seq: 8,
                hidden: 16,
                heads: 2,
                layers: 3,
                batch: 2,
            };
            let adam = AdamParams {
                lr: lr_milli as f32 * 1e-3,
                ..Default::default()
            };
            let policy = if scale_pow == 0 {
                ScalePolicy::None
            } else {
                ScalePolicy::Static((1u64 << scale_pow) as f32)
            };
            // Freeze a random subset of the 5 layers (never all of them).
            let frozen: Vec<usize> = (0..5usize)
                .filter(|i| freeze_mask & (1 << i) != 0 && freeze_mask != 31)
                .collect();
            // Every execution mode must land on the reference bitwise:
            // the executor under varying worker counts and both offload
            // schedules, plus the two legacy stage loops.
            let execution = match exec_kind {
                0 => ExecutionOptions::Executor(ExecutorOptions {
                    workers_per_pool: workers,
                    offload: GradOffloadMode::OptimizedActive,
                }),
                1 => ExecutionOptions::Executor(ExecutorOptions {
                    workers_per_pool: workers,
                    offload: GradOffloadMode::SeparateStage,
                }),
                2 => ExecutionOptions::LegacyOverlapped {
                    prefetch_params: seed % 2 == 0,
                },
                _ => ExecutionOptions::LegacySeparateStage {
                    prefetch_params: seed % 2 == 0,
                },
            };
            let mut engine = RatelEngine::new(EngineConfig {
                model,
                seed,
                adam,
                act_decisions: decisions,
                gpu_capacity: None,
                host_capacity: None,
                execution,
                loss_scale: policy,
                grad_clip: clip,
                lr_schedule: LrSchedule::WarmupConstant { warmup_steps: 2 },
                dropout: None,
                frozen_layers: frozen.clone(),
            }).unwrap();
            let mut reference =
                ReferenceTrainer::with_policy(model, seed, adam, policy, clip)
                    .with_lr_schedule(LrSchedule::WarmupConstant { warmup_steps: 2 })
                    .with_frozen_layers(frozen);
            for s in 0..3 {
                let (t, y) = random_batch(&model, seed.wrapping_mul(31) + s);
                let stats = engine.train_step(&t, &y).unwrap();
                let ref_loss = reference.train_step(&t, &y);
                prop_assert_eq!(stats.loss, ref_loss);
            }
            for l in 0..engine.layer_count() {
                prop_assert_eq!(
                    engine.master_params(l).unwrap(),
                    reference.master_params(l).to_vec()
                );
            }
        }
    }
}

mod tensor_math {
    use proptest::prelude::*;
    use ratel_repro::tensor::ops::{gelu, layernorm, matmul, matmul_at, matmul_bt, softmax_rows};
    use ratel_repro::tensor::Tensor;

    fn tensor(rows: usize, cols: usize, vals: &[f32]) -> Tensor {
        Tensor::from_vec(&[rows, cols], vals[..rows * cols].to_vec())
    }

    proptest! {
        /// Matmul distributes over addition: A(B + C) = AB + AC.
        #[test]
        fn matmul_distributes_over_addition(
            a in proptest::collection::vec(-2f32..2.0, 12),
            b in proptest::collection::vec(-2f32..2.0, 12),
            c in proptest::collection::vec(-2f32..2.0, 12),
        ) {
            let a = tensor(3, 4, &a);
            let b = tensor(4, 3, &b);
            let c = tensor(4, 3, &c);
            let lhs = matmul(&a, &b.add(&c));
            let rhs = matmul(&a, &b).add(&matmul(&a, &c));
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }

        /// The transpose variants agree with explicit transposition:
        /// (A^T B)^T = B^T A, checked via matmul_at and matmul_bt.
        #[test]
        fn transpose_variants_are_consistent(
            a in proptest::collection::vec(-2f32..2.0, 12),
            b in proptest::collection::vec(-2f32..2.0, 12),
        ) {
            let a = tensor(4, 3, &a); // [k=4, m=3]
            let b = tensor(4, 3, &b); // [k=4, n=3]
            let atb = matmul_at(&a, &b); // [3, 3] = a^T b
            // b^T a = (a^T b)^T: compute via matmul_bt(b^T? ...) — check
            // element symmetry directly.
            let bta = matmul_at(&b, &a);
            for i in 0..3 {
                for j in 0..3 {
                    let x = atb.data()[i * 3 + j];
                    let y = bta.data()[j * 3 + i];
                    prop_assert!((x - y).abs() < 1e-4);
                }
            }
            // matmul_bt(a^T... sanity: a[4,3] bt with b[4? ] — covered in
            // unit tests; here assert shape contract only.
            let x = tensor(3, 4, &[0.5; 12]);
            let y = matmul_bt(&x, &tensor(2, 4, &[0.25; 12]));
            prop_assert_eq!(y.shape(), &[3usize, 2][..]);
        }

        /// Softmax is invariant to adding a constant to a row.
        #[test]
        fn softmax_shift_invariance(
            vals in proptest::collection::vec(-5f32..5.0, 8),
            shift in -10f32..10.0,
        ) {
            let x = tensor(2, 4, &vals);
            let shifted = Tensor::from_vec(
                &[2, 4],
                x.data().iter().map(|v| v + shift).collect(),
            );
            let p1 = softmax_rows(&x);
            let p2 = softmax_rows(&shifted);
            for (a, b) in p1.data().iter().zip(p2.data()) {
                prop_assert!((a - b).abs() < 1e-5);
            }
        }

        /// LayerNorm output is invariant to affine rescaling of its input
        /// row (with identity gamma/beta).
        #[test]
        fn layernorm_affine_invariance(
            vals in proptest::collection::vec(-3f32..3.0, 8),
            scale in 0.5f32..4.0,
            shift in -5f32..5.0,
        ) {
            // Skip degenerate near-constant rows (rstd blows up).
            let spread = vals.iter().cloned().fold(f32::MIN, f32::max)
                - vals.iter().cloned().fold(f32::MAX, f32::min);
            prop_assume!(spread > 0.5);
            let gamma = Tensor::full(&[8], 1.0);
            let beta = Tensor::zeros(&[8]);
            let x = tensor(1, 8, &vals);
            let y = Tensor::from_vec(
                &[1, 8],
                x.data().iter().map(|v| v * scale + shift).collect(),
            );
            let (n1, _) = layernorm(&x, &gamma, &beta, 1e-6);
            let (n2, _) = layernorm(&y, &gamma, &beta, 1e-6);
            for (a, b) in n1.data().iter().zip(n2.data()) {
                prop_assert!((a - b).abs() < 2e-3, "{a} vs {b}");
            }
        }

        /// GELU is monotone non-decreasing above ~-0.75 and bounded below.
        #[test]
        fn gelu_basic_shape(v in -0.7f32..10.0, delta in 0.001f32..1.0) {
            let x = Tensor::from_vec(&[1, 2], vec![v, v + delta]);
            let y = gelu(&x);
            prop_assert!(y.data()[1] >= y.data()[0] - 1e-6);
            prop_assert!(y.data()[0] >= -0.2);
        }
    }
}

mod model_scaling {
    use proptest::prelude::*;
    use ratel_repro::model::{ModelConfig, ModelProfile};

    proptest! {
        /// Activation bytes scale linearly in batch; FLOPs scale linearly
        /// in batch and superlinearly in hidden size.
        #[test]
        fn analytic_scaling_laws(
            layers in 2usize..32,
            hidden_k in 1usize..8,
            batch in 1usize..32,
        ) {
            let h = hidden_k * 512;
            let m = ModelConfig::decoder_lm("p", layers, 8, h);
            let p1 = ModelProfile::new(&m, batch);
            let p2 = ModelProfile::new(&m, batch * 2);
            let rel = |a: f64, b: f64| (a - b).abs() / b;
            prop_assert!(rel(p2.total_act_bytes(), 2.0 * p1.total_act_bytes()) < 1e-9);
            prop_assert!(rel(p2.forward_flops(), 2.0 * p1.forward_flops()) < 1e-9);
            // Hidden doubling: params ~4x (12h^2 dominates for big h).
            let m2 = ModelConfig::decoder_lm("q", layers, 8, 2 * h);
            let q = ModelProfile::new(&m2, batch);
            let ratio = q.total_params() / p1.total_params();
            prop_assert!((2.0..4.5).contains(&ratio), "{ratio}");
        }
    }
}

mod sim_fuzz {
    use proptest::prelude::*;
    use ratel_repro::sim::{simulate, ResourceId, Stage, TaskGraph};

    /// Builds a random DAG over 4 resources. Each generated tuple is one
    /// task: (resource, service, stage, chain-to-previous, back-edge
    /// offset). Dependencies always point at earlier tasks, so the graph
    /// is acyclic by construction.
    fn build(tasks: &[(usize, f64, usize, bool, usize)]) -> TaskGraph {
        let mut g = TaskGraph::new();
        let res: Vec<_> = (0..4).map(|i| g.add_resource(format!("r{i}"))).collect();
        let mut ids = Vec::with_capacity(tasks.len());
        for (i, &(r, service, stage, chain, back)) in tasks.iter().enumerate() {
            let mut deps = Vec::new();
            if chain && i > 0 {
                deps.push(ids[i - 1]);
            }
            if back > 0 && i >= back {
                deps.push(ids[i - back]);
            }
            let id = g.add_task_labeled(
                res[r % 4],
                service,
                Stage::ALL[stage % 3],
                &deps,
                format!("t{i}"),
            );
            ids.push(id);
        }
        g
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The simulated makespan respects both lower bounds: the longest
        /// dependency chain and the busiest single resource.
        #[test]
        fn makespan_respects_lower_bounds(
            tasks in proptest::collection::vec(
                (0usize..4, 0.0f64..5.0, 0usize..3, any::<bool>(), 0usize..6),
                1..48,
            ),
        ) {
            let g = build(&tasks);
            let report = simulate(&g);
            prop_assert!(report.makespan >= g.critical_path() - 1e-9);
            for r in 0..4 {
                prop_assert!(
                    report.makespan >= g.total_service(ResourceId(r)) - 1e-9,
                    "makespan {} below resource {} service {}",
                    report.makespan, r, g.total_service(ResourceId(r))
                );
            }
        }

        /// A resource serves one task at a time: in the recorded timeline,
        /// no two tasks on the same resource overlap.
        #[test]
        fn no_two_tasks_overlap_on_a_resource(
            tasks in proptest::collection::vec(
                (0usize..4, 0.0f64..5.0, 0usize..3, any::<bool>(), 0usize..6),
                1..48,
            ),
        ) {
            let g = build(&tasks);
            let report = simulate(&g);
            for r in 0..4 {
                let mut slices: Vec<_> = report
                    .timeline()
                    .iter()
                    .filter(|e| e.resource_id == ResourceId(r))
                    .collect();
                slices.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
                for w in slices.windows(2) {
                    prop_assert!(
                        w[1].start >= w[0].finish - 1e-9,
                        "overlap on r{}: {:?} [{}, {}] vs {:?} [{}, {}]",
                        r, w[0].label, w[0].start, w[0].finish,
                        w[1].label, w[1].start, w[1].finish
                    );
                }
            }
        }

        /// Simulation is a pure function of the graph: repeated runs are
        /// bit-identical, timeline included.
        #[test]
        fn simulation_is_deterministic(
            tasks in proptest::collection::vec(
                (0usize..4, 0.0f64..5.0, 0usize..3, any::<bool>(), 0usize..6),
                1..48,
            ),
        ) {
            let g = build(&tasks);
            let a = simulate(&g);
            let b = simulate(&g);
            prop_assert_eq!(a, b);
        }
    }
}
