//! Chaos-style integration tests of the storage fault plane driven
//! through the public trainer API: injected transient SSD faults must be
//! invisible to training (retries absorb them bitwise), permanent faults
//! must surface as typed errors that a checkpoint resume recovers from,
//! and host-memory pressure must degrade to SSD spills instead of
//! failing the job.

use std::sync::Arc;

use ratel_repro::core::api::Ratel;
use ratel_repro::core::{Batch, RatelError, RatelTrainer};
use ratel_repro::prelude::*;
use ratel_repro::storage::{FaultKind, FaultPlan, StorageError, Tier};

fn tiny_config() -> GptConfig {
    GptConfig {
        vocab: 64,
        seq: 16,
        hidden: 32,
        heads: 4,
        layers: 3,
        batch: 2,
    }
}

fn build(model: GptConfig, plan: Option<Arc<FaultPlan>>) -> RatelTrainer {
    let mut b = Ratel::init(model).seed(17).learning_rate(1e-3);
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    b.build().expect("trainer builds")
}

fn train_steps(trainer: &mut RatelTrainer, model: &GptConfig, steps: usize) -> Vec<f32> {
    (0..steps)
        .map(|step| {
            let (tokens, targets) = learnable_batch(model, step as u64);
            let batch = Batch::new(model, &tokens, &targets).unwrap();
            trainer.step(batch).unwrap().loss
        })
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ratel-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The acceptance chaos test: >= 5 seeded transient SSD faults scattered
/// over 10 training steps are retried transparently — the loss history
/// is bitwise identical to the fault-free run and the always-on
/// telemetry accounts for every retry.
#[test]
fn transient_ssd_faults_are_invisible_to_training() {
    let model = tiny_config();

    // Fault-free baseline; the empty plan faults nothing but counts SSD
    // ops, giving the window to scatter faults over.
    let counter = Arc::new(FaultPlan::new());
    let mut baseline = build(model, Some(Arc::clone(&counter)));
    let baseline_losses = train_steps(&mut baseline, &model, 10);
    let window = counter.ops_seen();
    assert!(window > 100, "expected plenty of SSD ops, saw {window}");

    // Chaos run: seeded transient faults across that op window.
    let plan = Arc::new(FaultPlan::seeded_transient(0xC0FFEE, 5, window));
    let mut chaos = build(model, Some(Arc::clone(&plan)));
    let chaos_losses = train_steps(&mut chaos, &model, 10);

    assert!(plan.injected_count() >= 5, "{:?}", plan.injected());
    let stats = chaos.engine().store().telemetry().fault_stats();
    assert!(
        stats.retries >= plan.injected_count() as u64,
        "telemetry counted {} retries for {} injected faults",
        stats.retries,
        plan.injected_count()
    );
    assert_eq!(
        stats.give_ups, 0,
        "transient faults must never exhaust retries"
    );

    let baseline_bits: Vec<u32> = baseline_losses.iter().map(|l| l.to_bits()).collect();
    let chaos_bits: Vec<u32> = chaos_losses.iter().map(|l| l.to_bits()).collect();
    assert_eq!(
        baseline_bits, chaos_bits,
        "faults changed the training trajectory"
    );

    // The model itself is also bitwise identical, not just the losses.
    for layer in 0..model.layers + 2 {
        assert_eq!(
            baseline.engine().master_params(layer).unwrap(),
            chaos.engine().master_params(layer).unwrap(),
            "layer {layer} master params diverged"
        );
    }
}

/// A permanent SSD fault exhausts the retry budget, surfaces as the
/// typed [`RatelError::Storage`] fault variant, and a fresh trainer
/// resumed from the last checkpoint finishes the job with exactly the
/// trajectory a never-faulted run produces.
#[test]
fn permanent_fault_surfaces_and_checkpoint_resume_recovers() {
    let model = tiny_config();
    let dir = temp_dir("resume");

    // The straight run this job should end up matching.
    let mut straight = build(model, None);
    let straight_losses = train_steps(&mut straight, &model, 4);

    // The doomed run: two good steps, a checkpoint, then the SSD "dies".
    let mut doomed = build(model, None);
    let early_losses = train_steps(&mut doomed, &model, 2);
    assert_eq!(
        early_losses,
        straight_losses[..2],
        "runs diverged before any fault"
    );
    doomed.save_checkpoint(&dir).unwrap();
    let dead_ssd = Arc::new(FaultPlan::new());
    dead_ssd.fault_at(0, FaultKind::Permanent);
    doomed.engine().store().set_fault_plan(Some(dead_ssd));
    let (tokens, targets) = learnable_batch(&model, 2);
    let err = doomed
        .step(Batch::new(&model, &tokens, &targets).unwrap())
        .unwrap_err();
    assert!(
        matches!(
            err,
            RatelError::Storage(StorageError::Faulted { attempts, .. }) if attempts > 1
        ),
        "expected an exhausted-retries fault, got: {err}"
    );
    let stats = doomed.engine().store().telemetry().fault_stats();
    assert!(stats.give_ups >= 1, "give-up not counted: {stats:?}");
    drop(doomed);

    // Recovery: a fresh trainer resumes from the manifest and replays
    // the remaining steps — bitwise equal to the straight run.
    let mut resumed = Ratel::init(model)
        .seed(17)
        .learning_rate(1e-3)
        .resume_from(&dir)
        .build()
        .unwrap();
    let resumed_losses: Vec<f32> = (2..4)
        .map(|step| {
            let (tokens, targets) = learnable_batch(&model, step as u64);
            let batch = Batch::new(&model, &tokens, &targets).unwrap();
            resumed.step(batch).unwrap().loss
        })
        .collect();
    let straight_bits: Vec<u32> = straight_losses[2..].iter().map(|l| l.to_bits()).collect();
    let resumed_bits: Vec<u32> = resumed_losses.iter().map(|l| l.to_bits()).collect();
    assert_eq!(
        straight_bits, resumed_bits,
        "resume diverged from the straight run"
    );
    for layer in 0..model.layers + 2 {
        assert_eq!(
            straight.engine().master_params(layer).unwrap(),
            resumed.engine().master_params(layer).unwrap(),
            "layer {layer} master params diverged after resume"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Host-pool pressure with graceful degradation enabled lands the blob
/// on the SSD tier (recorded as a spill) instead of erroring, and reads
/// stay transparent.
#[test]
fn host_pressure_spills_to_ssd_instead_of_erroring() {
    let model = tiny_config();
    // The smallest host pool the builder accepts: one layer's optimizer
    // working set (master 4 + moments 8 + G16 2 bytes per param).
    let floor = 14 * model.max_layer_params() as u64;
    let mut trainer = Ratel::init(model)
        .seed(17)
        .host_capacity(floor)
        .spill_on_host_pressure()
        .build()
        .unwrap();
    let store = trainer.engine().store();
    assert!(
        store.spill_on_host_pressure(),
        "builder flag did not reach the store"
    );

    // A blob that cannot fit the host pool degrades to the SSD tier.
    let payload: Vec<u8> = (0..floor as usize + 1).map(|i| i as u8).collect();
    store
        .put("pressure-probe", Tier::Host, payload.clone())
        .unwrap();
    assert_eq!(store.tier_of("pressure-probe").unwrap(), Tier::Ssd);
    assert_eq!(store.read("pressure-probe").unwrap(), payload);
    let stats = store.telemetry().fault_stats();
    assert!(
        stats.host_spills >= 1,
        "degradation not recorded: {stats:?}"
    );

    // Without the flag, the same pressure is a hard (typed) error.
    let mut strict = Ratel::init(model)
        .seed(17)
        .host_capacity(floor)
        .build()
        .unwrap();
    let err = strict
        .engine()
        .store()
        .put("pressure-probe", Tier::Host, payload)
        .unwrap_err();
    assert!(matches!(
        err,
        StorageError::OutOfMemory {
            tier: Tier::Host,
            ..
        }
    ));
}
