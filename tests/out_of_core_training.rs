//! Integration tests of the real out-of-core engine driven end to end:
//! planner decisions -> tiered storage -> concurrent optimizer ->
//! numeric equivalence and convergence.

use ratel_repro::core::engine::scaler::ScalePolicy;
use ratel_repro::prelude::*;
use ratel_repro::storage::{Route, Tier};

fn tiny_config() -> GptConfig {
    GptConfig {
        vocab: 128,
        seq: 16,
        hidden: 32,
        heads: 4,
        layers: 4,
        batch: 2,
    }
}

/// Every combination of activation decisions produces the exact same
/// training trajectory — swap/recompute choices are performance-only.
#[test]
fn all_activation_policies_are_numerically_interchangeable() {
    let model = tiny_config();
    let policies: [Vec<ActDecision>; 3] = [
        vec![ActDecision::SwapToHost; 4],
        vec![ActDecision::SwapToSsd; 4],
        vec![
            ActDecision::Recompute,
            ActDecision::SwapToSsd,
            ActDecision::SwapToHost,
            ActDecision::Recompute,
        ],
    ];
    let (tokens, targets) = ratel_repro::core::engine::data::random_batch(&model, 9);
    let mut losses = Vec::new();
    let mut finals = Vec::new();
    for acts in policies {
        let mut engine = RatelEngine::new(EngineConfig {
            model,
            seed: 11,
            adam: AdamParams::default(),
            act_decisions: acts,
            gpu_capacity: None,
            host_capacity: None,
            execution: ExecutionOptions::default(),
            loss_scale: ScalePolicy::None,
            grad_clip: None,
            lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
            dropout: None,
            frozen_layers: Vec::new(),
        })
        .unwrap();
        let mut run_losses = Vec::new();
        for _ in 0..3 {
            run_losses.push(engine.train_step(&tokens, &targets).unwrap().loss);
        }
        losses.push(run_losses);
        finals.push(engine.master_params(1).unwrap());
    }
    assert_eq!(losses[0], losses[1]);
    assert_eq!(losses[0], losses[2]);
    assert_eq!(finals[0], finals[1]);
    assert_eq!(finals[0], finals[2]);
}

/// Training converges on learnable data and generalizes the pattern to a
/// *fresh* batch drawn from the same synthetic language.
#[test]
fn engine_learns_the_synthetic_language() {
    let model = tiny_config();
    let mut engine = RatelEngine::new(EngineConfig {
        model,
        seed: 3,
        adam: AdamParams {
            lr: 3e-3,
            ..Default::default()
        },
        act_decisions: vec![ActDecision::SwapToHost; 4],
        gpu_capacity: None,
        host_capacity: None,
        execution: ExecutionOptions::default(),
        loss_scale: ScalePolicy::None,
        grad_clip: None,
        lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
        dropout: None,
        frozen_layers: Vec::new(),
    })
    .unwrap();
    let initial = {
        let (t, y) = learnable_batch(&model, 0);
        engine.eval_loss(&t, &y).unwrap()
    };
    // 100 steps reaches ~0.3x the initial held-out loss across seeds with
    // the vendored deterministic RNG (60 steps sits right at the 0.6x
    // threshold and is seed-sensitive).
    for step in 0..100 {
        let (t, y) = learnable_batch(&model, step);
        engine.train_step(&t, &y).unwrap();
    }
    // Held-out batch (seed outside the training range).
    let (t, y) = learnable_batch(&model, 10_000);
    let held_out = engine.eval_loss(&t, &y).unwrap();
    assert!(
        held_out < initial * 0.6,
        "no generalization: {initial:.3} -> {held_out:.3}"
    );
}

/// The GPU arena really is the constraint: a capacity that fits one
/// layer's working set trains fine; one that cannot OOMs.
#[test]
fn gpu_arena_capacity_separates_feasible_from_oom() {
    let model = tiny_config();
    let (tokens, targets) = random_batch(&model, 4);
    let build = |cap: u64| {
        RatelEngine::new(EngineConfig {
            model,
            seed: 5,
            adam: AdamParams::default(),
            act_decisions: vec![ActDecision::SwapToHost; 4],
            gpu_capacity: Some(cap),
            host_capacity: None,
            execution: ExecutionOptions::default(),
            loss_scale: ScalePolicy::None,
            grad_clip: None,
            lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
            dropout: None,
            frozen_layers: Vec::new(),
        })
        .unwrap()
    };
    // Generous arena: works.
    let mut ok = build(16 << 20);
    ok.train_step(&tokens, &targets).unwrap();
    // Starved arena: errors with a GPU OOM, and the error is typed.
    let mut starved = build(4 << 10);
    let err = starved.train_step(&tokens, &targets).unwrap_err();
    assert!(matches!(
        err,
        ratel_repro::core::RatelError::Storage(ratel_repro::storage::StorageError::OutOfMemory {
            tier: Tier::Gpu,
            ..
        })
    ));
}

/// SSD-swapped runs move strictly more host<->SSD bytes, and all runs
/// leave the tiers clean (no leaked blobs) after each step.
#[test]
fn traffic_scales_with_policy_and_tiers_stay_clean() {
    let model = tiny_config();
    let (tokens, targets) = random_batch(&model, 6);
    let run = |acts: Vec<ActDecision>| {
        let mut e = RatelEngine::new(EngineConfig {
            model,
            seed: 8,
            adam: AdamParams::default(),
            act_decisions: acts,
            gpu_capacity: None,
            host_capacity: None,
            execution: ExecutionOptions::default(),
            loss_scale: ScalePolicy::None,
            grad_clip: None,
            lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
            dropout: None,
            frozen_layers: Vec::new(),
        })
        .unwrap();
        let stats = e.train_step(&tokens, &targets).unwrap();
        // After the step: only the 14-bytes/param states remain, on SSD.
        assert_eq!(e.store().used(Tier::Gpu), 0, "GPU tier not drained");
        assert_eq!(e.store().used(Tier::Host), 0, "host tier not drained");
        assert_eq!(e.store().used(Tier::Ssd) as usize, e.total_params() * 14);
        stats
    };
    let host = run(vec![ActDecision::SwapToHost; 4]);
    let ssd = run(vec![ActDecision::SwapToSsd; 4]);
    let rec = run(vec![ActDecision::Recompute; 4]);
    assert!(ssd.traffic.bytes(Route::HostToSsd) > host.traffic.bytes(Route::HostToSsd));
    assert!(rec.traffic.bytes(Route::GpuToHost) < host.traffic.bytes(Route::GpuToHost));
}

/// The separate-stage ablation and the active engine agree numerically —
/// overlap is a scheduling property, not a semantic one. Both run
/// through the schedule-driven executor, so this also pins the two DAG
/// shapes against each other.
#[test]
fn active_and_separate_stage_agree() {
    let model = tiny_config();
    let (tokens, targets) = random_batch(&model, 12);
    let run = |active: bool| {
        let mut e = RatelEngine::new(EngineConfig {
            model,
            seed: 21,
            adam: AdamParams::default(),
            act_decisions: vec![ActDecision::SwapToHost; 4],
            gpu_capacity: None,
            host_capacity: None,
            execution: ExecutionOptions::Executor(ExecutorOptions {
                offload: if active {
                    GradOffloadMode::OptimizedActive
                } else {
                    GradOffloadMode::SeparateStage
                },
                ..ExecutorOptions::default()
            }),
            loss_scale: ScalePolicy::None,
            grad_clip: None,
            lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
            dropout: None,
            frozen_layers: Vec::new(),
        })
        .unwrap();
        let mut losses = Vec::new();
        for _ in 0..3 {
            losses.push(e.train_step(&tokens, &targets).unwrap().loss);
        }
        (losses, e.master_params(2).unwrap())
    };
    let (la, pa) = run(true);
    let (ls, ps) = run(false);
    assert_eq!(la, ls);
    assert_eq!(pa, ps);
}

/// Planner decisions can drive the engine: map a SwapPlan onto per-block
/// ActDecisions and train with them.
#[test]
fn planner_output_drives_the_engine() {
    use ratel_repro::model::{ModelConfig, ModelProfile, UnitKind};

    let gpt = tiny_config();
    // Build the analytic twin of the executable model.
    let analytic = ModelConfig {
        seq_len: gpt.seq,
        vocab: gpt.vocab,
        ..ModelConfig::decoder_lm("tiny", gpt.layers, gpt.heads, gpt.hidden)
    };
    let profile = ModelProfile::new(&analytic, gpt.batch);
    let server = ServerConfig::paper_default();
    let hw = HardwareProfile::measure(&server, &profile, gpt.batch);
    let plan = ActivationPlanner::new(&hw, &profile).plan();

    // Block b's analytic layer id is b+1; swap if the planner swapped
    // either half, to SSD if either half spilled.
    let decisions: Vec<ActDecision> = (0..gpt.layers)
        .map(|b| {
            let id = b + 1;
            let swapped = plan.swaps(id, UnitKind::Mlp) || plan.swaps(id, UnitKind::Attention);
            if swapped {
                ActDecision::SwapToHost
            } else {
                ActDecision::Recompute
            }
        })
        .collect();

    let mut engine = RatelEngine::new(EngineConfig {
        model: gpt,
        seed: 77,
        adam: AdamParams::default(),
        act_decisions: decisions,
        gpu_capacity: None,
        host_capacity: None,
        execution: ExecutionOptions::default(),
        loss_scale: ScalePolicy::None,
        grad_clip: None,
        lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
        dropout: None,
        frozen_layers: Vec::new(),
    })
    .unwrap();
    let (tokens, targets) = random_batch(&gpt, 1);
    let s1 = engine.train_step(&tokens, &targets).unwrap();
    let s2 = engine.train_step(&tokens, &targets).unwrap();
    assert!(s1.loss.is_finite() && s2.loss.is_finite());
    assert!(s2.loss < s1.loss, "{} -> {}", s1.loss, s2.loss);
}

/// End-to-end: fine-tune on the affine-walk language, then *generate*
/// through the tiered engine and check the continuation follows the rule
/// `t_{k+1} = (5 t_k + 3) mod V` — the trained model demonstrably works.
#[test]
fn generation_continues_the_learned_language() {
    let model = GptConfig {
        vocab: 64,
        seq: 16,
        hidden: 48,
        heads: 4,
        layers: 3,
        batch: 4,
    };
    let mut engine = RatelEngine::new(EngineConfig {
        model,
        seed: 91,
        adam: AdamParams {
            lr: 4e-3,
            ..Default::default()
        },
        act_decisions: vec![ActDecision::SwapToHost; model.layers],
        gpu_capacity: None,
        host_capacity: None,
        execution: ExecutionOptions::default(),
        loss_scale: ScalePolicy::None,
        grad_clip: None,
        lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
        dropout: None,
        frozen_layers: Vec::new(),
    })
    .unwrap();
    for step in 0..150 {
        let (t, y) = learnable_batch(&model, step % 8);
        engine.train_step(&t, &y).unwrap();
    }
    // Prompt with a valid walk prefix, generate, and score the rule.
    let mut prompt = vec![9usize];
    for _ in 0..7 {
        let next = (5 * prompt.last().unwrap() + 3) % model.vocab;
        prompt.push(next);
    }
    let generated = engine.generate(&prompt, 6).unwrap();
    let mut expected = Vec::new();
    let mut t = *prompt.last().unwrap();
    for _ in 0..6 {
        t = (5 * t + 3) % model.vocab;
        expected.push(t);
    }
    let correct = generated
        .iter()
        .zip(&expected)
        .filter(|(a, b)| a == b)
        .count();
    assert!(
        correct >= 4,
        "generation off-language: got {generated:?}, expected {expected:?}"
    );
}

/// KV-cached generation produces the same tokens as the full-forward
/// path on a trained model, and its host-tier cache traffic drains.
#[test]
fn cached_generation_matches_full_forward_generation() {
    use ratel_repro::storage::Tier;
    let model = GptConfig {
        vocab: 64,
        seq: 24,
        hidden: 48,
        heads: 4,
        layers: 3,
        batch: 4,
    };
    let mut engine = RatelEngine::new(EngineConfig {
        model,
        seed: 91,
        adam: AdamParams {
            lr: 4e-3,
            ..Default::default()
        },
        act_decisions: vec![ActDecision::SwapToHost; model.layers],
        gpu_capacity: None,
        host_capacity: None,
        execution: ExecutionOptions::default(),
        loss_scale: ScalePolicy::None,
        grad_clip: None,
        lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
        dropout: None,
        frozen_layers: Vec::new(),
    })
    .unwrap();
    for step in 0..120 {
        let (t, y) = learnable_batch(&model, step % 6);
        engine.train_step(&t, &y).unwrap();
    }
    let mut prompt = vec![3usize];
    for _ in 0..9 {
        prompt.push((5 * prompt.last().unwrap() + 3) % model.vocab);
    }
    let full = engine.generate(&prompt, 8).unwrap();
    let cached = engine.generate_cached(&prompt, 8).unwrap();
    assert_eq!(
        full, cached,
        "incremental decoding diverged from full forward"
    );
    // Caches were cleaned up.
    assert_eq!(engine.store().used(Tier::Host), 0);
    assert_eq!(engine.store().used(Tier::Gpu), 0);
}

/// End-to-end with a learned BPE vocabulary: train the tokenizer, fine-
/// tune out of core on subword tokens, watch perplexity fall, and decode
/// a generated continuation back to text.
#[test]
fn bpe_finetuning_end_to_end() {
    use ratel_repro::core::api::Ratel;
    use ratel_repro::core::engine::bpe::BpeTokenizer;
    use ratel_repro::core::engine::data::token_batches;

    let corpus = "the tensors feed the gradients and the gradients feed the optimizer \
                  and the optimizer moves the weights and the weights move the model "
        .repeat(4);
    let bpe = BpeTokenizer::train(&corpus, 96);
    let ids = bpe.encode(&corpus);
    let model = GptConfig {
        vocab: bpe.vocab_size(),
        seq: 16,
        hidden: 64,
        heads: 4,
        layers: 3,
        batch: 4,
    };
    let mut trainer = Ratel::init(model)
        .seed(2)
        .learning_rate(3e-3)
        .build()
        .unwrap();
    let batches = token_batches(&ids, &model, 4);
    let probe = ratel_repro::core::Batch::new(&model, &batches[0].0, &batches[0].1).unwrap();
    let ppl0 = trainer.perplexity(probe).unwrap();
    trainer.train_epochs(&batches, 25).unwrap();
    let ppl1 = trainer.perplexity(probe).unwrap();
    assert!(
        ppl1 < ppl0 * 0.3,
        "perplexity did not collapse: {ppl0:.1} -> {ppl1:.1}"
    );
    // Generate and decode.
    let prompt = bpe.encode("the gradients feed ");
    let generated = trainer.generate_cached(&prompt, 6).unwrap();
    let text = bpe.decode(&generated);
    assert!(!text.is_empty());
    assert!(text.chars().all(|c| corpus.contains(c)));
}

/// The engine's data-movement plan passes static verification: every
/// blob the schedule reads is produced-then-ordered before the read,
/// residency is balanced, and every task sits on a legal resource.
/// (Debug builds also run this check inside `RatelEngine::new`.)
#[test]
fn engine_movement_plan_passes_static_verification() {
    use ratel_repro::core::verify::Limits;

    let model = tiny_config();
    for execution in [
        ExecutionOptions::default(),
        ExecutionOptions::Executor(ExecutorOptions {
            offload: GradOffloadMode::SeparateStage,
            ..ExecutorOptions::default()
        }),
        ExecutionOptions::LegacyOverlapped {
            prefetch_params: false,
        },
        ExecutionOptions::LegacySeparateStage {
            prefetch_params: false,
        },
    ] {
        let engine = RatelEngine::new(EngineConfig {
            model,
            seed: 3,
            adam: AdamParams::default(),
            act_decisions: vec![
                ActDecision::Recompute,
                ActDecision::SwapToSsd,
                ActDecision::SwapToHost,
                ActDecision::Recompute,
            ],
            gpu_capacity: None,
            host_capacity: None,
            execution,
            loss_scale: ScalePolicy::None,
            grad_clip: None,
            lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
            dropout: None,
            frozen_layers: Vec::new(),
        })
        .unwrap();
        let report = engine.movement_spec().verify(2, &Limits::none());
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.tasks_checked > 0);
        assert!(report.versions_seen > 0);
    }
}

/// Streaming attention shrinks the per-block saved-activation blob: the
/// A16 element count carries no `[s, s]` probabilities term (it scales
/// linearly in sequence length), stays strictly below the old
/// materialized-softmax accounting, and the implied per-token-channel
/// bytes agree with the analytic planner's intra-block constant — while
/// the engine's movement plan still passes static verification with the
/// smaller blobs (the test above).
#[test]
fn streaming_attention_shrinks_saved_activation_blob() {
    use ratel_repro::model::config::ACT_INTRA_BYTES_PER_TOKEN_CHANNEL;
    use ratel_repro::tensor::BlockSaved;

    let (batch, heads, h) = (4, 8, 256);
    // Linear in seq: doubling the sequence doubles the blob.
    let at_seq = |s: usize| BlockSaved::element_count_for(batch, s, h, heads);
    assert_eq!(at_seq(512) * 2, at_seq(1024));
    // Strictly below the old accounting that stored `[s, s]` probabilities
    // per head; the gap is exactly the dropped quadratic term minus the
    // two per-row statistics that replaced it.
    for s in [16, 64, 256, 1024] {
        let rows = batch * s;
        let old = rows * (15 * h + 4) + batch * heads * s * s;
        assert!(at_seq(s) < old, "s={s}: {} !< {old}", at_seq(s));
        assert_eq!(old - at_seq(s), batch * heads * s * (s - 2));
    }
    // Analytic agreement at the paper's 13B shape (h=5120, 40 heads,
    // batch 32, seq 1024): ~30 A16 bytes per token-channel per block.
    let (b13, s13, h13, heads13) = (32usize, 1024usize, 5120usize, 40usize);
    let blob_bytes = 2.0 * BlockSaved::element_count_for(b13, s13, h13, heads13) as f64;
    let per_token_channel = blob_bytes / (b13 * s13 * h13) as f64;
    let rel = (per_token_channel - ACT_INTRA_BYTES_PER_TOKEN_CHANNEL).abs()
        / ACT_INTRA_BYTES_PER_TOKEN_CHANNEL;
    assert!(
        rel < 0.005,
        "engine stores {per_token_channel:.3} B/token-channel, planner assumes {ACT_INTRA_BYTES_PER_TOKEN_CHANNEL}"
    );
}
