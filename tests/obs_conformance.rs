//! Integration tests of the observability plane: the live
//! plan-conformance monitor must stay silent on clean runs, each seeded
//! drift class must surface as its structured finding (mirroring the
//! mutation suite the static verifier gets in `verify_mutations.rs`),
//! and a permanent SSD fault must leave a flight-recorder postmortem
//! whose tail names the failing transfer and its retries.

use ratel_repro::core::engine::conformance::{ConformanceConfig, ConformanceMonitor, DriftKind};
use ratel_repro::core::engine::telemetry::StepTelemetry;
use ratel_repro::prelude::*;
use ratel_repro::storage::telemetry::{SpanCategory, SpanRecord};
use ratel_repro::storage::{FaultKind, FaultPlan, Route};

fn tiny_config() -> GptConfig {
    GptConfig {
        vocab: 64,
        seq: 16,
        hidden: 32,
        heads: 4,
        layers: 3,
        batch: 2,
    }
}

/// The paper's optimized schedule, same shape the `obs` smoke runs:
/// everything swapped to host, active offload and prefetch on.
fn build(model: GptConfig) -> RatelEngine {
    RatelEngine::new(EngineConfig {
        model,
        seed: 42,
        adam: AdamParams::default(),
        act_decisions: vec![ActDecision::SwapToHost; model.layers],
        gpu_capacity: None,
        host_capacity: None,
        execution: ExecutionOptions::default(),
        loss_scale: ScalePolicy::None,
        grad_clip: None,
        lr_schedule: LrSchedule::Constant,
        dropout: None,
        frozen_layers: Vec::new(),
    })
    .unwrap()
}

/// One instrumented step's telemetry plus the monitor built from the
/// same engine's movement spec — the seed every mutation perturbs.
fn instrumented_step(config: ConformanceConfig) -> (StepTelemetry, ConformanceMonitor) {
    let model = tiny_config();
    let mut engine = build(model);
    engine.enable_telemetry();
    let monitor = ConformanceMonitor::new(&engine.movement_spec(), config);
    let (tokens, targets) = random_batch(&model, 1234);
    engine.train_step(&tokens, &targets).unwrap();
    let telemetry = engine.last_step_telemetry().unwrap().clone();
    (telemetry, monitor)
}

fn kinds(findings: &[ratel_repro::core::engine::conformance::Finding]) -> Vec<DriftKind> {
    let mut out: Vec<DriftKind> = findings.iter().map(|f| f.kind).collect();
    out.dedup();
    out
}

/// The acceptance criterion's clean half: a healthy engine matches its
/// own verified plan on every step — zero findings, live in the engine.
#[test]
fn clean_runs_produce_zero_findings() {
    let model = tiny_config();
    let mut engine = build(model);
    engine.enable_conformance(ConformanceConfig::default());
    let (tokens, targets) = random_batch(&model, 7);
    for step in 0..3 {
        engine.train_step(&tokens, &targets).unwrap();
        assert!(
            engine.conformance_findings().is_empty(),
            "step {step} drifted: {:?}",
            engine.conformance_findings()
        );
    }
    assert_eq!(engine.total_findings(), 0);
}

/// Drift class 1: a transfer whose blob key is outside the planned
/// inventory is flagged, and nothing else fires.
#[test]
fn unplanned_transfer_is_flagged() {
    let (clean, monitor) = instrumented_step(ConformanceConfig::default());
    assert!(monitor.check(&clean).is_empty(), "seed telemetry drifted");

    let mut mutated = clean.clone();
    mutated.spans.push(SpanRecord {
        track: "host->gpu".into(),
        category: SpanCategory::Transfer,
        label: "rogue/blob".into(),
        start: mutated.step_start,
        end: mutated.step_start + 1e-4,
        bytes: Some(4096),
        route: Some(Route::HostToGpu),
    });
    let findings = monitor.check(&mutated);
    assert_eq!(kinds(&findings), vec![DriftKind::UnplannedTransfer]);
    assert!(
        findings[0].detail.contains("rogue/blob"),
        "finding does not name the alien key: {}",
        findings[0]
    );
}

/// Drift class 2: route traffic that diverges from the plan's ledger —
/// here wiped to zero, as if a whole route's movement went missing.
#[test]
fn byte_mismatch_is_flagged_per_route() {
    let (clean, monitor) = instrumented_step(ConformanceConfig::default());
    let mut mutated = clean.clone();
    mutated.traffic = clean.traffic.since(&clean.traffic); // all-zero snapshot
    let findings = monitor.check(&mutated);
    assert_eq!(kinds(&findings), vec![DriftKind::ByteMismatch]);
    // Every route the plan moves bytes on must report its own mismatch.
    let planned = monitor.planned_bytes();
    let expected = planned.iter().filter(|b| **b > 0).count();
    assert_eq!(findings.len(), expected, "{findings:?}");
    for f in &findings {
        assert_eq!(f.measured, Some(0));
        assert!(f.planned.unwrap() > 0);
    }
}

/// Drift class 3: two forward layers started out of plan order.
#[test]
fn stage_inversion_is_flagged() {
    let (clean, monitor) = instrumented_step(ConformanceConfig::default());
    let mut mutated = clean.clone();
    let fwd: Vec<usize> = mutated
        .spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.category == SpanCategory::Forward)
        .map(|(i, _)| i)
        .take(2)
        .collect();
    assert_eq!(fwd.len(), 2, "expected at least two forward spans");
    let (a, b) = (fwd[0], fwd[1]);
    let (sa, sb) = (mutated.spans[a].start, mutated.spans[b].start);
    mutated.spans[a].start = sb;
    mutated.spans[b].start = sa;
    let findings = monitor.check(&mutated);
    assert_eq!(kinds(&findings), vec![DriftKind::StageInversion]);
    assert!(
        findings.iter().any(|f| f.detail.contains("in forward")),
        "{findings:?}"
    );
}

/// Drift class 4: a route with an armed bandwidth target achieving less
/// than the configured fraction of it stalls. The target here is set
/// absurdly high so the real measured bandwidth is guaranteed to be
/// under the floor.
#[test]
fn bandwidth_stall_is_flagged_when_a_target_is_armed() {
    let mut config = ConformanceConfig::default();
    config.bandwidth_targets[Route::SsdToHost.index()] = Some(1e18);
    let (clean, monitor) = instrumented_step(config);
    let findings = monitor.check(&clean);
    assert_eq!(kinds(&findings), vec![DriftKind::Stall]);
    assert_eq!(findings[0].route, Some(Route::SsdToHost));

    // The same telemetry with no target armed is clean: the stall check
    // never invents a floor on its own.
    let quiet = ConformanceMonitor::new(
        &build(tiny_config()).movement_spec(),
        ConformanceConfig::default(),
    );
    assert!(quiet.check(&clean).is_empty());
}

/// A permanent SSD fault exhausts its retries, fails the step, and the
/// engine dumps the flight recorder: the postmortem must exist and its
/// event tail must include the failing blob's retries and give-up.
#[test]
fn permanent_fault_leaves_a_postmortem_naming_the_failing_transfer() {
    let dir = std::env::temp_dir().join(format!("ratel-obs-conf-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ratel_repro::obs::set_postmortem_dir(&dir);

    let model = tiny_config();
    let mut engine = build(model);
    let (tokens, targets) = random_batch(&model, 7);
    engine.train_step(&tokens, &targets).unwrap();

    // The SSD "loses" one parameter blob for good.
    let plan = std::sync::Arc::new(FaultPlan::new());
    plan.fault_on_key("layer0/p16", FaultKind::Permanent);
    engine.store().set_fault_plan(Some(plan));
    let err = engine.train_step(&tokens, &targets).unwrap_err();
    let msg = err.to_string();

    let path = ratel_repro::obs::last_postmortem().expect("step failure dumps a postmortem");
    assert!(path.starts_with(&dir), "dump landed at {}", path.display());
    assert!(ratel_repro::obs::looks_like_postmortem(&path));
    let dump = std::fs::read_to_string(&path).unwrap();
    assert!(
        dump.contains("\"reason\":\"train step failed\""),
        "dump header lacks the failure reason"
    );
    assert!(
        dump.contains("\"kind\":\"retry\"") && dump.contains("layer0/p16"),
        "dump does not show the failing blob's retries"
    );
    assert!(
        dump.contains("\"kind\":\"give_up\""),
        "dump does not show the give-up"
    );
    assert!(
        dump.contains("\"kind\":\"error\""),
        "dump does not show the surfaced step error"
    );
    assert!(
        msg.contains("layer0/p16"),
        "error does not name the blob: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
