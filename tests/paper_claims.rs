//! Integration tests for the paper's three headline claims (abstract /
//! §I contributions), exercised end-to-end across the workspace crates.

use ratel_repro::prelude::*;

/// Claim 1: "Ratel is the first to fine-tune a 175B model on an RTX 4090
/// and 256 GB main memory" — and none of the baselines can.
#[test]
fn claim_1_175b_on_consumer_hardware() {
    let server = ServerConfig::consumer_256g();
    let model = zoo::llm("175B");
    assert!(System::Ratel.feasible(&server, &model, 1));
    for sys in [
        System::ZeroInfinity,
        System::ZeroOffload,
        System::ColossalAi,
        System::FlashNeuron,
        System::G10,
    ] {
        assert!(
            !sys.feasible(&server, &model, 1),
            "{} should not fit 175B on 256 GB",
            sys.name()
        );
    }
    // And it actually produces a finite training schedule.
    let r = System::Ratel.simulate(&server, &model, 8).unwrap();
    assert!(r.iteration_seconds.is_finite() && r.iteration_seconds > 0.0);
    assert!(r.throughput_items_per_sec > 0.0);
}

/// Claim 2: "Ratel achieves up to 2.32x throughput over the
/// state-of-the-art baselines when fine-tuning a small 13B model."
#[test]
fn claim_2_throughput_advantage_on_13b() {
    let server = ServerConfig::paper_default();
    let model = zoo::llm("13B");
    let batches = [8usize, 16, 32, 64, 128];
    let best = |sys: System| {
        sys.best_over_batches(&server, &model, &batches)
            .map(|(_, r)| r.throughput_items_per_sec)
            .unwrap_or(0.0)
    };
    let ratel = best(System::Ratel);
    let best_baseline = [
        System::ZeroInfinity,
        System::ZeroOffload,
        System::ColossalAi,
    ]
    .into_iter()
    .map(best)
    .fold(0.0, f64::max);
    let gain = ratel / best_baseline;
    assert!(
        gain >= 2.0,
        "Ratel {ratel:.0} tok/s vs best baseline {best_baseline:.0} (gain {gain:.2})"
    );
}

/// Claim 3: "Ratel enables a cheap low-end consumer GPU to have higher
/// cost-effectiveness than a DGX-A100 machine."
#[test]
fn claim_3_cost_effectiveness_beats_dgx() {
    use ratel_repro::baselines::megatron;
    use ratel_repro::core::cost::CostPoint;

    let model = zoo::llm("30B");
    let batches = [8usize, 16, 32, 64];
    // Ratel on the 4x4090 / 6-SSD sweet spot.
    let server = ServerConfig::paper_default()
        .with_gpu_count(4)
        .with_ssd_count(6);
    let ratel_tput = System::Ratel
        .best_over_batches(&server, &model, &batches)
        .unwrap()
        .1
        .throughput_items_per_sec;
    let ratel = CostPoint::commodity("ratel", &server, ratel_tput);

    let (_, mega_tput) = megatron::best_tokens_per_sec(&model, &batches).unwrap();
    let dgx = CostPoint::dgx_a100("megatron", mega_tput);

    assert!(
        ratel.tokens_per_sec_per_kusd > dgx.tokens_per_sec_per_kusd,
        "ratel {:.1} vs dgx {:.1} tokens/s/k$",
        ratel.tokens_per_sec_per_kusd,
        dgx.tokens_per_sec_per_kusd
    );
    // The paper reports "at most 2.17x": stay in a sane band.
    let ratio = ratel.tokens_per_sec_per_kusd / dgx.tokens_per_sec_per_kusd;
    assert!((1.2..5.0).contains(&ratio), "ratio {ratio:.2}");
}

/// §V-B: Ratel's maximum trainable size is ~2x ZeRO-Infinity's at 768 GB,
/// and 276B-class at full memory.
#[test]
fn max_trainable_size_doubles_zero_infinity() {
    let server = ServerConfig::paper_default();
    let ladder = zoo::llm_ladder();
    let ratel = System::Ratel.max_trainable_billions(&server, &ladder, 1);
    let zero = System::ZeroInfinity.max_trainable_billions(&server, &ladder, 1);
    assert!((270.0..290.0).contains(&ratel), "ratel max {ratel}");
    assert!(
        (1.8..2.3).contains(&(ratel / zero)),
        "ratio {}",
        ratel / zero
    );
}

/// The planner's predictions track the simulator within a reasonable
/// optimism margin (it assumes perfect overlap), across models and
/// batches — the property that makes Algorithm 1's decisions sound.
#[test]
fn planner_predictions_track_the_simulator() {
    let server = ServerConfig::paper_default();
    for (name, batch) in [("13B", 32usize), ("13B", 64), ("30B", 32), ("70B", 16)] {
        let model = ModelProfile::new(&zoo::llm(name), batch);
        let hw = HardwareProfile::measure(&server, &model, batch);
        let plan = ActivationPlanner::new(&hw, &model).plan();
        let measured = RatelSchedule {
            profile: &hw,
            model: &model,
            plan: &plan,
            mode: GradOffloadMode::OptimizedActive,
            gpus: 1,
        }
        .simulate()
        .iteration_seconds;
        let predicted = plan.predicted.total();
        // The analytic model ignores CPU Adam (per the paper's Eq. 5 note)
        // and pipeline fill, so it may undershoot — but never by more than
        // ~2.5x, and it must never exceed the measurement by much.
        let ratio = measured / predicted;
        assert!(
            (0.9..2.5).contains(&ratio),
            "{name}@{batch}: predicted {predicted:.1}s measured {measured:.1}s"
        );
    }
}
