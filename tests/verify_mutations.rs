//! Mutation tests of the static schedule verifier: seed a known defect
//! into a clean, fully-annotated schedule and require `ratel-verify` to
//! catch it — and to stay silent on the unmutated graph. Each mutation
//! class maps to one invariant family: dropped domination edges →
//! staleness / use-before-fetch, swapped producer versions → staleness,
//! inflated residency → capacity, rebinding onto the wrong resource →
//! legality.

use proptest::prelude::*;

use ratel_repro::core::schedule::{
    IterationSpec, LayerTask, LinkRates, OptimizerKind, ParamSource,
};
use ratel_repro::core::verify::{verify, Limits, Reachability, Rule};
use ratel_repro::core::GradOffloadMode;
use ratel_repro::sim::{MemTier, ResourceClass, TaskGraph, TaskId};

fn rates() -> LinkRates {
    LinkRates {
        thp_gpu: 1e12,
        bw_g2m: 20e9,
        bw_m2g: 20e9,
        ssd_read: 10e9,
        ssd_write: 8e9,
        cpu_params_per_sec: 1e9,
        state_io_efficiency: 0.8,
    }
}

/// A small but fully-featured spec: parameter staging, host and SSD
/// activation traffic, gradients, and out-of-core optimizer handlers.
fn spec(mode: GradOffloadMode) -> IterationSpec {
    let layer = |label: &str, p: f64, host: f64, ssd: f64| LayerTask {
        label: label.into(),
        p16_bytes: 2.0 * p,
        param_source: ParamSource::Ssd,
        fwd_flops: 1e9,
        bwd_flops: 2e9,
        act_to_host_bytes: host,
        act_to_ssd_bytes: ssd,
        refetch_in_backward: true,
        grad_bytes: 2.0 * p,
        grad_spill_to_ssd: mode == GradOffloadMode::SeparateStage,
        optimizer: OptimizerKind::CpuOutOfCore {
            read_bytes: 12.0 * p,
            write_bytes: 14.0 * p,
            cpu_params: p,
        },
    };
    IterationSpec {
        layers: vec![
            layer("embedding", 1e6, 0.0, 0.0),
            layer("block0", 2e6, 3e6, 1e6),
            layer("block1", 2e6, 3e6, 0.0),
            layer("head", 1e6, 0.0, 0.0),
        ],
        mode,
        rates: rates(),
        gpus: 1,
        items_per_iteration: 1.0,
        per_layer_overhead_seconds: 0.01,
    }
}

const MODES: [GradOffloadMode; 3] = GradOffloadMode::ALL;

fn graph(mode: GradOffloadMode, iterations: usize) -> TaskGraph {
    let (g, _, _) = spec(mode).build_iterations(iterations);
    g
}

/// Readers whose read has a recorded producer, as (reader, producer).
fn dominated_reads(g: &TaskGraph) -> Vec<(TaskId, TaskId)> {
    let mut producers = std::collections::HashMap::new();
    for t in g.task_ids() {
        if let Some(meta) = g.meta(t) {
            for w in &meta.writes {
                producers.insert(*w, t);
            }
        }
    }
    let mut out = Vec::new();
    for t in g.task_ids() {
        if let Some(meta) = g.meta(t) {
            for r in &meta.reads {
                if let Some(&p) = producers.get(r) {
                    if p != t {
                        out.push((t, p));
                    }
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unmutated schedules produce zero findings under every mode and
    /// iteration count, including with exact-fit residency budgets.
    #[test]
    fn unmutated_schedules_are_clean(mode_ix in 0usize..3, iters in 1usize..3) {
        let g = graph(MODES[mode_ix], iters);
        let report = verify(&g, &Limits::none());
        prop_assert!(report.is_clean(), "{}", report.render());
        prop_assert!(report.tasks_checked > 0);
        prop_assert!(report.intervals > 0);
    }

    /// Dropping every dependency that carries a producer's ordering to
    /// one of its readers is always caught as a dataflow violation.
    #[test]
    fn dropped_domination_is_caught(mode_ix in 0usize..3, pick in 0usize..4096) {
        let mut g = graph(MODES[mode_ix], 2);
        let reads = dominated_reads(&g);
        prop_assert!(!reads.is_empty());
        let (reader, producer) = reads[pick % reads.len()];
        // Sever every path producer -> reader: remove the deps of
        // `reader` through which the producer's completion is ordered.
        let reach = Reachability::new(&g);
        let severed: Vec<TaskId> = g
            .deps(reader)
            .iter()
            .copied()
            .filter(|d| *d == producer || reach.reaches(producer, *d))
            .collect();
        prop_assert!(!severed.is_empty(), "producer did not dominate via deps");
        for d in severed {
            // Repeat for duplicate edges; at least one must exist.
            while g.remove_dep(reader, d) {}
        }
        let report = verify(&g, &Limits::none());
        prop_assert!(
            report
                .findings
                .iter()
                .any(|f| matches!(f.rule, Rule::Staleness | Rule::UseBeforeFetch)),
            "mutant not caught:\n{}",
            report.render()
        );
    }

    /// Swapping the version numbers of two writes to the same blob (the
    /// stale-parameter bug: iteration k+1 reading iteration k-1's copy)
    /// is always caught.
    #[test]
    fn swapped_producer_versions_are_caught(mode_ix in 0usize..3, pick in 0usize..4096) {
        let mut g = graph(MODES[mode_ix], 2);
        // Blobs written at both version 1 and version 2 (once per
        // iteration): persistent parameter/master state qualifies.
        let mut writers: std::collections::HashMap<_, Vec<(TaskId, usize)>> =
            std::collections::HashMap::new();
        for t in g.task_ids() {
            if let Some(meta) = g.meta(t) {
                for (i, w) in meta.writes.iter().enumerate() {
                    writers.entry(w.key).or_default().push((t, i));
                }
            }
        }
        let mut twice: Vec<_> = writers
            .into_iter()
            .filter(|(_, v)| v.len() == 2)
            .collect();
        twice.sort_by_key(|(k, _)| *k);
        prop_assert!(!twice.is_empty());
        let (_, pair) = &twice[pick % twice.len()];
        let ((t1, i1), (t2, i2)) = (pair[0], pair[1]);
        let v1 = g.meta(t1).unwrap().writes[i1];
        let v2 = g.meta(t2).unwrap().writes[i2];
        g.meta_mut(t1).unwrap().writes[i1] = v2;
        g.meta_mut(t2).unwrap().writes[i2] = v1;
        let report = verify(&g, &Limits::none());
        prop_assert!(
            report.findings.iter().any(|f| matches!(
                f.rule,
                Rule::Staleness | Rule::UseBeforeFetch | Rule::WriteAfterRead
            )),
            "mutant not caught:\n{}",
            report.render()
        );
    }

    /// Inflating any one residency interval past the tier budget is
    /// always caught by the capacity pass.
    #[test]
    fn inflated_residency_is_caught(mode_ix in 0usize..3, pick in 0usize..4096) {
        let mut g = graph(MODES[mode_ix], 2);
        // Budget = the sum of all allocations per tier: a sound upper
        // bound on any concurrent footprint, so the unmutated graph is
        // clean even if everything coexisted.
        let mut totals: std::collections::HashMap<MemTier, f64> =
            std::collections::HashMap::new();
        let mut allocs: Vec<(TaskId, usize)> = Vec::new();
        for t in g.task_ids() {
            if let Some(meta) = g.meta(t) {
                for (i, a) in meta.allocs.iter().enumerate() {
                    *totals.entry(a.tier).or_default() += a.bytes;
                    allocs.push((t, i));
                }
            }
        }
        prop_assert!(!allocs.is_empty());
        let limits = Limits {
            gpu: totals.get(&MemTier::Gpu).copied(),
            host: totals.get(&MemTier::Host).copied(),
            ssd: totals.get(&MemTier::Ssd).copied(),
        };
        prop_assert!(verify(&g, &limits).is_clean());
        let (t, i) = allocs[pick % allocs.len()];
        let tier = g.meta(t).unwrap().allocs[i].tier;
        let budget = limits.for_tier(tier).unwrap();
        g.meta_mut(t).unwrap().allocs[i].bytes += 2.0 * budget;
        let report = verify(&g, &limits);
        prop_assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == Rule::CapacityExceeded),
            "mutant not caught:\n{}",
            report.render()
        );
    }

    /// Rebinding any compute or transfer task onto the wrong resource
    /// class is always caught by the legality pass.
    #[test]
    fn illegal_rebinding_is_caught(mode_ix in 0usize..3, pick in 0usize..4096) {
        let mut g = graph(MODES[mode_ix], 1);
        let cpu = g
            .resource_ids()
            .find(|r| g.resource_class(*r) == Some(ResourceClass::CpuCompute))
            .unwrap();
        let gpu = g
            .resource_ids()
            .find(|r| g.resource_class(*r) == Some(ResourceClass::GpuCompute))
            .unwrap();
        let victims: Vec<TaskId> = g
            .task_ids()
            .filter(|t| g.meta(*t).is_some() && g.resource(*t) != cpu && g.resource(*t) != gpu)
            .collect();
        prop_assert!(!victims.is_empty());
        let t = victims[pick % victims.len()];
        // A transfer or SSD op on a compute engine is never legal.
        g.rebind_resource(t, cpu);
        let report = verify(&g, &Limits::none());
        prop_assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == Rule::IllegalResource),
            "mutant not caught:\n{}",
            report.render()
        );
    }
}

/// Splitting SSD traffic across two array resources trips the simplex
/// check (deterministic: there is exactly one way to seed it).
#[test]
fn split_ssd_traffic_is_caught() {
    let mut g = graph(GradOffloadMode::OptimizedActive, 1);
    let second = g.add_resource("ssd2");
    g.set_resource_class(second, ResourceClass::SsdArray);
    let victim = g
        .task_ids()
        .find(|t| {
            g.meta(*t).is_some_and(|m| {
                matches!(
                    m.op,
                    ratel_repro::sim::OpClass::SsdRead | ratel_repro::sim::OpClass::SsdWrite
                )
            })
        })
        .unwrap();
    g.rebind_resource(victim, second);
    let report = verify(&g, &Limits::none());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == Rule::SimplexViolation),
        "{}",
        report.render()
    );
}
