//! Seeded-bug mutant suite for `ratel-check` (ISSUE 10 acceptance).
//!
//! Each of the three core sync protocols is modeled twice: the pristine
//! protocol must pass full bounded exploration, and a seeded-bug mutant
//! — lost-notify condvar, lock-order-inverted two-lock, torn-read
//! seqlock — must be caught with a finding that names the lock/atomic
//! and carries an interleaving witness.

use ratel_check::models::{exec, locks, pending, seqlock};
use ratel_check::{lockorder, CheckFailure, Explorer, FailureKind, Report};

fn explore_model<F>(model: F) -> Result<Report, CheckFailure>
where
    F: Fn() + Send + Sync + 'static,
{
    Explorer::default().explore(model)
}

// ---- seqlock ring (obs::flight) ----

#[test]
fn pristine_seqlock_passes_bounded_exploration() {
    let report = explore_model(|| seqlock::run(seqlock::Variant::Pristine))
        .unwrap_or_else(|f| panic!("pristine seqlock failed:\n{f}"));
    assert!(report.complete, "schedule tree not fully enumerated");
    assert!(report.schedules > 1);
}

#[test]
fn torn_read_seqlock_mutant_is_caught() {
    let failure = explore_model(|| seqlock::run(seqlock::Variant::TornRead))
        .expect_err("torn-read mutant must be caught");
    assert_eq!(failure.kind, FailureKind::Assertion);
    assert!(
        failure.message.contains("flight.slot.stamp"),
        "finding must name the atomic:\n{failure}"
    );
    assert!(
        failure
            .witness
            .iter()
            .any(|line| line.contains("flight.slot")),
        "witness must show the interleaving:\n{failure}"
    );
}

// ---- pending-key condvar protocol (storage::store) ----

#[test]
fn pristine_pending_key_passes_bounded_exploration() {
    let report = explore_model(|| pending::run(pending::Variant::Pristine))
        .unwrap_or_else(|f| panic!("pristine pending-key failed:\n{f}"));
    assert!(report.complete, "schedule tree not fully enumerated");
    assert!(report.schedules > 1);
}

#[test]
fn lost_notify_mutant_is_caught() {
    let failure = explore_model(|| pending::run(pending::Variant::LostNotify))
        .expect_err("lost-notify mutant must be caught");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("store.pending_cv"),
        "finding must name the condvar:\n{failure}"
    );
    assert!(
        failure
            .witness
            .iter()
            .any(|line| line.contains("store.inner")),
        "witness must show the interleaving:\n{failure}"
    );
}

// ---- dependency-counted ready queues (core::engine::executor) ----

#[test]
fn pristine_executor_passes_bounded_exploration() {
    let report = explore_model(|| exec::run(exec::Variant::Pristine))
        .unwrap_or_else(|f| panic!("pristine executor failed:\n{f}"));
    assert!(report.complete, "schedule tree not fully enumerated");
    assert!(report.schedules > 1);
}

#[test]
fn lost_decrement_mutant_is_caught() {
    let failure = explore_model(|| exec::run(exec::Variant::LostDecrement))
        .expect_err("lost-decrement mutant must be caught");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("exec.ready") || failure.message.contains("exec.queue"),
        "finding must name the queue/condvar:\n{failure}"
    );
    assert!(
        failure
            .witness
            .iter()
            .any(|line| line.contains("exec.deps")),
        "witness must show the lost decrement:\n{failure}"
    );
}

// ---- two-lock ordering ----

#[test]
fn pristine_lock_order_passes_bounded_exploration() {
    let report = explore_model(|| locks::run(locks::Variant::Pristine))
        .unwrap_or_else(|f| panic!("pristine lock order failed:\n{f}"));
    assert!(report.complete, "schedule tree not fully enumerated");
}

#[test]
fn inverted_lock_order_mutant_is_caught() {
    let failure = explore_model(|| locks::run(locks::Variant::Inverted))
        .expect_err("inverted lock order must be caught");
    // In debug builds the lock-order tracker rejects the cycle on the
    // very first schedule (assertion); in release the explorer finds the
    // hold-and-wait interleaving (deadlock). Both name the locks.
    assert!(
        matches!(failure.kind, FailureKind::Assertion | FailureKind::Deadlock),
        "unexpected kind:\n{failure}"
    );
    assert!(
        failure.message.contains("model.lock_a") && failure.message.contains("model.lock_b"),
        "finding must name both locks:\n{failure}"
    );
    assert!(!failure.witness.is_empty());
}

/// The acquisition-graph analysis alone (no exploration needed) rejects
/// the inverted order.
#[test]
fn lock_graph_rejects_inversion_statically() {
    let graph = lockorder::LockGraph::new();
    graph
        .check_acquire(&["mutation.lock_a"], "mutation.lock_b")
        .expect("first order is consistent");
    let violation = graph
        .check_acquire(&["mutation.lock_b"], "mutation.lock_a")
        .expect_err("inversion closes a cycle");
    let text = violation.to_string();
    assert!(text.contains("mutation.lock_a") && text.contains("mutation.lock_b"));
}
