//! Wall-clock demonstration of active gradient offloading on the *real*
//! engine: with the SSD routes throttled to realistic-feeling speeds, the
//! concurrent optimizer hides its state I/O behind backward compute, so
//! the active engine finishes measurably faster than the separate-stage
//! ablation — the paper's Fig. 7 effect reproduced with actual threads
//! and actual sleeping I/O, not just in the simulator.

use ratel_repro::core::engine::scaler::ScalePolicy;
use ratel_repro::prelude::*;
use ratel_repro::storage::Route;

/// Wall-clock measurements cannot share a machine: the two timing tests
/// serialize on this lock so they do not skew each other.
static TIMING_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn build(active: bool) -> RatelEngine {
    let model = GptConfig {
        vocab: 128,
        seq: 32,
        hidden: 64,
        heads: 4,
        layers: 4,
        batch: 4,
    };
    let engine = RatelEngine::new(EngineConfig {
        model,
        seed: 33,
        adam: AdamParams::default(),
        act_decisions: vec![ActDecision::SwapToHost; model.layers],
        gpu_capacity: None,
        host_capacity: None,
        // Pin the legacy stage loops: this test times *their* overlap
        // (the executor's is measured by `ratel-bench bench executor`).
        execution: if active {
            ExecutionOptions::LegacyOverlapped {
                prefetch_params: false,
            }
        } else {
            ExecutionOptions::LegacySeparateStage {
                prefetch_params: false,
            }
        },
        loss_scale: ScalePolicy::None,
        grad_clip: None,
        lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
        dropout: None,
        frozen_layers: Vec::new(),
    })
    .unwrap();
    // Throttle the SSD routes so optimizer-state I/O takes real time
    // (~0.4 s per step of sleeping across reads+writes for this model).
    engine.set_route_throttle(Route::SsdToHost, Some(20e6));
    engine.set_route_throttle(Route::HostToSsd, Some(20e6));
    engine
}

#[test]
fn active_offloading_is_faster_in_wall_clock_time() {
    let _serial = TIMING_LOCK.lock().unwrap();
    let model = GptConfig {
        vocab: 128,
        seq: 32,
        hidden: 64,
        heads: 4,
        layers: 4,
        batch: 4,
    };
    let (tokens, targets) = random_batch(&model, 1);

    let time_steps = |active: bool| -> (f64, f32) {
        let mut engine = build(active);
        // Warm-up step (also confirms both modes work when throttled).
        engine.train_step(&tokens, &targets).unwrap();
        let t0 = std::time::Instant::now();
        let mut loss = 0.0;
        for _ in 0..3 {
            loss = engine.train_step(&tokens, &targets).unwrap().loss;
        }
        (t0.elapsed().as_secs_f64() / 3.0, loss)
    };

    let (active_secs, active_loss) = time_steps(true);
    let (separate_secs, separate_loss) = time_steps(false);

    // Identical numerics, different wall-clock.
    assert_eq!(active_loss, separate_loss);
    assert!(
        active_secs < separate_secs * 0.92,
        "no overlap win: active {active_secs:.3}s vs separate {separate_secs:.3}s"
    );
    println!(
        "active {active_secs:.3}s/step vs separate {separate_secs:.3}s/step \
         ({:.2}x speedup from overlap)",
        separate_secs / active_secs
    );
}

/// Parameter prefetching: identical numerics, faster wall clock when the
/// parameter-fetch routes are throttled.
#[test]
fn param_prefetch_hides_fetch_latency() {
    let _serial = TIMING_LOCK.lock().unwrap();
    let model = GptConfig {
        vocab: 128,
        seq: 32,
        hidden: 64,
        heads: 4,
        layers: 4,
        batch: 4,
    };
    let mk = |prefetch: bool| {
        let engine = RatelEngine::new(EngineConfig {
            model,
            seed: 44,
            adam: AdamParams::default(),
            act_decisions: vec![ActDecision::Recompute; model.layers],
            gpu_capacity: None,
            host_capacity: None,
            // Separate stage isolates the parameter pipeline.
            execution: ExecutionOptions::LegacySeparateStage {
                prefetch_params: prefetch,
            },
            loss_scale: ScalePolicy::None,
            grad_clip: None,
            lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
            dropout: None,
            frozen_layers: Vec::new(),
        })
        .unwrap();
        // Throttle only the host->GPU hop: parameter staging is its sole
        // heavy user in this configuration (~860 KB of P16 per step, i.e.
        // ~1.7 s of transfer against ~1.3 s of compute), so the prefetch
        // win is isolated from optimizer-state traffic.
        engine.set_route_throttle(Route::HostToGpu, Some(0.5e6));
        engine
    };
    let (tokens, targets) = random_batch(&model, 2);

    let run = |prefetch: bool| -> (f64, f32, Vec<f32>) {
        let mut e = mk(prefetch);
        e.train_step(&tokens, &targets).unwrap(); // warm-up
        let t0 = std::time::Instant::now();
        let mut loss = 0.0;
        for _ in 0..3 {
            loss = e.train_step(&tokens, &targets).unwrap().loss;
        }
        (
            t0.elapsed().as_secs_f64() / 3.0,
            loss,
            e.master_params(2).unwrap(),
        )
    };
    let (serial_secs, serial_loss, serial_params) = run(false);
    let (pf_secs, pf_loss, pf_params) = run(true);

    assert_eq!(serial_loss, pf_loss, "prefetch must not change numerics");
    assert_eq!(serial_params, pf_params);
    assert!(
        pf_secs < serial_secs * 0.8,
        "prefetch won nothing: {pf_secs:.3}s vs {serial_secs:.3}s"
    );
    println!(
        "prefetch {pf_secs:.3}s/step vs serial {serial_secs:.3}s/step \
         ({:.2}x)",
        serial_secs / pf_secs
    );
}
