//! The schedule-driven executor's two contracts, end to end:
//!
//! 1. **Numerics are schedule-independent.** Executing the verified DAG
//!    on resource pools — at any worker count per pool — produces
//!    bitwise-identical losses and master weights to the legacy serial
//!    stage loop and to plain in-memory training, across a small zoo of
//!    model shapes.
//! 2. **The static verifier guards dispatch.** Mutating the lowered
//!    plan by dropping a dependency edge is caught by the same
//!    `ratel-verify` pass that debug builds run before the executor
//!    ever sees the graph.

use ratel_repro::prelude::*;

fn zoo() -> Vec<GptConfig> {
    vec![
        // Wide-ish and shallow.
        GptConfig {
            vocab: 96,
            seq: 12,
            hidden: 32,
            heads: 4,
            layers: 2,
            batch: 2,
        },
        // Deeper, mixed activation policies exercise spill + recompute.
        GptConfig {
            vocab: 64,
            seq: 8,
            hidden: 16,
            heads: 2,
            layers: 4,
            batch: 2,
        },
        // Single block: the shortest pipeline the lowering supports.
        GptConfig {
            vocab: 48,
            seq: 8,
            hidden: 16,
            heads: 2,
            layers: 1,
            batch: 1,
        },
    ]
}

fn decisions_for(model: &GptConfig) -> Vec<ActDecision> {
    // Rotate through all three policies so every DAG shape appears.
    (0..model.layers)
        .map(|b| match b % 3 {
            0 => ActDecision::SwapToHost,
            1 => ActDecision::SwapToSsd,
            _ => ActDecision::Recompute,
        })
        .collect()
}

fn config_with(model: GptConfig, execution: ExecutionOptions) -> EngineConfig {
    EngineConfig {
        model,
        seed: 1234,
        adam: AdamParams::default(),
        act_decisions: decisions_for(&model),
        gpu_capacity: None,
        host_capacity: None,
        execution,
        loss_scale: ScalePolicy::None,
        grad_clip: None,
        lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
        dropout: None,
        frozen_layers: Vec::new(),
    }
}

/// Run `steps` training steps, returning the losses and final masters.
fn run(config: EngineConfig, steps: u64) -> (Vec<f32>, Vec<Vec<f32>>) {
    let model = config.model;
    let mut engine = RatelEngine::new(config).unwrap();
    let mut losses = Vec::new();
    for s in 0..steps {
        let (t, y) = random_batch(&model, 7 + s);
        losses.push(engine.train_step(&t, &y).unwrap().loss);
    }
    let masters = (0..engine.layer_count())
        .map(|l| engine.master_params(l).unwrap())
        .collect();
    (losses, masters)
}

/// Pool-parallel DAG execution is bitwise-equal to the serial legacy
/// engine and the in-memory reference, for 1/2/4 workers per pool and
/// both offload schedules, across the model zoo.
#[test]
fn executor_matches_serial_engine_across_the_zoo() {
    for model in zoo() {
        // The serial baseline: legacy stage loop, no prefetch threads.
        let (legacy_losses, legacy_masters) = run(
            config_with(
                model,
                ExecutionOptions::LegacyOverlapped {
                    prefetch_params: false,
                },
            ),
            2,
        );
        // And the ground truth: everything in memory.
        let mut reference = ReferenceTrainer::new(model, 1234, AdamParams::default());
        for s in 0..2 {
            let (t, y) = random_batch(&model, 7 + s);
            let ref_loss = reference.train_step(&t, &y);
            assert_eq!(legacy_losses[s as usize], ref_loss, "{model:?} step {s}");
        }

        for workers in [1usize, 2, 4] {
            for offload in [
                GradOffloadMode::OptimizedActive,
                GradOffloadMode::SeparateStage,
            ] {
                let (losses, masters) = run(
                    config_with(
                        model,
                        ExecutionOptions::Executor(ExecutorOptions {
                            workers_per_pool: workers,
                            offload,
                        }),
                    ),
                    2,
                );
                assert_eq!(
                    losses, legacy_losses,
                    "{model:?} with {workers} workers, {offload:?}"
                );
                assert_eq!(
                    masters, legacy_masters,
                    "{model:?} with {workers} workers, {offload:?}"
                );
            }
        }
    }
}

/// Dropping a staging edge from the lowered plan is caught by the static
/// verifier — the check debug builds run on every plan before dispatch.
#[test]
fn dropped_dependency_edges_are_caught_before_dispatch() {
    use ratel_repro::core::engine::movement_spec_for;
    use ratel_repro::core::verify::Limits;

    let model = zoo()[0];
    let spec = movement_spec_for(&config_with(model, ExecutionOptions::default()));
    let (mut graph, _, _) = spec.build();
    let base = ratel_repro::core::verify::verify(&graph, &Limits::none());
    assert!(base.is_clean(), "{}", base.render());

    // Every staging edge — a fetch/read feeding the compute or write
    // that consumes it — must be load-bearing: drop it and the verifier
    // reports a violation.
    let staged_pairs = [
        ("fwd-fetch", "fwd "),
        ("bwd-fetch", "bwd "),
        ("act-up", "bwd "),
        ("opt-read", "opt-cpu"),
        ("opt-cpu", "opt-write"),
    ];
    let edges: Vec<_> = graph
        .edges()
        .map(|e| {
            let d: ratel_repro::sim::TaskId = e.from;
            let t: ratel_repro::sim::TaskId = e.to;
            (d, t)
        })
        .collect();
    let mut mutations_caught = 0usize;
    for &(dep, task) in &edges {
        let dep_label = graph.label(dep).unwrap_or("").to_string();
        let task_label = graph.label(task).unwrap_or("").to_string();
        let staging = staged_pairs
            .iter()
            .any(|(a, b)| dep_label.starts_with(a) && task_label.starts_with(b));
        if !staging {
            continue;
        }
        assert!(graph.remove_dep(task, dep), "{dep_label} -> {task_label}");
        let report = ratel_repro::core::verify::verify(&graph, &Limits::none());
        assert!(
            !report.is_clean(),
            "dropping `{dep_label}` -> `{task_label}` went unnoticed"
        );
        mutations_caught += 1;
        // Restore the edge and confirm the plan is whole again.
        graph.add_dep(task, dep);
        let healed = ratel_repro::core::verify::verify(&graph, &Limits::none());
        assert!(healed.is_clean(), "{}", healed.render());
    }
    assert!(
        mutations_caught >= 2 * model.layers + 4,
        "only {mutations_caught} staging edges found"
    );

    // Seeded random sweep over the remaining edges: a mutation may be
    // masked by a transitive path, but the verifier must never accept a
    // graph and then fail on the healed one — and a healthy share of all
    // edges must be load-bearing.
    let mut lcg = 0x5eed_cafe_u64;
    let mut caught = 0usize;
    let mut tried = 0usize;
    for _ in 0..32 {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let (dep, task) = edges[(lcg >> 33) as usize % edges.len()];
        if !graph.remove_dep(task, dep) {
            continue; // already dropped by an earlier duplicate pick
        }
        tried += 1;
        if !ratel_repro::core::verify::verify(&graph, &Limits::none()).is_clean() {
            caught += 1;
        }
        graph.add_dep(task, dep);
    }
    assert!(tried > 0);
    assert!(
        caught * 2 >= tried,
        "verifier caught only {caught}/{tried} random edge drops"
    );
}
