//! Property-based corruption tests of the crash-safe checkpoint format:
//! truncate or bit-flip *any* byte of *any* file in a two-generation
//! checkpoint directory and loading must either fall back to the other
//! intact generation or report corruption — never hand back a silently
//! wrong model. FNV-1a's per-byte mix `(h ^ b) * prime` is injective in
//! the byte, so any single-byte change is guaranteed to shift a blob or
//! manifest checksum, making every verdict below deterministic.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

use ratel_repro::core::engine::scaler::ScalePolicy;
use ratel_repro::core::RatelError;
use ratel_repro::prelude::*;

fn tiny_config() -> GptConfig {
    GptConfig {
        vocab: 64,
        seq: 16,
        hidden: 32,
        heads: 4,
        layers: 3,
        batch: 2,
    }
}

fn engine_config(model: GptConfig) -> EngineConfig {
    EngineConfig {
        model,
        seed: 23,
        adam: AdamParams::default(),
        act_decisions: vec![ActDecision::Recompute; model.layers],
        gpu_capacity: None,
        host_capacity: None,
        execution: ExecutionOptions::default(),
        loss_scale: ScalePolicy::None,
        grad_clip: None,
        lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
        dropout: None,
        frozen_layers: Vec::new(),
    }
}

/// A two-generation checkpoint built once and cloned per proptest case:
/// the directory, its sorted file listing, and per-generation snapshots
/// of every layer's master parameters.
struct Fixture {
    dir: PathBuf,
    files: Vec<String>,
    gen1_masters: Vec<Vec<f32>>,
    gen2_masters: Vec<Vec<f32>>,
}

fn masters_of(engine: &RatelEngine, layers: usize) -> Vec<Vec<f32>> {
    (0..layers + 2)
        .map(|l| engine.master_params(l).unwrap())
        .collect()
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let model = tiny_config();
        let dir = std::env::temp_dir().join(format!("ratel-atomicity-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut engine = RatelEngine::new(engine_config(model)).unwrap();
        let (tokens, targets) = learnable_batch(&model, 0);
        engine.train_step(&tokens, &targets).unwrap();
        engine.save_checkpoint(&dir).unwrap();
        let gen1_masters = masters_of(&engine, model.layers);
        let (tokens, targets) = learnable_batch(&model, 1);
        engine.train_step(&tokens, &targets).unwrap();
        engine.save_checkpoint(&dir).unwrap();
        let gen2_masters = masters_of(&engine, model.layers);
        let mut files: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        files.sort();
        assert!(
            files.iter().any(|f| f.starts_with("g1-"))
                && files.iter().any(|f| f.starts_with("g2-"))
                && files.contains(&"manifest-g1.txt".to_string())
                && files.contains(&"manifest-g2.txt".to_string()),
            "unexpected checkpoint layout: {files:?}"
        );
        Fixture {
            dir,
            files,
            gen1_masters,
            gen2_masters,
        }
    })
}

/// Copies the pristine fixture into a fresh per-case directory.
fn clone_fixture(tag: usize) -> PathBuf {
    let fx = fixture();
    let dir =
        std::env::temp_dir().join(format!("ratel-atomicity-case-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for f in &fx.files {
        std::fs::copy(fx.dir.join(f), dir.join(f)).unwrap();
    }
    dir
}

fn corrupt(path: &Path, truncate: bool, pos: usize) {
    let bytes = std::fs::read(path).unwrap();
    assert!(!bytes.is_empty(), "checkpoint files are never empty");
    let mutated = if truncate {
        bytes[..bytes.len() / 2].to_vec()
    } else {
        let mut b = bytes;
        let i = pos % b.len();
        b[i] ^= 1 << (pos % 8);
        b
    };
    std::fs::write(path, mutated).unwrap();
}

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Corrupting any single file of the newest generation falls back to
    /// the previous one; corrupting an old-generation file leaves the
    /// newest loading cleanly. Either way the loaded model is bitwise
    /// one of the two committed snapshots — never a blend and never
    /// garbage.
    #[test]
    fn any_single_file_corruption_is_detected(
        file_sel in 0usize..10_000,
        truncate in any::<bool>(),
        pos in 0usize..100_000,
    ) {
        let fx = fixture();
        let model = tiny_config();
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = clone_fixture(case);
        let victim = &fx.files[file_sel % fx.files.len()];
        corrupt(&dir.join(victim), truncate, pos);

        let mut engine = RatelEngine::new(engine_config(model)).unwrap();
        engine.load_checkpoint(&dir).expect("one generation is intact");
        let loaded = masters_of(&engine, model.layers);
        let expected = if victim.contains("g2") {
            &fx.gen1_masters // newest generation torn: previous one loads
        } else {
            &fx.gen2_masters // old generation torn: newest still loads
        };
        prop_assert!(&loaded == expected, "corrupted {} -> wrong snapshot", victim);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// With every generation corrupted, loading reports checkpoint
    /// corruption instead of handing back a wrong model.
    #[test]
    fn corrupting_every_generation_is_a_typed_error(
        truncate in any::<bool>(),
        pos in 0usize..100_000,
    ) {
        let model = tiny_config();
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = clone_fixture(case);
        for manifest in ["manifest-g1.txt", "manifest-g2.txt"] {
            corrupt(&dir.join(manifest), truncate, pos);
        }
        let mut engine = RatelEngine::new(engine_config(model)).unwrap();
        let before = masters_of(&engine, model.layers);
        let err = engine.load_checkpoint(&dir).expect_err("no generation intact");
        prop_assert!(
            matches!(err, RatelError::CheckpointCorrupt(_)),
            "expected CheckpointCorrupt, got: {}", err
        );
        // The failed load did not scribble on the engine.
        prop_assert_eq!(masters_of(&engine, model.layers), before);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
