//! Fine-tune on real text, out of core: a character-level GPT memorizes
//! a small corpus through the full Ratel pipeline (profiling, planned
//! activation swapping, active gradient offloading, dynamic loss scaling)
//! and then *generates* a continuation from a prompt — all while every
//! master weight lives as a file in the SSD tier.
//!
//! Run with: `cargo run --release --example char_finetune`

use ratel_repro::core::api::Ratel;
use ratel_repro::core::engine::data::{corpus_batches, CharVocab};
use ratel_repro::core::engine::scaler::ScalePolicy;
use ratel_repro::prelude::*;

// A small training corpus (original text, heavy on repetition so a tiny
// model can learn its patterns quickly).
const CORPUS: &str =
    "the ratel moves the tensors to the ssd and hides the optimizer behind the backward pass. \
the ratel moves the tensors to the ssd and hides the optimizer behind the backward pass. \
the ratel moves the tensors to the ssd and hides the optimizer behind the backward pass. \
the ratel moves the tensors to the ssd and hides the optimizer behind the backward pass. \
the ratel moves the tensors to the ssd and hides the optimizer behind the backward pass. \
the ratel moves the tensors to the ssd and hides the optimizer behind the backward pass. ";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocab = CharVocab::from_corpus(CORPUS);
    let model = GptConfig {
        vocab: vocab.len(),
        seq: 48,
        hidden: 96,
        heads: 4,
        layers: 4,
        batch: 8,
    };
    println!(
        "corpus: {} chars, {} distinct | model: {} blocks, hidden {}",
        CORPUS.len(),
        vocab.len(),
        model.layers,
        model.hidden
    );

    let mut trainer = Ratel::init(model)
        .seed(5)
        .learning_rate(3e-3)
        .loss_scale(ScalePolicy::dynamic_default())
        .build()?;
    println!("planned decisions: {:?}\n", trainer.decisions());

    let batches = corpus_batches(CORPUS, &vocab, &model, 6);
    for epoch in 0..40 {
        let mean = trainer.train_epochs(&batches, 1)?;
        if epoch % 10 == 0 || epoch == 39 {
            println!("epoch {epoch:>2}: mean loss {mean:.3}");
        }
    }

    // A prompt longer than one context window, so generation starts with
    // a fully populated window (no padding the model never trained on).
    let prompt_text = "backward pass. the ratel moves the tensors to the ";
    let prompt = vocab.encode(prompt_text);
    let generated = trainer.generate(&prompt, 40)?;
    println!("\nprompt:    {prompt_text:?}");
    println!("generated: {:?}", vocab.decode(&generated));
    Ok(())
}
