//! The paper's headline scenario: fine-tune a 175B model on one consumer
//! GPU with 256 GB of main memory.
//!
//! This example checks feasibility under every system's memory model,
//! runs Ratel's profiling + planner + schedule through the simulator,
//! and prints the per-stage breakdown — the Fig. 1c view of the flagship
//! configuration.
//!
//! Run with: `cargo run --release --example finetune_175b`

use ratel_repro::prelude::*;

fn main() {
    // RTX 4090 (24 GB), 256 GB DDR4, 12 NVMe SSDs — "reachable by most
    // researchers" (§V-B).
    let server = ServerConfig::consumer_256g();
    let model = zoo::llm("175B");
    let batch = 8;

    println!(
        "server: {} | {} GiB main memory | {} SSDs",
        server.gpu.name,
        server.main_memory_bytes >> 30,
        server.ssds.count
    );
    println!(
        "model:  {} ({:.1}B parameters)\n",
        model.name,
        model.size_billions()
    );

    // Who can even train this?
    for sys in System::ALL {
        let ok = sys.feasible(&server, &model, 1);
        println!(
            "  {:<14} {}",
            sys.name(),
            if ok {
                "feasible"
            } else {
                "cannot train 175B here"
            }
        );
    }

    // Ratel's pipeline: profile -> plan -> schedule -> simulate.
    let profile = ModelProfile::new(&model, batch);
    let hw = HardwareProfile::measure(&server, &profile, batch);
    let planner = ActivationPlanner::new(&hw, &profile);
    let plan = planner.plan();
    println!(
        "\nplanner: swap {:.0} GB of activations ({:.0}% of A_all), {:.0} GB on SSD (alpha {:.2}), \
         recompute {:.0} TFLOP ({:?})",
        plan.a_g2m / 1e9,
        100.0 * plan.a_g2m / profile.total_act_bytes(),
        plan.spill_bytes / 1e9,
        plan.alpha(),
        plan.flop_r / 1e12,
        plan.case,
    );

    let report = RatelSchedule {
        profile: &hw,
        model: &profile,
        plan: &plan,
        mode: GradOffloadMode::OptimizedActive,
        gpus: 1,
    }
    .simulate();
    println!(
        "\niteration: {:.1} s  ({:.0} tokens/s, {:.0} TFLOPS, GPU busy {:.0}%)",
        report.iteration_seconds,
        report.throughput_items_per_sec,
        report.tflops,
        report.gpu_busy_fraction * 100.0
    );
    println!(
        "stages:   forward {:.1} s | backward (optimizer hidden inside) {:.1} s",
        report.stage_seconds[0], report.stage_seconds[1]
    );

    // What the ablations cost at this scale (Fig. 7b).
    for mode in GradOffloadMode::ALL {
        let r = RatelSchedule {
            profile: &hw,
            model: &profile,
            plan: &plan,
            mode,
            gpus: 1,
        }
        .simulate();
        println!(
            "  {:<16} {:>6.0} tokens/s",
            mode.name(),
            r.throughput_items_per_sec
        );
    }
}
