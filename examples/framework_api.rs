//! The §IV-E / Fig. 4 story: Ratel as a drop-in training interface.
//!
//! The paper contrasts a vanilla PyTorch loop with Ratel's wrappers
//! (`Ratel_init`, `Ratel_hook`, `Ratel_Optimizer`) — same loop, a few
//! changed lines, and the optimizer.step() call *disappears* because
//! updates happen during backward. This example is that figure, live:
//! the profiling stage measures the substrate, Algorithm 1 plans the
//! activations, and training runs out of core behind a plain loop.
//!
//! Run with: `cargo run --release --example framework_api`

use ratel_repro::core::api::Ratel;
use ratel_repro::core::engine::scaler::ScalePolicy;
use ratel_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = GptConfig {
        vocab: 256,
        seq: 32,
        hidden: 64,
        heads: 4,
        layers: 6,
        batch: 4,
    };

    // --- Ratel_init(): profile, plan, wire ---------------------------
    let mut trainer = Ratel::init(model)
        .seed(11)
        .learning_rate(2e-3)
        .loss_scale(ScalePolicy::dynamic_default())
        .grad_clip(1.0)
        .gpu_capacity(16 << 20) // a 16 MiB "GPU"
        .build()?;

    if let Some(m) = trainer.measured() {
        println!(
            "profiling stage: {:.1} MFLOP/s compute, links G2M {:.0} / M2G {:.0} / H2S {:.0} / S2H {:.0} MB/s",
            m.flops_per_sec / 1e6,
            m.g2m_bytes_per_sec / 1e6,
            m.m2g_bytes_per_sec / 1e6,
            m.h2s_bytes_per_sec / 1e6,
            m.s2h_bytes_per_sec / 1e6,
        );
    }
    println!("planned activation decisions: {:?}\n", trainer.decisions());

    // --- the training loop (note: no optimizer.step()) ---------------
    let batches: Vec<_> = (0..8).map(|s| learnable_batch(&model, s)).collect();
    for epoch in 0..6 {
        let mean = trainer.train_epochs(&batches, 1)?;
        println!("epoch {epoch}: mean loss {mean:.4}");
    }

    // Held-out evaluation and a checkpoint, like any grown-up framework.
    let (t, y) = learnable_batch(&model, 999);
    println!(
        "\nheld-out loss: {:.4}",
        trainer.eval(Batch::new(&model, &t, &y)?)?
    );

    // Generate a continuation through the tiered engine: the synthetic
    // language follows t' = (5t + 3) mod V, so a trained model should
    // keep the walk going.
    let mut prompt = vec![7usize];
    for _ in 0..7 {
        prompt.push((5 * prompt.last().unwrap() + 3) % model.vocab);
    }
    let generated = trainer.generate(&prompt, 6)?;
    println!(
        "prompt tail {:?} -> generated {:?}",
        &prompt[4..],
        generated
    );
    let dir = std::env::temp_dir().join("ratel-framework-api-ckpt");
    trainer.save_checkpoint(&dir)?;
    println!("checkpoint saved to {}", dir.display());
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
