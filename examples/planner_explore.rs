//! Explore the holistic activation planner (§IV-D): walk the convex
//! iteration-time curve, show the offloading-benefit ordering, and watch
//! Algorithm 1 land on each batch size's case (the Fig. 9b experiment,
//! interactively).
//!
//! Run with: `cargo run --release --example planner_explore`

use ratel_repro::prelude::*;

fn main() {
    let server = ServerConfig::paper_default();
    let model_cfg = zoo::llm("13B");

    for batch in [24usize, 36, 48, 60] {
        let profile = ModelProfile::new(&model_cfg, batch);
        let hw = HardwareProfile::measure(&server, &profile, batch);
        let planner = ActivationPlanner::new(&hw, &profile);

        println!("== 13B @ batch {batch} ==");
        println!(
            "  A_all = {:.0} GB, A_interBlock = {:.0} GB, MEM_avail = {:.0} GB",
            profile.total_act_bytes() / 1e9,
            profile.inter_act_bytes() / 1e9,
            hw.mem_avail / 1e9
        );

        // Sample the convex curve along the benefit order.
        let mut a = profile.inter_act_bytes();
        let mut flop_r = planner.full_recompute_flops();
        print!("  T_iter(A_G2M):");
        let units = profile.units_by_benefit();
        let stride = (units.len() / 6).max(1);
        print!(
            " [{:>4.0} GB -> {:>5.1} s]",
            a / 1e9,
            planner.iter_time(a, flop_r).total()
        );
        for (i, u) in units.iter().enumerate() {
            a += u.bytes;
            flop_r -= u.recompute_flops;
            if (i + 1) % stride == 0 || i + 1 == units.len() {
                print!(
                    " [{:>4.0} GB -> {:>5.1} s]",
                    a / 1e9,
                    planner.iter_time(a, flop_r).total()
                );
            }
        }
        println!();

        let plan = planner.plan();
        println!(
            "  Algorithm 1: swap {:.0} GB ({} units), alpha = {:.2}, predicted T_iter = {:.1} s, case {:?}",
            plan.a_g2m / 1e9,
            plan.swapped.len(),
            plan.alpha(),
            plan.predicted.total(),
            plan.case
        );

        // Check the prediction against the discrete-event simulator.
        let measured = RatelSchedule {
            profile: &hw,
            model: &profile,
            plan: &plan,
            mode: GradOffloadMode::OptimizedActive,
            gpus: 1,
        }
        .simulate();
        println!(
            "  simulator:  measured T_iter = {:.1} s ({:.0} tokens/s)\n",
            measured.iteration_seconds, measured.throughput_items_per_sec
        );
    }

    // The benefit ordering itself (Eq. 6): MLP halves first, attention
    // halves second, the embedding output last.
    let profile = ModelProfile::new(&model_cfg, 32);
    let units = profile.units_by_benefit();
    println!(
        "offloading-benefit ordering (first 3 and last 3 of {} units):",
        units.len()
    );
    for u in units.iter().take(3).chain(units.iter().rev().take(3).rev()) {
        println!(
            "  layer {:>3} {:?}: {:.0} FLOP/byte",
            u.layer,
            u.kind,
            u.offloading_benefit()
        );
    }
}
