//! Beyond language models: fine-tune DiT diffusion backbones (§V-H).
//!
//! Compares Fast-DiT (everything in GPU memory) with Ratel (holistic
//! offloading) across the Table VI ladder, reproducing Fig. 12's two
//! findings: Ratel trains far larger diffusion models, and wins on
//! throughput as soon as Fast-DiT's batch collapses.
//!
//! Run with: `cargo run --release --example diffusion_dit`

use ratel_repro::baselines::fastdit;
use ratel_repro::prelude::*;

fn main() {
    let server = ServerConfig::paper_default();
    let batches = [1usize, 2, 4, 8, 16, 32, 64];

    println!("512x512 inputs (1024 patches/image), RTX 4090, 12 SSDs\n");
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>14}",
        "model", "Fast-DiT b", "Fast-DiT im/s", "Ratel b", "Ratel im/s"
    );
    for model in zoo::dit_ladder() {
        let fast = fastdit::best_images_per_sec(&server.gpu, &model, &batches);
        let ratel = System::Ratel.best_over_batches(&server, &model, &batches);
        let (fb, fv) = fast
            .map(|(b, v)| (b.to_string(), format!("{v:.1}")))
            .unwrap_or_else(|| ("-".into(), "OOM".into()));
        let (rb, rv) = ratel
            .map(|(b, r)| (b.to_string(), format!("{:.1}", r.throughput_items_per_sec)))
            .unwrap_or_else(|| ("-".into(), "OOM".into()));
        println!("{:<10} {fb:>12} {fv:>14} {rb:>12} {rv:>14}", model.name);
    }

    // Where does Ratel's advantage come from? Show the planner's decision
    // for the largest DiT both approaches can discuss.
    let model = zoo::dit_ladder()
        .into_iter()
        .find(|m| m.name == "DiT-10B")
        .unwrap();
    let batch = System::Ratel
        .max_batch(&server, &model, &batches)
        .expect("Ratel trains DiT-10B");
    let profile = ModelProfile::new(&model, batch);
    let hw = HardwareProfile::measure(&server, &profile, batch);
    let plan = ActivationPlanner::new(&hw, &profile).plan();
    println!(
        "\nDiT-10B at batch {batch}: swap {:.0} GB of activations ({:?}), recompute {:.0} TFLOP",
        plan.a_g2m / 1e9,
        plan.case,
        plan.flop_r / 1e12
    );
}
