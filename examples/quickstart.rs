//! Quickstart: fine-tune a small GPT *out of core* with Ratel's engine.
//!
//! Model states (fp32 masters, Adam moments, fp16 copies) live as files
//! in the SSD tier; the "GPU" arena only ever holds one layer's working
//! set; activations are swapped or recomputed; and a concurrent CPU
//! optimizer consumes gradients the moment backward produces them —
//! while every number stays bit-identical to ordinary in-memory training.
//!
//! Run with: `cargo run --release --example quickstart`

use ratel_repro::core::engine::scaler::ScalePolicy;
use ratel_repro::prelude::*;
use ratel_storage::Route;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny 4-block GPT the engine can really train on a laptop.
    let model = GptConfig {
        vocab: 256,
        seq: 32,
        hidden: 64,
        heads: 4,
        layers: 4,
        batch: 4,
    };
    let config = EngineConfig {
        model,
        seed: 7,
        adam: AdamParams {
            lr: 3e-3,
            ..Default::default()
        },
        // Mix all three activation policies across the blocks, like a
        // planner would: swap the cheap-to-move ones, recompute the rest.
        act_decisions: vec![
            ActDecision::SwapToHost,
            ActDecision::SwapToSsd,
            ActDecision::Recompute,
            ActDecision::SwapToHost,
        ],
        gpu_capacity: Some(8 << 20), // an 8 MiB "GPU"
        host_capacity: None,
        execution: ExecutionOptions::default(),
        loss_scale: ScalePolicy::None,
        grad_clip: None,
        lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
        dropout: None,
        frozen_layers: Vec::new(),
    };

    // Plan-first: the same movement plan the engine will execute can be
    // inspected and statically verified before any tensor exists.
    let plan = Ratel::init(model)
        .seed(7)
        .activation_decisions(config.act_decisions.clone())
        .plan()?;
    plan.verify()?;
    println!("plan: {}", plan.summary());

    let mut engine = RatelEngine::new(config)?;
    // Telemetry is off by default (the disabled path is one atomic load);
    // turn it on to watch each step's spans and route metrics.
    engine.enable_telemetry();
    println!(
        "model: {} parameters across {} movable layers; {} bytes of model states on the SSD tier",
        engine.total_params(),
        engine.layer_count(),
        engine.ssd_state_bytes()
    );

    // Train on a learnable synthetic language; the loss should collapse.
    // `stats.traffic` is this step's per-route byte delta, and the
    // telemetry adds the §IV-C overlap ratio: how much of the optimizer's
    // work ran hidden under backward.
    let (tokens, targets) = learnable_batch(&model, 42);
    for step in 0..40 {
        let stats = engine.train_step(&tokens, &targets)?;
        if step % 5 == 0 || step == 39 {
            let overlap = engine
                .last_step_telemetry()
                .map(|t| t.optimizer_overlap_ratio())
                .unwrap_or(0.0);
            // Robustness counters ride along on every step; a healthy
            // run keeps them at zero, so only surface the exceptions.
            let faults = if stats.fault_stats.is_empty() {
                String::new()
            } else {
                format!(
                    ", faults: {} retries / {} give-ups / {} spills",
                    stats.fault_stats.retries,
                    stats.fault_stats.give_ups,
                    stats.fault_stats.host_spills,
                )
            };
            println!(
                "step {step:>3}: loss {:.4}  ({:.0} ms, {} MB moved: G2M {} / M2G {} / H2S {} / S2H {}, opt overlap {:.0}%{faults})",
                stats.loss,
                stats.wall_seconds * 1e3,
                stats.traffic.total() / 1_000_000,
                stats.traffic.bytes(Route::GpuToHost) / 1_000_000,
                stats.traffic.bytes(Route::HostToGpu) / 1_000_000,
                stats.traffic.bytes(Route::HostToSsd) / 1_000_000,
                stats.traffic.bytes(Route::SsdToHost) / 1_000_000,
                100.0 * overlap,
            );
        }
    }
    if let Some(t) = engine.last_step_telemetry() {
        let b = t.stage_breakdown();
        println!(
            "last step spans: fwd {:.1} ms, bwd {:.1} ms, optimizer {:.1} ms, transfers {:.1} ms",
            b.forward * 1e3,
            b.backward * 1e3,
            b.optimizer * 1e3,
            b.transfer * 1e3,
        );
    }
    // The executor reports which resource pool ran each task.
    if let Some(tasks) = engine.train_step(&tokens, &targets)?.tasks {
        println!(
            "executor: {} tasks, critical path {:.0} ms of {:.0} ms busy",
            tasks.tasks_total,
            tasks.critical_path_seconds * 1e3,
            tasks.busy_seconds_total() * 1e3,
        );
        for pool in &tasks.pools {
            println!(
                "  {:?}: {} tasks, {:.1} ms busy",
                pool.class,
                pool.tasks,
                pool.busy_seconds * 1e3
            );
        }
    }

    // Prove the "no staleness" claim: replay the same schedule in memory
    // and compare the final master weights bit for bit.
    let mut reference = ReferenceTrainer::new(
        model,
        7,
        AdamParams {
            lr: 3e-3,
            ..Default::default()
        },
    );
    let mut engine2 = RatelEngine::new(EngineConfig {
        model,
        seed: 7,
        adam: AdamParams {
            lr: 3e-3,
            ..Default::default()
        },
        act_decisions: vec![ActDecision::SwapToSsd; 4],
        gpu_capacity: None,
        host_capacity: None,
        execution: ExecutionOptions::default(),
        loss_scale: ScalePolicy::None,
        grad_clip: None,
        lr_schedule: ratel_repro::core::engine::lr::LrSchedule::Constant,
        dropout: None,
        frozen_layers: Vec::new(),
    })?;
    for _ in 0..3 {
        engine2.train_step(&tokens, &targets)?;
        reference.train_step(&tokens, &targets);
    }
    let identical = (0..engine2.layer_count())
        .all(|l| engine2.master_params(l).unwrap() == reference.master_params(l));
    println!("offloaded == in-memory training, bit for bit: {identical}");
    assert!(identical);
    Ok(())
}
