//! A downstream-user tool built on the reproduction: size the cheapest
//! commodity server for a fine-tuning job.
//!
//! Given a model and a target throughput, sweep GPU count, main-memory
//! capacity, and SSD count; keep configurations where Ratel's memory
//! model says the job fits and the simulator says the throughput target
//! is met; rank by Table VII component prices. This is Fig. 13's
//! cost-effectiveness analysis turned into a planning tool.
//!
//! Run with: `cargo run --release --example server_sizing`

use ratel_repro::hw::price::commodity_server_price;
use ratel_repro::hw::units::GIB;
use ratel_repro::prelude::*;

struct Candidate {
    label: String,
    tokens_per_sec: f64,
    price: f64,
}

fn size_for(model_name: &str, target_tokens_per_sec: f64) {
    let model = zoo::llm(model_name);
    let batches = [8usize, 16, 32, 64];
    let mut feasible: Vec<Candidate> = Vec::new();

    for gpus in [1usize, 2, 4] {
        for mem_gib in [128u64, 256, 512, 768] {
            for ssds in [2usize, 3, 6, 12] {
                let server = ServerConfig::paper_default()
                    .with_gpu_count(gpus)
                    .with_main_memory(mem_gib * GIB)
                    .with_ssd_count(ssds);
                let Some((batch, report)) =
                    System::Ratel.best_over_batches(&server, &model, &batches)
                else {
                    continue;
                };
                if report.throughput_items_per_sec < target_tokens_per_sec {
                    continue;
                }
                feasible.push(Candidate {
                    label: format!(
                        "{gpus}x4090, {mem_gib:>3} GiB RAM, {ssds:>2} SSDs (batch {batch}/GPU)"
                    ),
                    tokens_per_sec: report.throughput_items_per_sec,
                    price: commodity_server_price(&server),
                });
            }
        }
    }

    feasible.sort_by(|a, b| a.price.partial_cmp(&b.price).unwrap());
    println!(
        "== cheapest servers fine-tuning {model_name} at >= {target_tokens_per_sec:.0} tokens/s ==",
    );
    if feasible.is_empty() {
        println!("  no commodity configuration reaches the target\n");
        return;
    }
    for c in feasible.iter().take(5) {
        println!(
            "  ${:>6.0}  {}  -> {:>6.0} tokens/s  ({:.1} tok/s per k$)",
            c.price,
            c.label,
            c.tokens_per_sec,
            c.tokens_per_sec / (c.price / 1000.0)
        );
    }
    println!();
}

fn main() {
    size_for("13B", 1000.0);
    size_for("70B", 200.0);
    size_for("175B", 50.0);
}
