//! Offline shim for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! a minimal harness with criterion's surface API: `Criterion`,
//! `bench_function`, the `criterion_group!` / `criterion_main!` macros,
//! and `black_box`. It measures mean wall-clock time over `sample_size`
//! samples and prints one line per benchmark — enough to compare runs by
//! hand, with none of criterion's statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Runs one benchmark closure repeatedly.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    iters_per_sample: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            iters_per_sample: 1,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets a target measurement time; accepted for API compatibility
    /// (the shim's cost model is sample-count based).
    pub fn measurement_time(self, _t: Duration) -> Self {
        self
    }

    /// No-op for API compatibility with criterion's CLI parsing.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Measures `f` and prints `name: mean time per iteration`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut timed = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: self.iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            best = best.min(b.elapsed);
            total += b.elapsed;
            timed += b.iters;
        }
        if timed > 0 {
            let mean = total / timed.max(1) as u32;
            println!("{name}: mean {mean:?}/iter, best sample {best:?}");
        } else {
            println!("{name}: no iterations timed");
        }
        self
    }
}

/// Defines a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| black_box(21u64).pow(2)));
    }

    criterion_group! {
        name = group;
        config = Criterion::default().sample_size(3);
        targets = bench_square
    }

    #[test]
    fn group_runs() {
        group();
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default().sample_size(2);
        let mut calls = 0u64;
        c.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 2);
    }
}
