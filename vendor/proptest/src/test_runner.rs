//! Test configuration, case outcomes, and the deterministic RNG.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct Config {
    /// How many passing cases each property must produce.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the test errors out.
    pub max_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_rejects: 4096,
        }
    }
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Why one sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test panics with this message.
    Fail(String),
    /// `prop_assume!` filtered the case out; a fresh one is drawn.
    Reject(String),
}

/// Outcome of one sampled case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// SplitMix64 generator, seeded from the test's name so every run of a
/// given test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from `name` (FNV-1a hash).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty usize range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_is_in_range() {
        let mut rng = TestRng::deterministic("unit");
        for _ in 0..100 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
