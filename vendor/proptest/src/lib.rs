//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of proptest it uses: the `proptest!` macro, `prop_assert*` /
//! `prop_assume!` / `prop_oneof!`, range and tuple strategies,
//! `collection::vec`, `option::of`, `any`, and `Just`. Sampling is purely
//! random (deterministic per test name) — there is **no shrinking**; a
//! failing case prints its inputs instead so it can be turned into a
//! regression test by hand.

pub mod strategy;
pub mod test_runner;

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` samples.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` a quarter of the time, `Some(inner)`
    /// otherwise.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Lifts `inner` into an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        (rng.unit_f64() * 2e6 - 1e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.unit_f64() * 2e12 - 1e12
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Fails the current test case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                            stringify!($a),
                            stringify!($b),
                            __l,
                            __r
                        ),
                    ));
                }
            }
        }
    };
}

/// Discards the current test case (drawing a fresh one) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Union::arm($strat) ),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut __ran: u32 = 0;
            let mut __rejected: u32 = 0;
            while __ran < __config.cases {
                $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )*
                let mut __inputs = ::std::string::String::new();
                $(
                    __inputs.push_str(&::std::format!(
                        "\n    {} = {:?}",
                        stringify!($arg),
                        &$arg
                    ));
                )*
                let __result: $crate::test_runner::TestCaseResult =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match __result {
                    ::core::result::Result::Ok(()) => {
                        __ran += 1;
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(__why),
                    ) => {
                        __rejected += 1;
                        ::std::assert!(
                            __rejected <= __config.max_rejects,
                            "{}: too many prop_assume rejections (last: {})",
                            stringify!($name),
                            __why
                        );
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        ::std::panic!(
                            "{} failed after {} passing case(s): {}\n  inputs:{}",
                            stringify!($name),
                            __ran,
                            __msg,
                            __inputs
                        );
                    }
                }
            }
        }
    )*};
}
