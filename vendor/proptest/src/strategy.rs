//! The `Strategy` trait and the built-in strategies the workspace uses.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: `sample` draws one value
/// directly from the deterministic test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Strategy returning a clone of one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy applying a function to another strategy's output (from
/// [`Strategy::prop_map`]).
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among same-valued strategies (from [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Boxes one arm; a helper for [`prop_oneof!`]'s expansion.
    pub fn arm<S: Strategy<Value = V> + 'static>(strategy: S) -> BoxedStrategy<V> {
        Box::new(strategy)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.usize_in(0, self.arms.len());
        self.arms[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() as f32 * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_stay_in_bounds");
        for _ in 0..500 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-1.5f64..2.5).sample(&mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::deterministic("union_draws_every_arm");
        let u = Union::new(vec![
            Union::arm(Just(1u8)),
            Union::arm(Just(2u8)),
            Union::arm(Just(3u8)),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = TestRng::deterministic("map_and_tuples_compose");
        let s = (0u32..4, 10u32..14).prop_map(|(a, b)| a + b);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!((10..18).contains(&v));
        }
    }
}
