//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset it uses: `crossbeam::channel` with a single `Sender` type
//! for both bounded and unbounded channels, backed by `std::sync::mpsc`
//! (`bounded(0)` is a rendezvous channel, matching crossbeam semantics),
//! and `crossbeam::thread::scope` for borrowing scoped threads, backed by
//! `std::thread::scope`.

/// Multi-producer channels with a unified bounded/unbounded sender type.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Flavor<T> {
        fn clone(&self) -> Self {
            match self {
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Flavor<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        /// Fails only when all receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => tx.send(value),
                Flavor::Bounded(tx) => tx.send(value),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator over received values; ends when all senders
        /// are dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a channel holding at most `cap` in-flight values;
    /// `cap == 0` makes sends rendezvous with receives.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }
}

/// Scoped threads that may borrow from the caller's stack frame.
pub mod thread {
    use std::thread as sthread;

    /// A scope for spawning borrowing threads, mirroring
    /// `crossbeam::thread::Scope`. Spawn closures receive `&Scope` so
    /// they can spawn siblings, matching crossbeam's signature.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope sthread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: sthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope handle; all threads spawned in the scope are
    /// joined before this returns. Returns `Err` with the panic payload
    /// if any unjoined child panicked (crossbeam semantics; std's
    /// `thread::scope` would re-raise instead).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sthread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded};

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn bounded_blocks_at_capacity() {
        let (tx, rx) = bounded(2);
        let h = std::thread::spawn(move || {
            for i in 0..8 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.into_iter().collect();
        h.join().unwrap();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scope_borrows_and_joins() {
        let mut data = vec![0u32; 8];
        super::thread::scope(|s| {
            let (lo, hi) = data.split_at_mut(4);
            let h1 = s.spawn(move |_| {
                for v in lo {
                    *v = 1;
                }
            });
            let h2 = s.spawn(move |_| {
                for v in hi {
                    *v = 2;
                }
            });
            h1.join().unwrap();
            h2.join().unwrap();
        })
        .unwrap();
        assert_eq!(data, vec![1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn scope_reports_child_panic() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("child"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn scope_nested_spawn() {
        let hits = std::sync::atomic::AtomicU32::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                s2.spawn(|_| {
                    hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                })
                .join()
                .unwrap();
            })
            .join()
            .unwrap();
        })
        .unwrap();
        assert_eq!(hits.into_inner(), 2);
    }
}
