//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so this workspace vendors
//! what it uses: `rngs::StdRng` (seeded, deterministic), `SeedableRng`,
//! and the `Rng` extension trait with `gen` / `gen_range` / `gen_bool`.
//! The generator is xoshiro256++ seeded via SplitMix64 — statistically
//! solid for simulation/test workloads, not cryptographic.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed; the stream is fully
    /// determined by the seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from all their values (shim for
/// `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Element types uniformly samplable from a half-open range. Mirrors
/// rand's `SampleUniform` so `gen_range(0.0..1.0)` infers the literal
/// type from the requested output type.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)` (callers guarantee `lo < hi`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        let unit: f32 = Standard::sample(rng);
        let v = lo + unit * (hi - lo);
        // Guard against rounding up to the exclusive bound.
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        let unit: f64 = Standard::sample(rng);
        let v = lo + unit * (hi - lo);
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the (non-empty) range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_in(rng, self.start, self.end)
    }
}

/// User-facing sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn stream_is_not_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let first = rng.next_u64();
        assert!((0..64).any(|_| rng.next_u64() != first));
    }
}
