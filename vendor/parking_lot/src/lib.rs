//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! a minimal implementation of the API it actually uses: `Mutex` and
//! `RwLock` whose lock methods do not return poison `Result`s. Poisoned
//! std locks are recovered transparently, matching parking_lot's
//! no-poisoning semantics.

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutex whose `lock` never fails (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable usable with [`MutexGuard`], mirroring
/// parking_lot's `Condvar` (no poison `Result`s, no spurious-wakeup
/// `WaitTimeoutResult` plumbing for the plain `wait`).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases the guard's mutex and blocks until notified,
    /// re-acquiring the mutex before returning. Spurious wakeups are
    /// possible; callers must re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: the std guard is moved out for the duration of the wait
        // and a fresh guard for the same mutex is written back before the
        // `&mut` borrow ends, so the `MutexGuard` is never observed in a
        // moved-from state.
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let reacquired = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.0, reacquired);
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose lock methods never fail (no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap());
    }
}
