#![warn(missing_docs)]
//! The plan contract: the types a movement schedule is *made of*.
//!
//! One schedule representation flows through the whole stack — the
//! planner emits it, `ratel-sim` simulates it, `ratel-verify` proves it
//! safe, and the engine's resource-pool executor dispatches it. This
//! leaf crate holds the shared vocabulary so none of those layers has to
//! depend on another to talk about a task: task/resource identities, the
//! training [`Stage`] attribution, and the semantic [`TaskMeta`] layer
//! (which logical blob each task reads or writes and at which version,
//! which [`OpClass`] it performs, which memory-tier residency it opens
//! or closes).
//!
//! All metadata is optional at the graph level: tasks without it
//! simulate exactly as before and are simply invisible to the static
//! passes. For the executor, however, the contract is load-bearing — the
//! `ResourceClass` of a task's bound resource decides which worker pool
//! runs it.

/// Identifies a resource registered with a task graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub usize);

/// Identifies a task within a task graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// The training stage a task is attributed to, for breakdown reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Forward propagation.
    Forward,
    /// Backward propagation (includes recomputation).
    Backward,
    /// Optimizer execution (SSD state I/O + CPU Adam).
    Optimizer,
}

impl Stage {
    /// All stages in execution order.
    pub const ALL: [Stage; 3] = [Stage::Forward, Stage::Backward, Stage::Optimizer];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Forward => "forward",
            Stage::Backward => "backward",
            Stage::Optimizer => "optimizer",
        }
    }

    /// This stage's position in [`Stage::ALL`] — the index used by
    /// per-stage breakdown arrays.
    pub fn index(self) -> usize {
        match self {
            Stage::Forward => 0,
            Stage::Backward => 1,
            Stage::Optimizer => 2,
        }
    }
}

/// The kind of logical blob a task touches.
///
/// *Persistent* kinds ([`BlobKind::is_persistent`]) survive across
/// iterations in exactly one storage location, so writing version `v+1`
/// physically overwrites what readers of version `v` depend on — the
/// verifier enforces write-after-read ordering for them. The remaining
/// kinds are transient, double-buffered staging or per-iteration data,
/// where only read-after-write (producer dominates consumer) applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlobKind {
    /// The fp16 parameter copy wherever it persists between iterations
    /// (SSD for Ratel/ZeRO-Infinity, host for ZeRO-Offload, GPU for
    /// FlashNeuron/Megatron). Persistent.
    Param16,
    /// P32 master weights + OS32 optimizer moments. Persistent.
    Master,
    /// A layer's fp16 gradient as it moves GPU → host (→ SSD).
    Grad,
    /// The CPU-reduced multi-GPU gradient.
    GradReduced,
    /// A layer's saved activations along the offload/reload chain
    /// (GPU produce → host offload → SSD spill → reload).
    Act,
    /// Forward hidden state at a layer boundary (per GPU).
    Flow,
    /// Backward hidden-state gradient at a layer boundary (per GPU).
    FlowGrad,
    /// Host staging buffer for a parameter fetch (SSD → host hop).
    Stage,
    /// The GPU-resident copy of a layer's fetched fp16 parameters.
    ParamGpu,
    /// Staging/working buffers of an optimizer handler.
    StageOpt,
}

impl BlobKind {
    /// Whether versions of this blob share one physical location (see the
    /// type-level docs): write-after-read hazards are checked only for
    /// persistent kinds.
    pub fn is_persistent(self) -> bool {
        matches!(self, BlobKind::Param16 | BlobKind::Master)
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            BlobKind::Param16 => "p16",
            BlobKind::Master => "master",
            BlobKind::Grad => "grad",
            BlobKind::GradReduced => "grad-reduced",
            BlobKind::Act => "act",
            BlobKind::Flow => "flow",
            BlobKind::FlowGrad => "flow-grad",
            BlobKind::Stage => "stage",
            BlobKind::ParamGpu => "param-gpu",
            BlobKind::StageOpt => "stage-opt",
        }
    }
}

/// Identifies one logical blob: a kind, its owning layer, and (for
/// per-GPU data) the GPU replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlobKey {
    /// What the blob is.
    pub kind: BlobKind,
    /// Owning layer (or layer boundary for [`BlobKind::Flow`]).
    pub layer: usize,
    /// GPU replica for per-GPU blobs; `None` for shared blobs.
    pub gpu: Option<usize>,
}

impl BlobKey {
    /// A shared (not per-GPU) blob.
    pub fn shared(kind: BlobKind, layer: usize) -> Self {
        BlobKey {
            kind,
            layer,
            gpu: None,
        }
    }

    /// A per-GPU blob.
    pub fn on_gpu(kind: BlobKind, layer: usize, gpu: usize) -> Self {
        BlobKey {
            kind,
            layer,
            gpu: Some(gpu),
        }
    }
}

impl std::fmt::Display for BlobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.gpu {
            Some(g) => write!(f, "{}[L{} g{}]", self.kind.name(), self.layer, g),
            None => write!(f, "{}[L{}]", self.kind.name(), self.layer),
        }
    }
}

/// A blob at a specific version. Version 0 is the initial, pre-schedule
/// state (legal to read without a recorded producer); each write bumps
/// the version by one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VersionedBlob {
    /// Which blob.
    pub key: BlobKey,
    /// Which version of it.
    pub version: u64,
}

impl std::fmt::Display for VersionedBlob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@v{}", self.key, self.version)
    }
}

/// The class of operation a task performs, matched against the
/// [`ResourceClass`] of the resource it is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// A GPU kernel.
    GpuCompute,
    /// CPU work (Adam updates, gradient reduction).
    CpuCompute,
    /// GPU → host PCIe transfer.
    TransferG2M,
    /// Host → GPU PCIe transfer.
    TransferM2G,
    /// A read served by the SSD array.
    SsdRead,
    /// A write served by the SSD array.
    SsdWrite,
    /// Framework hook / synchronization stall (occupies no data path).
    Hook,
}

impl OpClass {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::GpuCompute => "gpu-compute",
            OpClass::CpuCompute => "cpu-compute",
            OpClass::TransferG2M => "xfer-g2m",
            OpClass::TransferM2G => "xfer-m2g",
            OpClass::SsdRead => "ssd-read",
            OpClass::SsdWrite => "ssd-write",
            OpClass::Hook => "hook",
        }
    }
}

/// The class of a registered resource, declared by the schedule builder
/// so the verifier can check task-to-resource legality — and so the
/// executor knows which worker pool serves the task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceClass {
    /// A GPU's execution units.
    GpuCompute,
    /// The host CPU.
    CpuCompute,
    /// One GPU's G2M PCIe direction (the duplex link's down lane).
    PcieG2M,
    /// One GPU's M2G PCIe direction (the duplex link's up lane).
    PcieM2G,
    /// The *simplex* SSD array: one FIFO shared by reads and writes.
    SsdArray,
    /// Bookkeeping resource for hook/stall time (no hardware behind it).
    Overhead,
}

impl ResourceClass {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ResourceClass::GpuCompute => "gpu",
            ResourceClass::CpuCompute => "cpu",
            ResourceClass::PcieG2M => "pcie-g2m",
            ResourceClass::PcieM2G => "pcie-m2g",
            ResourceClass::SsdArray => "ssd",
            ResourceClass::Overhead => "overhead",
        }
    }
}

/// A memory tier for residency-interval accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemTier {
    /// GPU device memory.
    Gpu,
    /// Host main memory.
    Host,
    /// The SSD array.
    Ssd,
}

impl MemTier {
    /// All tiers, in capacity order.
    pub const ALL: [MemTier; 3] = [MemTier::Gpu, MemTier::Host, MemTier::Ssd];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            MemTier::Gpu => "gpu",
            MemTier::Host => "host",
            MemTier::Ssd => "ssd",
        }
    }
}

/// A residency allocation: `bytes` of `blob` occupy `tier` from the
/// completion of the allocating task until the completion of the task
/// that records the matching [`TaskMeta::frees`] entry (or forever).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidencyAlloc {
    /// Which tier holds the bytes.
    pub tier: MemTier,
    /// Which blob they belong to (used to match the release).
    pub blob: BlobKey,
    /// How many bytes.
    pub bytes: f64,
}

/// Semantic metadata attached to one task. Everything defaults to empty;
/// a default `TaskMeta` with just an op class and iteration is already
/// useful to the legality pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskMeta {
    /// Operation class, checked against the bound resource's class.
    pub op: OpClass,
    /// 0-based training iteration the task belongs to.
    pub iteration: usize,
    /// Versioned blobs this task consumes.
    pub reads: Vec<VersionedBlob>,
    /// Versioned blobs this task produces.
    pub writes: Vec<VersionedBlob>,
    /// Residency intervals opened by this task.
    pub allocs: Vec<ResidencyAlloc>,
    /// Residency intervals (identified by tier + blob) closed by this
    /// task's completion.
    pub frees: Vec<(MemTier, BlobKey)>,
}

impl TaskMeta {
    /// Metadata with an op class and iteration, nothing else.
    pub fn new(op: OpClass, iteration: usize) -> Self {
        TaskMeta {
            op,
            iteration,
            reads: Vec::new(),
            writes: Vec::new(),
            allocs: Vec::new(),
            frees: Vec::new(),
        }
    }

    /// Adds a read.
    pub fn read(mut self, blob: VersionedBlob) -> Self {
        self.reads.push(blob);
        self
    }

    /// Adds a write.
    pub fn write(mut self, blob: VersionedBlob) -> Self {
        self.writes.push(blob);
        self
    }

    /// Opens a residency interval (skipped for zero/negative sizes).
    pub fn alloc(mut self, tier: MemTier, blob: BlobKey, bytes: f64) -> Self {
        if bytes > 0.0 {
            self.allocs.push(ResidencyAlloc { tier, blob, bytes });
        }
        self
    }

    /// Closes a residency interval.
    pub fn free(mut self, tier: MemTier, blob: BlobKey) -> Self {
        self.frees.push((tier, blob));
        self
    }
}

/// A dependency edge `from -> to` (`to` waits for `from`), as reported
/// by a task graph's edge iterator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// The prerequisite task.
    pub from: TaskId,
    /// The dependent task.
    pub to: TaskId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistent_kinds_are_exactly_params_and_master() {
        for kind in [
            BlobKind::Param16,
            BlobKind::Master,
            BlobKind::Grad,
            BlobKind::GradReduced,
            BlobKind::Act,
            BlobKind::Flow,
            BlobKind::FlowGrad,
            BlobKind::Stage,
            BlobKind::ParamGpu,
            BlobKind::StageOpt,
        ] {
            assert_eq!(
                kind.is_persistent(),
                matches!(kind, BlobKind::Param16 | BlobKind::Master),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn meta_builder_accumulates_and_skips_empty_allocs() {
        let blob = BlobKey::shared(BlobKind::Grad, 3);
        let meta = TaskMeta::new(OpClass::CpuCompute, 0)
            .read(VersionedBlob {
                key: blob,
                version: 1,
            })
            .alloc(MemTier::Host, blob, 0.0)
            .alloc(MemTier::Host, blob, 64.0)
            .free(MemTier::Host, blob);
        assert_eq!(meta.reads.len(), 1);
        assert_eq!(meta.allocs.len(), 1);
        assert_eq!(meta.frees.len(), 1);
    }

    #[test]
    fn display_formats_are_stable() {
        let shared = BlobKey::shared(BlobKind::Param16, 2);
        let per_gpu = BlobKey::on_gpu(BlobKind::Flow, 1, 0);
        assert_eq!(shared.to_string(), "p16[L2]");
        assert_eq!(per_gpu.to_string(), "flow[L1 g0]");
        let v = VersionedBlob {
            key: shared,
            version: 4,
        };
        assert_eq!(v.to_string(), "p16[L2]@v4");
    }
}
