//! Cost-effectiveness accounting (§V-I, Fig. 13).

use ratel_hw::price::{commodity_server_price, tokens_per_sec_per_kilodollar, DGX_A100_PRICE_USD};
use ratel_hw::ServerConfig;

/// One point of the Fig. 13 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CostPoint {
    /// Configuration label.
    pub label: String,
    /// Measured throughput, tokens/s.
    pub tokens_per_sec: f64,
    /// Server price in USD.
    pub price_usd: f64,
    /// Tokens/s per 1000 USD — the figure's y-axis.
    pub tokens_per_sec_per_kusd: f64,
}

impl CostPoint {
    /// A commodity-server point (price from Table VII component prices).
    pub fn commodity(label: &str, server: &ServerConfig, tokens_per_sec: f64) -> Self {
        let price = commodity_server_price(server);
        CostPoint {
            label: label.to_string(),
            tokens_per_sec,
            price_usd: price,
            tokens_per_sec_per_kusd: tokens_per_sec_per_kilodollar(tokens_per_sec, price),
        }
    }

    /// The DGX-A100 point (fixed list price).
    pub fn dgx_a100(label: &str, tokens_per_sec: f64) -> Self {
        CostPoint {
            label: label.to_string(),
            tokens_per_sec,
            price_usd: DGX_A100_PRICE_USD,
            tokens_per_sec_per_kusd: tokens_per_sec_per_kilodollar(
                tokens_per_sec,
                DGX_A100_PRICE_USD,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_point_uses_component_prices() {
        let server = ServerConfig::paper_default()
            .with_gpu_count(4)
            .with_ssd_count(6);
        let p = CostPoint::commodity("ratel", &server, 484.0);
        // 14098 + 4*1600 + 6*308 = 22346
        assert!((p.price_usd - 22_346.0).abs() < 1e-6);
        assert!((p.tokens_per_sec_per_kusd - 484.0 / 22.346).abs() < 1e-6);
    }

    #[test]
    fn dgx_point_uses_list_price() {
        let p = CostPoint::dgx_a100("megatron", 5000.0);
        assert_eq!(p.price_usd, 200_000.0);
        assert_eq!(p.tokens_per_sec_per_kusd, 25.0);
    }
}
