//! Builds per-layer training-iteration task graphs for the discrete-event
//! simulator.
//!
//! One generic builder serves Ratel *and* every baseline, because the
//! paper's systems differ only in placement and ordering decisions:
//! where parameters are fetched from, which activations are offloaded
//! where, whether gradients spill to SSD, where the optimizer runs, and
//! how its per-layer handlers are scheduled against backward propagation
//! (§IV-C's three modes). Each of those is a field of [`LayerTask`] /
//! [`IterationSpec`]; the builder emits the corresponding task DAG over
//! the server's five resource classes (GPU compute, PCIe G2M, PCIe M2G,
//! the simplex SSD array, CPU compute).

use ratel_model::{ModelKind, ModelProfile};
use ratel_sim::{
    simulate, BlobKey, BlobKind, MemTier, OpClass, ResourceClass, ResourceId, Stage, TaskGraph,
    TaskId, TaskMeta, VersionedBlob,
};

use crate::offload::GradOffloadMode;
use crate::planner::{SwapPlan, SwapTarget};
use crate::profile::HardwareProfile;
use crate::report::IterationReport;

/// Per-blob version counters for the builder's `ratel-verify`
/// annotations: a write bumps the counter, a read references the current
/// value. Version 0 is the pre-schedule initial state, so reading a blob
/// nobody has written yet is legal.
#[derive(Debug, Default)]
struct Annot {
    vers: std::collections::HashMap<BlobKey, u64>,
}

impl Annot {
    fn cur(&self, key: BlobKey) -> VersionedBlob {
        VersionedBlob {
            key,
            version: self.vers.get(&key).copied().unwrap_or(0),
        }
    }

    fn bump(&mut self, key: BlobKey) -> VersionedBlob {
        let v = self.vers.entry(key).or_insert(0);
        *v += 1;
        VersionedBlob { key, version: *v }
    }
}

/// Where a layer's fp16 parameters live between iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamSource {
    /// On the SSDs (Ratel, ZeRO-Infinity, G10): fetched SSD->host->GPU.
    Ssd,
    /// In main memory (ZeRO-Offload): fetched host->GPU.
    Host,
    /// Resident in GPU memory (FlashNeuron, Megatron): no fetch.
    Gpu,
}

/// How (and where) the optimizer for a layer executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Out-of-core CPU Adam: read master states from SSD, update on CPU,
    /// write states + fresh P16 back (the paper's handler).
    CpuOutOfCore {
        /// Bytes read from SSD (P32+OS32 = 12 bytes/param, plus spilled
        /// gradients for ZeRO-Infinity).
        read_bytes: f64,
        /// Bytes written to SSD (P32+OS32+P16 = 14 bytes/param).
        write_bytes: f64,
        /// Parameters updated (drives CPU time).
        cpu_params: f64,
    },
    /// CPU Adam over states resident in main memory (ZeRO-Offload): no
    /// SSD I/O, only CPU time.
    CpuInMemory {
        /// Parameters updated.
        cpu_params: f64,
    },
    /// In-GPU Adam over SSD-resident states (G10): massive transfers in
    /// both directions around a tiny GPU kernel (§III-C issue 1).
    GpuOverSsd {
        /// Bytes staged SSD->host->GPU (12 bytes/param).
        fetch_bytes: f64,
        /// Bytes staged GPU->host->SSD (14 bytes/param).
        writeback_bytes: f64,
        /// GPU FLOPs of the update kernel.
        gpu_flops: f64,
    },
    /// In-GPU Adam over GPU-resident states (FlashNeuron): just a kernel.
    GpuResident {
        /// GPU FLOPs of the update kernel.
        gpu_flops: f64,
    },
    /// The layer has no trainable parameters worth an update (tied head).
    None,
}

/// One schedulable layer of the iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTask {
    /// Display label.
    pub label: String,
    /// fp16 parameter bytes moved per fetch (2 bytes/param).
    pub p16_bytes: f64,
    /// Where the fp16 parameters are fetched from.
    pub param_source: ParamSource,
    /// Forward GPU FLOPs.
    pub fwd_flops: f64,
    /// Backward GPU FLOPs (2x forward + this layer's recomputation).
    pub bwd_flops: f64,
    /// Activation bytes offloaded GPU->host that stay in host memory.
    pub act_to_host_bytes: f64,
    /// Activation bytes offloaded GPU->host->SSD (read back in backward).
    pub act_to_ssd_bytes: f64,
    /// Whether backward re-fetches this layer's fp16 parameters (Eq. 5's
    /// extra 2P terms). The engine stages the head only once — its
    /// forward and backward are adjacent at the loss — so a spec matching
    /// the engine sets this `false` for the head layer.
    pub refetch_in_backward: bool,
    /// fp16 gradient bytes offloaded GPU->host (0 for in-GPU optimizers).
    pub grad_bytes: f64,
    /// Whether gradients additionally spill host->SSD (ZeRO-Infinity).
    pub grad_spill_to_ssd: bool,
    /// The optimizer handler for this layer.
    pub optimizer: OptimizerKind,
}

/// Resource rates of the simulated server (from the profiling stage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkRates {
    /// GPU compute, FLOP/s.
    pub thp_gpu: f64,
    /// GPU->host PCIe, bytes/s.
    pub bw_g2m: f64,
    /// Host->GPU PCIe, bytes/s.
    pub bw_m2g: f64,
    /// SSD array read, bytes/s.
    pub ssd_read: f64,
    /// SSD array write, bytes/s.
    pub ssd_write: f64,
    /// CPU Adam, parameters/s.
    pub cpu_params_per_sec: f64,
    /// Optimizer-state I/O efficiency (chunked reads/writes reach only a
    /// fraction of sequential SSD bandwidth).
    pub state_io_efficiency: f64,
}

impl LinkRates {
    /// Rates from a hardware profile.
    pub fn from_profile(p: &HardwareProfile) -> Self {
        LinkRates {
            thp_gpu: p.thp_gpu,
            bw_g2m: p.bw_gpu,
            bw_m2g: p.bw_gpu,
            ssd_read: p.bw_s2m,
            ssd_write: p.bw_m2s,
            cpu_params_per_sec: p.cpu_adam_params_per_sec,
            state_io_efficiency: p.state_io_efficiency,
        }
    }
}

/// A complete iteration to simulate.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationSpec {
    /// Layers in forward execution order.
    pub layers: Vec<LayerTask>,
    /// Gradient-offloading schedule (§IV-C).
    pub mode: GradOffloadMode,
    /// Server resource rates.
    pub rates: LinkRates,
    /// Number of data-parallel GPUs sharing the SSD array and CPU (§V-G).
    pub gpus: usize,
    /// Items (tokens or images) processed per iteration, all GPUs.
    pub items_per_iteration: f64,
    /// Fixed per-layer overhead added to each forward/backward compute
    /// task — framework hook/synchronization cost. 0 for Ratel; the
    /// DeepSpeed/Colossal baselines pay ~0.15 s per layer per stage,
    /// which is what stretches ZeRO-Infinity's 13B forward stage to ~14 s
    /// in Fig. 1a despite only ~6 s of kernel time.
    pub per_layer_overhead_seconds: f64,
}

/// Resource handles of a built iteration graph.
#[derive(Debug, Clone)]
pub struct ScheduleResources {
    /// GPU compute, one per GPU.
    pub gpu: Vec<ResourceId>,
    /// GPU->host PCIe, one per GPU.
    pub g2m: Vec<ResourceId>,
    /// Host->GPU PCIe, one per GPU.
    pub m2g: Vec<ResourceId>,
    /// The shared SSD array.
    pub ssd: ResourceId,
    /// The shared CPU.
    pub cpu: ResourceId,
}

impl IterationSpec {
    /// Per-route planned bytes of one iteration, indexed like
    /// `ratel_storage::Route::ALL` (GPU→host, host→GPU, host→SSD,
    /// SSD→host).
    ///
    /// Fp16 parameters stage SSD→host→GPU (one count on each hop, twice
    /// for refetched layers); activations round-trip GPU→host→GPU (plus
    /// the SSD spill when planned); gradients land GPU→host; out-of-core
    /// optimizer state I/O is SSD-only. This is the byte ledger both
    /// `ratel-bench validate` and the plan-conformance monitor hold the
    /// engine's measured traffic against — *exactly*, since plan and
    /// engine derive from the same blob inventory.
    pub fn planned_route_bytes(&self) -> [u64; 4] {
        let mut g2h = 0.0;
        let mut h2g = 0.0;
        let mut h2s = 0.0;
        let mut s2h = 0.0;
        for layer in &self.layers {
            let stages = if layer.refetch_in_backward { 2.0 } else { 1.0 };
            s2h += layer.p16_bytes * stages;
            h2g += layer.p16_bytes * stages;
            let act = layer.act_to_host_bytes + layer.act_to_ssd_bytes;
            g2h += act + layer.grad_bytes;
            h2g += act;
            h2s += layer.act_to_ssd_bytes;
            s2h += layer.act_to_ssd_bytes;
            if let OptimizerKind::CpuOutOfCore {
                read_bytes,
                write_bytes,
                ..
            } = layer.optimizer
            {
                s2h += read_bytes;
                h2s += write_bytes;
            }
        }
        [g2h as u64, h2g as u64, h2s as u64, s2h as u64]
    }

    /// Builds the task DAG for one iteration. Returns the graph, its
    /// resources, and the total GPU FLOPs scheduled (for TFLOPS
    /// reporting).
    pub fn build(&self) -> (TaskGraph, ScheduleResources, f64) {
        self.build_iterations(1)
    }

    /// Builds `iterations` back-to-back training iterations in one DAG,
    /// with the synchronous-update dependency between them: iteration
    /// k+1 may not fetch a layer's P16 until iteration k's optimizer
    /// handler has written it back. This exposes the steady-state
    /// pipelining (activation tails and prefetches of adjacent
    /// iterations overlap) while keeping the paper's no-staleness
    /// semantics.
    pub fn build_iterations(&self, iterations: usize) -> (TaskGraph, ScheduleResources, f64) {
        assert!(self.gpus >= 1, "need at least one GPU");
        assert!(iterations >= 1, "need at least one iteration");
        let r = &self.rates;
        let mut g = TaskGraph::new();
        let gpu: Vec<ResourceId> = (0..self.gpus)
            .map(|i| g.add_resource(format!("gpu{i}")))
            .collect();
        let g2m: Vec<ResourceId> = (0..self.gpus)
            .map(|i| g.add_resource(format!("pcie-g2m{i}")))
            .collect();
        let m2g: Vec<ResourceId> = (0..self.gpus)
            .map(|i| g.add_resource(format!("pcie-m2g{i}")))
            .collect();
        let ssd = g.add_resource("ssd");
        let cpu = g.add_resource("cpu");
        // Framework hook/staging stalls serialize with the compute chain
        // but do not occupy the GPU's execution units, so they live on
        // their own per-GPU resource and stay out of GPU-busy accounting.
        let stall: Vec<ResourceId> = (0..self.gpus)
            .map(|i| g.add_resource(format!("stall{i}")))
            .collect();
        for &res in &gpu {
            g.set_resource_class(res, ResourceClass::GpuCompute);
        }
        for &res in &g2m {
            g.set_resource_class(res, ResourceClass::PcieG2M);
        }
        for &res in &m2g {
            g.set_resource_class(res, ResourceClass::PcieM2G);
        }
        g.set_resource_class(ssd, ResourceClass::SsdArray);
        g.set_resource_class(cpu, ResourceClass::CpuCompute);
        for &res in &stall {
            g.set_resource_class(res, ResourceClass::Overhead);
        }
        // Blob/version annotations for the static analyzer.
        let mut an = Annot::default();

        let n = self.layers.len();
        let mut total_gpu_flops = 0.0;
        // Per-layer optimizer write-back of the previous iteration (the
        // cross-iteration synchronization point).
        let mut prev_updates: Vec<Option<TaskId>> = vec![None; n];

        for iter in 0..iterations {
            // Timeline labels: `fwd L12`, `opt-read L7`, … with an `iN `
            // prefix when the DAG spans several iterations and a ` gN`
            // suffix when it spans several GPUs.
            let pfx = if iterations > 1 {
                format!("i{iter} ")
            } else {
                String::new()
            };
            let gsfx = |gi: usize| {
                if self.gpus > 1 {
                    format!(" g{gi}")
                } else {
                    String::new()
                }
            };
            let mut this_updates: Vec<Option<TaskId>> = vec![None; n];
            // ----- Forward -----
            // fwd[gpu][layer]
            let mut fwd: Vec<Vec<TaskId>> = vec![Vec::with_capacity(n); self.gpus];
            // Activation offload tasks, for backward-fetch dependencies:
            // act_offloaded[gpu][layer] = G2M offload; act_spilled[layer] = SSD
            // write (one per layer per GPU, flattened in insertion order).
            let mut act_offloaded: Vec<Vec<Option<TaskId>>> = vec![vec![None; n]; self.gpus];
            let mut act_spilled: Vec<Vec<Option<TaskId>>> = vec![vec![None; n]; self.gpus];
            for (li, layer) in self.layers.iter().enumerate() {
                // Parameter fetch: one SSD read staged to host, then a per-GPU
                // host->GPU copy.
                let updated: Vec<TaskId> = prev_updates[li].into_iter().collect();
                let p16_key = BlobKey::shared(BlobKind::Param16, li);
                let stage_key = BlobKey::shared(BlobKind::Stage, li);
                let host_ready: Option<TaskId> = match layer.param_source {
                    ParamSource::Ssd if layer.p16_bytes > 0.0 => {
                        let t = g.add_task_labeled(
                            ssd,
                            layer.p16_bytes / r.ssd_read,
                            Stage::Forward,
                            &updated,
                            format!("{pfx}fwd-read L{li}"),
                        );
                        g.set_meta(
                            t,
                            TaskMeta::new(OpClass::SsdRead, iter)
                                .read(an.cur(p16_key))
                                .write(an.bump(stage_key)),
                        );
                        Some(t)
                    }
                    _ => None,
                };
                for gi in 0..self.gpus {
                    let fetch: Option<TaskId> = match layer.param_source {
                        ParamSource::Gpu => None,
                        ParamSource::Ssd | ParamSource::Host if layer.p16_bytes > 0.0 => {
                            let deps: Vec<TaskId> = host_ready
                                .into_iter()
                                .chain(updated.iter().copied())
                                .collect();
                            let t = g.add_task_labeled(
                                m2g[gi],
                                layer.p16_bytes / r.bw_m2g,
                                Stage::Forward,
                                &deps,
                                format!("{pfx}fwd-fetch L{li}{}", gsfx(gi)),
                            );
                            // SSD-sourced fetches copy from the staging
                            // buffer the shared read filled; host-sourced
                            // fetches read the persistent host copy.
                            let src = match layer.param_source {
                                ParamSource::Ssd => an.cur(stage_key),
                                _ => an.cur(p16_key),
                            };
                            g.set_meta(
                                t,
                                TaskMeta::new(OpClass::TransferM2G, iter)
                                    .read(src)
                                    .write(an.bump(BlobKey::on_gpu(BlobKind::ParamGpu, li, gi))),
                            );
                            Some(t)
                        }
                        _ => None,
                    };
                    let mut deps: Vec<TaskId> = fetch.into_iter().collect();
                    if fetch.is_none() {
                        // GPU-resident parameters: compute still waits for the
                        // previous iteration's in-place update.
                        deps.extend(updated.iter().copied());
                    }
                    if li > 0 {
                        deps.push(fwd[gi][li - 1]);
                    }
                    let deps = if self.per_layer_overhead_seconds > 0.0 {
                        let hook = g.add_task_labeled(
                            stall[gi],
                            self.per_layer_overhead_seconds,
                            Stage::Forward,
                            &deps,
                            format!("{pfx}fwd-hook L{li}{}", gsfx(gi)),
                        );
                        g.set_meta(hook, TaskMeta::new(OpClass::Hook, iter));
                        vec![hook]
                    } else {
                        deps
                    };
                    let f = g.add_task_labeled(
                        gpu[gi],
                        layer.fwd_flops / r.thp_gpu,
                        Stage::Forward,
                        &deps,
                        format!("{pfx}fwd L{li}{}", gsfx(gi)),
                    );
                    let act_bytes = layer.act_to_host_bytes + layer.act_to_ssd_bytes;
                    let act_key = BlobKey::on_gpu(BlobKind::Act, li, gi);
                    {
                        let mut meta = TaskMeta::new(OpClass::GpuCompute, iter);
                        match layer.param_source {
                            // GPU-resident parameters are read in place.
                            ParamSource::Gpu => meta = meta.read(an.cur(p16_key)),
                            _ if fetch.is_some() => {
                                meta =
                                    meta.read(an.cur(BlobKey::on_gpu(BlobKind::ParamGpu, li, gi)))
                            }
                            _ => {}
                        }
                        if li > 0 {
                            meta = meta.read(an.cur(BlobKey::on_gpu(BlobKind::Flow, li - 1, gi)));
                        }
                        meta = meta.write(an.bump(BlobKey::on_gpu(BlobKind::Flow, li, gi)));
                        if act_bytes > 0.0 {
                            meta = meta.write(an.bump(act_key));
                        }
                        g.set_meta(f, meta);
                    }
                    total_gpu_flops += layer.fwd_flops;
                    fwd[gi].push(f);

                    // Activation offload (host-resident + SSD-spilled share the
                    // same G2M hop; the spill continues to the SSDs).
                    if act_bytes > 0.0 {
                        let off = g.add_task_labeled(
                            g2m[gi],
                            act_bytes / r.bw_g2m,
                            Stage::Forward,
                            &[f],
                            format!("{pfx}act-off L{li}{}", gsfx(gi)),
                        );
                        g.set_meta(
                            off,
                            TaskMeta::new(OpClass::TransferG2M, iter)
                                .read(an.cur(act_key))
                                .write(an.bump(act_key))
                                .alloc(MemTier::Host, act_key, layer.act_to_host_bytes),
                        );
                        act_offloaded[gi][li] = Some(off);
                        if layer.act_to_ssd_bytes > 0.0 {
                            let spill = g.add_task_labeled(
                                ssd,
                                layer.act_to_ssd_bytes / r.ssd_write,
                                Stage::Forward,
                                &[off],
                                format!("{pfx}act-spill L{li}{}", gsfx(gi)),
                            );
                            g.set_meta(
                                spill,
                                TaskMeta::new(OpClass::SsdWrite, iter)
                                    .read(an.cur(act_key))
                                    .write(an.bump(act_key))
                                    .alloc(MemTier::Ssd, act_key, layer.act_to_ssd_bytes),
                            );
                            act_spilled[gi][li] = Some(spill);
                        }
                    }
                }
            }

            // ----- Backward (+ optimizer handlers) -----
            // Backward starts at the loss: it depends on the last forward task.
            let mut prev_bwd: Vec<Option<TaskId>> =
                (0..self.gpus).map(|gi| fwd[gi].last().copied()).collect();
            let mut last_grad_landed: Vec<TaskId> = Vec::new();
            // Handler chaining state for the §IV-C modes.
            let mut prev_handler_write: Option<TaskId> = None; // naive: full serialization
            let mut prev_handler_read: Option<TaskId> = None; // optimized: write after prev read
            let mut deferred: Vec<(usize, Vec<TaskId>)> = Vec::new(); // separate stage

            for li in (0..self.layers.len()).rev() {
                let layer = &self.layers[li];
                let mut grad_ready_all: Vec<TaskId> = Vec::new();
                // Refetch parameters for backward (Eq. 5's extra 2P terms):
                // like the forward fetch, one SSD read stages the layer to
                // host memory and every GPU copies from that staging buffer —
                // the SSD traffic must not scale with the GPU count. The
                // refetch reads what the *previous* iteration's handler wrote
                // back, so it also waits on that write (no staleness).
                let updated: Vec<TaskId> = prev_updates[li].into_iter().collect();
                let p16_key = BlobKey::shared(BlobKind::Param16, li);
                let stage_key = BlobKey::shared(BlobKind::Stage, li);
                let host_ready: Option<TaskId> = match layer.param_source {
                    ParamSource::Ssd if layer.p16_bytes > 0.0 && layer.refetch_in_backward => {
                        let t = g.add_task_labeled(
                            ssd,
                            layer.p16_bytes / r.ssd_read,
                            Stage::Backward,
                            &updated,
                            format!("{pfx}bwd-read L{li}"),
                        );
                        g.set_meta(
                            t,
                            TaskMeta::new(OpClass::SsdRead, iter)
                                .read(an.cur(p16_key))
                                .write(an.bump(stage_key)),
                        );
                        Some(t)
                    }
                    _ => None,
                };
                for gi in 0..self.gpus {
                    let fetch_p: Option<TaskId> = match layer.param_source {
                        ParamSource::Gpu => None,
                        _ if layer.p16_bytes > 0.0 && layer.refetch_in_backward => {
                            let deps: Vec<TaskId> = host_ready
                                .into_iter()
                                .chain(updated.iter().copied())
                                .collect();
                            let t = g.add_task_labeled(
                                m2g[gi],
                                layer.p16_bytes / r.bw_m2g,
                                Stage::Backward,
                                &deps,
                                format!("{pfx}bwd-fetch L{li}{}", gsfx(gi)),
                            );
                            let src = match layer.param_source {
                                ParamSource::Ssd => an.cur(stage_key),
                                _ => an.cur(p16_key),
                            };
                            g.set_meta(
                                t,
                                TaskMeta::new(OpClass::TransferM2G, iter)
                                    .read(src)
                                    .write(an.bump(BlobKey::on_gpu(BlobKind::ParamGpu, li, gi))),
                            );
                            Some(t)
                        }
                        _ => None,
                    };
                    // Fetch swapped activations back (SSD spill first).
                    let act_key = BlobKey::on_gpu(BlobKind::Act, li, gi);
                    let mut act_dep: Option<TaskId> = None;
                    let act_bytes = layer.act_to_host_bytes + layer.act_to_ssd_bytes;
                    if act_bytes > 0.0 {
                        let ssd_read: Option<TaskId> = if layer.act_to_ssd_bytes > 0.0 {
                            // The spill must have been written before it can be
                            // read back.
                            let deps: Vec<TaskId> = act_spilled[gi][li].into_iter().collect();
                            let t = g.add_task_labeled(
                                ssd,
                                layer.act_to_ssd_bytes / r.ssd_read,
                                Stage::Backward,
                                &deps,
                                format!("{pfx}act-load L{li}{}", gsfx(gi)),
                            );
                            g.set_meta(
                                t,
                                TaskMeta::new(OpClass::SsdRead, iter)
                                    .read(an.cur(act_key))
                                    .write(an.bump(act_key))
                                    .free(MemTier::Ssd, act_key),
                            );
                            Some(t)
                        } else {
                            None
                        };
                        let mut deps: Vec<TaskId> = ssd_read.into_iter().collect();
                        deps.extend(act_offloaded[gi][li]);
                        let up = g.add_task_labeled(
                            m2g[gi],
                            act_bytes / r.bw_m2g,
                            Stage::Backward,
                            &deps,
                            format!("{pfx}act-up L{li}{}", gsfx(gi)),
                        );
                        let mut meta = TaskMeta::new(OpClass::TransferM2G, iter)
                            .read(an.cur(act_key))
                            .write(an.bump(act_key));
                        if layer.act_to_host_bytes > 0.0 {
                            meta = meta.free(MemTier::Host, act_key);
                        }
                        g.set_meta(up, meta);
                        act_dep = Some(up);
                    }

                    let mut deps: Vec<TaskId> = Vec::new();
                    deps.extend(fetch_p);
                    deps.extend(act_dep);
                    deps.extend(prev_bwd[gi]);
                    let deps = if self.per_layer_overhead_seconds > 0.0 {
                        let hook = g.add_task_labeled(
                            stall[gi],
                            self.per_layer_overhead_seconds,
                            Stage::Backward,
                            &deps,
                            format!("{pfx}bwd-hook L{li}{}", gsfx(gi)),
                        );
                        g.set_meta(hook, TaskMeta::new(OpClass::Hook, iter));
                        vec![hook]
                    } else {
                        deps
                    };
                    let b = g.add_task_labeled(
                        gpu[gi],
                        layer.bwd_flops / r.thp_gpu,
                        Stage::Backward,
                        &deps,
                        format!("{pfx}bwd L{li}{}", gsfx(gi)),
                    );
                    {
                        let mut meta = TaskMeta::new(OpClass::GpuCompute, iter);
                        match layer.param_source {
                            ParamSource::Gpu => meta = meta.read(an.cur(p16_key)),
                            // Refetched layers read the backward copy; the
                            // head (staged once) reuses the forward copy.
                            _ if layer.p16_bytes > 0.0 => {
                                meta =
                                    meta.read(an.cur(BlobKey::on_gpu(BlobKind::ParamGpu, li, gi)))
                            }
                            _ => {}
                        }
                        if act_bytes > 0.0 {
                            meta = meta.read(an.cur(act_key));
                        }
                        meta = if li + 1 < n {
                            meta.read(an.cur(BlobKey::on_gpu(BlobKind::FlowGrad, li + 1, gi)))
                        } else {
                            // The loss gradient descends from the last
                            // forward hidden state.
                            meta.read(an.cur(BlobKey::on_gpu(BlobKind::Flow, li, gi)))
                        };
                        meta = meta.write(an.bump(BlobKey::on_gpu(BlobKind::FlowGrad, li, gi)));
                        if layer.grad_bytes > 0.0 {
                            meta = meta.write(an.bump(BlobKey::on_gpu(BlobKind::Grad, li, gi)));
                        }
                        g.set_meta(b, meta);
                    }
                    total_gpu_flops += layer.bwd_flops;
                    prev_bwd[gi] = Some(b);

                    // Gradient offload GPU->host.
                    if layer.grad_bytes > 0.0 {
                        let grad_key = BlobKey::on_gpu(BlobKind::Grad, li, gi);
                        let go = g.add_task_labeled(
                            g2m[gi],
                            layer.grad_bytes / r.bw_g2m,
                            Stage::Backward,
                            &[b],
                            format!("{pfx}grad-off L{li}{}", gsfx(gi)),
                        );
                        g.set_meta(
                            go,
                            TaskMeta::new(OpClass::TransferG2M, iter)
                                .read(an.cur(grad_key))
                                .write(an.bump(grad_key)),
                        );
                        let landed = if layer.grad_spill_to_ssd {
                            let spill = g.add_task_labeled(
                                ssd,
                                layer.grad_bytes / r.ssd_write,
                                Stage::Backward,
                                &[go],
                                format!("{pfx}grad-spill L{li}{}", gsfx(gi)),
                            );
                            g.set_meta(
                                spill,
                                TaskMeta::new(OpClass::SsdWrite, iter)
                                    .read(an.cur(grad_key))
                                    .write(an.bump(grad_key))
                                    .alloc(MemTier::Ssd, grad_key, layer.grad_bytes),
                            );
                            spill
                        } else {
                            go
                        };
                        grad_ready_all.push(landed);
                        last_grad_landed.push(landed);
                    } else {
                        grad_ready_all.push(b);
                        last_grad_landed.push(b);
                    }
                }

                // Multi-GPU gradient reduction on the CPU before the handler.
                let handler_input: Vec<TaskId> = if self.gpus > 1 && layer.grad_bytes > 0.0 {
                    let reduce_params = layer.grad_bytes / 2.0 * (self.gpus as f64 - 1.0);
                    let t = g.add_task_labeled(
                        cpu,
                        reduce_params / (4.0 * r.cpu_params_per_sec),
                        Stage::Backward,
                        &grad_ready_all,
                        format!("{pfx}reduce L{li}"),
                    );
                    let mut meta = TaskMeta::new(OpClass::CpuCompute, iter);
                    for gi in 0..self.gpus {
                        meta = meta.read(an.cur(BlobKey::on_gpu(BlobKind::Grad, li, gi)));
                    }
                    meta = meta.write(an.bump(BlobKey::shared(BlobKind::GradReduced, li)));
                    g.set_meta(t, meta);
                    vec![t]
                } else {
                    grad_ready_all.clone()
                };

                match self.mode {
                    GradOffloadMode::SeparateStage => {
                        deferred.push((li, handler_input));
                    }
                    GradOffloadMode::NaiveActive | GradOffloadMode::OptimizedActive => {
                        let (read, write) = self.add_handler(
                            &mut g,
                            ssd,
                            cpu,
                            gpu[0],
                            &g2m[0],
                            &m2g[0],
                            li,
                            &handler_input,
                            prev_handler_write,
                            prev_handler_read,
                            Stage::Backward,
                            &pfx,
                            iter,
                            &mut an,
                        );
                        prev_handler_read = read;
                        prev_handler_write = write;
                        this_updates[li] = write;
                    }
                }
            }

            // ----- Separate optimizer stage (barrier after backward) -----
            if self.mode == GradOffloadMode::SeparateStage {
                let barrier = last_grad_landed;
                let mut prev_write: Option<TaskId> = None;
                let mut prev_read: Option<TaskId> = None;
                for (li, mut inputs) in deferred {
                    inputs.extend(barrier.iter().copied());
                    let (read, write) = self.add_handler(
                        &mut g,
                        ssd,
                        cpu,
                        gpu[0],
                        &g2m[0],
                        &m2g[0],
                        li,
                        &inputs,
                        prev_write,
                        prev_read,
                        Stage::Optimizer,
                        &pfx,
                        iter,
                        &mut an,
                    );
                    // The separate stage serializes each chunk's read ->
                    // compute -> write like DeepSpeed's synchronous swapper;
                    // only the *optimized* active mode pipelines them.
                    prev_read = read;
                    prev_write = write;
                    this_updates[li] = write;
                }
            }

            prev_updates = this_updates;
        } // per-iteration loop
        let _ = prev_updates;

        // Debug builds statically verify every schedule they emit: any
        // staleness, use-before-fetch, WAR, residency-bookkeeping, or
        // resource-legality defect aborts before the simulator can
        // launder it into a plausible-looking timeline.
        #[cfg(debug_assertions)]
        {
            let report = ratel_verify::verify(&g, &ratel_verify::Limits::none());
            if !report.is_clean() {
                panic!(
                    "emitted schedule fails static verification:\n{}",
                    report.render()
                );
            }
        }

        (
            g,
            ScheduleResources {
                gpu,
                g2m,
                m2g,
                ssd,
                cpu,
            },
            total_gpu_flops,
        )
    }

    /// Statically verifies the schedule this spec lowers to, over
    /// `iterations` back-to-back iterations, against the given residency
    /// budgets. See the `ratel-verify` crate for the pass inventory.
    pub fn verify(
        &self,
        iterations: usize,
        limits: &ratel_verify::Limits,
    ) -> ratel_verify::VerifyReport {
        let (g, _, _) = self.build_iterations(iterations);
        ratel_verify::verify(&g, limits)
    }

    /// Attaches the handler's gradient inputs to its first emitted task:
    /// the reduced (or lone) gradient read, plus release of any SSD grad
    /// spill space, which is dead once the handler has consumed it.
    fn handler_grad_meta(&self, mut meta: TaskMeta, li: usize, an: &Annot) -> TaskMeta {
        let layer = &self.layers[li];
        if layer.grad_bytes > 0.0 {
            if self.gpus > 1 {
                meta = meta.read(an.cur(BlobKey::shared(BlobKind::GradReduced, li)));
            } else {
                meta = meta.read(an.cur(BlobKey::on_gpu(BlobKind::Grad, li, 0)));
            }
            if layer.grad_spill_to_ssd {
                for gi in 0..self.gpus {
                    meta = meta.free(MemTier::Ssd, BlobKey::on_gpu(BlobKind::Grad, li, gi));
                }
            }
        }
        meta
    }

    /// Emits one optimizer handler (§IV-C): returns `(read, write)` task
    /// ids for chaining.
    #[allow(clippy::too_many_arguments)]
    fn add_handler(
        &self,
        g: &mut TaskGraph,
        ssd: ResourceId,
        cpu: ResourceId,
        gpu0: ResourceId,
        g2m0: &ResourceId,
        m2g0: &ResourceId,
        li: usize,
        inputs: &[TaskId],
        prev_write: Option<TaskId>,
        prev_read: Option<TaskId>,
        stage: Stage,
        pfx: &str,
        iter: usize,
        an: &mut Annot,
    ) -> (Option<TaskId>, Option<TaskId>) {
        let r = &self.rates;
        let master_key = BlobKey::shared(BlobKind::Master, li);
        let p16_key = BlobKey::shared(BlobKind::Param16, li);
        let sopt_key = BlobKey::shared(BlobKind::StageOpt, li);
        match self.layers[li].optimizer {
            OptimizerKind::CpuOutOfCore {
                read_bytes,
                write_bytes,
                cpu_params,
            } => {
                // SSD->Main: in naive mode (and in the ZeRO-style separate
                // stage) this handler may not start until the previous
                // handler fully finished (Fig. 3a).
                let serialize =
                    self.mode == GradOffloadMode::NaiveActive || stage == Stage::Optimizer;
                let mut read_deps: Vec<TaskId> = inputs.to_vec();
                if serialize {
                    read_deps.extend(prev_write);
                }
                let eff = r.state_io_efficiency;
                let read = g.add_task_labeled(
                    ssd,
                    read_bytes / (eff * r.ssd_read),
                    stage,
                    &read_deps,
                    format!("{pfx}opt-read L{li}"),
                );
                g.set_meta(
                    read,
                    self.handler_grad_meta(
                        TaskMeta::new(OpClass::SsdRead, iter)
                            .read(an.cur(master_key))
                            .write(an.bump(sopt_key)),
                        li,
                        an,
                    ),
                );
                let compute = g.add_task_labeled(
                    cpu,
                    cpu_params / r.cpu_params_per_sec,
                    stage,
                    &[read],
                    format!("{pfx}opt-cpu L{li}"),
                );
                g.set_meta(
                    compute,
                    TaskMeta::new(OpClass::CpuCompute, iter)
                        .read(an.cur(sopt_key))
                        .write(an.bump(sopt_key)),
                );
                // Main->SSD: optimized mode issues it after the *previous*
                // handler's SSD->Main (Fig. 3b), which lets the FIFO SSD
                // overlap it with this handler's CPU compute.
                let mut write_deps = vec![compute];
                if self.mode == GradOffloadMode::OptimizedActive {
                    write_deps.extend(prev_read);
                }
                let write = g.add_task_labeled(
                    ssd,
                    write_bytes / (eff * r.ssd_write),
                    stage,
                    &write_deps,
                    format!("{pfx}opt-write L{li}"),
                );
                g.set_meta(
                    write,
                    TaskMeta::new(OpClass::SsdWrite, iter)
                        .read(an.cur(sopt_key))
                        .write(an.bump(master_key))
                        .write(an.bump(p16_key)),
                );
                (Some(read), Some(write))
            }
            OptimizerKind::CpuInMemory { cpu_params } => {
                let mut deps: Vec<TaskId> = inputs.to_vec();
                if self.mode == GradOffloadMode::NaiveActive || stage == Stage::Optimizer {
                    deps.extend(prev_write);
                }
                let compute = g.add_task_labeled(
                    cpu,
                    cpu_params / r.cpu_params_per_sec,
                    stage,
                    &deps,
                    format!("{pfx}opt-cpu L{li}"),
                );
                g.set_meta(
                    compute,
                    self.handler_grad_meta(
                        TaskMeta::new(OpClass::CpuCompute, iter)
                            .read(an.cur(master_key))
                            .write(an.bump(master_key))
                            .write(an.bump(p16_key)),
                        li,
                        an,
                    ),
                );
                (Some(compute), Some(compute))
            }
            OptimizerKind::GpuOverSsd {
                fetch_bytes,
                writeback_bytes,
                gpu_flops,
            } => {
                let read = g.add_task_labeled(
                    ssd,
                    fetch_bytes / r.ssd_read,
                    stage,
                    inputs,
                    format!("{pfx}opt-read L{li}"),
                );
                g.set_meta(
                    read,
                    self.handler_grad_meta(
                        TaskMeta::new(OpClass::SsdRead, iter)
                            .read(an.cur(master_key))
                            .write(an.bump(sopt_key)),
                        li,
                        an,
                    ),
                );
                let up = g.add_task_labeled(
                    *m2g0,
                    fetch_bytes / r.bw_m2g,
                    stage,
                    &[read],
                    format!("{pfx}opt-up L{li}"),
                );
                g.set_meta(
                    up,
                    TaskMeta::new(OpClass::TransferM2G, iter)
                        .read(an.cur(sopt_key))
                        .write(an.bump(sopt_key)),
                );
                let kernel = g.add_task_labeled(
                    gpu0,
                    gpu_flops / r.thp_gpu,
                    stage,
                    &[up],
                    format!("{pfx}opt-kernel L{li}"),
                );
                g.set_meta(
                    kernel,
                    TaskMeta::new(OpClass::GpuCompute, iter)
                        .read(an.cur(sopt_key))
                        .write(an.bump(sopt_key)),
                );
                let down = g.add_task_labeled(
                    *g2m0,
                    writeback_bytes / r.bw_g2m,
                    stage,
                    &[kernel],
                    format!("{pfx}opt-down L{li}"),
                );
                g.set_meta(
                    down,
                    TaskMeta::new(OpClass::TransferG2M, iter)
                        .read(an.cur(sopt_key))
                        .write(an.bump(sopt_key)),
                );
                let write = g.add_task_labeled(
                    ssd,
                    writeback_bytes / r.ssd_write,
                    stage,
                    &[down],
                    format!("{pfx}opt-write L{li}"),
                );
                g.set_meta(
                    write,
                    TaskMeta::new(OpClass::SsdWrite, iter)
                        .read(an.cur(sopt_key))
                        .write(an.bump(master_key))
                        .write(an.bump(p16_key)),
                );
                (Some(read), Some(write))
            }
            OptimizerKind::GpuResident { gpu_flops } => {
                let kernel = g.add_task_labeled(
                    gpu0,
                    gpu_flops / r.thp_gpu,
                    stage,
                    inputs,
                    format!("{pfx}opt-kernel L{li}"),
                );
                g.set_meta(
                    kernel,
                    self.handler_grad_meta(
                        TaskMeta::new(OpClass::GpuCompute, iter)
                            .read(an.cur(master_key))
                            .write(an.bump(master_key))
                            .write(an.bump(p16_key)),
                        li,
                        an,
                    ),
                );
                (Some(kernel), Some(kernel))
            }
            OptimizerKind::None => (prev_read, prev_write),
        }
    }

    /// Simulates `n` back-to-back iterations and reports *per-iteration*
    /// figures (makespan divided by `n`); stage windows span the whole
    /// run. Useful to check that the single-iteration numbers hold in
    /// steady state.
    pub fn simulate_iterations(&self, model: &ModelProfile, n: usize) -> IterationReport {
        let (graph, res, flops) = self.build_iterations(n);
        let sim = simulate(&graph);
        let mut report = IterationReport::new(
            sim,
            model,
            self.items_per_iteration * n as f64,
            flops,
            res.gpu[0],
        );
        report.iteration_seconds /= n as f64;
        if self.gpus > 1 {
            let busy: f64 = res.gpu.iter().map(|r| report.sim.resources[r.0].busy).sum();
            report.gpu_busy_fraction = busy
                / (self.gpus as f64 * (report.iteration_seconds * n as f64).max(f64::MIN_POSITIVE));
        }
        report
    }

    /// Simulates the iteration and summarizes it.
    pub fn simulate(&self, model: &ModelProfile) -> IterationReport {
        let (graph, res, flops) = self.build();
        let sim = simulate(&graph);
        // Aggregate GPU busy over all GPUs for the utilization number.
        let mut report =
            IterationReport::new(sim, model, self.items_per_iteration, flops, res.gpu[0]);
        if self.gpus > 1 {
            let busy: f64 = res.gpu.iter().map(|r| report.sim.resources[r.0].busy).sum();
            report.gpu_busy_fraction =
                busy / (self.gpus as f64 * report.iteration_seconds.max(f64::MIN_POSITIVE));
        }
        report
    }
}

/// Ratel's own schedule: planner decisions + active gradient offloading.
#[derive(Debug, Clone)]
pub struct RatelSchedule<'a> {
    /// Profiled hardware.
    pub profile: &'a HardwareProfile,
    /// Profiled model.
    pub model: &'a ModelProfile,
    /// The activation plan (from [`crate::planner::ActivationPlanner`]).
    pub plan: &'a SwapPlan,
    /// Gradient-offloading mode.
    pub mode: GradOffloadMode,
    /// Data-parallel GPU count.
    pub gpus: usize,
}

impl<'a> RatelSchedule<'a> {
    /// Lowers the plan into an [`IterationSpec`].
    pub fn to_spec(&self) -> IterationSpec {
        // Distribute the host activation budget: checkpoints first (they
        // are placed in host by construction), then swapped units by plan.
        let placement: std::collections::HashMap<(usize, ratel_model::UnitKind), SwapTarget> = self
            .plan
            .swapped
            .iter()
            .map(|(u, target)| ((u.layer, u.kind), *target))
            .collect();
        let mut layers = Vec::with_capacity(self.model.layers.len());
        for layer in &self.model.layers {
            let mut host = layer.inter_act_bytes;
            let mut ssd = 0.0;
            let mut recompute = 0.0;
            for unit in &layer.units {
                if let Some(target) = placement.get(&(unit.layer, unit.kind)) {
                    match target {
                        SwapTarget::Host => host += unit.bytes,
                        SwapTarget::Ssd => ssd += unit.bytes,
                    }
                } else {
                    recompute += unit.recompute_flops;
                }
            }
            let params = layer.params;
            layers.push(LayerTask {
                label: layer.label.clone(),
                p16_bytes: 2.0 * params,
                param_source: ParamSource::Ssd,
                fwd_flops: layer.forward_flops,
                bwd_flops: 2.0 * layer.forward_flops + recompute,
                act_to_host_bytes: host,
                act_to_ssd_bytes: ssd,
                refetch_in_backward: true,
                grad_bytes: 2.0 * params,
                grad_spill_to_ssd: false,
                optimizer: if params > 0.0 {
                    OptimizerKind::CpuOutOfCore {
                        read_bytes: 12.0 * params,
                        write_bytes: 14.0 * params,
                        cpu_params: params,
                    }
                } else {
                    OptimizerKind::None
                },
            });
        }
        let items = match self.model.config.kind {
            ModelKind::DecoderLm => {
                (self.model.batch * self.model.config.seq_len * self.gpus) as f64
            }
            ModelKind::DiT => (self.model.batch * self.gpus) as f64,
        };
        IterationSpec {
            layers,
            mode: self.mode,
            rates: LinkRates::from_profile(self.profile),
            gpus: self.gpus,
            items_per_iteration: items,
            per_layer_overhead_seconds: 0.0,
        }
    }

    /// Builds and simulates one iteration.
    pub fn simulate(&self) -> IterationReport {
        self.to_spec().simulate(self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::ActivationPlanner;
    use ratel_hw::ServerConfig;
    use ratel_model::zoo;

    fn ratel_report(batch: usize, mode: GradOffloadMode) -> IterationReport {
        let server = ServerConfig::paper_default();
        let model = ModelProfile::new(&zoo::llm("13B"), batch);
        let profile = HardwareProfile::measure(&server, &model, batch);
        let plan = ActivationPlanner::new(&profile, &model).plan();
        RatelSchedule {
            profile: &profile,
            model: &model,
            plan: &plan,
            mode,
            gpus: 1,
        }
        .simulate()
    }

    #[test]
    fn simulated_iteration_is_near_the_paper_figure() {
        // Fig. 1c: 13B @ batch 32 -> ~25 s per iteration.
        let r = ratel_report(32, GradOffloadMode::OptimizedActive);
        assert!(
            (15.0..40.0).contains(&r.iteration_seconds),
            "T = {:.1}s",
            r.iteration_seconds
        );
        // Throughput around 1.3k tokens/s (Fig. 5a's Ratel bar).
        assert!(
            (800.0..2200.0).contains(&r.throughput_items_per_sec),
            "tok/s = {:.0}",
            r.throughput_items_per_sec
        );
    }

    #[test]
    fn optimized_beats_naive_beats_separate_stage() {
        // Fig. 7a at large batches: Optimized > Naive > Ratel+ZeRO. (At
        // batch 8 the paper itself observes the gaps nearly vanish, so the
        // naive-vs-zero ordering is only asserted for batch >= 32.)
        for batch in [32usize, 64] {
            let opt = ratel_report(batch, GradOffloadMode::OptimizedActive);
            let naive = ratel_report(batch, GradOffloadMode::NaiveActive);
            let zero = ratel_report(batch, GradOffloadMode::SeparateStage);
            assert!(
                opt.throughput_items_per_sec > naive.throughput_items_per_sec,
                "b={batch}: opt {:.0} <= naive {:.0}",
                opt.throughput_items_per_sec,
                naive.throughput_items_per_sec
            );
            assert!(
                naive.throughput_items_per_sec > zero.throughput_items_per_sec,
                "b={batch}: naive {:.0} <= zero {:.0}",
                naive.throughput_items_per_sec,
                zero.throughput_items_per_sec
            );
        }
        // Optimized wins at small batch too, just by less.
        let opt8 = ratel_report(8, GradOffloadMode::OptimizedActive);
        let zero8 = ratel_report(8, GradOffloadMode::SeparateStage);
        assert!(opt8.throughput_items_per_sec > zero8.throughput_items_per_sec);
    }

    #[test]
    fn active_offloading_gain_shrinks_at_small_batch() {
        // Fig. 7's second observation: at batch 8 the gap narrows because
        // backward is short relative to the optimizer, leaving little to
        // overlap.
        let gain = |b: usize| {
            ratel_report(b, GradOffloadMode::OptimizedActive).throughput_items_per_sec
                / ratel_report(b, GradOffloadMode::SeparateStage).throughput_items_per_sec
        };
        let g8 = gain(8);
        let g32 = gain(32);
        assert!(g32 > g8, "gain should grow with batch: {g8:.2} vs {g32:.2}");
    }

    #[test]
    fn gpu_stays_busy_with_optimized_offloading() {
        let r = ratel_report(32, GradOffloadMode::OptimizedActive);
        assert!(
            r.gpu_busy_fraction > 0.5,
            "GPU busy only {:.0}%",
            r.gpu_busy_fraction * 100.0
        );
    }

    #[test]
    fn separate_stage_has_an_optimizer_window() {
        let r = ratel_report(32, GradOffloadMode::SeparateStage);
        assert!(r.stage_seconds[2] > 0.0);
        // Optimizer stage takes a meaningful share (Fig. 2c: 30-60%).
        assert!(
            r.optimizer_fraction > 0.15,
            "optimizer fraction {:.2}",
            r.optimizer_fraction
        );
    }

    #[test]
    fn two_gpus_scale_sublinearly_but_positively() {
        let server = ServerConfig::paper_default();
        let model = ModelProfile::new(&zoo::llm("13B"), 32);
        let profile = HardwareProfile::measure(&server, &model, 32);
        let plan = ActivationPlanner::new(&profile, &model).plan();
        let one = RatelSchedule {
            profile: &profile,
            model: &model,
            plan: &plan,
            mode: GradOffloadMode::OptimizedActive,
            gpus: 1,
        }
        .simulate();
        let two = RatelSchedule {
            profile: &profile,
            model: &model,
            plan: &plan,
            mode: GradOffloadMode::OptimizedActive,
            gpus: 2,
        }
        .simulate();
        let speedup = two.throughput_items_per_sec / one.throughput_items_per_sec;
        assert!(
            speedup > 1.2 && speedup < 2.01,
            "2-GPU speedup {speedup:.2} out of range"
        );
    }

    #[test]
    fn more_ssds_help_until_another_bottleneck() {
        // Fig. 10a shape: near-linear 1->3, clearly sub-linear 6->12 as the
        // bottleneck shifts toward GPU compute (the paper uses the largest
        // trainable batch; 48 is feasible for 135B on the 4090).
        let model = ModelProfile::new(&zoo::llm("135B"), 48);
        let tok = |ssds: usize| {
            let server = ServerConfig::paper_default().with_ssd_count(ssds);
            let profile = HardwareProfile::measure(&server, &model, 48);
            let plan = ActivationPlanner::new(&profile, &model).plan();
            RatelSchedule {
                profile: &profile,
                model: &model,
                plan: &plan,
                mode: GradOffloadMode::OptimizedActive,
                gpus: 1,
            }
            .simulate()
            .throughput_items_per_sec
        };
        let t1 = tok(1);
        let t3 = tok(3);
        let t6 = tok(6);
        let t12 = tok(12);
        let low_ratio = t3 / t1;
        let high_ratio = t12 / t6;
        assert!(
            low_ratio > 2.0,
            "1->3 SSDs should be near-linear: {low_ratio:.2}"
        );
        assert!(
            low_ratio > 1.5 * high_ratio,
            "scaling should flatten: 1->3 gives {low_ratio:.2}x, 6->12 gives {high_ratio:.2}x"
        );
        assert!(t12 >= t6 && t6 >= t3 && t3 >= t1);
    }
}

#[cfg(test)]
mod multi_iteration_tests {
    use super::*;
    use crate::planner::ActivationPlanner;
    use ratel_hw::ServerConfig;
    use ratel_model::zoo;

    fn spec(mode: GradOffloadMode) -> (IterationSpec, ModelProfile) {
        let server = ServerConfig::paper_default();
        let model = ModelProfile::new(&zoo::llm("13B"), 32);
        let profile = HardwareProfile::measure(&server, &model, 32);
        let plan = ActivationPlanner::new(&profile, &model).plan();
        let spec = RatelSchedule {
            profile: &profile,
            model: &model,
            plan: &plan,
            mode,
            gpus: 1,
        }
        .to_spec();
        (spec, model)
    }

    #[test]
    fn steady_state_matches_single_iteration_within_tolerance() {
        let (spec, model) = spec(GradOffloadMode::OptimizedActive);
        let one = spec.simulate(&model).iteration_seconds;
        let steady = spec.simulate_iterations(&model, 4).iteration_seconds;
        // The synchronous dependency (next forward waits for this
        // iteration's last update) prevents big cross-iteration gains;
        // adjacent-iteration transfer overlap can shave a little.
        assert!(
            steady <= one * 1.05,
            "steady state slower than single shot: {steady:.1} vs {one:.1}"
        );
        assert!(
            steady >= one * 0.75,
            "implausible cross-iteration speedup: {steady:.1} vs {one:.1}"
        );
    }

    #[test]
    fn iterations_cannot_collapse_into_each_other() {
        // With the separate-stage mode, k iterations must take at least
        // k times the optimizer stage (it is serialized against both
        // neighbors).
        let (spec, model) = spec(GradOffloadMode::SeparateStage);
        let one = spec.simulate(&model);
        let three = spec.simulate_iterations(&model, 3);
        let opt_window = one.stage_seconds[2];
        assert!(
            three.iteration_seconds * 3.0 >= 3.0 * opt_window,
            "optimizer stages overlapped: {:.1}s total vs {:.1}s of optimizer alone",
            three.iteration_seconds * 3.0,
            3.0 * opt_window
        );
    }

    #[test]
    fn multi_iteration_graph_grows_linearly() {
        let (spec, _) = spec(GradOffloadMode::OptimizedActive);
        let (g1, _, f1) = spec.build_iterations(1);
        let (g3, _, f3) = spec.build_iterations(3);
        assert_eq!(g3.len(), 3 * g1.len());
        assert!((f3 - 3.0 * f1).abs() < 1e-3);
    }
}

#[cfg(test)]
mod scheduling_correctness_tests {
    use super::*;
    use ratel_sim::simulate;

    /// Unit rates make every task's service time equal to its byte/flop
    /// count, so timeline positions are easy to reason about.
    fn unit_rates() -> LinkRates {
        LinkRates {
            thp_gpu: 1.0,
            bw_g2m: 1.0,
            bw_m2g: 1.0,
            ssd_read: 1.0,
            ssd_write: 1.0,
            cpu_params_per_sec: 1.0,
            state_io_efficiency: 1.0,
        }
    }

    fn layer() -> LayerTask {
        LayerTask {
            label: "blk".into(),
            p16_bytes: 2.0,
            param_source: ParamSource::Ssd,
            fwd_flops: 1.0,
            bwd_flops: 2.0,
            act_to_host_bytes: 1.0,
            // Zero SSD activation spill: the remaining SSD traffic
            // (parameter staging, optimizer state) must not scale with
            // the GPU count.
            act_to_ssd_bytes: 0.0,
            refetch_in_backward: true,
            grad_bytes: 2.0,
            grad_spill_to_ssd: false,
            optimizer: OptimizerKind::CpuOutOfCore {
                read_bytes: 12.0,
                write_bytes: 14.0,
                cpu_params: 1.0,
            },
        }
    }

    fn spec(gpus: usize, layers: usize, mode: GradOffloadMode) -> IterationSpec {
        IterationSpec {
            layers: (0..layers).map(|_| layer()).collect(),
            mode,
            rates: unit_rates(),
            gpus,
            items_per_iteration: 1.0,
            per_layer_overhead_seconds: 0.0,
        }
    }

    fn find<'a>(sim: &'a ratel_sim::SimReport, label: &str) -> &'a ratel_sim::TimelineEntry {
        sim.timeline()
            .iter()
            .find(|e| e.label.as_deref() == Some(label))
            .unwrap_or_else(|| panic!("no task labeled `{label}`"))
    }

    #[test]
    fn backward_refetch_waits_for_previous_iterations_update() {
        // Iteration k+1 re-reads the P16 the iteration-k handler wrote
        // back; scheduling the refetch before the write-back would feed
        // backward stale parameters.
        let s = spec(1, 3, GradOffloadMode::OptimizedActive);
        let (g, _, _) = s.build_iterations(2);
        let sim = simulate(&g);
        for li in 0..3 {
            let write = find(&sim, &format!("i0 opt-write L{li}"));
            for kind in ["fwd-read", "bwd-read", "bwd-fetch"] {
                let refetch = find(&sim, &format!("i1 {kind} L{li}"));
                assert!(
                    refetch.start >= write.finish - 1e-9,
                    "i1 {kind} L{li} starts at {:.3} before i0 opt-write L{li} \
                     finishes at {:.3} (stale parameters)",
                    refetch.start,
                    write.finish
                );
            }
        }
        // The dependency is load-bearing for the makespan: the final
        // backward chain of iteration 1 cannot start before iteration
        // 0's layer-0 write-back lands.
        let last_write = find(&sim, "i0 opt-write L0").finish;
        let final_bwd = find(&sim, "i1 bwd L0");
        assert!(final_bwd.finish >= last_write + 2.0 + 2.0 + 2.0 - 1e-9);
    }

    #[test]
    fn backward_ssd_staging_is_shared_across_gpus() {
        // Like the forward fetch, the backward refetch stages each layer
        // from SSD to host once; GPUs copy from the shared staging
        // buffer. Total SSD service must be GPU-count invariant.
        for mode in GradOffloadMode::ALL {
            let (g1, r1, _) = spec(1, 4, mode).build();
            let (g4, r4, _) = spec(4, 4, mode).build();
            let s1 = g1.total_service(r1.ssd);
            let s4 = g4.total_service(r4.ssd);
            assert!(
                (s1 - s4).abs() < 1e-9,
                "{}: SSD service scales with GPU count: {s1:.3} (1 GPU) vs {s4:.3} (4 GPUs)",
                mode.name()
            );
        }
    }

    #[test]
    fn backward_staging_is_one_read_per_layer() {
        let s = spec(3, 2, GradOffloadMode::OptimizedActive);
        let (g, _, _) = s.build();
        let sim = simulate(&g);
        for li in 0..2 {
            let reads = sim
                .timeline()
                .iter()
                .filter(|e| e.label.as_deref() == Some(&format!("bwd-read L{li}")[..]))
                .count();
            assert_eq!(reads, 1, "layer {li}: expected one shared staging read");
            // ...feeding one host->GPU copy per GPU.
            let copies = sim
                .timeline()
                .iter()
                .filter(|e| {
                    e.label
                        .as_deref()
                        .is_some_and(|l| l.starts_with(&format!("bwd-fetch L{li} ")))
                })
                .count();
            assert_eq!(copies, 3);
        }
    }
}
