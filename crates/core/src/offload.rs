//! Gradient offloading modes (§IV-C).
//!
//! When a layer's fp16 gradient lands in main memory, its optimizer
//! "handler" runs three steps: `SSD→Main` (read the layer's P32+OS32),
//! `CPU Compute` (Adam update, emit fresh P16), `Main→SSD` (write back
//! P32+OS32+P16). The three modes differ in how handlers are scheduled
//! relative to each other and to GPU backward propagation.

/// How gradients reach the out-of-core CPU optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradOffloadMode {
    /// ZeRO-Infinity-style: gradients spill to SSD during backward; the
    /// whole optimizer runs as a separate stage after backward finishes
    /// (the "Ratel+ZeRO" ablation of Fig. 7).
    SeparateStage,
    /// Naive active offloading: the optimizer consumes gradients during
    /// backward, but each layer's handler serializes its three steps and
    /// handlers run one after another (Fig. 3a).
    NaiveActive,
    /// Optimized active offloading: handlers of consecutive layers are
    /// software-pipelined — `Main→SSD` of layer *i* is issued after
    /// `SSD→Main` of layer *i−1*, overlapping CPU compute with SSD I/O in
    /// both directions (Fig. 3b).
    OptimizedActive,
}

impl GradOffloadMode {
    /// All modes, for ablation sweeps.
    pub const ALL: [GradOffloadMode; 3] = [
        GradOffloadMode::SeparateStage,
        GradOffloadMode::NaiveActive,
        GradOffloadMode::OptimizedActive,
    ];

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            GradOffloadMode::SeparateStage => "Ratel+ZeRO",
            GradOffloadMode::NaiveActive => "Ratel Naive",
            GradOffloadMode::OptimizedActive => "Ratel Optimized",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_figure_legends() {
        assert_eq!(GradOffloadMode::OptimizedActive.name(), "Ratel Optimized");
        assert_eq!(GradOffloadMode::ALL.len(), 3);
    }
}
