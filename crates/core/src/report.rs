//! Simulated-iteration reports: the quantities the paper's figures plot.

use ratel_model::ModelProfile;
use ratel_sim::{ResourceId, SimReport, Stage};

/// Summary of one simulated training iteration.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Wall-clock seconds for the iteration.
    pub iteration_seconds: f64,
    /// Tokens (or images) processed per second — Fig. 5a/5b's y-axis.
    pub throughput_items_per_sec: f64,
    /// Achieved model FLOP/s (forward+backward+recompute FLOPs over the
    /// iteration time) — Fig. 5c/10b's y-axis.
    pub tflops: f64,
    /// Fraction of the iteration the GPU was busy — Fig. 2b's y-axis.
    pub gpu_busy_fraction: f64,
    /// Fraction of the iteration spent in the optimizer stage window
    /// (meaningful for separate-stage schedules) — Fig. 2c's y-axis.
    pub optimizer_fraction: f64,
    /// Stage windows `(forward, backward, optimizer)` in seconds.
    pub stage_seconds: [f64; 3],
    /// The raw simulator report for detailed breakdowns.
    pub sim: SimReport,
}

impl IterationReport {
    /// Builds a report from a finished simulation.
    ///
    /// `items_per_iteration` is tokens for LLMs, images for DiT;
    /// `total_flops` should include recomputation so TFLOPS reflects
    /// useful + redundant work the GPU actually did.
    pub fn new(
        sim: SimReport,
        model: &ModelProfile,
        items_per_iteration: f64,
        total_flops: f64,
        gpu: ResourceId,
    ) -> Self {
        let t = sim.makespan;
        let gpu_busy = if t > 0.0 {
            sim.resources[gpu.0].busy / t
        } else {
            0.0
        };
        let opt_window = sim.stage(Stage::Optimizer).duration();
        let _ = model;
        IterationReport {
            iteration_seconds: t,
            throughput_items_per_sec: if t > 0.0 {
                items_per_iteration / t
            } else {
                0.0
            },
            tflops: if t > 0.0 { total_flops / t / 1e12 } else { 0.0 },
            gpu_busy_fraction: gpu_busy,
            optimizer_fraction: if t > 0.0 { opt_window / t } else { 0.0 },
            stage_seconds: [
                sim.stage(Stage::Forward).duration(),
                sim.stage(Stage::Backward).duration(),
                opt_window,
            ],
            sim,
        }
    }
}
