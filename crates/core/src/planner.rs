//! Holistic traffic-aware activation swapping management (§IV-D).
//!
//! The planner decides *which* activations to swap out of the GPU (vs.
//! recompute during backward) and *where* swapped bytes live (host RAM up
//! to `MEM_avail`, overflow on the SSDs), by minimizing the analytic
//! iteration-time model of Eq. 1–5:
//!
//! ```text
//! T_iter = T_f + T_b
//! T_f = max(FLOP_f/THP,  A_G2M/BW_G,  2P/BW_G,  2P/BW_S2M + αA_G2M/BW_M2S)
//! T_b = max((2FLOP_f+FLOP_r)/THP,  2P/BW_G,  (2P+A_G2M)/BW_G,
//!           (14P+αA_G2M)/BW_S2M + 14P/BW_M2S)
//! ```
//!
//! with `αA_G2M = max(0, A_G2M − MEM_avail)` (Eq. 3). Activation units are
//! considered in decreasing *offloading benefit* `OB = FLOP/A` (Eq. 6),
//! which makes `FLOP_r` convex in `A_G2M` and therefore `T_iter` convex
//! (the paper's Theorems 1–4); Algorithm 1 walks the curve and stops at the
//! inflection point, with `A_interBlock` as the mandatory floor (the
//! checkpoints cannot be recomputed — below them backward would OOM).

use std::collections::HashMap;

use ratel_model::{ActivationUnit, ModelProfile, UnitKind};

use crate::profile::HardwareProfile;

/// Which resource bounds a stage in the analytic model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// GPU compute (`FLOP/THP` term).
    GpuCompute,
    /// GPU -> main memory PCIe direction.
    PcieG2M,
    /// Main memory -> GPU PCIe direction.
    PcieM2G,
    /// The (simplex) SSD array.
    Ssd,
}

/// Analytic stage/iteration times for one candidate plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterTime {
    /// `T_f` (seconds).
    pub forward: f64,
    /// `T_b` (seconds; the optimizer is hidden inside it).
    pub backward: f64,
    /// Which resource bounds the forward stage.
    pub forward_bound: Bound,
    /// Which resource bounds the backward stage.
    pub backward_bound: Bound,
}

impl IterTime {
    /// `T_iter = T_f + T_b` (Eq. 1).
    pub fn total(&self) -> f64 {
        self.forward + self.backward
    }
}

/// Which of the paper's three convexity cases the plan landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanCase {
    /// Iteration time rises with any extra swap: keep the minimum safe
    /// amount (`A_interBlock`).
    PcieBound,
    /// Iteration time falls all the way: swap everything (GPU-bound).
    GpuBound,
    /// Interior optimum found at the inflection point.
    Inflection,
}

/// A reference to one swappable activation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitRef {
    /// Owning layer id.
    pub layer: usize,
    /// Which half of the layer.
    pub kind: UnitKind,
}

/// Where a swapped unit's bytes live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapTarget {
    /// Accommodated by main memory.
    Host,
    /// Spilled to the SSD array.
    Ssd,
}

/// The planner's decision.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapPlan {
    /// Swapped intra-layer units with their placement, in benefit order.
    pub swapped: Vec<(UnitRef, SwapTarget)>,
    /// `A_G2M`: total bytes swapped out of the GPU (checkpoints included).
    pub a_g2m: f64,
    /// `αA_G2M`: bytes of that total living on the SSDs.
    pub spill_bytes: f64,
    /// `FLOP_r`: remaining recomputation FLOPs during backward.
    pub flop_r: f64,
    /// Predicted stage times at the chosen point.
    pub predicted: IterTime,
    /// Which convexity case the search ended in.
    pub case: PlanCase,
}

impl SwapPlan {
    /// `α`: fraction of swapped bytes on SSD (0 when everything fits in
    /// host memory).
    pub fn alpha(&self) -> f64 {
        if self.a_g2m == 0.0 {
            0.0
        } else {
            self.spill_bytes / self.a_g2m
        }
    }

    /// Whether a given unit is swapped (vs. recomputed).
    pub fn swaps(&self, layer: usize, kind: UnitKind) -> bool {
        self.swapped
            .iter()
            .any(|(u, _)| u.layer == layer && u.kind == kind)
    }
}

/// The activation planner: the iteration-time model plus Algorithm 1.
#[derive(Debug, Clone)]
pub struct ActivationPlanner<'a> {
    profile: &'a HardwareProfile,
    model: &'a ModelProfile,
    /// When false (the Ratel+CpuAct ablation of §V-E), swapped activations
    /// may only live in main memory: `A_G2M` is capped at `MEM_avail`.
    pub allow_ssd_spill: bool,
}

impl<'a> ActivationPlanner<'a> {
    /// Creates a planner over a profiled model and hardware.
    pub fn new(profile: &'a HardwareProfile, model: &'a ModelProfile) -> Self {
        ActivationPlanner {
            profile,
            model,
            allow_ssd_spill: true,
        }
    }

    /// Evaluates Eq. 1–5 at a candidate `(A_G2M, FLOP_r)` point.
    pub fn iter_time(&self, a_g2m: f64, flop_r: f64) -> IterTime {
        let p = self.model.total_params();
        let hw = self.profile;
        let flop_f = self.model.forward_flops();
        let spill = (a_g2m - hw.mem_avail).max(0.0);

        let (forward, forward_bound) = max_bound(&[
            (flop_f / hw.thp_gpu, Bound::GpuCompute),
            (a_g2m / hw.bw_gpu, Bound::PcieG2M),
            (2.0 * p / hw.bw_gpu, Bound::PcieM2G),
            (2.0 * p / hw.bw_s2m + spill / hw.bw_m2s, Bound::Ssd),
        ]);
        // Eq. 5, with per-traffic-class SSD bandwidths: the 12P state read
        // and 14P state write run at chunked-I/O efficiency, while the 2P
        // parameter refetch and the activation spill stream sequentially.
        let eff = hw.state_io_efficiency;
        let (backward, backward_bound) = max_bound(&[
            ((2.0 * flop_f + flop_r) / hw.thp_gpu, Bound::GpuCompute),
            (2.0 * p / hw.bw_gpu, Bound::PcieG2M),
            ((2.0 * p + a_g2m) / hw.bw_gpu, Bound::PcieM2G),
            (
                (2.0 * p + spill) / hw.bw_s2m
                    + 12.0 * p / (eff * hw.bw_s2m)
                    + 14.0 * p / (eff * hw.bw_m2s),
                Bound::Ssd,
            ),
        ]);
        IterTime {
            forward,
            backward,
            forward_bound,
            backward_bound,
        }
    }

    /// Total recompute FLOPs when nothing intra-layer is swapped.
    pub fn full_recompute_flops(&self) -> f64 {
        self.model
            .layers
            .iter()
            .flat_map(|l| l.units.iter())
            .map(|u| u.recompute_flops)
            .sum()
    }

    fn units(&self) -> Vec<&'a ActivationUnit> {
        self.model.units_by_benefit()
    }

    /// Maximum `A_G2M` this planner may choose (everything, or `MEM_avail`
    /// when SSD spill is disabled).
    pub fn max_swap_bytes(&self) -> f64 {
        let all = self.model.inter_act_bytes() + self.units().iter().map(|u| u.bytes).sum::<f64>();
        if self.allow_ssd_spill {
            all
        } else {
            all.min(self.profile.mem_avail)
        }
    }

    /// Algorithm 1: walk units in benefit order, tracking the convex
    /// `T_iter`, and stop past the inflection point.
    pub fn plan(&self) -> SwapPlan {
        let inter = self.model.inter_act_bytes();
        let mut a_g2m = inter; // mandatory checkpoint floor
        let mut flop_r = self.full_recompute_flops();
        let mut swapped: Vec<UnitRef> = Vec::new();

        let mut best_time = self.iter_time(a_g2m, flop_r);
        let mut t_min = best_time.total();
        let mut improved_past_floor = false;
        let mut exhausted = true;

        for unit in self.units() {
            let next_a = a_g2m + unit.bytes;
            if !self.allow_ssd_spill && next_a > self.profile.mem_avail {
                // Host-only swapping (Ratel+CpuAct): no more room.
                exhausted = false;
                break;
            }
            let next_flop_r = flop_r - unit.recompute_flops;
            let t = self.iter_time(next_a, next_flop_r);
            if t.total() >= t_min {
                // Past the inflection point (A_G2M is already above the
                // floor here since the floor was the starting point).
                exhausted = false;
                break;
            }
            t_min = t.total();
            best_time = t;
            a_g2m = next_a;
            flop_r = next_flop_r;
            swapped.push(UnitRef {
                layer: unit.layer,
                kind: unit.kind,
            });
            improved_past_floor = true;
        }

        let case = if !improved_past_floor {
            PlanCase::PcieBound
        } else if exhausted {
            PlanCase::GpuBound
        } else {
            PlanCase::Inflection
        };

        self.finish(swapped, a_g2m, flop_r, best_time, case)
    }

    /// Builds the plan that swaps the highest-benefit units until `A_G2M`
    /// reaches at least `target` bytes (checkpoints always included) —
    /// used to sweep the Fig. 9b curve and by static baselines.
    pub fn plan_with_swap_bytes(&self, target: f64) -> SwapPlan {
        let inter = self.model.inter_act_bytes();
        let mut a_g2m = inter;
        let mut flop_r = self.full_recompute_flops();
        let mut swapped = Vec::new();
        for unit in self.units() {
            if a_g2m >= target {
                break;
            }
            a_g2m += unit.bytes;
            flop_r -= unit.recompute_flops;
            swapped.push(UnitRef {
                layer: unit.layer,
                kind: unit.kind,
            });
        }
        let t = self.iter_time(a_g2m, flop_r);
        self.finish(swapped, a_g2m, flop_r, t, PlanCase::Inflection)
    }

    /// Exhaustively evaluates every prefix of the benefit order and returns
    /// the best — the brute-force oracle Algorithm 1 must match (used by
    /// tests; `plan` is O(n) thanks to convexity, this is too but without
    /// early exit).
    pub fn exhaustive_best(&self) -> SwapPlan {
        let inter = self.model.inter_act_bytes();
        let mut a_g2m = inter;
        let mut flop_r = self.full_recompute_flops();
        let mut best = (a_g2m, flop_r, self.iter_time(a_g2m, flop_r), 0usize);
        for (i, unit) in self.units().iter().enumerate() {
            a_g2m += unit.bytes;
            flop_r -= unit.recompute_flops;
            if !self.allow_ssd_spill && a_g2m > self.profile.mem_avail {
                break;
            }
            let t = self.iter_time(a_g2m, flop_r);
            if t.total() < best.2.total() {
                best = (a_g2m, flop_r, t, i + 1);
            }
        }
        let swapped = self.units()[..best.3]
            .iter()
            .map(|u| UnitRef {
                layer: u.layer,
                kind: u.kind,
            })
            .collect();
        self.finish(swapped, best.0, best.1, best.2, PlanCase::Inflection)
    }

    /// Assigns placements (Eq. 3): host memory first, SSD overflow.
    /// `spill_bytes` is derived from the placements actually made, so it
    /// stays consistent with `swapped` even when unit granularity keeps
    /// host memory from packing exactly to `MEM_avail`.
    fn finish(
        &self,
        swapped: Vec<UnitRef>,
        a_g2m: f64,
        flop_r: f64,
        predicted: IterTime,
        case: PlanCase,
    ) -> SwapPlan {
        // Checkpoints occupy host budget first; then swapped units in
        // benefit order until the budget runs out.
        let mut host_left = (self.profile.mem_avail - self.model.inter_act_bytes()).max(0.0);
        let bytes_of: HashMap<(usize, UnitKind), f64> = self
            .units()
            .iter()
            .map(|u| ((u.layer, u.kind), u.bytes))
            .collect();
        let mut spill_bytes = 0.0;
        let placed = swapped
            .into_iter()
            .map(|r| {
                let bytes = bytes_of.get(&(r.layer, r.kind)).copied().unwrap_or(0.0);
                if bytes <= host_left {
                    host_left -= bytes;
                    (r, SwapTarget::Host)
                } else {
                    spill_bytes += bytes;
                    (r, SwapTarget::Ssd)
                }
            })
            .collect();
        SwapPlan {
            swapped: placed,
            a_g2m,
            spill_bytes,
            flop_r,
            predicted,
            case,
        }
    }
}

fn max_bound(terms: &[(f64, Bound)]) -> (f64, Bound) {
    let mut best = terms[0];
    for &t in &terms[1..] {
        if t.0 > best.0 {
            best = t;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratel_hw::ServerConfig;
    use ratel_model::{zoo, ModelProfile};

    fn setup(batch: usize) -> (HardwareProfile, ModelProfile) {
        let server = ServerConfig::paper_default();
        let model = ModelProfile::new(&zoo::llm("13B"), batch);
        let profile = HardwareProfile::measure(&server, &model, batch);
        (profile, model)
    }

    #[test]
    fn iteration_time_is_in_the_right_ballpark() {
        // Fig. 1c: Ratel fine-tunes 13B at batch 32 in ~25 s per iteration
        // on the paper's server. The analytic model should land within a
        // factor of ~1.5 (it assumes perfect overlap).
        let (profile, model) = setup(32);
        let planner = ActivationPlanner::new(&profile, &model);
        let plan = planner.plan();
        let t = plan.predicted.total();
        assert!((12.0..35.0).contains(&t), "T_iter = {t:.1}s");
    }

    #[test]
    fn placement_totals_match_plan_accounting() {
        // The per-unit placements and the plan's aggregate numbers must
        // describe the same plan: host + SSD + checkpoints = A_G2M, the
        // SSD share = spill_bytes, and host placements fit MEM_avail.
        for batch in [8usize, 24, 32, 64, 96] {
            let (profile, model) = setup(batch);
            let plan = ActivationPlanner::new(&profile, &model).plan();
            let bytes_of: HashMap<(usize, UnitKind), f64> = model
                .units_by_benefit()
                .iter()
                .map(|u| ((u.layer, u.kind), u.bytes))
                .collect();
            let mut host = 0.0;
            let mut ssd = 0.0;
            for (r, target) in &plan.swapped {
                let b = bytes_of[&(r.layer, r.kind)];
                match target {
                    SwapTarget::Host => host += b,
                    SwapTarget::Ssd => ssd += b,
                }
            }
            let inter = model.inter_act_bytes();
            assert!(
                (inter + host + ssd - plan.a_g2m).abs() < 1.0,
                "batch {batch}: placements sum to {} but a_g2m is {}",
                inter + host + ssd,
                plan.a_g2m
            );
            assert!(
                (ssd - plan.spill_bytes).abs() < 1.0,
                "batch {batch}: SSD placements {ssd} vs spill_bytes {}",
                plan.spill_bytes
            );
            assert!(
                inter + host <= profile.mem_avail + 1.0,
                "batch {batch}: host placements overflow MEM_avail"
            );
        }
    }

    #[test]
    fn algorithm1_matches_exhaustive_search() {
        for batch in [8usize, 16, 24, 32, 48, 64] {
            let (profile, model) = setup(batch);
            let planner = ActivationPlanner::new(&profile, &model);
            let plan = planner.plan();
            let best = planner.exhaustive_best();
            assert!(
                (plan.predicted.total() - best.predicted.total()).abs() < 1e-9,
                "batch {batch}: alg1 {:.4} vs oracle {:.4}",
                plan.predicted.total(),
                best.predicted.total()
            );
        }
    }

    #[test]
    fn iteration_time_curve_is_convex_along_benefit_order() {
        let (profile, model) = setup(32);
        let planner = ActivationPlanner::new(&profile, &model);
        // Sample T_iter at every prefix point.
        let mut points = vec![(
            model.inter_act_bytes(),
            planner
                .iter_time(model.inter_act_bytes(), planner.full_recompute_flops())
                .total(),
        )];
        let mut a = model.inter_act_bytes();
        let mut fr = planner.full_recompute_flops();
        for u in model.units_by_benefit() {
            a += u.bytes;
            fr -= u.recompute_flops;
            points.push((a, planner.iter_time(a, fr).total()));
        }
        // Discrete convexity: slopes are non-decreasing.
        let mut last_slope = f64::NEG_INFINITY;
        for w in points.windows(2) {
            let slope = (w[1].1 - w[0].1) / (w[1].0 - w[0].0);
            assert!(
                slope >= last_slope - 1e-12,
                "slope decreased: {last_slope} -> {slope}"
            );
            last_slope = slope;
        }
    }

    #[test]
    fn swap_floor_is_the_checkpoints() {
        let (profile, model) = setup(32);
        let planner = ActivationPlanner::new(&profile, &model);
        let plan = planner.plan();
        assert!(plan.a_g2m >= model.inter_act_bytes());
    }

    #[test]
    fn spill_goes_to_ssd_only_beyond_mem_avail() {
        let (profile, model) = setup(32);
        let planner = ActivationPlanner::new(&profile, &model);
        let plan = planner.plan();
        if plan.a_g2m <= profile.mem_avail {
            assert_eq!(plan.spill_bytes, 0.0);
            assert_eq!(plan.alpha(), 0.0);
        } else {
            assert!(plan.spill_bytes > 0.0);
            assert!(plan.alpha() <= 1.0);
        }
    }

    #[test]
    fn host_only_planner_respects_mem_avail() {
        // Shrink memory so the cap binds.
        let server = ServerConfig::paper_default().with_main_memory(64 * (1 << 30));
        let model = ModelProfile::new(&zoo::llm("13B"), 64);
        let profile = HardwareProfile::measure(&server, &model, 64);
        let mut planner = ActivationPlanner::new(&profile, &model);
        planner.allow_ssd_spill = false;
        let plan = planner.plan();
        assert!(plan.a_g2m <= profile.mem_avail.max(model.inter_act_bytes()) + 1.0);
        assert_eq!(plan.spill_bytes, 0.0);
        // The unrestricted planner can swap strictly more.
        let free = ActivationPlanner::new(&profile, &model).plan();
        assert!(free.max_swap_vs(&plan));
    }

    impl SwapPlan {
        fn max_swap_vs(&self, other: &SwapPlan) -> bool {
            self.a_g2m >= other.a_g2m
        }
    }

    #[test]
    fn larger_batch_swaps_more() {
        // Bigger batches make GPU compute longer relative to PCIe, so
        // swapping (instead of recomputing) pays off more (Fig. 9b).
        let (p8, m8) = setup(8);
        let (p64, m64) = setup(64);
        let plan8 = ActivationPlanner::new(&p8, &m8).plan();
        let plan64 = ActivationPlanner::new(&p64, &m64).plan();
        let frac8 = plan8.a_g2m / (m8.total_act_bytes());
        let frac64 = plan64.a_g2m / (m64.total_act_bytes());
        assert!(
            frac64 >= frac8,
            "swap fraction should grow with batch: {frac8} vs {frac64}"
        );
    }

    #[test]
    fn plan_with_swap_bytes_hits_the_target() {
        let (profile, model) = setup(32);
        let planner = ActivationPlanner::new(&profile, &model);
        let target = 80e9;
        let plan = planner.plan_with_swap_bytes(target);
        assert!(plan.a_g2m >= target);
        // Not overshooting by more than one unit.
        let max_unit = model
            .units_by_benefit()
            .iter()
            .map(|u| u.bytes)
            .fold(0.0, f64::max);
        assert!(plan.a_g2m <= target + max_unit + 1.0);
    }

    #[test]
    fn recompute_flops_shrink_as_swap_grows() {
        let (profile, model) = setup(32);
        let planner = ActivationPlanner::new(&profile, &model);
        let a = planner.plan_with_swap_bytes(20e9);
        let b = planner.plan_with_swap_bytes(150e9);
        assert!(b.flop_r < a.flop_r);
        assert!(b.a_g2m > a.a_g2m);
    }
}
