//! The crate-level error type of the public API.
//!
//! Two PRs of organic growth had every public function leak
//! [`StorageError`] — a tier-local concern — straight to users, and left
//! config/batch mistakes to panic deep inside the tensor crate.
//! [`RatelError`] is the single error surface now: storage failures are
//! wrapped, config and batch problems are caught *before* the engine
//! runs, and checkpoint corruption (torn writes, bit rot) is its own
//! variant so callers can distinguish "retry the load" from "the drive
//! is gone".

use std::fmt;

use ratel_storage::StorageError;

/// Errors returned by the `ratel` crate's public API.
#[derive(Debug)]
pub enum RatelError {
    /// The tiered store failed underneath the engine (capacity, I/O,
    /// injected or real SSD faults that survived the retry budget).
    Storage(StorageError),
    /// The builder configuration is unusable. Every violation found is
    /// listed — fix them all in one pass instead of peeling an error per
    /// run.
    InvalidConfig(Vec<String>),
    /// A training/eval batch failed validation (mismatched lengths,
    /// out-of-vocabulary ids, wrong size for the model).
    InvalidBatch(String),
    /// A checkpoint on disk is missing, torn, or fails its checksums —
    /// and no earlier good generation could be loaded either.
    CheckpointCorrupt(String),
    /// The runtime itself failed: a worker/service thread could not be
    /// spawned or died with a panic. Distinct from task errors — the
    /// work may have been fine, the machinery running it was not.
    Runtime(String),
}

impl fmt::Display for RatelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatelError::Storage(e) => write!(f, "storage: {e}"),
            RatelError::InvalidConfig(violations) => {
                write!(f, "invalid configuration ({} problem", violations.len())?;
                if violations.len() != 1 {
                    write!(f, "s")?;
                }
                write!(f, "): {}", violations.join("; "))
            }
            RatelError::InvalidBatch(msg) => write!(f, "invalid batch: {msg}"),
            RatelError::CheckpointCorrupt(msg) => write!(f, "checkpoint corrupt: {msg}"),
            RatelError::Runtime(msg) => write!(f, "runtime: {msg}"),
        }
    }
}

impl std::error::Error for RatelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RatelError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for RatelError {
    fn from(e: StorageError) -> Self {
        RatelError::Storage(e)
    }
}

impl RatelError {
    /// The wrapped [`StorageError`], if this is a storage failure.
    pub fn as_storage(&self) -> Option<&StorageError> {
        match self {
            RatelError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let s: RatelError = StorageError::NotFound("k".into()).into();
        assert!(s.to_string().contains("not found"));
        assert!(s.as_storage().is_some());
        let c = RatelError::InvalidConfig(vec!["a".into(), "b".into()]);
        let msg = c.to_string();
        assert!(msg.contains("2 problems") && msg.contains("a; b"), "{msg}");
        let one = RatelError::InvalidConfig(vec!["x".into()]);
        assert!(one.to_string().contains("1 problem)"), "{one}");
        assert!(RatelError::InvalidBatch("len".into())
            .to_string()
            .contains("len"));
        assert!(RatelError::CheckpointCorrupt("torn".into())
            .to_string()
            .contains("torn"));
        assert!(RatelError::Runtime("spawn failed".into())
            .to_string()
            .contains("spawn failed"));
    }
}
