//! Hardware-aware profiling (§IV-B).
//!
//! In the paper, Ratel's first training iteration runs instrumented: it
//! offloads conservatively (inter-block activations only), records each
//! layer's compute time and every link's achieved bandwidth, and reads the
//! minimum unallocated main memory. Here the "measurement" is taken from
//! the server specification plus Ratel's own memory model — the same
//! numbers a real profiling pass would converge to on that hardware — and
//! is packaged as the `Table I` quantities every later component consumes.

use ratel_hw::ServerConfig;
use ratel_model::ModelProfile;

use crate::memory::RatelMemoryModel;

/// The measurements the profiling stage provides (Table I symbols).
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProfile {
    /// `THP_G`: sustained GPU throughput in FLOP/s at the profiled batch.
    pub thp_gpu: f64,
    /// `BW_G`: per-direction GPU<->main-memory PCIe bandwidth, bytes/s.
    pub bw_gpu: f64,
    /// `BW_S2M`: aggregate SSD read bandwidth, bytes/s.
    pub bw_s2m: f64,
    /// `BW_M2S`: aggregate SSD write bandwidth, bytes/s.
    pub bw_m2s: f64,
    /// `MEM_avail`: main-memory bytes free to accommodate swapped
    /// activations after Ratel's own buffers (Eq. 3).
    pub mem_avail: f64,
    /// CPU Adam update rate, parameters/second (used by the simulator for
    /// the active-offloading handler; the analytic model follows the paper
    /// and omits it from Eq. 5).
    pub cpu_adam_params_per_sec: f64,
    /// Fraction of sequential SSD bandwidth achieved by optimizer-*state*
    /// I/O. Master states are updated in optimizer-chunk granularity, so
    /// their reads/writes are shorter and less sequential than parameter
    /// or activation streaming; profiling measures roughly half of peak
    /// for them (this is what makes ZeRO-Infinity's 13B optimizer stage
    /// take ~23 s in Fig. 1a rather than the ~11 s sequential bandwidth
    /// would suggest).
    pub state_io_efficiency: f64,
}

/// Default optimizer-state I/O efficiency (see
/// [`HardwareProfile::state_io_efficiency`]).
pub const STATE_IO_EFFICIENCY: f64 = 0.7;

impl HardwareProfile {
    /// Runs the profiling stage for `model` at `batch` on `server`.
    pub fn measure(server: &ServerConfig, model: &ModelProfile, batch: usize) -> Self {
        let mem = RatelMemoryModel::default();
        HardwareProfile {
            thp_gpu: server.gpu.effective_flops(batch),
            bw_gpu: server.pcie.bandwidth_per_dir,
            bw_s2m: server.ssds.read_bw(),
            bw_m2s: server.ssds.write_bw(),
            mem_avail: mem.host_activation_budget(server, model),
            cpu_adam_params_per_sec: server.cpu.adam_params_per_sec,
            state_io_efficiency: STATE_IO_EFFICIENCY,
        }
    }

    /// Seconds of CPU Adam time for `params` parameters.
    pub fn cpu_adam_seconds(&self, params: f64) -> f64 {
        params / self.cpu_adam_params_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratel_model::{zoo, ModelProfile};

    #[test]
    fn profile_reflects_server_specs() {
        let server = ServerConfig::paper_default();
        let model = ModelProfile::new(&zoo::llm("13B"), 32);
        let p = HardwareProfile::measure(&server, &model, 32);
        assert!((p.bw_gpu - 21e9).abs() < 1e-3);
        assert!((p.bw_s2m - 32e9).abs() < 1e-3);
        assert!(p.thp_gpu > 0.9 * server.gpu.measured_flops);
        assert!(p.mem_avail > 0.0);
    }

    #[test]
    fn fewer_ssds_lower_ssd_bandwidth_only() {
        let model = ModelProfile::new(&zoo::llm("13B"), 32);
        let full = HardwareProfile::measure(&ServerConfig::paper_default(), &model, 32);
        let few =
            HardwareProfile::measure(&ServerConfig::paper_default().with_ssd_count(3), &model, 32);
        assert!(few.bw_s2m < full.bw_s2m);
        assert_eq!(few.bw_gpu, full.bw_gpu);
        assert_eq!(few.thp_gpu, full.thp_gpu);
    }

    #[test]
    fn small_memory_shrinks_activation_budget() {
        let model = ModelProfile::new(&zoo::llm("13B"), 32);
        let big = HardwareProfile::measure(&ServerConfig::paper_default(), &model, 32);
        let small = HardwareProfile::measure(&ServerConfig::consumer_256g(), &model, 32);
        assert!(small.mem_avail < big.mem_avail);
    }
}
