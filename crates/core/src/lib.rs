#![warn(missing_docs)]
//! Ratel: holistic data-movement optimization for fine-tuning 100B-scale
//! models on a single consumer GPU (ICDE 2025 reproduction).
//!
//! The crate has two faces:
//!
//! * **Analytic/simulated** — [`profile::HardwareProfile`] (the
//!   hardware-aware profiling stage, §IV-B), [`planner`] (the convex
//!   iteration-time model and Algorithm 1, §IV-D), [`memory`] (feasibility
//!   of a model/batch on a server), and [`schedule`] (builds per-layer task
//!   graphs executed by `ratel-sim`, including the naive and optimized
//!   active-gradient-offloading schedules of §IV-C). These regenerate the
//!   paper's figures.
//! * **Real execution** — [`engine`] actually fine-tunes a small GPT
//!   through `ratel-storage` tiers: parameters and optimizer states live as
//!   blobs in the SSD tier, activations are swapped or recomputed per the
//!   planner's decisions, and a concurrent CPU-optimizer thread consumes
//!   gradients the moment backward produces them (active gradient
//!   offloading) while keeping updates fully synchronous.

pub mod api;
pub mod batch;
pub mod cost;
pub mod engine;
pub mod error;
pub mod memory;
pub mod offload;
pub mod planner;
pub mod profile;
pub mod report;
pub mod schedule;

pub use api::{Ratel, RatelTrainer, TrainingPlan};
pub use batch::Batch;
pub use error::RatelError;
pub use memory::RatelMemoryModel;
pub use offload::GradOffloadMode;
pub use planner::{ActivationPlanner, SwapPlan};
pub use profile::HardwareProfile;
pub use report::IterationReport;
pub use schedule::RatelSchedule;
// The static schedule analyzer, re-exported so downstream code can
// verify the specs this crate emits without naming a second crate.
pub use ratel_verify as verify;

/// One-stop imports for the plan-first training flow:
///
/// ```no_run
/// use ratel::prelude::*;
///
/// let trainer = Ratel::init(GptConfig::tiny()).plan()?.build()?;
/// # Ok::<(), RatelError>(())
/// ```
pub mod prelude {
    pub use crate::api::{Ratel, RatelTrainer, TrainingPlan};
    pub use crate::batch::Batch;
    pub use crate::engine::executor::TaskBreakdown;
    pub use crate::engine::{
        ActDecision, EngineConfig, ExecutionOptions, ExecutorOptions, RatelEngine, StepStats,
    };
    pub use crate::error::RatelError;
    pub use crate::offload::GradOffloadMode;
    pub use ratel_tensor::{AdamParams, GptConfig};
}
