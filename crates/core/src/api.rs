//! The user-facing training interface (§IV-E, Fig. 4).
//!
//! The paper's pitch is that Ratel hides all tensor management behind a
//! few wrappers: `Ratel_init()` runs the profiling stage, `Ratel_hook()`
//! injects prefetching/pipelining into the model, and `Ratel_Optimizer`
//! replaces `optimizer.step()` with active gradient offloading. This
//! module is that interface for the real engine:
//!
//! ```no_run
//! use ratel::api::Ratel;
//! use ratel::Batch;
//! use ratel_tensor::GptConfig;
//!
//! // Ratel_init(): profile the substrate, plan activations, wire the
//! // engine — one builder chain instead of manual tensor management.
//! let mut trainer = Ratel::init(GptConfig::tiny())
//!     .seed(7)
//!     .learning_rate(3e-3)
//!     .build()
//!     .unwrap();
//!
//! let (tokens, targets) = ratel::engine::data::learnable_batch(&GptConfig::tiny(), 1);
//! let batch = Batch::new(&GptConfig::tiny(), &tokens, &targets).unwrap();
//! for _epoch in 0..3 {
//!     // No optimizer.step(): updates happen during backward.
//!     let stats = trainer.step(batch).unwrap();
//!     println!("loss {:.3}", stats.loss);
//! }
//! ```
//!
//! Every fallible call returns [`RatelError`]; batches are validated at
//! construction (see [`Batch`]) instead of panicking deep in the tensor
//! crate; and the builder's [`Ratel::build`] reports *every* config
//! violation at once.
//!
//! # Plan-first flow
//!
//! [`Ratel::build`] is a shorthand for [`Ratel::plan`] followed by
//! [`TrainingPlan::build`]. The intermediate [`TrainingPlan`] is the
//! profiled, validated movement plan: inspect its activation
//! [`decisions`](TrainingPlan::decisions), its per-route
//! [`planned_route_bytes`](TrainingPlan::planned_route_bytes), or run
//! the full static [`verify`](TrainingPlan::verify) pass — all before
//! any tensor is allocated. The engine then executes exactly this plan.

use std::sync::Arc;

use ratel_storage::{FaultPlan, RetryPolicy, Route, TierConfig, TieredStore};
use ratel_tensor::{AdamParams, GptConfig};

use crate::batch::Batch;
use crate::engine::lr::LrSchedule;
use crate::engine::profiler::{plan_decisions, MeasuredProfile};
use crate::engine::scaler::ScalePolicy;
use crate::engine::{
    movement_spec_for, ActDecision, EngineConfig, ExecutionOptions, RatelEngine, StepStats,
};
use crate::error::RatelError;
use crate::schedule::IterationSpec;

/// Builder for a [`RatelTrainer`] — the `Ratel_init()` of Fig. 4.
#[derive(Debug, Clone)]
pub struct Ratel {
    model: GptConfig,
    seed: u64,
    adam: AdamParams,
    gpu_capacity: Option<u64>,
    host_capacity: Option<u64>,
    loss_scale: ScalePolicy,
    grad_clip: Option<f32>,
    lr_schedule: LrSchedule,
    dropout: Option<f32>,
    frozen_layers: Vec<usize>,
    throttles: Vec<(Route, f64)>,
    act_override: Option<Vec<ActDecision>>,
    execution: ExecutionOptions,
    probe_bytes: usize,
    fault_plan: Option<Arc<FaultPlan>>,
    retry_policy: Option<RetryPolicy>,
    spill_on_host_pressure: bool,
    resume_from: Option<std::path::PathBuf>,
}

impl Ratel {
    /// Starts configuring a trainer for `model`.
    pub fn init(model: GptConfig) -> Self {
        Ratel {
            model,
            seed: 42,
            adam: AdamParams::default(),
            gpu_capacity: None,
            host_capacity: None,
            loss_scale: ScalePolicy::None,
            grad_clip: None,
            lr_schedule: LrSchedule::Constant,
            dropout: None,
            frozen_layers: Vec::new(),
            throttles: Vec::new(),
            act_override: None,
            execution: ExecutionOptions::default(),
            probe_bytes: 1 << 20,
            fault_plan: None,
            retry_policy: None,
            spill_on_host_pressure: false,
            resume_from: None,
        }
    }

    /// Parameter-initialization seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adam learning rate (other hyperparameters stay at defaults).
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.adam.lr = lr;
        self
    }

    /// Full Adam hyperparameters.
    pub fn adam(mut self, adam: AdamParams) -> Self {
        self.adam = adam;
        self
    }

    /// Caps the "GPU" arena (bytes).
    pub fn gpu_capacity(mut self, bytes: u64) -> Self {
        self.gpu_capacity = Some(bytes);
        self
    }

    /// Caps the host pool (bytes).
    pub fn host_capacity(mut self, bytes: u64) -> Self {
        self.host_capacity = Some(bytes);
        self
    }

    /// Mixed-precision loss-scaling policy.
    pub fn loss_scale(mut self, policy: ScalePolicy) -> Self {
        self.loss_scale = policy;
        self
    }

    /// Per-layer gradient-norm clip.
    pub fn grad_clip(mut self, max_norm: f32) -> Self {
        self.grad_clip = Some(max_norm);
        self
    }

    /// Learning-rate schedule applied on top of the base rate.
    pub fn lr_schedule(mut self, schedule: LrSchedule) -> Self {
        self.lr_schedule = schedule;
        self
    }

    /// Residual dropout probability.
    pub fn dropout(mut self, p: f32) -> Self {
        self.dropout = Some(p);
        self
    }

    /// Selects how steps run: the schedule-driven executor (default) or
    /// one of the legacy hand-coded stage loops. See
    /// [`ExecutionOptions`].
    pub fn execution(mut self, execution: ExecutionOptions) -> Self {
        self.execution = execution;
        self
    }

    /// Disables the parameter-prefetch pipeline (on by default).
    #[deprecated(
        since = "0.2.0",
        note = "use `execution(ExecutionOptions::LegacyOverlapped { prefetch_params: false })`"
    )]
    pub fn without_param_prefetch(mut self) -> Self {
        self.execution = match self.execution {
            ExecutionOptions::LegacySeparateStage { .. } => ExecutionOptions::LegacySeparateStage {
                prefetch_params: false,
            },
            _ => ExecutionOptions::LegacyOverlapped {
                prefetch_params: false,
            },
        };
        self
    }

    /// Freezes the given layers (0 = embedding, 1..=L = blocks, L+1 =
    /// head): no gradients, no optimizer I/O — parameter-efficient
    /// fine-tuning.
    pub fn freeze_layers(mut self, layers: Vec<usize>) -> Self {
        self.frozen_layers = layers;
        self
    }

    /// Emulates a link speed (bytes/s) on an inter-tier route; profiling
    /// measures the throttled rate and the planner adapts to it.
    pub fn throttle(mut self, route: Route, bytes_per_sec: f64) -> Self {
        self.throttles.push((route, bytes_per_sec));
        self
    }

    /// Bypasses the planner with explicit per-block decisions.
    pub fn activation_decisions(mut self, decisions: Vec<ActDecision>) -> Self {
        self.act_override = Some(decisions);
        self
    }

    /// Disables overlap (the Ratel+ZeRO ablation).
    #[deprecated(
        since = "0.2.0",
        note = "use `execution(ExecutionOptions::LegacySeparateStage { prefetch_params: true })` \
                or the executor's `GradOffloadMode::SeparateStage`"
    )]
    pub fn separate_optimizer_stage(mut self) -> Self {
        self.execution = match self.execution {
            ExecutionOptions::LegacyOverlapped { prefetch_params }
            | ExecutionOptions::LegacySeparateStage { prefetch_params } => {
                ExecutionOptions::LegacySeparateStage { prefetch_params }
            }
            ExecutionOptions::Executor(_) => ExecutionOptions::LegacySeparateStage {
                prefetch_params: true,
            },
        };
        self
    }

    /// Size of the profiling stage's bandwidth probe blob.
    pub fn probe_bytes(mut self, bytes: usize) -> Self {
        self.probe_bytes = bytes;
        self
    }

    /// Installs a deterministic SSD fault-injection plan on the trainer's
    /// store (see [`FaultPlan`]). Injection starts *after* engine
    /// initialization, so op indices count training-time SSD operations.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overrides the SSD retry policy (default: 3 retries, 500 µs base
    /// backoff, doubling).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = Some(policy);
        self
    }

    /// Enables graceful degradation under host-pool pressure: blobs
    /// headed for a full host pool land on the SSD tier (each spill is
    /// counted in the store's fault stats) instead of failing the step.
    pub fn spill_on_host_pressure(mut self) -> Self {
        self.spill_on_host_pressure = true;
        self
    }

    /// Restores the newest good checkpoint generation from `dir` right
    /// after the trainer is built — the resume path after a crash.
    pub fn resume_from(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.resume_from = Some(dir.into());
        self
    }

    /// Runs the profiling stage (unless decisions were overridden), plans
    /// the activations, and returns the [`TrainingPlan`] — validated,
    /// inspectable, and statically verifiable — without building any
    /// model state yet. [`TrainingPlan::build`] turns it into a trainer.
    ///
    /// # Errors
    /// [`RatelError::InvalidConfig`] listing *every* configuration
    /// violation found; [`RatelError::Storage`] if the profiling
    /// substrate fails.
    pub fn plan(self) -> Result<TrainingPlan, RatelError> {
        // Validate everything up front on a provisional config. When the
        // planner picks the decisions their count is correct by
        // construction, so a placeholder stands in for the shape checks.
        let provisional = EngineConfig {
            model: self.model,
            seed: self.seed,
            adam: self.adam,
            act_decisions: self
                .act_override
                .clone()
                .unwrap_or_else(|| vec![ActDecision::Recompute; self.model.layers]),
            gpu_capacity: self.gpu_capacity,
            host_capacity: self.host_capacity,
            loss_scale: self.loss_scale,
            grad_clip: self.grad_clip,
            lr_schedule: self.lr_schedule,
            dropout: self.dropout,
            execution: self.execution,
            frozen_layers: self.frozen_layers.clone(),
        };
        let violations = provisional.validate();
        if !violations.is_empty() {
            return Err(RatelError::InvalidConfig(violations));
        }

        let (decisions, measured) = match &self.act_override {
            Some(d) => (d.clone(), None),
            None => {
                // Profiling stage: measure on a scratch store configured
                // like the real one (same throttles; no fault plan — the
                // plan's op clock must count the trainer's own SSD ops).
                let scratch = TieredStore::new(TierConfig::unbounded_temp())?;
                for &(route, rate) in &self.throttles {
                    scratch.set_throttle(route, Some(rate));
                }
                let measured = MeasuredProfile::measure(self.model, &scratch, self.probe_bytes)?;
                // MEM_avail: what the host pool can devote to activations
                // (half of it, leaving room for staging and gradients), or
                // effectively unbounded when uncapped.
                let budget = self
                    .host_capacity
                    .map(|c| c as f64 * 0.5)
                    .unwrap_or(f64::INFINITY);
                let hw = measured.to_hardware_profile(budget);
                (plan_decisions(self.model, &hw), Some(measured))
            }
        };

        let config = EngineConfig {
            act_decisions: decisions.clone(),
            ..provisional
        };
        Ok(TrainingPlan {
            builder: self,
            config,
            decisions,
            measured,
        })
    }

    /// [`Ratel::plan`] followed by [`TrainingPlan::build`]: profile,
    /// plan, and construct the trainer in one call.
    ///
    /// # Errors
    /// Everything [`Ratel::plan`] reports, plus
    /// [`RatelError::CheckpointCorrupt`] if [`Ratel::resume_from`] was
    /// given a directory with no loadable generation.
    pub fn build(self) -> Result<RatelTrainer, RatelError> {
        self.plan()?.build()
    }
}

/// A validated movement plan, between [`Ratel::plan`] and
/// [`TrainingPlan::build`].
///
/// The plan owns the fully resolved [`EngineConfig`] (profiled
/// activation decisions included) and can lower it to the schedule twin
/// — the same [`IterationSpec`] the engine executes and `ratel-bench
/// validate` audits — before any model parameter exists. That makes
/// "what will move where, and is it sound?" answerable up front:
/// [`TrainingPlan::planned_route_bytes`] for the traffic contract,
/// [`TrainingPlan::verify`] for the full static pass inventory.
#[derive(Debug, Clone)]
pub struct TrainingPlan {
    builder: Ratel,
    config: EngineConfig,
    decisions: Vec<ActDecision>,
    measured: Option<MeasuredProfile>,
}

impl TrainingPlan {
    /// The fully resolved engine configuration the trainer will run.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The activation decisions in effect (planned or overridden).
    pub fn decisions(&self) -> &[ActDecision] {
        &self.decisions
    }

    /// The profiling stage's measurements (None when decisions were
    /// overridden).
    pub fn measured(&self) -> Option<&MeasuredProfile> {
        self.measured.as_ref()
    }

    /// Lowers the plan to its schedule twin: the [`IterationSpec`] whose
    /// task DAG the executor runs (see
    /// [`movement_spec_for`](crate::engine::movement_spec_for)).
    pub fn spec(&self) -> IterationSpec {
        movement_spec_for(&self.config)
    }

    /// Per-route byte totals one step is planned to move, indexed like
    /// [`Route::ALL`] (GPU→host, host→GPU, host→SSD, SSD→host). The live
    /// conformance monitor holds each step to exactly these numbers.
    pub fn planned_route_bytes(&self) -> [u64; 4] {
        self.spec().planned_route_bytes()
    }

    /// Statically verifies the plan's task DAG (staleness,
    /// use-before-fetch, WAR hazards, residency) with `ratel-verify`.
    ///
    /// # Errors
    /// [`RatelError::InvalidConfig`] carrying the rendered report when
    /// any pass fails.
    pub fn verify(&self) -> Result<(), RatelError> {
        let report = self.spec().verify(1, &ratel_verify::Limits::none());
        if report.is_clean() {
            Ok(())
        } else {
            Err(RatelError::InvalidConfig(vec![report.render()]))
        }
    }

    /// A short human-readable description of the plan.
    pub fn summary(&self) -> String {
        let m = self.config.model;
        let [g2h, h2g, h2s, s2h] = self.planned_route_bytes();
        let (graph, _, _) = self.spec().build();
        format!(
            "{} layers ({} blocks), hidden {}, {:?}: {} tasks/step; \
             planned bytes g2h {g2h}, h2g {h2g}, h2s {h2s}, s2h {s2h}",
            m.layers + 2,
            m.layers,
            m.hidden,
            self.config.execution,
            graph.len(),
        )
    }

    /// Builds the engine and trainer that execute this plan.
    ///
    /// # Errors
    /// [`RatelError::Storage`] if the substrate fails;
    /// [`RatelError::CheckpointCorrupt`] if the builder's
    /// [`Ratel::resume_from`] directory has no loadable generation.
    pub fn build(self) -> Result<RatelTrainer, RatelError> {
        let TrainingPlan {
            builder,
            config,
            decisions,
            measured,
        } = self;
        let engine = RatelEngine::new(config)?;
        for &(route, rate) in &builder.throttles {
            engine.set_route_throttle(route, Some(rate));
        }
        // Robustness knobs land on the live store only after the engine's
        // initial state placement, so fault op indices are training ops.
        if let Some(policy) = builder.retry_policy {
            engine.store().set_retry_policy(policy);
        }
        if builder.spill_on_host_pressure {
            engine.store().set_spill_on_host_pressure(true);
        }
        if let Some(plan) = builder.fault_plan {
            engine.store().set_fault_plan(Some(plan));
        }
        let mut trainer = RatelTrainer {
            engine,
            decisions,
            measured,
            loss_history: Vec::new(),
        };
        if let Some(dir) = &builder.resume_from {
            trainer.load_checkpoint(dir)?;
        }
        Ok(trainer)
    }
}

/// A built trainer: step it like `loss.backward()` in Fig. 4 — no
/// `optimizer.step()` call exists because updates happen inside.
pub struct RatelTrainer {
    engine: RatelEngine,
    decisions: Vec<ActDecision>,
    measured: Option<MeasuredProfile>,
    loss_history: Vec<f32>,
}

impl std::fmt::Debug for RatelTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RatelTrainer")
            .field("decisions", &self.decisions)
            .field("steps_recorded", &self.loss_history.len())
            .finish_non_exhaustive()
    }
}

impl RatelTrainer {
    /// One fine-tuning step; the optimizer runs inside (actively
    /// offloaded). Records the loss in the history.
    pub fn step(&mut self, batch: Batch<'_>) -> Result<StepStats, RatelError> {
        let stats = self.engine.train_step(batch.tokens(), batch.targets())?;
        self.loss_history.push(stats.loss);
        Ok(stats)
    }

    /// Trains over a set of batches for `epochs`, returning the final
    /// epoch's mean loss. Each pair is validated like a [`Batch`].
    pub fn train_epochs(
        &mut self,
        batches: &[(Vec<usize>, Vec<usize>)],
        epochs: usize,
    ) -> Result<f32, RatelError> {
        if batches.is_empty() {
            return Err(RatelError::InvalidBatch("need at least one batch".into()));
        }
        let model = self.engine.model_config();
        let mut last = 0.0f32;
        for _ in 0..epochs {
            let mut sum = 0.0f32;
            for (t, y) in batches {
                sum += self.step(Batch::new(&model, t, y)?)?.loss;
            }
            last = sum / batches.len() as f32;
        }
        Ok(last)
    }

    /// One step with gradient accumulation over micro-batches.
    pub fn step_accumulated(
        &mut self,
        micro_batches: &[Batch<'_>],
    ) -> Result<StepStats, RatelError> {
        if micro_batches.is_empty() {
            return Err(RatelError::InvalidBatch(
                "need at least one micro-batch".into(),
            ));
        }
        let owned: Vec<(Vec<usize>, Vec<usize>)> = micro_batches
            .iter()
            .map(|b| (b.tokens().to_vec(), b.targets().to_vec()))
            .collect();
        let stats = self.engine.train_step_accumulated(&owned)?;
        self.loss_history.push(stats.loss);
        Ok(stats)
    }

    /// Evaluation loss without updating.
    pub fn eval(&mut self, batch: Batch<'_>) -> Result<f32, RatelError> {
        self.engine.eval_loss(batch.tokens(), batch.targets())
    }

    /// Evaluation perplexity (`exp` of the mean cross-entropy).
    pub fn perplexity(&mut self, batch: Batch<'_>) -> Result<f32, RatelError> {
        Ok(self.eval(batch)?.exp())
    }

    /// Greedy generation through the tiered engine.
    pub fn generate(
        &mut self,
        prompt: &[usize],
        max_new_tokens: usize,
    ) -> Result<Vec<usize>, RatelError> {
        self.engine.generate(prompt, max_new_tokens)
    }

    /// KV-cached greedy generation (context must fit `seq` positions).
    pub fn generate_cached(
        &mut self,
        prompt: &[usize],
        max_new_tokens: usize,
    ) -> Result<Vec<usize>, RatelError> {
        self.engine.generate_cached(prompt, max_new_tokens)
    }

    /// The activation decisions in effect (planned or overridden).
    pub fn decisions(&self) -> &[ActDecision] {
        &self.decisions
    }

    /// The profiling stage's measurements (None when decisions were
    /// overridden).
    pub fn measured(&self) -> Option<&MeasuredProfile> {
        self.measured.as_ref()
    }

    /// All step losses so far.
    pub fn loss_history(&self) -> &[f32] {
        &self.loss_history
    }

    /// Saves a crash-safe checkpoint generation into `dir` (see
    /// [`crate::engine::checkpoint`] for the on-disk format).
    pub fn save_checkpoint(&self, dir: &std::path::Path) -> Result<(), RatelError> {
        self.engine.save_checkpoint(dir)
    }

    /// Restores the newest verifiable checkpoint generation from `dir`,
    /// falling back through older generations on corruption.
    pub fn load_checkpoint(&mut self, dir: &std::path::Path) -> Result<(), RatelError> {
        self.engine.load_checkpoint(dir)
    }

    /// Direct access to the underlying engine.
    pub fn engine(&mut self) -> &mut RatelEngine {
        &mut self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::data::learnable_batch;

    #[test]
    fn builder_profiles_and_plans() {
        let mut trainer = Ratel::init(GptConfig::tiny()).seed(3).build().unwrap();
        assert_eq!(trainer.decisions().len(), GptConfig::tiny().layers);
        assert!(trainer.measured().is_some());
        let (t, y) = learnable_batch(&GptConfig::tiny(), 1);
        let s = trainer
            .step(Batch::new(&GptConfig::tiny(), &t, &y).unwrap())
            .unwrap();
        assert!(s.loss.is_finite());
        assert_eq!(trainer.loss_history().len(), 1);
    }

    #[test]
    fn plan_is_inspectable_and_verifiable_before_build() {
        let model = GptConfig::tiny();
        let plan = Ratel::init(model).seed(3).plan().unwrap();
        assert_eq!(plan.decisions().len(), model.layers);
        assert!(plan.measured().is_some());
        plan.verify().expect("plan must pass static verification");
        let bytes = plan.planned_route_bytes();
        assert!(bytes.iter().all(|&b| b > 0), "{bytes:?}");
        let summary = plan.summary();
        assert!(summary.contains("tasks/step"), "{summary}");
        // The plan the trainer executes is the plan we inspected.
        let mut trainer = plan.build().unwrap();
        let (t, y) = learnable_batch(&model, 2);
        let stats = trainer.step(Batch::new(&model, &t, &y).unwrap()).unwrap();
        assert!(stats.loss.is_finite());
        assert!(stats.tasks.is_some(), "default execution is the executor");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_knobs_map_onto_legacy_execution() {
        use crate::engine::ExecutionOptions;
        let b = Ratel::init(GptConfig::tiny()).without_param_prefetch();
        assert_eq!(
            b.execution,
            ExecutionOptions::LegacyOverlapped {
                prefetch_params: false
            }
        );
        let b = Ratel::init(GptConfig::tiny()).separate_optimizer_stage();
        assert_eq!(
            b.execution,
            ExecutionOptions::LegacySeparateStage {
                prefetch_params: true
            }
        );
        // Order-independent composition, like the old boolean pair.
        for b in [
            Ratel::init(GptConfig::tiny())
                .without_param_prefetch()
                .separate_optimizer_stage(),
            Ratel::init(GptConfig::tiny())
                .separate_optimizer_stage()
                .without_param_prefetch(),
        ] {
            assert_eq!(
                b.execution,
                ExecutionOptions::LegacySeparateStage {
                    prefetch_params: false
                }
            );
        }
    }

    #[test]
    fn train_epochs_reduces_loss() {
        let mut trainer = Ratel::init(GptConfig::tiny())
            .seed(4)
            .learning_rate(3e-3)
            .build()
            .unwrap();
        let batches: Vec<_> = (0..4)
            .map(|s| learnable_batch(&GptConfig::tiny(), s))
            .collect();
        let first = trainer.train_epochs(&batches, 1).unwrap();
        let later = trainer.train_epochs(&batches, 8).unwrap();
        assert!(later < first * 0.8, "{first} -> {later}");
    }

    #[test]
    fn explicit_decisions_skip_profiling() {
        let model = GptConfig::tiny();
        let trainer = Ratel::init(model)
            .activation_decisions(vec![ActDecision::Recompute; model.layers])
            .build()
            .unwrap();
        assert!(trainer.measured().is_none());
        assert!(trainer
            .decisions()
            .iter()
            .all(|d| *d == ActDecision::Recompute));
    }

    #[test]
    fn throttled_links_steer_the_plan_toward_recompute() {
        let model = GptConfig::tiny();
        // Glacial GPU<->host link: swapping is hopeless; the profiling
        // stage must notice and choose recomputation.
        let trainer = Ratel::init(model)
            .throttle(Route::GpuToHost, 1e4)
            .throttle(Route::HostToGpu, 1e4)
            .probe_bytes(1 << 14)
            .build()
            .unwrap();
        assert!(
            trainer
                .decisions()
                .iter()
                .all(|d| *d == ActDecision::Recompute),
            "{:?}",
            trainer.decisions()
        );
    }

    #[test]
    fn wrong_decision_count_is_reported_not_panicked() {
        let err = Ratel::init(GptConfig::tiny())
            .activation_decisions(vec![ActDecision::Recompute])
            .build()
            .unwrap_err();
        match err {
            RatelError::InvalidConfig(v) => {
                assert!(
                    v.iter()
                        .any(|m| m.contains("one activation decision per block")),
                    "{v:?}"
                );
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    #[test]
    fn build_reports_every_violation_at_once() {
        let mut model = GptConfig::tiny();
        model.heads = 5; // 32 % 5 != 0
        model.batch = 0;
        let err = Ratel::init(model)
            .activation_decisions(vec![ActDecision::Recompute]) // wrong count
            .build()
            .unwrap_err();
        match err {
            RatelError::InvalidConfig(v) => {
                assert!(v.len() >= 3, "want all violations listed, got {v:?}");
                let joined = v.join("\n");
                assert!(joined.contains("divisible by heads"), "{joined}");
                assert!(joined.contains("micro-batch"), "{joined}");
                assert!(joined.contains("one activation decision"), "{joined}");
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    #[test]
    fn undersized_capacities_are_rejected_up_front() {
        let err = Ratel::init(GptConfig::tiny())
            .gpu_capacity(64) // cannot even stage one layer's P16
            .host_capacity(64)
            .build()
            .unwrap_err();
        match err {
            RatelError::InvalidConfig(v) => {
                let joined = v.join("\n");
                assert!(joined.contains("gpu capacity"), "{joined}");
                assert!(joined.contains("host capacity"), "{joined}");
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    #[test]
    fn invalid_batches_are_rejected_at_the_boundary() {
        let model = GptConfig::tiny();
        let mut trainer = Ratel::init(model)
            .activation_decisions(vec![ActDecision::Recompute; model.layers])
            .build()
            .unwrap();
        let short = vec![0usize; 3];
        assert!(Batch::new(&model, &short, &short).is_err());
        // Via train_epochs, which validates each owned pair.
        let err = trainer
            .train_epochs(&[(short.clone(), short)], 1)
            .unwrap_err();
        assert!(matches!(err, RatelError::InvalidBatch(_)), "{err}");
        assert!(trainer.train_epochs(&[], 1).is_err());
        assert!(trainer.step_accumulated(&[]).is_err());
    }
}
