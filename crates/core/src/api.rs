//! The user-facing training interface (§IV-E, Fig. 4).
//!
//! The paper's pitch is that Ratel hides all tensor management behind a
//! few wrappers: `Ratel_init()` runs the profiling stage, `Ratel_hook()`
//! injects prefetching/pipelining into the model, and `Ratel_Optimizer`
//! replaces `optimizer.step()` with active gradient offloading. This
//! module is that interface for the real engine:
//!
//! ```no_run
//! use ratel::api::Ratel;
//! use ratel_tensor::GptConfig;
//!
//! // Ratel_init(): profile the substrate, plan activations, wire the
//! // engine — one builder chain instead of manual tensor management.
//! let mut trainer = Ratel::init(GptConfig::tiny())
//!     .seed(7)
//!     .learning_rate(3e-3)
//!     .build()
//!     .unwrap();
//!
//! let (tokens, targets) = ratel::engine::data::learnable_batch(&GptConfig::tiny(), 1);
//! for _epoch in 0..3 {
//!     // No optimizer.step(): updates happen during backward.
//!     let stats = trainer.step(&tokens, &targets).unwrap();
//!     println!("loss {:.3}", stats.loss);
//! }
//! ```

use ratel_storage::{Route, StorageError, TierConfig, TieredStore};
use ratel_tensor::{AdamParams, GptConfig};

use crate::engine::lr::LrSchedule;
use crate::engine::profiler::{plan_decisions, MeasuredProfile};
use crate::engine::scaler::ScalePolicy;
use crate::engine::{ActDecision, EngineConfig, RatelEngine, StepStats};

/// Builder for a [`RatelTrainer`] — the `Ratel_init()` of Fig. 4.
#[derive(Debug, Clone)]
pub struct Ratel {
    model: GptConfig,
    seed: u64,
    adam: AdamParams,
    gpu_capacity: Option<u64>,
    host_capacity: Option<u64>,
    loss_scale: ScalePolicy,
    grad_clip: Option<f32>,
    lr_schedule: LrSchedule,
    dropout: Option<f32>,
    prefetch_params: bool,
    frozen_layers: Vec<usize>,
    throttles: Vec<(Route, f64)>,
    act_override: Option<Vec<ActDecision>>,
    active_offload: bool,
    probe_bytes: usize,
}

impl Ratel {
    /// Starts configuring a trainer for `model`.
    pub fn init(model: GptConfig) -> Self {
        Ratel {
            model,
            seed: 42,
            adam: AdamParams::default(),
            gpu_capacity: None,
            host_capacity: None,
            loss_scale: ScalePolicy::None,
            grad_clip: None,
            lr_schedule: LrSchedule::Constant,
            dropout: None,
            prefetch_params: true,
            frozen_layers: Vec::new(),
            throttles: Vec::new(),
            act_override: None,
            active_offload: true,
            probe_bytes: 1 << 20,
        }
    }

    /// Parameter-initialization seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adam learning rate (other hyperparameters stay at defaults).
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.adam.lr = lr;
        self
    }

    /// Full Adam hyperparameters.
    pub fn adam(mut self, adam: AdamParams) -> Self {
        self.adam = adam;
        self
    }

    /// Caps the "GPU" arena (bytes).
    pub fn gpu_capacity(mut self, bytes: u64) -> Self {
        self.gpu_capacity = Some(bytes);
        self
    }

    /// Caps the host pool (bytes).
    pub fn host_capacity(mut self, bytes: u64) -> Self {
        self.host_capacity = Some(bytes);
        self
    }

    /// Mixed-precision loss-scaling policy.
    pub fn loss_scale(mut self, policy: ScalePolicy) -> Self {
        self.loss_scale = policy;
        self
    }

    /// Per-layer gradient-norm clip.
    pub fn grad_clip(mut self, max_norm: f32) -> Self {
        self.grad_clip = Some(max_norm);
        self
    }

    /// Learning-rate schedule applied on top of the base rate.
    pub fn lr_schedule(mut self, schedule: LrSchedule) -> Self {
        self.lr_schedule = schedule;
        self
    }

    /// Residual dropout probability.
    pub fn dropout(mut self, p: f32) -> Self {
        self.dropout = Some(p);
        self
    }

    /// Disables the parameter-prefetch pipeline (on by default).
    pub fn without_param_prefetch(mut self) -> Self {
        self.prefetch_params = false;
        self
    }

    /// Freezes the given layers (0 = embedding, 1..=L = blocks, L+1 =
    /// head): no gradients, no optimizer I/O — parameter-efficient
    /// fine-tuning.
    pub fn freeze_layers(mut self, layers: Vec<usize>) -> Self {
        self.frozen_layers = layers;
        self
    }

    /// Emulates a link speed (bytes/s) on an inter-tier route; profiling
    /// measures the throttled rate and the planner adapts to it.
    pub fn throttle(mut self, route: Route, bytes_per_sec: f64) -> Self {
        self.throttles.push((route, bytes_per_sec));
        self
    }

    /// Bypasses the planner with explicit per-block decisions.
    pub fn activation_decisions(mut self, decisions: Vec<ActDecision>) -> Self {
        self.act_override = Some(decisions);
        self
    }

    /// Disables overlap (the Ratel+ZeRO ablation).
    pub fn separate_optimizer_stage(mut self) -> Self {
        self.active_offload = false;
        self
    }

    /// Size of the profiling stage's bandwidth probe blob.
    pub fn probe_bytes(mut self, bytes: usize) -> Self {
        self.probe_bytes = bytes;
        self
    }

    /// Runs the profiling stage (unless decisions were overridden), plans
    /// the activations, and builds the trainer.
    pub fn build(self) -> Result<RatelTrainer, StorageError> {
        let (decisions, measured) = match &self.act_override {
            Some(d) => {
                assert_eq!(
                    d.len(),
                    self.model.layers,
                    "one activation decision per block"
                );
                (d.clone(), None)
            }
            None => {
                // Profiling stage: measure on a scratch store configured
                // like the real one (same throttles).
                let scratch = TieredStore::new(TierConfig::unbounded_temp())?;
                for &(route, rate) in &self.throttles {
                    scratch.set_throttle(route, Some(rate));
                }
                let measured = MeasuredProfile::measure(self.model, &scratch, self.probe_bytes)?;
                // MEM_avail: what the host pool can devote to activations
                // (half of it, leaving room for staging and gradients), or
                // effectively unbounded when uncapped.
                let budget = self
                    .host_capacity
                    .map(|c| c as f64 * 0.5)
                    .unwrap_or(f64::INFINITY);
                let hw = measured.to_hardware_profile(budget);
                (plan_decisions(self.model, &hw), Some(measured))
            }
        };

        let engine = RatelEngine::new(EngineConfig {
            model: self.model,
            seed: self.seed,
            adam: self.adam,
            act_decisions: decisions.clone(),
            gpu_capacity: self.gpu_capacity,
            host_capacity: self.host_capacity,
            active_offload: self.active_offload,
            loss_scale: self.loss_scale,
            grad_clip: self.grad_clip,
            lr_schedule: self.lr_schedule,
            dropout: self.dropout,
            prefetch_params: self.prefetch_params,
            frozen_layers: self.frozen_layers.clone(),
        })?;
        for &(route, rate) in &self.throttles {
            engine.set_route_throttle(route, Some(rate));
        }
        Ok(RatelTrainer {
            engine,
            decisions,
            measured,
            loss_history: Vec::new(),
        })
    }
}

/// A built trainer: step it like `loss.backward()` in Fig. 4 — no
/// `optimizer.step()` call exists because updates happen inside.
pub struct RatelTrainer {
    engine: RatelEngine,
    decisions: Vec<ActDecision>,
    measured: Option<MeasuredProfile>,
    loss_history: Vec<f32>,
}

impl RatelTrainer {
    /// One fine-tuning step; the optimizer runs inside (actively
    /// offloaded). Records the loss in the history.
    pub fn step(&mut self, tokens: &[usize], targets: &[usize]) -> Result<StepStats, StorageError> {
        let stats = self.engine.train_step(tokens, targets)?;
        self.loss_history.push(stats.loss);
        Ok(stats)
    }

    /// Trains over a set of batches for `epochs`, returning the final
    /// epoch's mean loss.
    pub fn train_epochs(
        &mut self,
        batches: &[(Vec<usize>, Vec<usize>)],
        epochs: usize,
    ) -> Result<f32, StorageError> {
        assert!(!batches.is_empty(), "need at least one batch");
        let mut last = 0.0f32;
        for _ in 0..epochs {
            let mut sum = 0.0f32;
            for (t, y) in batches {
                sum += self.step(t, y)?.loss;
            }
            last = sum / batches.len() as f32;
        }
        Ok(last)
    }

    /// One step with gradient accumulation over micro-batches.
    pub fn step_accumulated(
        &mut self,
        micro_batches: &[(Vec<usize>, Vec<usize>)],
    ) -> Result<StepStats, StorageError> {
        let stats = self.engine.train_step_accumulated(micro_batches)?;
        self.loss_history.push(stats.loss);
        Ok(stats)
    }

    /// Evaluation loss without updating.
    pub fn eval(&mut self, tokens: &[usize], targets: &[usize]) -> Result<f32, StorageError> {
        self.engine.eval_loss(tokens, targets)
    }

    /// Evaluation perplexity (`exp` of the mean cross-entropy).
    pub fn perplexity(&mut self, tokens: &[usize], targets: &[usize]) -> Result<f32, StorageError> {
        Ok(self.engine.eval_loss(tokens, targets)?.exp())
    }

    /// Greedy generation through the tiered engine.
    pub fn generate(
        &mut self,
        prompt: &[usize],
        max_new_tokens: usize,
    ) -> Result<Vec<usize>, StorageError> {
        self.engine.generate(prompt, max_new_tokens)
    }

    /// KV-cached greedy generation (context must fit `seq` positions).
    pub fn generate_cached(
        &mut self,
        prompt: &[usize],
        max_new_tokens: usize,
    ) -> Result<Vec<usize>, StorageError> {
        self.engine.generate_cached(prompt, max_new_tokens)
    }

    /// The activation decisions in effect (planned or overridden).
    pub fn decisions(&self) -> &[ActDecision] {
        &self.decisions
    }

    /// The profiling stage's measurements (None when decisions were
    /// overridden).
    pub fn measured(&self) -> Option<&MeasuredProfile> {
        self.measured.as_ref()
    }

    /// All step losses so far.
    pub fn loss_history(&self) -> &[f32] {
        &self.loss_history
    }

    /// Saves a checkpoint directory.
    pub fn save_checkpoint(&self, dir: &std::path::Path) -> Result<(), StorageError> {
        self.engine.save_checkpoint(dir)
    }

    /// Restores a checkpoint directory.
    pub fn load_checkpoint(&mut self, dir: &std::path::Path) -> Result<(), StorageError> {
        self.engine.load_checkpoint(dir)
    }

    /// Direct access to the underlying engine.
    pub fn engine(&mut self) -> &mut RatelEngine {
        &mut self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::data::learnable_batch;

    #[test]
    fn builder_profiles_and_plans() {
        let mut trainer = Ratel::init(GptConfig::tiny()).seed(3).build().unwrap();
        assert_eq!(trainer.decisions().len(), GptConfig::tiny().layers);
        assert!(trainer.measured().is_some());
        let (t, y) = learnable_batch(&GptConfig::tiny(), 1);
        let s = trainer.step(&t, &y).unwrap();
        assert!(s.loss.is_finite());
        assert_eq!(trainer.loss_history().len(), 1);
    }

    #[test]
    fn train_epochs_reduces_loss() {
        let mut trainer = Ratel::init(GptConfig::tiny())
            .seed(4)
            .learning_rate(3e-3)
            .build()
            .unwrap();
        let batches: Vec<_> = (0..4)
            .map(|s| learnable_batch(&GptConfig::tiny(), s))
            .collect();
        let first = trainer.train_epochs(&batches, 1).unwrap();
        let later = trainer.train_epochs(&batches, 8).unwrap();
        assert!(later < first * 0.8, "{first} -> {later}");
    }

    #[test]
    fn explicit_decisions_skip_profiling() {
        let model = GptConfig::tiny();
        let trainer = Ratel::init(model)
            .activation_decisions(vec![ActDecision::Recompute; model.layers])
            .build()
            .unwrap();
        assert!(trainer.measured().is_none());
        assert!(trainer
            .decisions()
            .iter()
            .all(|d| *d == ActDecision::Recompute));
    }

    #[test]
    fn throttled_links_steer_the_plan_toward_recompute() {
        let model = GptConfig::tiny();
        // Glacial GPU<->host link: swapping is hopeless; the profiling
        // stage must notice and choose recomputation.
        let trainer = Ratel::init(model)
            .throttle(Route::GpuToHost, 1e4)
            .throttle(Route::HostToGpu, 1e4)
            .probe_bytes(1 << 14)
            .build()
            .unwrap();
        assert!(
            trainer
                .decisions()
                .iter()
                .all(|d| *d == ActDecision::Recompute),
            "{:?}",
            trainer.decisions()
        );
    }

    #[test]
    #[should_panic(expected = "one activation decision per block")]
    fn wrong_decision_count_panics() {
        let _ = Ratel::init(GptConfig::tiny())
            .activation_decisions(vec![ActDecision::Recompute])
            .build();
    }
}
