//! Validated training batches.
//!
//! The old API took twin `&[usize], &[usize]` slices everywhere; a
//! mismatched pair panicked deep inside the tensor crate, long after the
//! mistake was made. A [`Batch`] is constructed once, validated at the
//! boundary, and borrowed by every step/eval call.

use ratel_tensor::GptConfig;

use crate::error::RatelError;

/// A validated `(tokens, targets)` pair for one model shape.
///
/// Construction checks what used to be scattered panics: the two slices
/// have equal length, that length is exactly the model's `batch * seq`
/// ids (sequence-major), and every id is inside the vocabulary.
#[derive(Debug, Clone, Copy)]
pub struct Batch<'a> {
    tokens: &'a [usize],
    targets: &'a [usize],
}

impl<'a> Batch<'a> {
    /// Validates `tokens`/`targets` against `model`.
    ///
    /// # Errors
    /// [`RatelError::InvalidBatch`] naming the first check that failed.
    pub fn new(
        model: &GptConfig,
        tokens: &'a [usize],
        targets: &'a [usize],
    ) -> Result<Self, RatelError> {
        let want = model.batch * model.seq;
        if tokens.len() != targets.len() {
            return Err(RatelError::InvalidBatch(format!(
                "tokens ({}) and targets ({}) differ in length",
                tokens.len(),
                targets.len()
            )));
        }
        if tokens.len() != want {
            return Err(RatelError::InvalidBatch(format!(
                "batch holds {} ids but the model needs batch * seq = {} * {} = {want}",
                tokens.len(),
                model.batch,
                model.seq
            )));
        }
        for (what, ids) in [("token", tokens), ("target", targets)] {
            if let Some((i, &id)) = ids.iter().enumerate().find(|(_, &id)| id >= model.vocab) {
                return Err(RatelError::InvalidBatch(format!(
                    "{what} id {id} at position {i} is outside the vocabulary (size {})",
                    model.vocab
                )));
            }
        }
        Ok(Batch { tokens, targets })
    }

    /// The input token ids (`batch * seq`, sequence-major).
    pub fn tokens(&self) -> &'a [usize] {
        self.tokens
    }

    /// The target ids, aligned with [`Batch::tokens`].
    pub fn targets(&self) -> &'a [usize] {
        self.targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_batch_passes() {
        let c = GptConfig::tiny();
        let ids = vec![0usize; c.batch * c.seq];
        let b = Batch::new(&c, &ids, &ids).unwrap();
        assert_eq!(b.tokens().len(), c.batch * c.seq);
        assert_eq!(b.targets().len(), c.batch * c.seq);
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let c = GptConfig::tiny();
        let a = vec![0usize; c.batch * c.seq];
        let b = vec![0usize; c.batch * c.seq - 1];
        let err = Batch::new(&c, &a, &b).unwrap_err();
        assert!(matches!(err, RatelError::InvalidBatch(_)), "{err}");
        assert!(err.to_string().contains("differ in length"));
    }

    #[test]
    fn wrong_size_is_rejected() {
        let c = GptConfig::tiny();
        let ids = vec![0usize; 3];
        let err = Batch::new(&c, &ids, &ids).unwrap_err();
        assert!(err.to_string().contains("batch * seq"), "{err}");
    }

    #[test]
    fn out_of_vocab_ids_are_rejected() {
        let c = GptConfig::tiny();
        let mut tokens = vec![0usize; c.batch * c.seq];
        let targets = tokens.clone();
        tokens[5] = c.vocab; // one past the end
        let err = Batch::new(&c, &tokens, &targets).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("position 5") && msg.contains("vocabulary"),
            "{msg}"
        );
    }
}
