//! Ratel's memory feasibility model: how much GPU memory, main memory, and
//! SSD capacity a (model, batch) combination needs under Ratel's placement.
//!
//! Ratel keeps model states and (overflow) activations on the SSDs, streams
//! one layer at a time through the GPU, and runs the optimizer out of core,
//! so its requirements are:
//!
//! * **GPU**: a triple-buffered fp16 copy of the largest layer (current +
//!   two prefetched — what lets transfers hide behind compute), that
//!   layer's fp16 gradient, the per-layer activation working set, and a
//!   fixed runtime overhead;
//! * **main memory**: pinned streaming buffers plus the out-of-core
//!   optimizer's working cache, which grow with total parameters — the
//!   `~0.8 bytes/param` term calibrated so that Fig. 8's maxima hold
//!   (135B-class at 128 GB, 276B-class at 256 GB);
//! * **SSD**: the full 16P of model states plus whatever activations spill.
//!
//! The constants are calibrated against the paper's reported maxima (see
//! DESIGN.md): 276B trains on a 24 GB RTX 4090 but 412B does not; 175B
//! trains on a 16 GB RTX 4080 with 256 GB of main memory but 276B does not.

use ratel_hw::ServerConfig;
use ratel_model::{ModelProfile, ModelStates};

/// Why a configuration cannot be trained.
#[derive(Debug, Clone, PartialEq)]
pub enum Infeasible {
    /// The GPU cannot hold one layer's working set.
    GpuMemory {
        /// Bytes needed.
        needed: f64,
        /// Bytes present.
        capacity: f64,
    },
    /// Main memory cannot hold the streaming/optimizer buffers.
    HostMemory {
        /// Bytes needed.
        needed: f64,
        /// Bytes present.
        capacity: f64,
    },
    /// The SSD array cannot hold model states (or there are no SSDs).
    SsdCapacity {
        /// Bytes needed.
        needed: f64,
        /// Bytes present.
        capacity: f64,
    },
}

/// Ratel's memory model with its calibrated constants.
#[derive(Debug, Clone, PartialEq)]
pub struct RatelMemoryModel {
    /// GPU bytes per parameter of the largest layer: triple-buffered fp16
    /// weights (3 x 2) plus the fp16 layer gradient (2).
    pub gpu_bytes_per_layer_param: f64,
    /// GPU activation working set, bytes per token-channel (`b*s*h`).
    pub gpu_workspace_bytes_per_tc: f64,
    /// Fixed GPU runtime overhead (allocator, kernels, fragmentation).
    pub gpu_overhead_bytes: f64,
    /// Fixed host overhead: pinned staging rings, framework state.
    pub host_base_bytes: f64,
    /// Host bytes per *total* parameter: optimizer working cache and
    /// gradient landing buffers.
    pub host_bytes_per_param: f64,
}

impl Default for RatelMemoryModel {
    fn default() -> Self {
        RatelMemoryModel {
            gpu_bytes_per_layer_param: 8.0,
            gpu_workspace_bytes_per_tc: 17.0,
            gpu_overhead_bytes: 2.3e9,
            host_base_bytes: 12e9,
            host_bytes_per_param: 0.8,
        }
    }
}

impl RatelMemoryModel {
    /// GPU bytes needed to execute one layer at a time.
    pub fn gpu_needed(&self, model: &ModelProfile) -> f64 {
        let token_channels = (model.batch * model.config.seq_len * model.config.hidden) as f64;
        self.gpu_bytes_per_layer_param * model.max_layer_params()
            + self.gpu_workspace_bytes_per_tc * token_channels
            + self.gpu_overhead_bytes
    }

    /// Main-memory bytes Ratel itself needs (excluding swapped activations,
    /// which are sized *to fit* whatever is left).
    pub fn host_needed(&self, model: &ModelProfile) -> f64 {
        self.host_base_bytes + self.host_bytes_per_param * model.total_params()
    }

    /// SSD bytes needed for model states (activation spill comes on top but
    /// is bounded by `A_all`, which we include for safety at large batch).
    pub fn ssd_needed(&self, model: &ModelProfile) -> f64 {
        let states = ModelStates {
            p32: 4.0 * model.total_params(),
            os32: 8.0 * model.total_params(),
            g16: 2.0 * model.total_params(),
            p16: 2.0 * model.total_params(),
        };
        states.total() + model.total_act_bytes()
    }

    /// `MEM_avail` of Eq. 3: host bytes left over to accommodate swapped
    /// activations.
    pub fn host_activation_budget(&self, server: &ServerConfig, model: &ModelProfile) -> f64 {
        (server.usable_main_memory() as f64 - self.host_needed(model)).max(0.0)
    }

    /// Checks whether Ratel can fine-tune `model` on `server`.
    pub fn check(&self, server: &ServerConfig, model: &ModelProfile) -> Result<(), Infeasible> {
        let gpu_needed = self.gpu_needed(model);
        let gpu_cap = server.gpu.memory_bytes as f64;
        if gpu_needed > gpu_cap {
            return Err(Infeasible::GpuMemory {
                needed: gpu_needed,
                capacity: gpu_cap,
            });
        }
        let host_needed = self.host_needed(model);
        let host_cap = server.usable_main_memory() as f64;
        if host_needed > host_cap {
            return Err(Infeasible::HostMemory {
                needed: host_needed,
                capacity: host_cap,
            });
        }
        let ssd_needed = self.ssd_needed(model);
        let ssd_cap = server.ssds.capacity_bytes() as f64;
        if ssd_needed > ssd_cap {
            return Err(Infeasible::SsdCapacity {
                needed: ssd_needed,
                capacity: ssd_cap,
            });
        }
        Ok(())
    }
}

/// The largest Table IV (or given ladder) model trainable under a
/// feasibility predicate, reported in billions of parameters (0 if none).
pub fn max_trainable_billions<F>(ladder: &[ratel_model::ModelConfig], feasible: F) -> f64
where
    F: Fn(&ratel_model::ModelConfig) -> bool,
{
    ladder
        .iter()
        .filter(|m| feasible(m))
        .map(|m| m.size_billions())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratel_hw::{GpuSpec, ServerConfig};
    use ratel_model::{zoo, ModelProfile};

    fn feasible(server: &ServerConfig, name: &str, batch: usize) -> bool {
        let model = ModelProfile::new(&zoo::llm(name), batch);
        RatelMemoryModel::default().check(server, &model).is_ok()
    }

    #[test]
    fn paper_headline_276b_on_4090_768g() {
        let server = ServerConfig::paper_default();
        assert!(feasible(&server, "276B", 1));
        assert!(
            !feasible(&server, "412B", 1),
            "412B should exceed 24 GB GPU"
        );
    }

    #[test]
    fn paper_headline_175b_on_4080_256g() {
        let server = ServerConfig::consumer_256g().with_gpu(GpuSpec::rtx4080());
        assert!(feasible(&server, "175B", 1));
        assert!(!feasible(&server, "276B", 1));
    }

    #[test]
    fn main_memory_bounds_large_models_fig8() {
        // 128 GB main memory: the 135B class trains at batch 12, 175B+ do
        // not (Fig. 8a).
        let server = ServerConfig::paper_default().with_main_memory(128 * (1 << 30));
        assert!(feasible(&server, "135B", 12));
        assert!(!feasible(&server, "175B", 12));
        // 256 GB lifts the cap to the GPU-bound 276B at small batch
        // (Fig. 8b).
        let server = ServerConfig::consumer_256g();
        assert!(feasible(&server, "276B", 12));
    }

    #[test]
    fn large_batch_shrinks_max_size_via_gpu_workspace() {
        let server = ServerConfig::consumer_256g();
        assert!(feasible(&server, "70B", 60));
        assert!(
            !feasible(&server, "135B", 60),
            "Fig 8: batch 60 caps below 135B"
        );
    }

    #[test]
    fn no_ssds_means_no_training() {
        let server = ServerConfig::paper_default().with_ssd_count(0);
        assert!(!feasible(&server, "13B", 1));
    }

    #[test]
    fn max_trainable_scans_the_ladder() {
        let server = ServerConfig::paper_default();
        let ladder = zoo::llm_ladder();
        let max = max_trainable_billions(&ladder, |m| {
            RatelMemoryModel::default()
                .check(&server, &ModelProfile::new(m, 1))
                .is_ok()
        });
        assert!((270.0..290.0).contains(&max), "max = {max}");
    }

    #[test]
    fn activation_budget_shrinks_with_model_size() {
        let server = ServerConfig::paper_default();
        let m13 = ModelProfile::new(&zoo::llm("13B"), 32);
        let m175 = ModelProfile::new(&zoo::llm("175B"), 32);
        let mm = RatelMemoryModel::default();
        assert!(
            mm.host_activation_budget(&server, &m175) < mm.host_activation_budget(&server, &m13)
        );
    }
}
