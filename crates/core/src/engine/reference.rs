//! The in-memory reference trainer.
//!
//! Trains the same model with the same mixed-precision convention as the
//! out-of-core engine, but with everything resident in memory and the
//! optimizer running inline. The engine must match it bit-for-bit — that
//! equality is the executable form of the paper's claim that active
//! gradient offloading "keeps synchronous model updating" (§IV-C).

use ratel_tensor::dtype::round_to_f16;
use ratel_tensor::{Adam, AdamParams, GptConfig, GptModel, ParamLayer};

use super::lr::LrSchedule;
use super::scaler::{prepare_gradient, LossScaler, ScalePolicy};

/// An in-memory mixed-precision trainer over the same tiny GPT.
pub struct ReferenceTrainer {
    /// Model skeleton holding the current P16 (f16-rounded) weights.
    pub model: GptModel,
    /// f32 master parameters per layer (embedding, blocks..., head).
    masters: Vec<Vec<f32>>,
    /// Adam moments per layer.
    adams: Vec<Adam>,
    hp: AdamParams,
    scaler: LossScaler,
    grad_clip: Option<f32>,
    lr_schedule: LrSchedule,
    wall_step: u64,
    dropout: Option<f32>,
    base_seed: u64,
    frozen: Vec<usize>,
}

impl ReferenceTrainer {
    /// Builds the trainer with the same `(config, seed)` as the engine
    /// and no loss scaling or clipping.
    pub fn new(config: GptConfig, seed: u64, hp: AdamParams) -> Self {
        Self::with_policy(config, seed, hp, ScalePolicy::None, None)
    }

    /// Builds the trainer with an explicit mixed-precision policy,
    /// matching an engine configured the same way.
    pub fn with_policy(
        config: GptConfig,
        seed: u64,
        hp: AdamParams,
        policy: ScalePolicy,
        grad_clip: Option<f32>,
    ) -> Self {
        let mut model = GptModel::new(config, seed);
        let mut masters = Vec::with_capacity(config.layers + 2);
        masters.push(model.embedding.params_flat());
        for b in &model.blocks {
            masters.push(b.params_flat());
        }
        masters.push(model.head.params_flat());
        let adams = masters.iter().map(|m| Adam::new(m.len())).collect();
        // The model computes with the f16 copy of the master, like the
        // engine's P16 blobs.
        let quantized: Vec<Vec<f32>> = masters
            .iter()
            .map(|m| m.iter().map(|&v| round_to_f16(v)).collect())
            .collect();
        Self::load(&mut model, &quantized);
        ReferenceTrainer {
            model,
            masters,
            adams,
            hp,
            scaler: LossScaler::new(policy),
            grad_clip,
            lr_schedule: LrSchedule::Constant,
            wall_step: 0,
            dropout: None,
            base_seed: seed,
            frozen: Vec::new(),
        }
    }

    /// Freezes the given layers (matching an engine's `frozen_layers`).
    pub fn with_frozen_layers(mut self, frozen: Vec<usize>) -> Self {
        self.frozen = frozen;
        self
    }

    /// Enables residual dropout with probability `p` (matching an engine
    /// configured with the same `dropout`).
    pub fn with_dropout(mut self, p: f32) -> Self {
        self.dropout = Some(p);
        self
    }

    /// Sets the learning-rate schedule (builder style).
    pub fn with_lr_schedule(mut self, schedule: LrSchedule) -> Self {
        self.lr_schedule = schedule;
        self
    }

    fn load(model: &mut GptModel, params: &[Vec<f32>]) {
        model.embedding.set_params_flat(&params[0]);
        let l = model.config.layers;
        for (i, b) in model.blocks.iter_mut().enumerate() {
            b.set_params_flat(&params[i + 1]);
        }
        model.head.set_params_flat(&params[l + 1]);
    }

    /// One training step: quantized-activation forward/backward, G16
    /// gradient rounding, f32 Adam on the masters, fresh P16 publish.
    /// Returns the loss.
    pub fn train_step(&mut self, tokens: &[usize], targets: &[usize]) -> f32 {
        let scale = self.scaler.current();
        let mut hp = self.hp;
        hp.lr *= self.lr_schedule.factor(self.wall_step);
        self.wall_step += 1;
        let dropout = self.dropout.map(|p| {
            (
                p,
                self.base_seed ^ self.wall_step.wrapping_mul(0x517C_C1B7_2722_0A95),
            )
        });
        let (loss, grads) = self
            .model
            .train_step_reference_opts(tokens, targets, true, scale, dropout);
        let mut overflowed = false;
        for (i, g) in grads.iter().enumerate() {
            if self.frozen.contains(&i) {
                continue;
            }
            // Gradients move as G16 in the engine; round identically,
            // then unscale/check/clip exactly as the optimizer thread does.
            let mut g16: Vec<f32> = g.iter().map(|&v| round_to_f16(v)).collect();
            if prepare_gradient(&mut g16, scale, self.grad_clip).is_some() {
                self.adams[i].step(&mut self.masters[i], &g16, &hp);
            } else {
                overflowed = true;
            }
        }
        self.scaler.update(overflowed);
        let quantized: Vec<Vec<f32>> = self
            .masters
            .iter()
            .map(|m| m.iter().map(|&v| round_to_f16(v)).collect())
            .collect();
        Self::load(&mut self.model, &quantized);
        loss
    }

    /// The gradient-accumulation counterpart of
    /// [`crate::engine::RatelEngine::train_step_accumulated`]: per layer,
    /// the applied gradient is `f16( mean_i( f16(g_i) ) )`. Returns the
    /// mean micro-batch loss.
    pub fn train_step_accumulated(&mut self, micro_batches: &[(Vec<usize>, Vec<usize>)]) -> f32 {
        assert!(!micro_batches.is_empty(), "need at least one micro-batch");
        let scale = self.scaler.current();
        let mut hp = self.hp;
        hp.lr *= self.lr_schedule.factor(self.wall_step);
        self.wall_step += 1;
        let n = micro_batches.len();
        let inv_n = 1.0 / n as f32;

        let mut loss_sum = 0.0f32;
        let mut accum: Vec<Vec<f32>> = Vec::new();
        for (tokens, targets) in micro_batches {
            let (loss, grads) = self
                .model
                .train_step_reference_scaled(tokens, targets, true, scale);
            loss_sum += loss;
            if accum.is_empty() {
                accum = grads
                    .iter()
                    .map(|g| g.iter().map(|&v| round_to_f16(v)).collect())
                    .collect();
            } else {
                for (a, g) in accum.iter_mut().zip(&grads) {
                    for (av, &gv) in a.iter_mut().zip(g) {
                        *av += round_to_f16(gv);
                    }
                }
            }
        }

        let mut overflowed = false;
        for (i, acc) in accum.iter().enumerate() {
            if self.frozen.contains(&i) {
                continue;
            }
            let mut g16: Vec<f32> = acc.iter().map(|&v| round_to_f16(v * inv_n)).collect();
            if prepare_gradient(&mut g16, scale, self.grad_clip).is_some() {
                self.adams[i].step(&mut self.masters[i], &g16, &hp);
            } else {
                overflowed = true;
            }
        }
        self.scaler.update(overflowed);
        let quantized: Vec<Vec<f32>> = self
            .masters
            .iter()
            .map(|m| m.iter().map(|&v| round_to_f16(v)).collect())
            .collect();
        Self::load(&mut self.model, &quantized);
        loss_sum * inv_n
    }

    /// Loss on a batch without updating.
    pub fn eval_loss(&self, tokens: &[usize], targets: &[usize]) -> f32 {
        let (loss, _) = self.model.train_step_reference(tokens, targets, true);
        loss
    }

    /// The f32 master parameters of `layer`.
    pub fn master_params(&self, layer: usize) -> &[f32] {
        &self.masters[layer]
    }

    /// The f16-rounded compute parameters of `layer`.
    pub fn p16_params(&self, layer: usize) -> Vec<f32> {
        self.masters[layer]
            .iter()
            .map(|&v| round_to_f16(v))
            .collect()
    }
}
