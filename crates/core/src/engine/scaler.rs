//! Mixed-precision loss scaling and per-layer gradient processing.
//!
//! Training in half precision loses small gradients to underflow; loss
//! scaling multiplies the loss gradient by a large factor before backward
//! and divides it back out before the optimizer. When the scale is too
//! large, gradients overflow the f16 range instead; the scaler then skips
//! the affected update and backs the scale off (the usual dynamic
//! GradScaler protocol).
//!
//! One Ratel-specific adaptation: active gradient offloading consumes each
//! layer's gradient *immediately*, before later layers' gradients exist,
//! so any policy that needs the full gradient set (global-norm clipping,
//! all-or-nothing overflow skipping) would reintroduce the serialization
//! the paper removes. Both the engine and the in-memory reference
//! therefore apply overflow skipping and norm clipping **per layer** —
//! a deliberate, documented deviation from PyTorch's global GradScaler,
//! chosen so the schedule stays overlap-friendly and the two paths stay
//! bit-identical.

/// How the loss gradient is scaled before backward propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalePolicy {
    /// No scaling (scale is 1).
    None,
    /// A fixed scale factor.
    Static(f32),
    /// Dynamic scaling: back off on overflow, grow after a streak of
    /// clean steps.
    Dynamic {
        /// Initial scale.
        init: f32,
        /// Multiplier applied on overflow (< 1).
        backoff: f32,
        /// Multiplier applied after a clean streak (> 1).
        growth: f32,
        /// Clean steps required before growing.
        growth_interval: u64,
    },
}

impl ScalePolicy {
    /// The conventional dynamic policy (init 2^16, halve on overflow,
    /// double after 2000 clean steps — scaled down to 20 for the small
    /// models this engine trains).
    pub fn dynamic_default() -> Self {
        ScalePolicy::Dynamic {
            init: 65_536.0,
            backoff: 0.5,
            growth: 2.0,
            growth_interval: 20,
        }
    }
}

/// Runtime state of the loss scaler.
#[derive(Debug, Clone, PartialEq)]
pub struct LossScaler {
    policy: ScalePolicy,
    scale: f32,
    clean_streak: u64,
}

impl LossScaler {
    /// Creates the scaler for a policy.
    pub fn new(policy: ScalePolicy) -> Self {
        let scale = match policy {
            ScalePolicy::None => 1.0,
            ScalePolicy::Static(s) => s,
            ScalePolicy::Dynamic { init, .. } => init,
        };
        LossScaler {
            policy,
            scale,
            clean_streak: 0,
        }
    }

    /// The scale to apply to this step's loss gradient.
    pub fn current(&self) -> f32 {
        self.scale
    }

    /// Records a finished step; `overflowed` if any layer skipped.
    pub fn update(&mut self, overflowed: bool) {
        if let ScalePolicy::Dynamic {
            backoff,
            growth,
            growth_interval,
            ..
        } = self.policy
        {
            if overflowed {
                self.scale = (self.scale * backoff).max(1.0);
                self.clean_streak = 0;
            } else {
                self.clean_streak += 1;
                if self.clean_streak >= growth_interval {
                    self.scale *= growth;
                    self.clean_streak = 0;
                }
            }
        }
    }
}

/// Per-layer gradient post-processing shared by the engine's optimizer
/// thread and the in-memory reference: unscale, overflow check, optional
/// norm clip. Returns `None` when the layer's update must be skipped.
pub fn prepare_gradient(grads: &mut [f32], scale: f32, clip: Option<f32>) -> Option<()> {
    if scale != 1.0 {
        let inv = 1.0 / scale;
        for g in grads.iter_mut() {
            *g *= inv;
        }
    }
    if grads.iter().any(|g| !g.is_finite()) {
        return None;
    }
    if let Some(max_norm) = clip {
        let norm = grads
            .iter()
            .map(|g| (*g as f64) * (*g as f64))
            .sum::<f64>()
            .sqrt() as f32;
        if norm > max_norm {
            let factor = max_norm / norm;
            for g in grads.iter_mut() {
                *g *= factor;
            }
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_none_policies_never_change() {
        let mut s = LossScaler::new(ScalePolicy::Static(1024.0));
        s.update(true);
        s.update(false);
        assert_eq!(s.current(), 1024.0);
        let mut n = LossScaler::new(ScalePolicy::None);
        n.update(true);
        assert_eq!(n.current(), 1.0);
    }

    #[test]
    fn dynamic_backs_off_and_regrows() {
        let mut s = LossScaler::new(ScalePolicy::Dynamic {
            init: 1024.0,
            backoff: 0.5,
            growth: 2.0,
            growth_interval: 3,
        });
        s.update(true);
        assert_eq!(s.current(), 512.0);
        s.update(false);
        s.update(false);
        assert_eq!(s.current(), 512.0);
        s.update(false);
        assert_eq!(s.current(), 1024.0);
        // An overflow resets the streak.
        s.update(false);
        s.update(true);
        assert_eq!(s.current(), 512.0);
        s.update(false);
        s.update(false);
        s.update(false);
        assert_eq!(s.current(), 1024.0);
    }

    #[test]
    fn dynamic_scale_never_drops_below_one() {
        let mut s = LossScaler::new(ScalePolicy::Dynamic {
            init: 2.0,
            backoff: 0.5,
            growth: 2.0,
            growth_interval: 100,
        });
        for _ in 0..10 {
            s.update(true);
        }
        assert_eq!(s.current(), 1.0);
    }

    #[test]
    fn prepare_gradient_unscales_and_clips() {
        let mut g = vec![2.0f32, 0.0, -2.0];
        prepare_gradient(&mut g, 2.0, None).unwrap();
        assert_eq!(g, vec![1.0, 0.0, -1.0]);
        // Norm is sqrt(2); clip to 0.5 scales by 0.5/sqrt(2).
        prepare_gradient(&mut g, 1.0, Some(0.5)).unwrap();
        let norm = g.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 0.5).abs() < 1e-6, "{norm}");
    }

    #[test]
    fn prepare_gradient_skips_on_overflow() {
        let mut g = vec![1.0f32, f32::INFINITY];
        assert!(prepare_gradient(&mut g, 4.0, None).is_none());
        let mut g = vec![1.0f32, f32::NAN];
        assert!(prepare_gradient(&mut g, 1.0, None).is_none());
    }

    #[test]
    fn clipping_leaves_small_gradients_alone() {
        let mut g = vec![0.1f32, -0.1];
        let orig = g.clone();
        prepare_gradient(&mut g, 1.0, Some(10.0)).unwrap();
        assert_eq!(g, orig);
    }
}
