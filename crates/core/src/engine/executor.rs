//! The resource-pool executor: runs a verified task graph for real.
//!
//! The simulator's [`TaskGraph`] used to be a *prediction* — the engine
//! re-derived the same schedule by hand with a stage loop and ad-hoc
//! prefetch threads. This module closes that gap: one worker pool per
//! [`ResourceClass`] (GPU kernels, CPU optimizer math, each PCIe
//! direction, the SSD array) pulls *ready* tasks — dependency count
//! zero — from the graph, runs them through a [`TaskAction`], and
//! decrements its dependents' counters, unlocking downstream work the
//! moment its last input lands. Ordering is exactly the verified DAG's:
//! the executor adds no scheduling policy of its own beyond FIFO within
//! a pool, so whatever `ratel-verify` proved about the plan (no
//! read-before-write, no overwrite-under-reader, residency within
//! capacity) holds for the execution too.
//!
//! The executor is deliberately generic: it knows nothing about
//! training. The engine supplies the graph (its movement plan) and an
//! action that maps each task id onto tensor kernels and tiered-store
//! transfers; tests supply toy graphs and counters.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use ratel_check::sync::{Condvar, Mutex};

use ratel_sim::meta::ResourceClass;
use ratel_sim::{TaskGraph, TaskId};

use crate::error::RatelError;

/// What the executor runs: maps a [`TaskId`] of the graph being executed
/// onto real work (kernels, transfers, optimizer math).
///
/// Implementations are shared across worker threads; interior
/// mutability (locks around per-task slots) is the implementor's
/// responsibility. The executor guarantees that `run(t)` is called at
/// most once per task, only after every dependency of `t` completed
/// successfully.
pub trait TaskAction: Sync {
    /// Executes one task. An error aborts the whole run: no new tasks
    /// are dispatched and [`Executor::run`] returns the first error.
    fn run(&self, task: TaskId) -> Result<(), RatelError>;
}

impl<F> TaskAction for F
where
    F: Fn(TaskId) -> Result<(), RatelError> + Sync,
{
    fn run(&self, task: TaskId) -> Result<(), RatelError> {
        self(task)
    }
}

/// Per-pool execution stats for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolStats {
    /// The resource class this pool served.
    pub class: ResourceClass,
    /// Worker threads the pool ran.
    pub workers: usize,
    /// Tasks the pool completed.
    pub tasks: u64,
    /// Total seconds workers spent inside task actions (summed across
    /// workers, so it can exceed wall time when workers overlap).
    pub busy_seconds: f64,
}

/// Per-task breakdown of one executed graph, attached to
/// [`crate::engine::StepStats`] when a step ran through the executor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskBreakdown {
    /// Stats per worker pool, in [`POOL_CLASSES`] order; pools with no
    /// tasks are omitted.
    pub pools: Vec<PoolStats>,
    /// The dependency-chain lower bound on this run's wall time: the
    /// longest path through the graph weighted by *measured* task
    /// durations. Wall time close to this means the schedule, not the
    /// executor, set the pace.
    pub critical_path_seconds: f64,
    /// Wall-clock seconds from dispatch of the first task to completion
    /// of the last.
    pub wall_seconds: f64,
    /// Total tasks executed.
    pub tasks_total: u64,
}

impl TaskBreakdown {
    /// Stats of the pool serving `class`, if it ran any tasks. The
    /// [`ResourceClass::Overhead`] bookkeeping class folds into the CPU
    /// pool.
    pub fn pool(&self, class: ResourceClass) -> Option<&PoolStats> {
        let class = POOL_CLASSES[pool_index(class)];
        self.pools.iter().find(|p| p.class == class)
    }

    /// Busy seconds summed over every pool.
    pub fn busy_seconds_total(&self) -> f64 {
        self.pools.iter().map(|p| p.busy_seconds).sum()
    }
}

/// The resource classes that get a worker pool, in display order.
/// [`ResourceClass::Overhead`] tasks (bookkeeping stalls) run on the CPU
/// pool rather than deserving threads of their own.
pub const POOL_CLASSES: [ResourceClass; 5] = [
    ResourceClass::GpuCompute,
    ResourceClass::CpuCompute,
    ResourceClass::PcieG2M,
    ResourceClass::PcieM2G,
    ResourceClass::SsdArray,
];

fn pool_index(class: ResourceClass) -> usize {
    match class {
        ResourceClass::GpuCompute => 0,
        ResourceClass::CpuCompute | ResourceClass::Overhead => 1,
        ResourceClass::PcieG2M => 2,
        ResourceClass::PcieM2G => 3,
        ResourceClass::SsdArray => 4,
    }
}

/// One pool's ready queue. Workers block on the condvar; every terminal
/// event (abort, last task done) wakes *all* pools so no worker is left
/// parked.
struct Pool {
    queue: Mutex<VecDeque<usize>>,
    ready: Condvar,
}

/// Static lock/condvar names per pool index, for the `ratel-check`
/// lock-order tracker and exploration witnesses.
const POOL_LOCK_NAMES: [(&str, &str); 5] = [
    ("exec.queue.gpu", "exec.ready.gpu"),
    ("exec.queue.cpu", "exec.ready.cpu"),
    ("exec.queue.pcie_g2m", "exec.ready.pcie_g2m"),
    ("exec.queue.pcie_m2g", "exec.ready.pcie_m2g"),
    ("exec.queue.ssd", "exec.ready.ssd"),
];

impl Pool {
    fn new(idx: usize) -> Self {
        let (queue_name, ready_name) = POOL_LOCK_NAMES[idx];
        Pool {
            queue: Mutex::named(queue_name, VecDeque::new()),
            ready: Condvar::named(ready_name),
        }
    }
}

/// State shared by every worker of one run.
struct Shared {
    pools: Vec<Pool>,
    /// Outstanding dependency count per task; a task becomes ready when
    /// its counter hits zero.
    remaining: Vec<AtomicUsize>,
    /// Forward adjacency: tasks waiting on each task.
    dependents: Vec<Vec<usize>>,
    /// Pool index per task.
    pool_of: Vec<usize>,
    /// Measured seconds per completed task (f64 bits).
    durations: Vec<AtomicU64>,
    /// Completed task count; `done == total` ends the run.
    done: AtomicUsize,
    total: usize,
    /// Set on the first action error; stops dispatch everywhere.
    abort: AtomicBool,
    error: Mutex<Option<RatelError>>,
}

impl Shared {
    /// Wakes every parked worker. Taking each queue lock first closes
    /// the race with a worker that checked the exit conditions and is
    /// about to wait.
    fn wake_all(&self) {
        for pool in &self.pools {
            drop(pool.queue.lock());
            pool.ready.notify_all();
        }
    }

    fn enqueue(&self, task: usize) {
        let pool = &self.pools[self.pool_of[task]];
        pool.queue.lock().push_back(task);
        pool.ready.notify_one();
    }

    /// Records a successful task: stores its duration, unlocks
    /// dependents whose last input this was, and ends the run if it was
    /// the final task.
    fn complete(&self, task: usize, seconds: f64) {
        self.durations[task].store(seconds.to_bits(), Ordering::Relaxed);
        for &d in &self.dependents[task] {
            if self.remaining[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                self.enqueue(d);
            }
        }
        if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.wake_all();
        }
    }

    fn fail(&self, error: RatelError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(error);
        }
        drop(slot);
        self.abort.store(true, Ordering::Release);
        self.wake_all();
    }

    fn finished(&self) -> bool {
        self.abort.load(Ordering::Acquire) || self.done.load(Ordering::Acquire) == self.total
    }
}

fn worker(shared: &Shared, pool_idx: usize, action: &dyn TaskAction) {
    let pool = &shared.pools[pool_idx];
    loop {
        let task = {
            let mut queue = pool.queue.lock();
            loop {
                if shared.finished() {
                    return;
                }
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                pool.ready.wait(&mut queue);
            }
        };
        let start = Instant::now();
        match action.run(TaskId(task)) {
            Ok(()) => shared.complete(task, start.elapsed().as_secs_f64()),
            Err(e) => {
                shared.fail(e);
                return;
            }
        }
    }
}

/// A dependency-counted executor over [`TaskGraph`]s: one FIFO worker
/// pool per [`ResourceClass`], `workers_per_pool` threads each.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    workers_per_pool: usize,
}

impl Executor {
    /// An executor with `workers_per_pool` threads per resource pool.
    ///
    /// # Panics
    /// If `workers_per_pool` is zero.
    pub fn new(workers_per_pool: usize) -> Self {
        assert!(workers_per_pool >= 1, "a pool needs at least one worker");
        Executor { workers_per_pool }
    }

    /// Runs every task of `graph` through `action`, respecting the
    /// graph's dependency edges, and reports the per-pool breakdown.
    ///
    /// On the first action error, dispatch stops everywhere (tasks
    /// already running finish) and that error is returned.
    ///
    /// # Panics
    /// If a task is bound to a resource with no declared
    /// [`ResourceClass`] — plans destined for execution must classify
    /// every resource — or if the graph's edges are cyclic (cannot
    /// happen for graphs built through [`TaskGraph`]'s constructors,
    /// which enforce topological insertion order).
    pub fn run(
        &self,
        graph: &TaskGraph,
        action: &dyn TaskAction,
    ) -> Result<TaskBreakdown, RatelError> {
        let total = graph.len();
        if total == 0 {
            return Ok(TaskBreakdown::default());
        }

        let mut pool_of = Vec::with_capacity(total);
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); total];
        let mut remaining = Vec::with_capacity(total);
        for t in graph.task_ids() {
            let class = graph.resource_class(graph.resource(t)).unwrap_or_else(|| {
                panic!(
                    "task {:?} ({:?}) is bound to unclassified resource {:?}",
                    t,
                    graph.label(t),
                    graph.resource_name(graph.resource(t))
                )
            });
            pool_of.push(pool_index(class));
            let deps = graph.deps(t);
            remaining.push(AtomicUsize::new(deps.len()));
            for d in deps {
                dependents[d.0].push(t.0);
            }
        }

        let shared = Shared {
            pools: (0..POOL_CLASSES.len()).map(Pool::new).collect(),
            remaining,
            dependents,
            pool_of,
            durations: (0..total).map(|_| AtomicU64::new(0)).collect(),
            done: AtomicUsize::new(0),
            total,
            abort: AtomicBool::new(false),
            error: Mutex::named("exec.error", None),
        };

        // Seed the ready queues with the graph's sources before any
        // worker exists, in task order.
        let mut pool_tasks = [0u64; POOL_CLASSES.len()];
        for t in 0..total {
            pool_tasks[shared.pool_of[t]] += 1;
            if shared.remaining[t].load(Ordering::Relaxed) == 0 {
                shared.pools[shared.pool_of[t]].queue.lock().push_back(t);
            }
        }

        let wall_start = Instant::now();
        std::thread::scope(|scope| {
            for (idx, class) in POOL_CLASSES.iter().enumerate() {
                // A pool with no tasks bound to it needs no threads; one
                // with fewer tasks than the worker budget needs fewer.
                let workers = (pool_tasks[idx] as usize).min(self.workers_per_pool);
                for w in 0..workers {
                    let shared = &shared;
                    let spawned = std::thread::Builder::new()
                        .name(format!("ratel-exec-{}-{w}", class.name()))
                        .spawn_scoped(scope, move || worker(shared, idx, action));
                    if let Err(e) = spawned {
                        // Abort the whole run: already-spawned workers
                        // drain out via the abort flag and the error
                        // surfaces below.
                        shared.fail(RatelError::Runtime(format!(
                            "spawn executor worker {w} for {}: {e}",
                            class.name()
                        )));
                        return;
                    }
                }
            }
        });
        let wall_seconds = wall_start.elapsed().as_secs_f64();

        if let Some(error) = shared.error.lock().take() {
            return Err(error);
        }
        let done = shared.done.load(Ordering::Acquire);
        assert_eq!(
            done, total,
            "executor stalled: {done}/{total} tasks completed with no error — \
             the graph reached the executor unverified"
        );

        // Post-hoc breakdown: per-pool busy time and the measured
        // critical path (finish[t] = max over deps of finish + duration).
        let mut pools: Vec<PoolStats> = POOL_CLASSES
            .iter()
            .enumerate()
            .map(|(idx, &class)| PoolStats {
                class,
                workers: (pool_tasks[idx] as usize).min(self.workers_per_pool),
                tasks: pool_tasks[idx],
                busy_seconds: 0.0,
            })
            .collect();
        let mut finish = vec![0.0f64; total];
        let mut critical = 0.0f64;
        for t in graph.task_ids() {
            let seconds = f64::from_bits(shared.durations[t.0].load(Ordering::Relaxed));
            pools[shared.pool_of[t.0]].busy_seconds += seconds;
            let ready = graph
                .deps(t)
                .iter()
                .map(|d| finish[d.0])
                .fold(0.0f64, f64::max);
            finish[t.0] = ready + seconds;
            critical = critical.max(finish[t.0]);
        }
        pools.retain(|p| p.tasks > 0);

        Ok(TaskBreakdown {
            pools,
            critical_path_seconds: critical,
            wall_seconds,
            tasks_total: total as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// A diamond across three pools: gpu -> {g2m, m2g} -> cpu.
    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        let gpu = g.add_resource("gpu0");
        g.set_resource_class(gpu, ResourceClass::GpuCompute);
        let g2m = g.add_resource("pcie-g2m0");
        g.set_resource_class(g2m, ResourceClass::PcieG2M);
        let m2g = g.add_resource("pcie-m2g0");
        g.set_resource_class(m2g, ResourceClass::PcieM2G);
        let cpu = g.add_resource("cpu");
        g.set_resource_class(cpu, ResourceClass::CpuCompute);
        let a = g.add_task(gpu, 1.0, ratel_sim::Stage::Forward, &[]);
        let b = g.add_task(g2m, 1.0, ratel_sim::Stage::Forward, &[a]);
        let c = g.add_task(m2g, 1.0, ratel_sim::Stage::Forward, &[a]);
        g.add_task(cpu, 1.0, ratel_sim::Stage::Optimizer, &[b, c]);
        g
    }

    #[test]
    fn executes_every_task_exactly_once_in_dependency_order() {
        let g = diamond();
        let order = Mutex::new(Vec::new());
        let breakdown = Executor::new(2)
            .run(&g, &|t: TaskId| {
                order.lock().push(t.0);
                Ok(())
            })
            .unwrap();
        let order = order.into_inner();
        assert_eq!(breakdown.tasks_total, 4);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "each task ran once: {order:?}");
        let pos = |t: usize| order.iter().position(|&x| x == t).unwrap();
        assert!(
            pos(0) < pos(1) && pos(0) < pos(2),
            "source first: {order:?}"
        );
        assert_eq!(pos(3), 3, "sink last: {order:?}");
    }

    #[test]
    fn breakdown_reports_pools_and_critical_path() {
        let g = diamond();
        let breakdown = Executor::new(1).run(&g, &|_| Ok(())).unwrap();
        assert_eq!(breakdown.pools.len(), 4, "gpu, cpu, g2m, m2g all ran");
        assert_eq!(breakdown.pool(ResourceClass::GpuCompute).unwrap().tasks, 1);
        assert_eq!(breakdown.pool(ResourceClass::CpuCompute).unwrap().tasks, 1);
        assert!(breakdown.critical_path_seconds <= breakdown.wall_seconds * 1.5 + 1e-3);
        assert!(breakdown.busy_seconds_total() >= breakdown.critical_path_seconds - 1e-9);
        assert!(
            breakdown.pool(ResourceClass::SsdArray).is_none(),
            "idle pool omitted"
        );
    }

    #[test]
    fn an_error_aborts_the_run_and_surfaces_first() {
        // A long serial chain on one pool: the failure at task 1 must
        // stop dispatch well before the chain's end.
        let mut g = TaskGraph::new();
        let cpu = g.add_resource("cpu");
        g.set_resource_class(cpu, ResourceClass::CpuCompute);
        let mut prev = None;
        for _ in 0..64 {
            let deps: Vec<TaskId> = prev.into_iter().collect();
            prev = Some(g.add_task(cpu, 1.0, ratel_sim::Stage::Optimizer, &deps));
        }
        let ran = AtomicU32::new(0);
        let err = Executor::new(4)
            .run(&g, &|t: TaskId| {
                ran.fetch_add(1, Ordering::Relaxed);
                if t.0 == 1 {
                    Err(RatelError::InvalidBatch("injected".into()))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(matches!(err, RatelError::InvalidBatch(_)), "{err}");
        assert!(
            ran.load(Ordering::Relaxed) < 64,
            "abort stopped dispatch before the chain finished"
        );
    }

    #[test]
    fn overhead_tasks_fold_into_the_cpu_pool() {
        let mut g = TaskGraph::new();
        let stall = g.add_resource("stall0");
        g.set_resource_class(stall, ResourceClass::Overhead);
        g.add_task(stall, 1.0, ratel_sim::Stage::Forward, &[]);
        let breakdown = Executor::new(1).run(&g, &|_| Ok(())).unwrap();
        assert_eq!(breakdown.pool(ResourceClass::Overhead).unwrap().tasks, 1);
        assert_eq!(
            breakdown.pool(ResourceClass::Overhead).unwrap().class,
            ResourceClass::CpuCompute
        );
    }

    #[test]
    fn empty_graph_is_a_no_op() {
        let g = TaskGraph::new();
        let breakdown = Executor::new(3).run(&g, &|_| Ok(())).unwrap();
        assert_eq!(breakdown.tasks_total, 0);
        assert!(breakdown.pools.is_empty());
    }

    #[test]
    fn wide_fanout_completes_under_many_workers() {
        // One source fanning out to 40 tasks across two pools, all
        // joining into one sink: exercises concurrent completion racing
        // the final wake-up.
        let mut g = TaskGraph::new();
        let ssd = g.add_resource("ssd");
        g.set_resource_class(ssd, ResourceClass::SsdArray);
        let cpu = g.add_resource("cpu");
        g.set_resource_class(cpu, ResourceClass::CpuCompute);
        let src = g.add_task(cpu, 1.0, ratel_sim::Stage::Forward, &[]);
        let mid: Vec<TaskId> = (0..40)
            .map(|i| {
                let r = if i % 2 == 0 { ssd } else { cpu };
                g.add_task(r, 1.0, ratel_sim::Stage::Forward, &[src])
            })
            .collect();
        g.add_task(cpu, 1.0, ratel_sim::Stage::Optimizer, &mid);
        for workers in [1, 2, 4] {
            let count = AtomicU32::new(0);
            let breakdown = Executor::new(workers)
                .run(&g, &|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                })
                .unwrap();
            assert_eq!(count.load(Ordering::Relaxed), 42);
            assert_eq!(breakdown.tasks_total, 42);
        }
    }
}
