//! Bridge from the engine's internal counters into the unified
//! [`ratel_obs`] metrics registry.
//!
//! The engine's subsystems each keep their own counters — the store's
//! [`TrafficMeter`](ratel_storage::TieredStore::traffic) and
//! always-on [`FaultStats`](ratel_storage::telemetry::FaultStats), the
//! telemetry recorder's per-route [`RouteMetrics`] with latency
//! histograms, the tensor crate's scratch-arena and kernel thread-pool
//! counters, the flight recorder's cursor. [`publish_engine_metrics`]
//! snapshots all of them into one registry under the `ratel_` namespace,
//! from which one call renders the Prometheus text exposition or JSONL
//! (`ratel-bench obs` does both). Cumulative sources set counter totals,
//! so publishing is idempotent — call it whenever a scrape is due.

use ratel_obs::Registry;
use ratel_storage::Route;

use super::RatelEngine;

/// Snapshots every engine subsystem's counters into `registry`.
///
/// Safe to call repeatedly: cumulative values overwrite (counters track
/// the source's monotone totals), gauges reflect the moment of the call.
pub fn publish_engine_metrics(engine: &RatelEngine, registry: &Registry) {
    let rec = engine.telemetry();

    // Inter-tier traffic: the store's cumulative byte meter.
    for route in Route::ALL {
        registry
            .counter_with(
                "ratel_route_bytes_total",
                "Cumulative bytes moved per inter-tier route",
                &[("route", route.name())],
            )
            .set_total(engine.traffic_bytes(route));
    }

    // Per-route transfer metrics (populated while telemetry is enabled):
    // op/byte/second totals plus latency percentiles from the
    // power-of-two histograms.
    let metrics = rec.route_metrics();
    for route in Route::ALL {
        let m = &metrics[route.index()];
        let labels = [("route", route.name())];
        registry
            .counter_with(
                "ratel_transfer_ops_total",
                "Instrumented transfer operations per route",
                &labels,
            )
            .set_total(m.ops);
        registry
            .counter_with(
                "ratel_transfer_bytes_total",
                "Bytes moved by instrumented transfers per route",
                &labels,
            )
            .set_total(m.bytes);
        registry
            .gauge_with(
                "ratel_transfer_seconds",
                "Seconds spent in instrumented transfers per route",
                &labels,
            )
            .set(m.seconds);
        for (q, tag) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
            registry
                .gauge_with(
                    "ratel_transfer_latency_seconds",
                    "Transfer latency quantile upper bound per route",
                    &[("route", route.name()), ("quantile", tag)],
                )
                .set(m.histogram.quantile_upper_bound(q));
        }
    }

    // Robustness counters: always on, even with telemetry disabled.
    let faults = rec.fault_stats();
    registry
        .counter(
            "ratel_ssd_retries_total",
            "SSD operations that failed and were re-issued",
        )
        .set_total(faults.retries);
    registry
        .counter(
            "ratel_ssd_give_ups_total",
            "SSD operations that exhausted their retry budget",
        )
        .set_total(faults.give_ups);
    registry
        .counter(
            "ratel_host_spills_total",
            "Host-pressure spills to the SSD tier",
        )
        .set_total(faults.host_spills);
    registry
        .counter(
            "ratel_dropped_spans_total",
            "Telemetry spans evicted by the bounded span ring",
        )
        .set_total(rec.dropped_spans());

    // Tensor-kernel substrate: scratch-arena reuse (this thread's pool)
    // and thread-pool dispatch fan-out.
    let (checkouts, misses) = ratel_tensor::scratch_stats();
    registry
        .gauge(
            "ratel_scratch_checkouts",
            "Scratch-arena buffer checkouts on the publishing thread",
        )
        .set(checkouts as f64);
    registry
        .gauge(
            "ratel_scratch_misses",
            "Scratch checkouts that had to allocate (steady state: flat)",
        )
        .set(misses as f64);
    let (spawned, inline) = ratel_tensor::parallel_stats();
    registry
        .counter_with(
            "ratel_kernel_dispatches_total",
            "Parallel kernel dispatches by execution mode",
            &[("mode", "spawned")],
        )
        .set_total(spawned);
    registry
        .counter_with(
            "ratel_kernel_dispatches_total",
            "Parallel kernel dispatches by execution mode",
            &[("mode", "inline")],
        )
        .set_total(inline);

    // Flight recorder occupancy.
    let flight = ratel_obs::flight();
    registry
        .counter(
            "ratel_flight_events_total",
            "Events written to the flight-recorder ring since start",
        )
        .set_total(flight.recorded());
    registry
        .gauge(
            "ratel_flight_capacity",
            "Flight-recorder ring capacity in events",
        )
        .set(flight.capacity() as f64);

    // Engine-level step state.
    registry
        .counter("ratel_steps_total", "Training steps run by this engine")
        .set_total(engine.steps_run());
    if let Some(t) = engine.last_step_telemetry() {
        registry
            .gauge(
                "ratel_step_wall_seconds",
                "Wall-clock duration of the most recent instrumented step",
            )
            .set(t.wall_seconds);
        registry
            .gauge(
                "ratel_optimizer_overlap_ratio",
                "Share of optimizer time hidden under backward (last step)",
            )
            .set(t.optimizer_overlap_ratio());
        let histogram = registry.histogram(
            "ratel_step_seconds",
            "Distribution of instrumented step wall times",
        );
        histogram.record(t.wall_seconds);
    }
    registry
        .counter(
            "ratel_conformance_findings_total",
            "Plan-conformance findings across instrumented steps",
        )
        .set_total(engine.total_findings());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::data::random_batch;
    use crate::engine::EngineConfig;
    use ratel_obs::metrics::validate_prometheus;

    #[test]
    fn published_metrics_pass_the_exposition_self_check() {
        let config = EngineConfig::tiny();
        let model = config.model;
        let mut engine = RatelEngine::new(config).unwrap();
        engine.enable_telemetry();
        let (tokens, targets) = random_batch(&model, 7);
        engine.train_step(&tokens, &targets).unwrap();

        let registry = Registry::default();
        publish_engine_metrics(&engine, &registry);
        let text = registry.prometheus_text();
        let samples = validate_prometheus(&text).expect("exposition is well-formed");
        assert!(samples > 10, "expected a real metric surface: {text}");
        assert!(text.contains("ratel_route_bytes_total{route=\"gpu->host\"}"));
        assert!(text.contains("ratel_steps_total 1"));
    }
}
