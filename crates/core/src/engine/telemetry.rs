//! Per-step telemetry analysis over the engine's span recorder.
//!
//! The raw substrate lives in `ratel_storage::telemetry` (the store owns
//! the [`TelemetryRecorder`] so its transfer instrumentation sits below
//! the engine). This module interprets one training step's drained spans:
//! per-stage wall-time breakdown, the optimizer-overlap ratio of §IV-C
//! (how much of the active optimizer's work was hidden behind backward),
//! achieved-vs-profiled bandwidth per route, and conversion into a
//! [`ratel_sim::Timeline`] so a *measured* step renders through the same
//! Chrome-trace/ASCII writers as a simulated one.

use ratel_sim::{FlowEvent, SpanKind, Timeline, TimelineSpan};
use ratel_storage::telemetry::{
    FaultStats, RouteMetrics, SpanCategory, SpanRecord, TelemetryRecorder,
};
use ratel_storage::{Route, TrafficSnapshot};

use crate::profile::HardwareProfile;

/// Wall-time totals per span category for one step, in seconds. These are
/// *span sums*, not disjoint wall-clock partitions: concurrent spans (an
/// optimizer update under a backward layer) both count in full.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageBreakdown {
    /// Per-layer forward compute.
    pub forward: f64,
    /// Per-layer backward compute (includes activation fetch/recompute).
    pub backward: f64,
    /// Active-optimizer handler time (state wait + Adam + write-back).
    pub optimizer: f64,
    /// Inter-tier transfer time (sum over all routes).
    pub transfer: f64,
    /// Prefetcher thread time (parameter and optimizer-state staging).
    pub prefetch: f64,
    /// Everything else (gradient hand-off, scaler, skips).
    pub other: f64,
}

/// One route's achieved bandwidth next to the profiled figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteBandwidth {
    /// The route.
    pub route: Route,
    /// Measured bytes/second over this step's transfer spans (`None` if
    /// the route was idle).
    pub achieved: Option<f64>,
    /// The profiling stage's figure for the same link, bytes/second.
    pub profiled: f64,
}

/// Everything the recorder captured for one `train_step`.
#[derive(Debug, Clone)]
pub struct StepTelemetry {
    /// All spans recorded during the step, timestamps on the recorder
    /// clock (seconds since store creation).
    pub spans: Vec<SpanRecord>,
    /// Per-route byte deltas for the step.
    pub traffic: TrafficSnapshot,
    /// Recorder-clock time at which the step began.
    pub step_start: f64,
    /// Wall-clock duration of the step.
    pub wall_seconds: f64,
    /// Per-route transfer metrics for this step (ops/bytes/seconds +
    /// latency histograms, deltas of the recorder's cumulative counters),
    /// indexed like [`Route::ALL`].
    pub route_metrics: [RouteMetrics; 4],
    /// Robustness-counter deltas for this step: SSD retries and
    /// give-ups, host-pressure spills. Always collected (the underlying
    /// counters run even with tracing off).
    pub fault_stats: FaultStats,
}

/// Merges possibly-overlapping `(start, end)` intervals into a disjoint,
/// sorted set.
fn merge_intervals(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|(s, e)| e > s);
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of the intersection of two disjoint sorted interval sets.
fn intersection_seconds(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j, mut total) = (0, 0, 0.0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

impl StepTelemetry {
    /// Sums span durations per category.
    pub fn stage_breakdown(&self) -> StageBreakdown {
        let mut b = StageBreakdown::default();
        for s in &self.spans {
            let slot = match s.category {
                SpanCategory::Forward => &mut b.forward,
                SpanCategory::Backward => &mut b.backward,
                SpanCategory::Optimizer => &mut b.optimizer,
                SpanCategory::Transfer => &mut b.transfer,
                SpanCategory::Prefetch => &mut b.prefetch,
                SpanCategory::Other => &mut b.other,
            };
            *slot += s.seconds();
        }
        b
    }

    /// Merged, disjoint intervals of all spans in `category`.
    fn category_intervals(&self, category: SpanCategory) -> Vec<(f64, f64)> {
        merge_intervals(
            self.spans
                .iter()
                .filter(|s| s.category == category)
                .map(|s| (s.start, s.end))
                .collect(),
        )
    }

    /// The fraction of optimizer span time that ran *while backward was
    /// running* — the paper's active-offloading claim (§IV-C) that the
    /// optimizer hides behind backward. 0 when no optimizer span was
    /// recorded (e.g. every layer frozen).
    pub fn optimizer_overlap_ratio(&self) -> f64 {
        let opt = self.category_intervals(SpanCategory::Optimizer);
        let bwd = self.category_intervals(SpanCategory::Backward);
        let opt_total: f64 = opt.iter().map(|(s, e)| e - s).sum();
        if opt_total == 0.0 {
            return 0.0;
        }
        intersection_seconds(&opt, &bwd) / opt_total
    }

    /// Achieved bandwidth per route (from this step's cumulative metrics)
    /// against the profiled link speeds, indexed like [`Route::ALL`].
    pub fn achieved_vs_profiled(&self, profile: &HardwareProfile) -> [RouteBandwidth; 4] {
        Route::ALL.map(|route| RouteBandwidth {
            route,
            achieved: self.route_metrics[route.index()].achieved_bandwidth(),
            profiled: match route {
                Route::GpuToHost | Route::HostToGpu => profile.bw_gpu,
                Route::HostToSsd => profile.bw_m2s,
                Route::SsdToHost => profile.bw_s2m,
            },
        })
    }

    /// Converts the step's spans into a substrate-neutral timeline named
    /// `name`, timestamps rebased so the step starts at t=0. Tracks
    /// appear in first-span order; route tracks carry the transfers.
    /// Each `pf L{n}` prefetch span links to the compute span that
    /// consumes its staged blob via a [`FlowEvent`] arrow, so the Chrome
    /// trace shows *which* forward/backward each prefetch fed.
    pub fn timeline(&self, name: &str) -> Timeline {
        let mut tl = Timeline::new(name);
        for s in &self.spans {
            let track = tl.track(&s.track);
            tl.spans.push(TimelineSpan {
                track,
                label: s.label.clone(),
                kind: match s.category {
                    SpanCategory::Forward => SpanKind::Forward,
                    SpanCategory::Backward => SpanKind::Backward,
                    SpanCategory::Optimizer => SpanKind::Optimizer,
                    SpanCategory::Transfer => SpanKind::Transfer,
                    SpanCategory::Prefetch => SpanKind::Prefetch,
                    SpanCategory::Other => SpanKind::Other,
                },
                start: s.start - self.step_start,
                end: s.end - self.step_start,
                task: None,
                bytes: s.bytes,
            });
        }
        tl.flows = self.prefetch_flows(&tl);
        tl
    }

    /// Matches every prefetch span on the timeline to its consumer: the
    /// earliest not-yet-claimed `fwd L{n}` / `bwd L{n}` compute span of
    /// the same layer. The same layer is prefetched once for forward and
    /// once for backward, so greedy earliest-first matching on the
    /// already-rebased timeline pairs them correctly. Arrow endpoints sit
    /// at span midpoints so Perfetto binds each to its enclosing slice.
    fn prefetch_flows(&self, tl: &Timeline) -> Vec<FlowEvent> {
        let layer_of = |label: &str| -> Option<usize> {
            label
                .rsplit_once('L')
                .and_then(|(_, n)| n.parse::<usize>().ok())
        };
        let mut claimed = vec![false; tl.spans.len()];
        let mut flows = Vec::new();
        for pf in tl.spans.iter() {
            if pf.kind != SpanKind::Prefetch {
                continue;
            }
            let Some(layer) = layer_of(&pf.label) else {
                continue;
            };
            let consumer = tl
                .spans
                .iter()
                .enumerate()
                .filter(|(i, s)| {
                    !claimed[*i]
                        && matches!(s.kind, SpanKind::Forward | SpanKind::Backward)
                        && layer_of(&s.label) == Some(layer)
                        && s.end >= pf.start
                })
                .min_by(|a, b| a.1.start.total_cmp(&b.1.start));
            if let Some((i, c)) = consumer {
                claimed[i] = true;
                flows.push(FlowEvent {
                    name: pf.label.clone(),
                    from_track: pf.track,
                    from_ts: 0.5 * (pf.start + pf.end),
                    to_track: c.track,
                    to_ts: 0.5 * (c.start + c.end),
                });
            }
        }
        flows
    }

    /// Builds the step record by draining `recorder` — called by the
    /// engine at the end of an instrumented step. `metrics_before` is the
    /// recorder's cumulative route metrics at step start; the stored
    /// metrics are the step's delta against it.
    pub(crate) fn collect(
        recorder: &TelemetryRecorder,
        traffic: TrafficSnapshot,
        step_start: f64,
        wall_seconds: f64,
        metrics_before: &[RouteMetrics; 4],
        fault_stats: FaultStats,
    ) -> Self {
        let now = recorder.route_metrics();
        let route_metrics = [
            now[0].since(&metrics_before[0]),
            now[1].since(&metrics_before[1]),
            now[2].since(&metrics_before[2]),
            now[3].since(&metrics_before[3]),
        ];
        StepTelemetry {
            spans: recorder.drain_spans(),
            traffic,
            step_start,
            wall_seconds,
            route_metrics,
            fault_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: &str, category: SpanCategory, start: f64, end: f64) -> SpanRecord {
        SpanRecord {
            track: track.to_string(),
            category,
            label: format!("{track} {start}"),
            start,
            end,
            bytes: None,
            route: None,
        }
    }

    fn telemetry(spans: Vec<SpanRecord>) -> StepTelemetry {
        StepTelemetry {
            spans,
            traffic: TrafficSnapshot::default(),
            step_start: 0.0,
            wall_seconds: 1.0,
            route_metrics: Default::default(),
            fault_stats: FaultStats::default(),
        }
    }

    #[test]
    fn interval_merge_and_intersection() {
        let merged = merge_intervals(vec![(2.0, 3.0), (0.0, 1.0), (0.5, 1.5), (3.0, 4.0)]);
        assert_eq!(merged, vec![(0.0, 1.5), (2.0, 4.0)]);
        let other = vec![(1.0, 2.5), (3.5, 5.0)];
        // [1,1.5) + [2,2.5) + [3.5,4) = 1.5
        assert!((intersection_seconds(&merged, &other) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_ratio_counts_optimizer_time_under_backward() {
        let t = telemetry(vec![
            span("gpu", SpanCategory::Backward, 0.0, 4.0),
            span("cpu-opt", SpanCategory::Optimizer, 1.0, 3.0), // fully inside
            span("cpu-opt", SpanCategory::Optimizer, 4.0, 6.0), // fully outside
        ]);
        // 2s of 4s optimizer time overlapped.
        assert!((t.optimizer_overlap_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_ratio_is_zero_without_optimizer_spans() {
        let t = telemetry(vec![span("gpu", SpanCategory::Backward, 0.0, 1.0)]);
        assert_eq!(t.optimizer_overlap_ratio(), 0.0);
    }

    #[test]
    fn breakdown_sums_per_category() {
        let t = telemetry(vec![
            span("gpu", SpanCategory::Forward, 0.0, 1.0),
            span("gpu", SpanCategory::Forward, 1.0, 1.5),
            span("gpu", SpanCategory::Backward, 2.0, 3.0),
            span("ssd->host", SpanCategory::Transfer, 0.0, 0.25),
        ]);
        let b = t.stage_breakdown();
        assert!((b.forward - 1.5).abs() < 1e-12);
        assert!((b.backward - 1.0).abs() < 1e-12);
        assert!((b.transfer - 0.25).abs() < 1e-12);
        assert_eq!(b.optimizer, 0.0);
    }

    #[test]
    fn prefetch_flows_link_each_staging_to_its_consumer() {
        // Layer 1 is prefetched twice (forward then backward); each pf
        // span must link to its own consumer, earliest-first.
        let mut t = telemetry(vec![
            span("param-prefetch", SpanCategory::Prefetch, 0.0, 0.5),
            span("gpu", SpanCategory::Forward, 1.0, 2.0),
            span("param-prefetch", SpanCategory::Prefetch, 2.0, 2.5),
            span("gpu", SpanCategory::Backward, 3.0, 4.0),
        ]);
        t.spans[0].label = "pf L1".into();
        t.spans[1].label = "fwd L1".into();
        t.spans[2].label = "pf L1".into();
        t.spans[3].label = "bwd L1".into();
        let tl = t.timeline("measured");
        assert_eq!(tl.flows.len(), 2);
        // First pf -> fwd (midpoints 0.25 -> 1.5).
        assert!((tl.flows[0].from_ts - 0.25).abs() < 1e-12);
        assert!((tl.flows[0].to_ts - 1.5).abs() < 1e-12);
        // Second pf -> bwd, since fwd is already claimed.
        assert!((tl.flows[1].to_ts - 3.5).abs() < 1e-12);
        // Arrows cross from the prefetch track to the gpu track.
        assert_ne!(tl.flows[0].from_track, tl.flows[0].to_track);
    }

    #[test]
    fn timeline_rebases_to_step_start() {
        let mut t = telemetry(vec![span("gpu", SpanCategory::Forward, 10.0, 11.0)]);
        t.step_start = 10.0;
        let tl = t.timeline("measured");
        assert_eq!(tl.name, "measured");
        assert_eq!(tl.tracks, vec!["gpu"]);
        assert_eq!(tl.spans[0].start, 0.0);
        assert_eq!(tl.spans[0].end, 1.0);
        assert_eq!(tl.spans[0].kind, SpanKind::Forward);
    }
}
