//! Live plan-conformance monitoring: did the step the engine just ran
//! *move what the plan said it would move*?
//!
//! The engine's schedule twin ([`crate::schedule::IterationSpec`], built
//! by `RatelEngine::movement_spec`) plans one step's data movement down
//! to the byte; `ratel-verify` checks that plan statically at
//! construction. This module closes the remaining gap — plan vs
//! *execution* — by matching each instrumented step's drained telemetry
//! against the plan and emitting structured [`Finding`]s for every
//! divergence:
//!
//! * **unplanned transfers** — a blob key outside the engine's
//!   `layer{N}/…` / `block{N}/…` inventory crossed a tier link;
//! * **byte mismatches** — a route's measured step traffic differs from
//!   the planned total (exact, same contract as `ratel-bench validate`);
//! * **stage inversions** — forward layers ran out of ascending order,
//!   backward out of descending order, or a layer's backward began
//!   before its forward;
//! * **stalls** — a route with a configured bandwidth target achieved
//!   less than the configured fraction of it.
//!
//! A clean engine step produces **zero findings**; the `obs_conformance`
//! integration suite seeds each drift class into recorded telemetry and
//! asserts the monitor names it.

use std::fmt;

use ratel_storage::telemetry::SpanCategory;
use ratel_storage::Route;

use super::telemetry::StepTelemetry;
use crate::schedule::IterationSpec;

/// Drift classes the monitor can report. The discriminants mirror the
/// flight recorder's drift code table (`ratel_obs::EventKind::Drift`
/// payload codes), so a dumped event decodes to the same name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriftKind {
    /// A transfer moved a blob the plan knows nothing about.
    UnplannedTransfer,
    /// A route's measured bytes differ from the planned total.
    ByteMismatch,
    /// Forward/backward layer spans ran out of planned stage order.
    StageInversion,
    /// A route underran its configured bandwidth target.
    Stall,
}

impl DriftKind {
    /// Stable code matching `ratel_obs`'s drift-name table.
    pub fn index(self) -> usize {
        match self {
            DriftKind::UnplannedTransfer => 0,
            DriftKind::ByteMismatch => 1,
            DriftKind::StageInversion => 2,
            DriftKind::Stall => 3,
        }
    }

    /// Short stable name (matches the flight recorder's decoding).
    pub fn name(self) -> &'static str {
        match self {
            DriftKind::UnplannedTransfer => "unplanned_transfer",
            DriftKind::ByteMismatch => "byte_mismatch",
            DriftKind::StageInversion => "stage_inversion",
            DriftKind::Stall => "stall",
        }
    }
}

/// One structured conformance finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The drift class.
    pub kind: DriftKind,
    /// The route involved, when the finding is route-scoped.
    pub route: Option<Route>,
    /// Human-readable specifics (blob key, span labels, bandwidths).
    pub detail: String,
    /// Planned quantity (bytes or bytes/s), when applicable.
    pub planned: Option<u64>,
    /// Measured quantity, when applicable.
    pub measured: Option<u64>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.name())?;
        if let Some(route) = self.route {
            write!(f, " [{}]", route.name())?;
        }
        write!(f, ": {}", self.detail)?;
        if let (Some(p), Some(m)) = (self.planned, self.measured) {
            write!(f, " (planned {p}, measured {m})")?;
        }
        Ok(())
    }
}

/// Monitor configuration. The default checks bytes, transfer inventory,
/// and stage order; bandwidth stall detection stays off until a route
/// target is set (an unthrottled in-memory run has no meaningful
/// bandwidth floor).
#[derive(Debug, Clone)]
pub struct ConformanceConfig {
    /// Per-route bandwidth targets in bytes/s, indexed like
    /// [`Route::ALL`]. `None` disables the stall check for that route.
    pub bandwidth_targets: [Option<f64>; 4],
    /// A route stalls when its achieved bandwidth drops below this
    /// fraction of the target (default 0.5).
    pub min_bandwidth_fraction: f64,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        ConformanceConfig {
            bandwidth_targets: [None; 4],
            min_bandwidth_fraction: 0.5,
        }
    }
}

/// Checks instrumented steps against a frozen plan.
///
/// Built once from the engine's movement spec (whose per-route byte
/// totals it caches) and applied to every [`StepTelemetry`] the engine
/// collects. Stateless across steps: each check sees one step.
#[derive(Debug, Clone)]
pub struct ConformanceMonitor {
    planned_bytes: [u64; 4],
    config: ConformanceConfig,
}

/// Parses the layer id out of a `fwd L{n}` / `bwd L{n}` compute label.
fn layer_of(label: &str) -> Option<usize> {
    label
        .rsplit_once('L')
        .and_then(|(_, n)| n.parse::<usize>().ok())
}

/// Whether a transfer's blob key belongs to the engine's planned
/// inventory: `layer{N}/<blob>` (parameters, masters, moments,
/// gradients, checkpoints — `#staged`/`#pf` suffixes included) or
/// `block{N}/<blob>` (saved activations).
fn planned_key(key: &str) -> bool {
    for family in ["layer", "block"] {
        if let Some(rest) = key.strip_prefix(family) {
            let digits = rest.chars().take_while(|c| c.is_ascii_digit()).count();
            if digits > 0 && rest[digits..].starts_with('/') {
                return true;
            }
        }
    }
    false
}

impl ConformanceMonitor {
    /// Builds a monitor holding the plan's per-route byte ledger.
    pub fn new(spec: &IterationSpec, config: ConformanceConfig) -> Self {
        ConformanceMonitor {
            planned_bytes: spec.planned_route_bytes(),
            config,
        }
    }

    /// The plan's per-route byte totals, indexed like [`Route::ALL`].
    pub fn planned_bytes(&self) -> [u64; 4] {
        self.planned_bytes
    }

    /// Matches one step's telemetry against the plan. Returns every
    /// divergence found; an empty vector means the step conformed.
    pub fn check(&self, step: &StepTelemetry) -> Vec<Finding> {
        let mut findings = Vec::new();
        self.check_transfers(step, &mut findings);
        self.check_bytes(step, &mut findings);
        self.check_stage_order(step, &mut findings);
        self.check_stalls(step, &mut findings);
        findings
    }

    /// Every transfer span's blob key must belong to a planned family.
    fn check_transfers(&self, step: &StepTelemetry, findings: &mut Vec<Finding>) {
        let mut flagged: Vec<&str> = Vec::new();
        for s in &step.spans {
            if s.category != SpanCategory::Transfer {
                continue;
            }
            if !planned_key(&s.label) && !flagged.contains(&s.label.as_str()) {
                flagged.push(&s.label);
                findings.push(Finding {
                    kind: DriftKind::UnplannedTransfer,
                    route: s.route,
                    detail: format!("blob {:?} is outside the planned inventory", s.label),
                    planned: None,
                    measured: s.bytes,
                });
            }
        }
    }

    /// Measured route traffic must equal the plan's ledger to the byte.
    fn check_bytes(&self, step: &StepTelemetry, findings: &mut Vec<Finding>) {
        for (i, route) in Route::ALL.iter().enumerate() {
            let measured = step.traffic.bytes(*route);
            if measured != self.planned_bytes[i] {
                findings.push(Finding {
                    kind: DriftKind::ByteMismatch,
                    route: Some(*route),
                    detail: "route traffic diverged from the plan".into(),
                    planned: Some(self.planned_bytes[i]),
                    measured: Some(measured),
                });
            }
        }
    }

    /// Forward layers must start in ascending id order, backward in
    /// descending order (with the embedding's backward last), and no
    /// layer's backward may begin before its forward.
    fn check_stage_order(&self, step: &StepTelemetry, findings: &mut Vec<Finding>) {
        let mut fwd: Vec<(f64, usize, &str)> = Vec::new();
        let mut bwd: Vec<(f64, usize, &str)> = Vec::new();
        for s in &step.spans {
            let bucket = match s.category {
                SpanCategory::Forward => &mut fwd,
                SpanCategory::Backward => &mut bwd,
                _ => continue,
            };
            if let Some(layer) = layer_of(&s.label) {
                bucket.push((s.start, layer, &s.label));
            }
        }
        fwd.sort_by(|a, b| a.0.total_cmp(&b.0));
        bwd.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in fwd.windows(2) {
            if w[1].1 <= w[0].1 {
                findings.push(Finding {
                    kind: DriftKind::StageInversion,
                    route: None,
                    detail: format!("{:?} started after {:?} in forward", w[1].2, w[0].2),
                    planned: None,
                    measured: None,
                });
            }
        }
        // Backward runs head, blocks in reverse, then the embedding —
        // layer ids strictly descending (0 last keeps the order strict).
        for w in bwd.windows(2) {
            if w[1].1 >= w[0].1 {
                findings.push(Finding {
                    kind: DriftKind::StageInversion,
                    route: None,
                    detail: format!("{:?} started after {:?} in backward", w[1].2, w[0].2),
                    planned: None,
                    measured: None,
                });
            }
        }
        for &(bstart, layer, blabel) in &bwd {
            if let Some(&(fstart, _, flabel)) = fwd.iter().find(|(_, l, _)| *l == layer) {
                if bstart < fstart {
                    findings.push(Finding {
                        kind: DriftKind::StageInversion,
                        route: None,
                        detail: format!("{blabel:?} began before {flabel:?}"),
                        planned: None,
                        measured: None,
                    });
                }
            }
        }
    }

    /// Routes with configured targets must achieve the minimum fraction.
    fn check_stalls(&self, step: &StepTelemetry, findings: &mut Vec<Finding>) {
        for (i, route) in Route::ALL.iter().enumerate() {
            let Some(target) = self.config.bandwidth_targets[i] else {
                continue;
            };
            let Some(achieved) = step.route_metrics[i].achieved_bandwidth() else {
                continue; // idle route: nothing to rate
            };
            let floor = target * self.config.min_bandwidth_fraction;
            if achieved < floor {
                findings.push(Finding {
                    kind: DriftKind::Stall,
                    route: Some(*route),
                    detail: format!(
                        "achieved {achieved:.0} B/s of {target:.0} B/s target \
                         (floor {floor:.0})"
                    ),
                    planned: Some(target as u64),
                    measured: Some(achieved as u64),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planned_key_accepts_inventory_and_rejects_aliens() {
        for ok in [
            "layer0/p16",
            "layer12/p16#staged",
            "layer3/p16#pf7",
            "layer4/moments",
            "block2/acts",
        ] {
            assert!(planned_key(ok), "{ok} should be planned");
        }
        for bad in ["rogue/blob", "layer/p16", "blockx/acts", "layers0/p16", ""] {
            assert!(!planned_key(bad), "{bad} should be unplanned");
        }
    }

    #[test]
    fn layer_label_parsing() {
        assert_eq!(layer_of("fwd L12"), Some(12));
        assert_eq!(layer_of("bwd L0"), Some(0));
        assert_eq!(layer_of("scaler ok"), None);
    }

    #[test]
    fn drift_codes_match_the_flight_recorder_table() {
        for kind in [
            DriftKind::UnplannedTransfer,
            DriftKind::ByteMismatch,
            DriftKind::StageInversion,
            DriftKind::Stall,
        ] {
            let decoded = ratel_obs::EventKind::Drift.code_name(kind.index() as u8);
            assert_eq!(decoded, Some(kind.name()));
        }
    }
}
