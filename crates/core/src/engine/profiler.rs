//! Hardware-aware profiling for the *real* engine (§IV-B, executable).
//!
//! The paper's profiling stage runs one instrumented iteration to learn
//! the peak GPU throughput, the achieved bandwidth of every link, and the
//! free main memory, then hands those numbers to the activation planner.
//! This module does the same against the actual substrate: it times the
//! tensor backend's transformer-block kernels to get FLOP/s, times blob
//! movement over each (possibly throttled) store route to get bytes/s,
//! and packages everything as the same [`HardwareProfile`] the analytic
//! planner consumes — so Algorithm 1 can drive the real engine's
//! per-block [`ActDecision`]s from *measurements*, exactly as in Fig. 4's
//! `Ratel_init()` flow.

use std::time::Instant;

use ratel_model::{ModelConfig, ModelProfile, UnitKind};
use ratel_storage::{StorageError, Tier, TieredStore};
use ratel_tensor::{BlockSaved, GptConfig, Tensor, TransformerBlock};

use crate::planner::ActivationPlanner;
use crate::profile::HardwareProfile;

use super::ActDecision;

/// Bandwidths and compute throughput measured on the live substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredProfile {
    /// Sustained FLOP/s of the tensor backend on a transformer block.
    pub flops_per_sec: f64,
    /// GPU->host route bandwidth, bytes/s.
    pub g2m_bytes_per_sec: f64,
    /// Host->GPU route bandwidth, bytes/s.
    pub m2g_bytes_per_sec: f64,
    /// SSD->host route bandwidth, bytes/s.
    pub s2h_bytes_per_sec: f64,
    /// Host->SSD route bandwidth, bytes/s.
    pub h2s_bytes_per_sec: f64,
}

/// Analytic FLOPs of one block forward at the profiled shape.
fn block_flops(c: &GptConfig) -> f64 {
    let (b, s, h) = (c.batch as f64, c.seq as f64, c.hidden as f64);
    24.0 * b * s * h * h + 4.0 * b * s * s * h
}

impl MeasuredProfile {
    /// Profiles the tensor backend and a store's routes.
    ///
    /// `probe_bytes` sizes the bandwidth probe blob (bigger = less timer
    /// noise, more probe time). Unthrottled in-memory routes measure in
    /// the tens of GB/s, mirroring a real pinned-memory link.
    pub fn measure(
        config: GptConfig,
        store: &TieredStore,
        probe_bytes: usize,
    ) -> Result<Self, crate::error::RatelError> {
        // --- compute probe: time a block forward a few times ---
        let block = TransformerBlock::new(config.batch, config.seq, config.hidden, config.heads, 1);
        let x = Tensor::randn(&[config.batch * config.seq, config.hidden], 0.5, 2);
        let _warm = block.forward(&x);
        let reps = 3;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(block.forward(&x));
        }
        let per_fwd = t0.elapsed().as_secs_f64() / reps as f64;
        let flops_per_sec = block_flops(&config) / per_fwd.max(1e-9);

        // --- bandwidth probes: move one blob over each route, timed ---
        let key = "__ratel_profile_probe__";
        store.put(key, Tier::Gpu, vec![0u8; probe_bytes])?;
        let time_route = |target: Tier| -> Result<f64, StorageError> {
            let t0 = Instant::now();
            store.move_to(key, target)?;
            Ok(probe_bytes as f64 / t0.elapsed().as_secs_f64().max(1e-9))
        };
        let g2m = time_route(Tier::Host)?;
        let h2s = time_route(Tier::Ssd)?;
        let s2h = time_route(Tier::Host)?;
        let m2g = time_route(Tier::Gpu)?;
        store.remove(key)?;

        Ok(MeasuredProfile {
            flops_per_sec,
            g2m_bytes_per_sec: g2m,
            m2g_bytes_per_sec: m2g,
            s2h_bytes_per_sec: s2h,
            h2s_bytes_per_sec: h2s,
        })
    }

    /// Packages the measurements as the planner's [`HardwareProfile`].
    ///
    /// `host_act_budget` is the `MEM_avail` term (host bytes available to
    /// hold swapped activations); the engine substrate has no chunked
    /// state-I/O penalty, so the efficiency is 1.
    pub fn to_hardware_profile(&self, host_act_budget: f64) -> HardwareProfile {
        HardwareProfile {
            thp_gpu: self.flops_per_sec,
            // The planner's model has one duplex GPU link; use the slower
            // measured direction to stay conservative.
            bw_gpu: self.g2m_bytes_per_sec.min(self.m2g_bytes_per_sec),
            bw_s2m: self.s2h_bytes_per_sec,
            bw_m2s: self.h2s_bytes_per_sec,
            mem_avail: host_act_budget,
            cpu_adam_params_per_sec: 0.55e9,
            state_io_efficiency: 1.0,
        }
    }
}

/// Runs the measured profile through Algorithm 1 on the executable
/// model's analytic twin and lowers the plan to per-block decisions:
/// blocks whose activation units the planner swaps are swapped (to host
/// while the budget lasts, then SSD), the rest recompute.
pub fn plan_decisions(config: GptConfig, hw: &HardwareProfile) -> Vec<ActDecision> {
    let analytic = ModelConfig {
        seq_len: config.seq,
        vocab: config.vocab,
        ..ModelConfig::decoder_lm("engine-model", config.layers, config.heads, config.hidden)
    };
    let profile = ModelProfile::new(&analytic, config.batch);
    let plan = ActivationPlanner::new(hw, &profile).plan();

    // Actual A16 blob size of one executable block (elements * 2 bytes):
    // x1 + qkv(3h) + ctx + x2 + x3 + mlp pre/act(8h) + LN stats + the
    // streaming-attention row statistics (max + logsumexp per row per
    // head; no materialized probabilities).
    let block_blob_bytes = 2.0
        * BlockSaved::element_count_for(config.batch, config.seq, config.hidden, config.heads)
            as f64;

    let mut host_left = hw.mem_avail;
    (0..config.layers)
        .map(|b| {
            let id = b + 1; // analytic layer ids: 0 = embedding
            let swapped = plan.swaps(id, UnitKind::Mlp) || plan.swaps(id, UnitKind::Attention);
            if !swapped {
                ActDecision::Recompute
            } else if block_blob_bytes <= host_left {
                host_left -= block_blob_bytes;
                ActDecision::SwapToHost
            } else {
                ActDecision::SwapToSsd
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratel_storage::{Route, TierConfig};

    #[test]
    fn measures_positive_rates() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        let p = MeasuredProfile::measure(GptConfig::tiny(), &store, 1 << 20).unwrap();
        assert!(p.flops_per_sec > 1e6, "{:?}", p);
        for bw in [
            p.g2m_bytes_per_sec,
            p.m2g_bytes_per_sec,
            p.s2h_bytes_per_sec,
            p.h2s_bytes_per_sec,
        ] {
            assert!(bw > 1e6, "{:?}", p);
        }
        // Probe blob is cleaned up.
        assert_eq!(store.used(Tier::Gpu), 0);
        assert_eq!(store.used(Tier::Ssd), 0);
    }

    #[test]
    fn throttles_show_up_in_measurements() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.set_throttle(Route::HostToSsd, Some(10e6));
        let p = MeasuredProfile::measure(GptConfig::tiny(), &store, 1 << 20).unwrap();
        assert!(
            (5e6..20e6).contains(&p.h2s_bytes_per_sec),
            "throttled route measured {:.1e} B/s",
            p.h2s_bytes_per_sec
        );
        assert!(p.g2m_bytes_per_sec > 50e6, "unthrottled route stays fast");
    }

    #[test]
    fn slow_links_push_the_plan_toward_recompute() {
        let config = GptConfig::tiny();
        // Fast compute, glacial links: recompute everything.
        let slow_links = HardwareProfile {
            thp_gpu: 1e15,
            bw_gpu: 1e3,
            bw_s2m: 1e3,
            bw_m2s: 1e3,
            mem_avail: 1e12,
            cpu_adam_params_per_sec: 1e9,
            state_io_efficiency: 1.0,
        };
        let d = plan_decisions(config, &slow_links);
        assert!(d.iter().all(|x| *x == ActDecision::Recompute), "{d:?}");

        // Slow compute, infinite links: swap everything, host first.
        let fast_links = HardwareProfile {
            thp_gpu: 1e6,
            bw_gpu: 1e12,
            bw_s2m: 1e12,
            bw_m2s: 1e12,
            mem_avail: 1e12,
            cpu_adam_params_per_sec: 1e9,
            state_io_efficiency: 1.0,
        };
        let d = plan_decisions(config, &fast_links);
        assert!(d.iter().all(|x| *x == ActDecision::SwapToHost), "{d:?}");
    }

    #[test]
    fn tight_host_budget_spills_swaps_to_ssd() {
        let config = GptConfig::tiny();
        let hw = HardwareProfile {
            thp_gpu: 1e6,
            bw_gpu: 1e12,
            bw_s2m: 1e12,
            bw_m2s: 1e12,
            mem_avail: 0.0, // no host room at all
            cpu_adam_params_per_sec: 1e9,
            state_io_efficiency: 1.0,
        };
        let d = plan_decisions(config, &hw);
        assert!(d.iter().all(|x| *x == ActDecision::SwapToSsd), "{d:?}");
    }
}
