//! The real out-of-core fine-tuning engine.
//!
//! This module executes Ratel's algorithms *for real* on a small GPT:
//! model states live as blobs in the SSD tier of a
//! [`ratel_storage::TieredStore`], the "GPU" is a capacity-enforced arena
//! that only ever holds one layer's working set, activations are swapped
//! to host/SSD or recomputed per a planner decision, and a concurrent CPU
//! optimizer consumes each layer's gradient the moment backward produces
//! it (active gradient offloading, §IV-C) while staying fully synchronous:
//! every parameter read by iteration *k+1* reflects every gradient of
//! iteration *k*, with no staleness.
//!
//! Mixed precision is emulated faithfully: the master parameters and Adam
//! moments are f32 blobs (P32/OS32), the compute copies, activations, and
//! gradients move as IEEE-754 binary16 bytes (P16/A16/G16). Because both
//! the offloaded engine and the in-memory [`reference::ReferenceTrainer`]
//! round at the same points, their losses and parameters match *exactly*
//! — the strongest possible check of the paper's "no parameter staleness"
//! claim (§IV-C's footnote distinguishing Ratel from one-step-delayed
//! ZeRO-Offload).

pub mod bpe;
pub mod checkpoint;
pub mod conformance;
mod dag_step;
pub mod data;
pub mod executor;
pub mod lr;
pub mod obs;
pub mod optimizer;
pub(crate) mod prefetch;
pub mod profiler;
pub mod reference;
pub mod scaler;
pub mod telemetry;

use std::sync::Arc;

use ratel_obs::EventKind;
use ratel_storage::telemetry::{FaultStats, SpanCategory, TelemetryRecorder};
use ratel_storage::{Route, StorageError, Tier, TierConfig, TieredStore, TrafficSnapshot};
use ratel_tensor::dtype::{decode_f16, decode_f32, encode_f16, encode_f32, round_to_f16};
use ratel_tensor::{
    block_dropout_spec, Adam, AdamParams, BlockSaved, GptConfig, GptModel, KvCache, ParamLayer,
    Tensor,
};

use crate::error::RatelError;
use lr::LrSchedule;
use optimizer::{ActiveOptimizer, GradMessage};
use scaler::{LossScaler, ScalePolicy};
use telemetry::StepTelemetry;

/// How a training step executes: through the schedule-driven executor
/// (the default) or one of the legacy hand-coded stage loops.
///
/// The executor lowers the engine's movement plan into a task DAG
/// (statically verified in debug builds), then dispatches it onto one
/// worker pool per resource class — see [`executor`]. The legacy
/// variants keep the original stage loop with its ad-hoc prefetch
/// threads; they remain as an A/B reference and for workloads that want
/// the old span shapes. All variants are bitwise identical in what they
/// compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionOptions {
    /// Schedule-driven: `train_step` executes the verified movement DAG
    /// on per-resource worker pools.
    Executor(ExecutorOptions),
    /// Legacy stage loop with active gradient offloading (§IV-C): the
    /// optimizer consumes gradients concurrently with backward.
    LegacyOverlapped {
        /// Stage each layer's P16 a window ahead on a dedicated
        /// prefetcher thread (the Fig. 4 `Ratel_hook` pipelining).
        prefetch_params: bool,
    },
    /// Legacy stage loop with the optimizer as a separate stage after
    /// backward — the "Ratel+ZeRO" ablation.
    LegacySeparateStage {
        /// Stage each layer's P16 a window ahead on a dedicated
        /// prefetcher thread.
        prefetch_params: bool,
    },
}

impl Default for ExecutionOptions {
    fn default() -> Self {
        ExecutionOptions::Executor(ExecutorOptions::default())
    }
}

/// Tuning knobs of the schedule-driven executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorOptions {
    /// Worker threads per resource pool. One worker per pool already
    /// overlaps the pipeline across resources (each pool serves a
    /// distinct class); the default of two lets one class run
    /// independent tasks concurrently — an SSD array services a state
    /// read while a state write streams out, which the single-threaded
    /// pool would serialize. Numerics are identical at any count.
    pub workers_per_pool: usize,
    /// The gradient-offloading schedule to lower and execute.
    /// [`crate::offload::GradOffloadMode::OptimizedActive`] is Ratel's
    /// Fig. 3b pipeline; `SeparateStage` runs the optimizer after
    /// backward (the Ratel+ZeRO ablation shape).
    pub offload: crate::offload::GradOffloadMode,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        ExecutorOptions {
            workers_per_pool: 2,
            offload: crate::offload::GradOffloadMode::OptimizedActive,
        }
    }
}

/// What to do with one transformer block's intra-layer activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActDecision {
    /// Swap the saved-activation blob to main memory.
    SwapToHost,
    /// Swap the saved-activation blob through main memory to the SSDs.
    SwapToSsd,
    /// Discard it and recompute the block's forward during backward.
    Recompute,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The executable model shape.
    pub model: GptConfig,
    /// Seed for parameter initialization.
    pub seed: u64,
    /// Adam hyperparameters.
    pub adam: AdamParams,
    /// Per-block activation decision (length = `model.layers`).
    pub act_decisions: Vec<ActDecision>,
    /// "GPU" arena capacity in bytes (`None` = unbounded).
    pub gpu_capacity: Option<u64>,
    /// Host pool capacity in bytes (`None` = unbounded).
    pub host_capacity: Option<u64>,
    /// How steps execute: the schedule-driven executor (default) or a
    /// legacy stage loop. Replaces the old `active_offload` +
    /// `prefetch_params` boolean knobs.
    pub execution: ExecutionOptions,
    /// Mixed-precision loss scaling policy (see [`scaler`]).
    pub loss_scale: ScalePolicy,
    /// Per-layer gradient-norm clip (None disables clipping).
    pub grad_clip: Option<f32>,
    /// Learning-rate schedule applied on top of `adam.lr`.
    pub lr_schedule: LrSchedule,
    /// Residual dropout probability (None disables). Masks are derived
    /// from the step index and layer id, so swapped and recomputed
    /// backward passes regenerate identical masks.
    pub dropout: Option<f32>,
    /// Layers whose parameters are *frozen* (no gradient offload, no
    /// optimizer handler, no state I/O) — parameter-efficient fine-tuning
    /// such as linear probing. Ids: 0 = embedding, 1..=L = blocks,
    /// L+1 = head. Backpropagation still flows *through* frozen layers.
    pub frozen_layers: Vec<usize>,
}

impl EngineConfig {
    /// Checks the whole configuration and returns *every* violation
    /// found (empty = valid). [`crate::Ratel::build`] calls this and
    /// reports the full list in one [`RatelError::InvalidConfig`], so a
    /// bad config is fixed in one pass instead of one error per run.
    pub fn validate(&self) -> Vec<String> {
        let m = &self.model;
        let mut v = Vec::new();
        if m.layers == 0 {
            v.push("model needs at least one transformer block".to_string());
        }
        if m.heads == 0 {
            v.push("model needs at least one attention head".to_string());
        }
        if m.hidden == 0 {
            v.push("hidden dimension must be non-zero".to_string());
        }
        if m.vocab == 0 {
            v.push("vocabulary must be non-empty".to_string());
        }
        if m.seq == 0 {
            v.push("sequence length must be non-zero".to_string());
        }
        if m.batch == 0 {
            v.push("micro-batch size must be non-zero".to_string());
        }
        if m.heads != 0 && !m.hidden.is_multiple_of(m.heads) {
            v.push(format!(
                "hidden ({}) must be divisible by heads ({})",
                m.hidden, m.heads
            ));
        }
        if self.act_decisions.len() != m.layers {
            v.push(format!(
                "one activation decision per block: got {}, model has {} blocks",
                self.act_decisions.len(),
                m.layers
            ));
        }
        for &layer in &self.frozen_layers {
            if layer >= m.layers + 2 {
                v.push(format!(
                    "frozen layer {layer} out of range (model has layers 0..={})",
                    m.layers + 1
                ));
            }
        }
        if let ExecutionOptions::Executor(opts) = self.execution {
            if opts.workers_per_pool == 0 {
                v.push("executor needs at least one worker per resource pool".to_string());
            }
        }
        // Capacity floors only make sense once the shape itself is sane.
        if v.is_empty() {
            let max_p = m.max_layer_params() as u64;
            if let Some(cap) = self.gpu_capacity {
                let need = 2 * max_p; // one resident layer's P16
                if cap < need {
                    v.push(format!(
                        "gpu capacity {cap} B cannot stage the largest layer's \
                         P16 ({need} B)"
                    ));
                }
            }
            if let Some(cap) = self.host_capacity {
                let need = 14 * max_p; // master (4) + moments (8) + G16 (2)
                if cap < need {
                    v.push(format!(
                        "host capacity {cap} B cannot hold the largest layer's \
                         optimizer working set ({need} B)"
                    ));
                }
            }
        }
        v
    }

    /// A reasonable default: tiny model, everything swapped to host.
    pub fn tiny() -> Self {
        let model = GptConfig::tiny();
        EngineConfig {
            model,
            seed: 42,
            adam: AdamParams::default(),
            act_decisions: vec![ActDecision::SwapToHost; model.layers],
            gpu_capacity: None,
            host_capacity: None,
            execution: ExecutionOptions::default(),
            loss_scale: ScalePolicy::None,
            grad_clip: None,
            lr_schedule: LrSchedule::Constant,
            dropout: None,
            frozen_layers: Vec::new(),
        }
    }

    /// Whether the legacy stage loop should run its parameter-prefetch
    /// thread (executor mode encodes prefetch as graph edges instead).
    fn legacy_prefetch(&self) -> bool {
        matches!(
            self.execution,
            ExecutionOptions::LegacyOverlapped {
                prefetch_params: true
            } | ExecutionOptions::LegacySeparateStage {
                prefetch_params: true
            }
        )
    }

    /// Whether the optimizer overlaps backward (active gradient
    /// offloading) under this execution mode.
    fn active_offload(&self) -> bool {
        match self.execution {
            ExecutionOptions::Executor(opts) => {
                opts.offload != crate::offload::GradOffloadMode::SeparateStage
            }
            ExecutionOptions::LegacyOverlapped { .. } => true,
            ExecutionOptions::LegacySeparateStage { .. } => false,
        }
    }
}

/// Statistics of one engine training step.
#[derive(Debug, Clone)]
pub struct StepStats {
    /// Mean cross-entropy loss of the step.
    pub loss: f32,
    /// Bytes moved per route during the step.
    pub traffic: ratel_storage::TrafficSnapshot,
    /// Wall-clock seconds of the step.
    pub wall_seconds: f64,
    /// Loss scale applied to this step's backward pass.
    pub loss_scale: f32,
    /// Layers whose update was skipped because their (unscaled) gradient
    /// overflowed the f16 range.
    pub skipped_layers: usize,
    /// Robustness-counter deltas for the step (SSD retries/give-ups and
    /// host-pressure spills) — always collected, telemetry on or off.
    pub fault_stats: FaultStats,
    /// Per-task execution breakdown — tasks and busy time per resource
    /// pool plus the measured critical path — when the step ran through
    /// the schedule-driven executor; `None` on the legacy paths.
    pub tasks: Option<executor::TaskBreakdown>,
}

/// Scalar parameters of engine layer `id` (0 = embedding, 1..=L =
/// blocks, L+1 = head), computed from the shape alone so movement plans
/// can be drawn up before any model is materialized.
fn analytic_layer_params(model: &GptConfig, id: usize) -> usize {
    if id == 0 {
        model.embedding_params()
    } else if id <= model.layers {
        model.block_params()
    } else {
        model.head_params()
    }
}

/// Lowers one engine step of `config` into its schedule twin: an
/// [`IterationSpec`](crate::schedule::IterationSpec) planning exactly
/// what the engine moves (the same shape `ratel-bench validate`
/// compares telemetry against). Layer ids follow the engine: 0 =
/// embedding, 1..=L = blocks, L+1 = head. Compute durations are
/// placeholders — the twin exists for dataflow/residency structure,
/// which `ratel-verify` checks statically.
///
/// This is a free function so a [`crate::api::TrainingPlan`] can build
/// and verify the plan *before* an engine (and its model) exists;
/// [`RatelEngine::movement_spec`] delegates here.
pub fn movement_spec_for(config: &EngineConfig) -> crate::schedule::IterationSpec {
    use crate::schedule::{IterationSpec, LayerTask, LinkRates, OptimizerKind, ParamSource};
    let model = config.model;
    let rows = (model.batch * model.seq) as f64;
    let ckpt_bytes = 2.0 * rows * model.hidden as f64;
    let act_bytes = 2.0
        * BlockSaved::element_count_for(model.batch, model.seq, model.hidden, model.heads) as f64;
    let layer_count = model.layers + 2;
    let layers = (0..layer_count)
        .map(|id| {
            let params = analytic_layer_params(&model, id) as f64;
            let is_block = id >= 1 && id <= model.layers;
            let is_head = id == layer_count - 1;
            // Frozen layers move no gradient and run no optimizer
            // handler; backward still flows through them.
            let frozen = config.frozen_layers.contains(&id);
            let (to_host, to_ssd) = if is_block {
                match config.act_decisions[id - 1] {
                    ActDecision::SwapToHost => (ckpt_bytes + act_bytes, 0.0),
                    ActDecision::SwapToSsd => (ckpt_bytes, act_bytes),
                    ActDecision::Recompute => (ckpt_bytes, 0.0),
                }
            } else {
                (0.0, 0.0)
            };
            LayerTask {
                label: if id == 0 {
                    "embedding".into()
                } else if is_head {
                    "head".into()
                } else {
                    format!("block{}", id - 1)
                },
                p16_bytes: 2.0 * params,
                param_source: ParamSource::Ssd,
                fwd_flops: 0.0,
                bwd_flops: 0.0,
                act_to_host_bytes: to_host,
                act_to_ssd_bytes: to_ssd,
                refetch_in_backward: !is_head,
                grad_bytes: if frozen { 0.0 } else { 2.0 * params },
                grad_spill_to_ssd: false,
                optimizer: if frozen {
                    OptimizerKind::None
                } else {
                    OptimizerKind::CpuOutOfCore {
                        read_bytes: 12.0 * params,
                        write_bytes: 14.0 * params,
                        cpu_params: params,
                    }
                },
            }
        })
        .collect();
    IterationSpec {
        layers,
        mode: match config.execution {
            ExecutionOptions::Executor(opts) => opts.offload,
            ExecutionOptions::LegacyOverlapped { .. } => {
                crate::offload::GradOffloadMode::OptimizedActive
            }
            ExecutionOptions::LegacySeparateStage { .. } => {
                crate::offload::GradOffloadMode::SeparateStage
            }
        },
        rates: LinkRates {
            thp_gpu: 1.0,
            bw_g2m: 1.0,
            bw_m2g: 1.0,
            ssd_read: 1.0,
            ssd_write: 1.0,
            cpu_params_per_sec: 1.0,
            state_io_efficiency: 1.0,
        },
        gpus: 1,
        items_per_iteration: model.batch as f64,
        per_layer_overhead_seconds: 0.0,
    }
}

/// The out-of-core engine.
pub struct RatelEngine {
    config: EngineConfig,
    store: Arc<TieredStore>,
    /// Layer skeletons; weights are loaded per use from the P16 blobs.
    model: GptModel,
    /// Monotone step counter (wall steps, including skipped ones).
    step: u64,
    /// Per-layer count of *applied* Adam updates (the bias-correction
    /// clock; overflow-skipped steps do not advance it).
    layer_steps: Vec<u64>,
    /// Mixed-precision loss scaler.
    scaler: LossScaler,
    /// Spans/metrics of the most recent instrumented step (None until a
    /// step runs with telemetry enabled).
    last_telemetry: Option<StepTelemetry>,
    /// Plan-conformance monitor, checked after every instrumented step
    /// once [`RatelEngine::enable_conformance`] is called.
    conformance: Option<conformance::ConformanceMonitor>,
    /// Findings of the most recent conformance-checked step.
    last_findings: Vec<conformance::Finding>,
    /// Cumulative conformance findings across all checked steps.
    total_findings: u64,
    /// The lowered, paced, verified step DAG (executor mode only). The
    /// plan depends only on the config, so it is built once and reused
    /// every step.
    step_dag: Option<Arc<dag_step::StepDag>>,
}

/// Picks a token from `logits` with temperature + top-k filtering;
/// greedy when `temperature <= 0` or `top_k <= 1`.
fn sample_from_logits(
    logits: &[f32],
    temperature: f32,
    top_k: usize,
    rng: &mut impl rand::Rng,
) -> usize {
    let argmax = || {
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty vocabulary")
    };
    if temperature <= 0.0 || top_k <= 1 {
        return argmax();
    }
    // Keep the top-k logits, softmax at the given temperature, sample.
    let mut indexed: Vec<(usize, f32)> = logits.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
    indexed.truncate(top_k.min(indexed.len()));
    let max = indexed[0].1;
    let weights: Vec<f32> = indexed
        .iter()
        .map(|(_, v)| ((v - max) / temperature).exp())
        .collect();
    let total: f32 = weights.iter().sum();
    let mut draw = rng.gen::<f32>() * total;
    for ((idx, _), w) in indexed.iter().zip(&weights) {
        draw -= w;
        if draw <= 0.0 {
            return *idx;
        }
    }
    indexed.last().map(|(i, _)| *i).unwrap_or_else(argmax)
}

/// Storage keys for a layer's blobs. Layer ids: 0 = embedding, 1..=L =
/// blocks, L+1 = head.
pub(crate) fn master_key(layer: usize) -> String {
    format!("layer{layer}/master")
}
pub(crate) fn moments_key(layer: usize) -> String {
    format!("layer{layer}/moments")
}
pub(crate) fn p16_key(layer: usize) -> String {
    format!("layer{layer}/p16")
}
fn grad_key(layer: usize) -> String {
    format!("layer{layer}/grad")
}
fn act_key(block: usize) -> String {
    format!("block{block}/acts")
}
fn ckpt_key(layer: usize) -> String {
    format!("layer{layer}/ckpt")
}
fn accum_key(layer: usize) -> String {
    format!("layer{layer}/grad-accum")
}

impl RatelEngine {
    /// Initializes the engine: builds the model, then *moves every model
    /// state to the SSD tier* (P32, OS32, P16 blobs per layer).
    ///
    /// This low-level constructor trusts its config (debug builds assert
    /// the basics); [`crate::Ratel::build`] runs the full
    /// [`EngineConfig::validate`] pass first and reports every violation.
    pub fn new(config: EngineConfig) -> Result<Self, RatelError> {
        debug_assert_eq!(
            config.act_decisions.len(),
            config.model.layers,
            "one activation decision per block"
        );
        let tier_config = TierConfig {
            gpu_capacity: config.gpu_capacity,
            host_capacity: config.host_capacity,
            ssd_capacity: None,
            ssd_dir: TierConfig::unbounded_temp().ssd_dir,
        };
        let store = Arc::new(TieredStore::new(tier_config)?);
        let model = GptModel::new(config.model, config.seed);

        let scaler = LossScaler::new(config.loss_scale);
        let layer_steps = vec![0u64; config.model.layers + 2];
        let mut engine = RatelEngine {
            config,
            store,
            model,
            step: 0,
            layer_steps,
            scaler,
            last_telemetry: None,
            conformance: None,
            last_findings: Vec::new(),
            total_findings: 0,
            step_dag: None,
        };
        engine.init_states()?;
        if matches!(engine.config.execution, ExecutionOptions::Executor(_)) {
            // Executor mode lowers the movement plan once here: the
            // builder self-verifies the schedule in debug builds, and
            // the lowering re-verifies it after pacing edges are added —
            // the DAG `train_step` dispatches is the DAG that passed.
            engine.step_dag = Some(Arc::new(dag_step::StepDag::lower(&engine.movement_spec())?));
        } else {
            // Debug builds statically verify the engine's movement plan
            // at construction: the schedule twin of one step is lowered
            // and built, and the builder's self-check panics on any
            // staleness, use-before-fetch, WAR, or residency violation.
            #[cfg(debug_assertions)]
            {
                let _ = engine.movement_spec().build();
            }
        }
        Ok(engine)
    }

    /// Lowers one engine step into its schedule twin: an
    /// [`IterationSpec`] planning exactly what the engine moves (the
    /// same shape `ratel-bench validate` compares telemetry against).
    /// Layer ids follow the engine: 0 = embedding, 1..=L = blocks,
    /// L+1 = head. Compute durations are placeholders — the twin exists
    /// for dataflow/residency structure, which `ratel-verify` checks
    /// statically; see [`IterationSpec::verify`].
    pub fn movement_spec(&self) -> crate::schedule::IterationSpec {
        debug_assert!(
            (0..self.layer_count())
                .all(|id| analytic_layer_params(&self.config.model, id)
                    == self.layer_param_count(id)),
            "analytic layer param counts diverged from the live model"
        );
        movement_spec_for(&self.config)
    }

    /// Number of schedulable layers (embedding + blocks + head).
    pub fn layer_count(&self) -> usize {
        self.config.model.layers + 2
    }

    /// The model shape the engine was built with.
    pub fn model_config(&self) -> GptConfig {
        self.config.model
    }

    fn layer_params_flat(&self, layer: usize) -> Vec<f32> {
        let l = self.config.model.layers;
        if layer == 0 {
            self.model.embedding.params_flat()
        } else if layer <= l {
            self.model.blocks[layer - 1].params_flat()
        } else {
            self.model.head.params_flat()
        }
    }

    fn init_states(&self) -> Result<(), StorageError> {
        // All initial states stream to the SSD tier in one coalesced
        // batch per layer kind: three sequential segment writes instead of
        // 3 * layer_count random blob writes.
        let mut masters = Vec::new();
        let mut moments = Vec::new();
        let mut p16s = Vec::new();
        for layer in 0..self.layer_count() {
            let master = self.layer_params_flat(layer);
            // P16 is what the GPU computes with: the f16 rounding of the
            // master, exactly what the optimizer will emit after steps.
            p16s.push((p16_key(layer), encode_f16(&master)));
            moments.push((
                moments_key(layer),
                encode_f32(&Adam::new(master.len()).to_flat()),
            ));
            masters.push((master_key(layer), encode_f32(&master)));
        }
        self.store.put_batch(Tier::Ssd, masters)?;
        self.store.put_batch(Tier::Ssd, moments)?;
        self.store.put_batch(Tier::Ssd, p16s)?;
        Ok(())
    }

    /// Loads a layer's P16 blob into the GPU arena, decodes it into the
    /// layer skeleton, and removes the staged copy (read-only streaming).
    fn stage_params(&mut self, layer: usize) -> Result<(), StorageError> {
        let key = p16_key(layer);
        let staged = format!("{key}#staged");
        self.store.copy_to(&key, &staged, Tier::Gpu)?;
        self.load_staged(layer, &staged)
    }

    /// Decodes a staged P16 blob into the layer skeleton and frees it.
    fn load_staged(&mut self, layer: usize, staged: &str) -> Result<(), StorageError> {
        let flat = decode_f16(&self.store.read(staged)?);
        let l = self.config.model.layers;
        if layer == 0 {
            self.model.embedding.set_params_flat(&flat);
        } else if layer <= l {
            self.model.blocks[layer - 1].set_params_flat(&flat);
        } else {
            self.model.head.set_params_flat(&flat);
        }
        self.store.remove(staged)?;
        Ok(())
    }

    /// Stages a layer either serially or from the prefetch pipeline.
    fn stage_via(
        &mut self,
        layer: usize,
        pf: &mut Option<prefetch::ParamPrefetcher>,
    ) -> Result<(), StorageError> {
        match pf {
            Some(pf) => {
                let staged = pf.next()?;
                self.load_staged(layer, &staged)
            }
            None => self.stage_params(layer),
        }
    }

    /// The layer touch order of one training step: forward 0..=L+1, then
    /// backward L..=1 and the embedding.
    fn stage_order(&self) -> Vec<usize> {
        let l = self.config.model.layers;
        let mut order: Vec<usize> = (0..=l + 1).collect();
        order.extend((1..=l).rev());
        order.push(0);
        order
    }

    /// Stores an f16 blob in the GPU tier and swaps it to `target`.
    fn offload_f16(&self, key: &str, bytes: Vec<u8>, target: Tier) -> Result<(), StorageError> {
        self.store.put(key, Tier::Gpu, bytes)?;
        self.store.move_to(key, target)?;
        Ok(())
    }

    /// Fetches an f16 blob back to the GPU tier and removes it, returning
    /// the bytes.
    fn fetch_f16(&self, key: &str) -> Result<Vec<u8>, StorageError> {
        self.store.move_to(key, Tier::Gpu)?;
        let bytes = self.store.read(key)?;
        self.store.remove(key)?;
        Ok(bytes)
    }

    /// Runs one full training step (forward, backward with swapped or
    /// recomputed activations, actively offloaded synchronous optimizer).
    ///
    /// `tokens`/`targets` are `batch * seq` ids, sequence-major.
    pub fn train_step(
        &mut self,
        tokens: &[usize],
        targets: &[usize],
    ) -> Result<StepStats, RatelError> {
        let result = self.train_step_inner(tokens, targets);
        self.seal_step(result)
    }

    fn train_step_inner(
        &mut self,
        tokens: &[usize],
        targets: &[usize],
    ) -> Result<StepStats, RatelError> {
        let t0 = std::time::Instant::now();
        let traffic_before = self.store.traffic();
        let faults_before = self.store.telemetry().fault_stats();
        let step_start = self.begin_step_telemetry();
        self.step += 1;
        ratel_obs::flight().record(EventKind::StepBegin, 0, "step", 0, self.step);

        let scale = self.scaler.current();
        let (loss, skipped, tasks) = if let ExecutionOptions::Executor(opts) = self.config.execution
        {
            // Schedule-driven: dispatch the lowered, verified DAG onto
            // the per-resource worker pools.
            let (loss, skipped, breakdown) = self.run_dag_step(tokens, targets, scale, opts)?;
            (loss, skipped, Some(breakdown))
        } else {
            // Legacy stage loop: start the optimizer threads (state
            // prefetcher + updater), which consume gradient blobs as
            // they land in host memory.
            let optimizer = self.start_optimizer(scale)?;
            let loss = self.forward_backward(tokens, targets, scale, |eng, layer, grads| {
                if eng.is_frozen(layer) {
                    return Ok(());
                }
                eng.emit_gradient(layer, grads, &optimizer)
            })?;
            // Synchronous semantics: the step is not done until every
            // layer's update has been written back to the SSD tier.
            let skipped = optimizer.finish()?;
            (loss, skipped, None)
        };
        self.finish_step(
            skipped,
            tasks,
            t0,
            loss,
            scale,
            traffic_before,
            faults_before,
            step_start,
        )
    }

    /// Runs one step through the schedule-driven executor: builds the
    /// step context over the engine's state and dispatches the lowered
    /// DAG. Returns `(loss, overflow-skipped layers, task breakdown)`.
    fn run_dag_step(
        &mut self,
        tokens: &[usize],
        targets: &[usize],
        scale: f32,
        opts: ExecutorOptions,
    ) -> Result<(f32, Vec<usize>, executor::TaskBreakdown), RatelError> {
        let dag = Arc::clone(self.step_dag.as_ref().ok_or_else(|| {
            RatelError::Runtime(
                "executor step requested but no step DAG was lowered at construction".into(),
            )
        })?);
        let step_seed = self.dropout_step_seed();
        // The LR schedule runs on the wall-step clock (0-based).
        let mut adam = self.config.adam;
        adam.lr *= self.config.lr_schedule.factor(self.step - 1);
        let ctx = dag_step::StepCtx::new(
            &self.store,
            &self.config,
            &dag.actions,
            &mut self.model,
            tokens,
            targets,
            scale,
            step_seed,
            adam,
            &self.layer_steps,
        );
        let breakdown = executor::Executor::new(opts.workers_per_pool).run(&dag.graph, &ctx)?;
        let (loss, skipped) = ctx.into_outcome();
        Ok((loss, skipped, breakdown))
    }

    /// Flight-records the step outcome: an `Error` event plus a
    /// postmortem dump when the step failed (the ring's tail then holds
    /// the failing transfer and its retries), pass-through otherwise.
    fn seal_step(&self, result: Result<StepStats, RatelError>) -> Result<StepStats, RatelError> {
        if let Err(e) = &result {
            ratel_obs::flight().record(EventKind::Error, 0, &e.to_string(), 0, self.step);
            ratel_obs::dump_postmortem("train step failed");
        }
        result
    }

    /// Runs one training step over several micro-batches with gradient
    /// accumulation: each micro-batch's G16 gradients land in host memory
    /// and are summed into f32 accumulators there; only after the final
    /// micro-batch does the (averaged, re-rounded) gradient reach the
    /// optimizer, whose handlers then overlap the final backward's tail.
    ///
    /// Semantics (mirrored exactly by
    /// [`reference::ReferenceTrainer::train_step_accumulated`]): per-layer
    /// gradient = `f16( mean_i( f16(g_i) ) )`; the reported loss is the
    /// mean micro-batch loss.
    pub fn train_step_accumulated(
        &mut self,
        micro_batches: &[(Vec<usize>, Vec<usize>)],
    ) -> Result<StepStats, RatelError> {
        let result = self.train_step_accumulated_inner(micro_batches);
        self.seal_step(result)
    }

    fn train_step_accumulated_inner(
        &mut self,
        micro_batches: &[(Vec<usize>, Vec<usize>)],
    ) -> Result<StepStats, RatelError> {
        assert!(!micro_batches.is_empty(), "need at least one micro-batch");
        let t0 = std::time::Instant::now();
        let traffic_before = self.store.traffic();
        let faults_before = self.store.telemetry().fault_stats();
        let step_start = self.begin_step_telemetry();
        self.step += 1;
        ratel_obs::flight().record(EventKind::StepBegin, 0, "step", 0, self.step);
        let scale = self.scaler.current();
        let n = micro_batches.len();
        let inv_n = 1.0 / n as f32;

        // Accumulation passes: gradients stay in host f32 accumulators.
        let mut loss_sum = 0.0f32;
        for (tokens, targets) in &micro_batches[..n - 1] {
            loss_sum += self.forward_backward(tokens, targets, scale, |eng, layer, grads| {
                if eng.is_frozen(layer) {
                    return Ok(());
                }
                eng.accumulate_gradient(layer, grads)
            })?;
        }

        // Final pass: merge with the accumulators, average, and stream to
        // the active optimizer.
        let optimizer = self.start_optimizer(scale)?;
        let (tokens, targets) = &micro_batches[n - 1];
        loss_sum += self.forward_backward(tokens, targets, scale, |eng, layer, mut grads| {
            if eng.is_frozen(layer) {
                return Ok(());
            }
            let akey = accum_key(layer);
            if eng.store.contains(&akey) {
                let acc = decode_f32(&eng.store.read(&akey)?);
                eng.store.remove(&akey)?;
                for (g, a) in grads.iter_mut().zip(&acc) {
                    *g = (round_to_f16(*g) + a) * inv_n;
                }
            } else if n > 1 {
                for g in grads.iter_mut() {
                    *g = round_to_f16(*g) * inv_n;
                }
            }
            eng.emit_gradient(layer, grads, &optimizer)
        })?;
        let skipped = optimizer.finish()?;
        self.finish_step(
            skipped,
            None,
            t0,
            loss_sum * inv_n,
            scale,
            traffic_before,
            faults_before,
            step_start,
        )
    }

    /// Sums a micro-batch's f16-rounded gradient into the layer's host
    /// f32 accumulator (creating it on first use). The f16 blob still
    /// crosses the GPU->host link like any G16 offload.
    fn accumulate_gradient(&self, layer: usize, grads: Vec<f32>) -> Result<(), StorageError> {
        let gkey = format!("layer{layer}/grad-micro");
        self.offload_f16(&gkey, encode_f16(&grads), Tier::Host)?;
        let g16 = decode_f16(&self.store.read(&gkey)?);
        self.store.remove(&gkey)?;
        let akey = accum_key(layer);
        if self.store.contains(&akey) {
            let mut acc = decode_f32(&self.store.read(&akey)?);
            for (a, g) in acc.iter_mut().zip(&g16) {
                *a += g;
            }
            self.store.overwrite(&akey, encode_f32(&acc))?;
        } else {
            self.store.put(&akey, Tier::Host, encode_f32(&g16))?;
        }
        Ok(())
    }

    fn start_optimizer(&self, scale: f32) -> Result<ActiveOptimizer, RatelError> {
        // The LR schedule runs on the wall-step clock (0-based).
        let mut adam = self.config.adam;
        adam.lr *= self.config.lr_schedule.factor(self.step - 1);
        ActiveOptimizer::start(
            Arc::clone(&self.store),
            self.backward_layer_order(),
            adam,
            self.layer_steps.clone(),
            self.config.active_offload(),
            scale,
            self.config.grad_clip,
        )
    }

    /// Marks the start of an instrumented step: discards spans left over
    /// from inter-step activity (eval, generation) so the step's record
    /// holds only its own spans. Returns the step's recorder-clock start
    /// and a route-metrics snapshot to delta against, or `None` when
    /// telemetry is off.
    fn begin_step_telemetry(&self) -> Option<(f64, [ratel_storage::RouteMetrics; 4])> {
        let rec = self.store.telemetry();
        rec.enabled().then(|| {
            rec.drain_spans();
            (rec.now(), rec.route_metrics())
        })
    }

    /// Seals one step after every layer's update has been written back:
    /// advances the scaler and per-layer clocks, records the scaler
    /// span, collects telemetry/conformance, and assembles the stats.
    /// `skipped` is the optimizer's overflow-skip list; `tasks` the
    /// executor breakdown (None on the legacy paths).
    #[allow(clippy::too_many_arguments)]
    fn finish_step(
        &mut self,
        skipped: Vec<usize>,
        tasks: Option<executor::TaskBreakdown>,
        t0: std::time::Instant,
        loss: f32,
        scale: f32,
        traffic_before: TrafficSnapshot,
        faults_before: FaultStats,
        step_start: Option<(f64, [ratel_storage::RouteMetrics; 4])>,
    ) -> Result<StepStats, RatelError> {
        let rec = Arc::clone(self.store.telemetry());
        let t_scaler = rec.enabled().then(|| rec.now());
        self.scaler.update(!skipped.is_empty());
        for layer in 0..self.layer_count() {
            if !skipped.contains(&layer) && !self.is_frozen(layer) {
                self.layer_steps[layer] += 1;
            }
        }
        if let Some(t) = t_scaler {
            let label = if skipped.is_empty() {
                format!("scaler ok (scale {scale})")
            } else {
                format!("scaler overflow ({} skipped)", skipped.len())
            };
            rec.record_span("engine", SpanCategory::Other, label, t, rec.now());
        }
        let traffic = self.store.traffic().since(&traffic_before);
        let fault_stats = rec.fault_stats().since(&faults_before);
        let wall_seconds = t0.elapsed().as_secs_f64();
        if let Some((step_start, metrics_before)) = step_start {
            self.last_telemetry = Some(StepTelemetry::collect(
                &rec,
                traffic,
                step_start,
                wall_seconds,
                &metrics_before,
                fault_stats,
            ));
        }
        // Conformance: hold the instrumented step against the movement
        // plan; every divergence becomes a structured finding plus a
        // flight-recorder Drift event.
        self.last_findings.clear();
        if let (Some(monitor), Some(t)) = (&self.conformance, self.last_telemetry.as_ref()) {
            let findings = monitor.check(t);
            for f in &findings {
                ratel_obs::flight().record(
                    EventKind::Drift,
                    f.kind.index() as u8,
                    &f.detail,
                    f.measured.unwrap_or(0),
                    self.step,
                );
            }
            self.total_findings += findings.len() as u64;
            self.last_findings = findings;
        }
        ratel_obs::flight().record(EventKind::StepEnd, 0, "step", traffic.total(), self.step);
        Ok(StepStats {
            loss,
            traffic,
            wall_seconds,
            loss_scale: scale,
            skipped_layers: skipped.len(),
            fault_stats,
            tasks,
        })
    }

    /// The dropout step-seed for the current (1-based) wall step.
    fn dropout_step_seed(&self) -> u64 {
        self.config.seed ^ self.step.wrapping_mul(0x517C_C1B7_2722_0A95)
    }

    /// One forward+backward pass; each layer's raw (scaled) f32 gradient
    /// is handed to `on_grad` in backward order. Returns the loss.
    fn forward_backward(
        &mut self,
        tokens: &[usize],
        targets: &[usize],
        scale: f32,
        mut on_grad: impl FnMut(&RatelEngine, usize, Vec<f32>) -> Result<(), StorageError>,
    ) -> Result<f32, StorageError> {
        let c = self.config.model;
        let l = c.layers;
        let rec = Arc::clone(self.store.telemetry());
        let mut pf = if self.config.legacy_prefetch() {
            Some(prefetch::ParamPrefetcher::start(
                Arc::clone(&self.store),
                self.stage_order(),
            )?)
        } else {
            None
        };

        // ---------------- Forward ----------------
        self.stage_via(0, &mut pf)?;
        let t = rec.enabled().then(|| rec.now());
        let mut x = self
            .model
            .embedding
            .forward(tokens, c.batch, c.seq)
            .quantize_f16();
        if let Some(t) = t {
            rec.record_span("gpu", SpanCategory::Forward, "fwd L0", t, rec.now());
        }
        for b in 0..l {
            // Each block's *input* is its checkpoint (the inter-block A16
            // of the paper), always swapped so backward can run
            // layer-at-a-time without holding the whole graph.
            self.offload_f16(&ckpt_key(b + 1), x.to_f16_bytes(), Tier::Host)?;
            self.stage_via(b + 1, &mut pf)?;
            let spec = self
                .config
                .dropout
                .map(|p| block_dropout_spec(p, self.dropout_step_seed(), b));
            let t = rec.enabled().then(|| rec.now());
            let (y, mut saved) = self.model.blocks[b].forward_with(&x, spec);
            if let Some(t) = t {
                rec.record_span(
                    "gpu",
                    SpanCategory::Forward,
                    format!("fwd L{}", b + 1),
                    t,
                    rec.now(),
                );
            }
            saved.quantize_f16();
            match self.config.act_decisions[b] {
                ActDecision::SwapToHost => {
                    self.offload_f16(&act_key(b), saved.to_f16_bytes(), Tier::Host)?;
                }
                ActDecision::SwapToSsd => {
                    self.offload_f16(&act_key(b), saved.to_f16_bytes(), Tier::Ssd)?;
                }
                ActDecision::Recompute => drop(saved),
            }
            x = y.quantize_f16();
        }

        // ---------------- Loss + head backward ----------------
        self.stage_via(l + 1, &mut pf)?;
        let t = rec.enabled().then(|| rec.now());
        let (loss, head_saved) = self.model.head.forward(&x, targets);
        if let Some(t) = t {
            rec.record_span(
                "gpu",
                SpanCategory::Forward,
                format!("fwd L{}", l + 1),
                t,
                rec.now(),
            );
        }
        let t = rec.enabled().then(|| rec.now());
        let (mut dx, head_grads) = self
            .model
            .head
            .backward_scaled(&x, &head_saved, targets, scale);
        drop(head_saved);
        on_grad(self, l + 1, head_grads)?;
        if let Some(t) = t {
            rec.record_span(
                "gpu",
                SpanCategory::Backward,
                format!("bwd L{}", l + 1),
                t,
                rec.now(),
            );
        }

        // ---------------- Block backward ----------------
        // The per-layer backward spans cover the whole layer turnaround
        // (checkpoint fetch, staging, activation fetch or recompute,
        // backward kernels, gradient hand-off): this is the window the
        // active optimizer gets to hide behind, so the overlap ratio is
        // measured against it.
        for b in (0..l).rev() {
            let t = rec.enabled().then(|| rec.now());
            let rows = c.batch * c.seq;
            let ckpt = self.fetch_f16(&ckpt_key(b + 1))?;
            let input = Tensor::from_f16_bytes(&[rows, c.hidden], &ckpt);
            self.stage_via(b + 1, &mut pf)?;
            let spec = self
                .config
                .dropout
                .map(|p| block_dropout_spec(p, self.dropout_step_seed(), b));
            let saved = match self.config.act_decisions[b] {
                ActDecision::SwapToHost | ActDecision::SwapToSsd => {
                    let bytes = self.fetch_f16(&act_key(b))?;
                    BlockSaved::from_f16_bytes(&bytes, c.batch, c.seq, c.hidden, c.heads)
                }
                ActDecision::Recompute => {
                    // Rematerialization regenerates the *same* dropout
                    // masks from the step/layer-derived seed.
                    let (_, mut s) = self.model.blocks[b].forward_with(&input, spec);
                    s.quantize_f16();
                    s
                }
            };
            let (dprev, grads) = self.model.blocks[b].backward_with(&input, &saved, &dx, spec);
            dx = dprev;
            on_grad(self, b + 1, grads)?;
            if let Some(t) = t {
                rec.record_span(
                    "gpu",
                    SpanCategory::Backward,
                    format!("bwd L{}", b + 1),
                    t,
                    rec.now(),
                );
            }
        }

        // ---------------- Embedding backward ----------------
        let t = rec.enabled().then(|| rec.now());
        self.stage_via(0, &mut pf)?;
        let emb_grads = self.model.embedding.backward(tokens, c.batch, c.seq, &dx);
        on_grad(self, 0, emb_grads)?;
        if let Some(t) = t {
            rec.record_span("gpu", SpanCategory::Backward, "bwd L0", t, rec.now());
        }
        Ok(loss)
    }

    /// The order gradients arrive at the optimizer: head, blocks in
    /// reverse, embedding — minus the frozen layers.
    fn backward_layer_order(&self) -> Vec<usize> {
        let l = self.config.model.layers;
        let mut order = vec![l + 1];
        order.extend((1..=l).rev());
        order.push(0);
        order.retain(|layer| !self.config.frozen_layers.contains(layer));
        order
    }

    /// Whether a layer's parameters are frozen.
    fn is_frozen(&self, layer: usize) -> bool {
        self.config.frozen_layers.contains(&layer)
    }

    /// Quantizes a layer gradient to G16, lands it in host memory (the
    /// active offload), and notifies the optimizer.
    fn emit_gradient(
        &self,
        layer: usize,
        grads: Vec<f32>,
        optimizer: &ActiveOptimizer,
    ) -> Result<(), StorageError> {
        let rec = self.store.telemetry();
        let t = rec.enabled().then(|| rec.now());
        let key = grad_key(layer);
        self.offload_f16(&key, encode_f16(&grads), Tier::Host)?;
        optimizer.submit(GradMessage { layer, key });
        if let Some(t) = t {
            rec.record_span(
                "grad-offload",
                SpanCategory::Other,
                format!("grad L{layer}"),
                t,
                rec.now(),
            );
        }
        Ok(())
    }

    /// Reads the current master (f32) parameters of a layer — for tests
    /// and checkpoint export.
    pub fn master_params(&self, layer: usize) -> Result<Vec<f32>, RatelError> {
        Ok(decode_f32(&self.store.read(&master_key(layer))?))
    }

    /// Reads the current P16 compute copy of a layer (decoded to f32).
    pub fn p16_params(&self, layer: usize) -> Result<Vec<f32>, RatelError> {
        Ok(decode_f16(&self.store.read(&p16_key(layer))?))
    }

    /// The tiered store (for inspection in tests/examples).
    pub fn store(&self) -> &TieredStore {
        &self.store
    }

    /// Evaluates the loss on a batch without training (no state change).
    pub fn eval_loss(&mut self, tokens: &[usize], targets: &[usize]) -> Result<f32, RatelError> {
        let c = self.config.model;
        self.stage_params(0)?;
        let mut x = self
            .model
            .embedding
            .forward(tokens, c.batch, c.seq)
            .quantize_f16();
        for b in 0..c.layers {
            self.stage_params(b + 1)?;
            let (y, _) = self.model.blocks[b].forward(&x);
            x = y.quantize_f16();
        }
        self.stage_params(c.layers + 1)?;
        let (loss, _) = self.model.head.forward(&x, targets);
        Ok(loss)
    }

    /// Greedy autoregressive generation through the tiered engine: the
    /// prompt is extended one token at a time, each step streaming every
    /// layer's P16 from the SSD tier exactly like a training forward.
    ///
    /// The model has a fixed context of `seq` tokens; the window holds
    /// the most recent `seq` tokens (causal attention makes trailing
    /// padding harmless for the positions before it). Returns the
    /// `max_new_tokens` generated ids.
    ///
    /// # Panics
    /// If the prompt is empty or contains out-of-vocabulary ids.
    pub fn generate(
        &mut self,
        prompt: &[usize],
        max_new_tokens: usize,
    ) -> Result<Vec<usize>, RatelError> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let c = self.config.model;
        assert!(
            prompt.iter().all(|&t| t < c.vocab),
            "prompt token out of vocabulary"
        );
        let mut context: Vec<usize> = prompt.to_vec();
        let mut out = Vec::with_capacity(max_new_tokens);
        for _ in 0..max_new_tokens {
            // Window of the last `seq` tokens, zero-padded at the tail.
            let start = context.len().saturating_sub(c.seq);
            let window = &context[start..];
            let last_pos = window.len() - 1;
            let mut ids = vec![0usize; c.seq];
            ids[..window.len()].copy_from_slice(window);
            // The model runs at its configured micro-batch; replicate the
            // window and read row 0.
            let batch_ids: Vec<usize> = (0..c.batch).flat_map(|_| ids.iter().copied()).collect();

            self.stage_params(0)?;
            let mut x = self
                .model
                .embedding
                .forward(&batch_ids, c.batch, c.seq)
                .quantize_f16();
            for b in 0..c.layers {
                self.stage_params(b + 1)?;
                let (y, _) = self.model.blocks[b].forward(&x);
                x = y.quantize_f16();
            }
            self.stage_params(c.layers + 1)?;
            let logits = self.model.head.logits(&x);
            let row = &logits.data()[last_pos * c.vocab..(last_pos + 1) * c.vocab];
            let next = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty vocabulary");
            context.push(next);
            out.push(next);
        }
        Ok(out)
    }

    /// KV-cached greedy generation: like [`RatelEngine::generate`], but
    /// each block keeps a key/value cache that is *offloaded to the host
    /// tier between tokens* and fetched back per layer — the
    /// inference-side analogue of activation swapping, with every byte
    /// metered. The total context (prompt + generated) must fit the
    /// model's `seq` positions.
    ///
    /// # Panics
    /// If the prompt is empty, contains out-of-vocabulary ids, or the
    /// total context would exceed `seq`.
    pub fn generate_cached(
        &mut self,
        prompt: &[usize],
        max_new_tokens: usize,
    ) -> Result<Vec<usize>, RatelError> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let c = self.config.model;
        assert!(
            prompt.len() + max_new_tokens <= c.seq,
            "context {} exceeds the model's {} positions",
            prompt.len() + max_new_tokens,
            c.seq
        );
        let d = c.hidden / c.heads;
        let kv_key = |b: usize| format!("block{b}/kv");

        let mut out = Vec::with_capacity(max_new_tokens);
        let mut next_token: Option<usize> = None;
        for pos in 0..prompt.len() + max_new_tokens {
            let token = match next_token {
                Some(t) => t,
                None => prompt[pos],
            };
            self.stage_params(0)?;
            let mut x_t = self.model.embedding.forward_at(token, pos).quantize_f16();
            for b in 0..c.layers {
                self.stage_params(b + 1)?;
                let mut cache = if pos == 0 {
                    KvCache::new(c.heads, d)
                } else {
                    let bytes = self.fetch_f16(&kv_key(b))?;
                    KvCache::from_f16_bytes(&bytes, c.heads, d, pos)
                };
                let y = self.model.blocks[b].forward_cached(&x_t, &mut cache);
                self.offload_f16(&kv_key(b), cache.to_f16_bytes(), Tier::Host)?;
                x_t = y.quantize_f16();
            }
            if pos + 1 >= prompt.len() && out.len() < max_new_tokens {
                self.stage_params(c.layers + 1)?;
                let logits = self.model.head.logits(&x_t);
                let next = logits
                    .data()
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .expect("non-empty vocabulary");
                assert!(next < c.vocab);
                out.push(next);
                next_token = Some(next);
            }
        }
        // Drop the caches so the tiers drain.
        for b in 0..c.layers {
            self.store.remove(&kv_key(b))?;
        }
        Ok(out)
    }

    /// Samples a continuation with temperature and top-k filtering
    /// (KV-cached path). `temperature <= 0` or `top_k == 1` degenerate to
    /// greedy decoding; sampling is deterministic in `sample_seed`.
    ///
    /// # Panics
    /// Same conditions as [`RatelEngine::generate_cached`].
    pub fn generate_sampled(
        &mut self,
        prompt: &[usize],
        max_new_tokens: usize,
        temperature: f32,
        top_k: usize,
        sample_seed: u64,
    ) -> Result<Vec<usize>, RatelError> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let c = self.config.model;
        assert!(
            prompt.len() + max_new_tokens <= c.seq,
            "context {} exceeds the model's {} positions",
            prompt.len() + max_new_tokens,
            c.seq
        );
        let mut rng = StdRng::seed_from_u64(sample_seed);
        let d = c.hidden / c.heads;
        let kv_key = |b: usize| format!("block{b}/kv-sample");
        let mut out = Vec::with_capacity(max_new_tokens);
        let mut next_token: Option<usize> = None;
        for pos in 0..prompt.len() + max_new_tokens {
            let token = match next_token {
                Some(t) => t,
                None => prompt[pos],
            };
            self.stage_params(0)?;
            let mut x_t = self.model.embedding.forward_at(token, pos).quantize_f16();
            for b in 0..c.layers {
                self.stage_params(b + 1)?;
                let mut cache = if pos == 0 {
                    KvCache::new(c.heads, d)
                } else {
                    let bytes = self.fetch_f16(&kv_key(b))?;
                    KvCache::from_f16_bytes(&bytes, c.heads, d, pos)
                };
                let y = self.model.blocks[b].forward_cached(&x_t, &mut cache);
                self.offload_f16(&kv_key(b), cache.to_f16_bytes(), Tier::Host)?;
                x_t = y.quantize_f16();
            }
            if pos + 1 >= prompt.len() && out.len() < max_new_tokens {
                self.stage_params(c.layers + 1)?;
                let logits = self.model.head.logits(&x_t);
                let next = sample_from_logits(logits.data(), temperature, top_k, &mut rng);
                out.push(next);
                next_token = Some(next);
            }
        }
        for b in 0..c.layers {
            self.store.remove(&kv_key(b))?;
        }
        Ok(out)
    }

    /// Total SSD-tier bytes currently holding model states.
    pub fn ssd_state_bytes(&self) -> u64 {
        self.store.used(Tier::Ssd)
    }

    /// Total scalar parameters across all layers.
    pub fn total_params(&self) -> usize {
        (0..self.layer_count())
            .map(|l| self.layer_params_flat(l).len())
            .sum()
    }

    /// Scalar parameters of one layer (0 = embedding, 1..=L = blocks,
    /// L+1 = head).
    pub fn layer_param_count(&self, layer: usize) -> usize {
        self.layer_params_flat(layer).len()
    }

    /// Route-level traffic helper: *cumulative* bytes that crossed
    /// `route` since the engine was created (per-step deltas are in
    /// [`StepStats::traffic`]).
    pub fn traffic_bytes(&self, route: Route) -> u64 {
        self.store.traffic().bytes(route)
    }

    /// Turns span/metrics recording on. Subsequent `train_step` calls
    /// populate [`RatelEngine::last_step_telemetry`]; every store
    /// transfer and engine stage is timestamped while enabled.
    pub fn enable_telemetry(&self) {
        self.store.telemetry().set_enabled(true);
    }

    /// The shared telemetry recorder (owned by the store; disabled until
    /// [`RatelEngine::enable_telemetry`]).
    pub fn telemetry(&self) -> &Arc<TelemetryRecorder> {
        self.store.telemetry()
    }

    /// The most recent instrumented step's telemetry: spans, per-route
    /// metrics, stage breakdown, overlap ratio. `None` until a step runs
    /// with telemetry enabled.
    pub fn last_step_telemetry(&self) -> Option<&StepTelemetry> {
        self.last_telemetry.as_ref()
    }

    /// Turns live plan-conformance monitoring on (enabling telemetry,
    /// which it needs): after every subsequent step the drained spans and
    /// traffic are held against the engine's movement plan, and any
    /// divergence lands in [`RatelEngine::conformance_findings`], the
    /// flight recorder (as `Drift` events), and the cumulative
    /// [`RatelEngine::total_findings`] count.
    pub fn enable_conformance(&mut self, config: conformance::ConformanceConfig) {
        self.enable_telemetry();
        self.conformance = Some(conformance::ConformanceMonitor::new(
            &self.movement_spec(),
            config,
        ));
    }

    /// Findings of the most recent conformance-checked step (empty when
    /// the step conformed, or monitoring is off).
    pub fn conformance_findings(&self) -> &[conformance::Finding] {
        &self.last_findings
    }

    /// Cumulative conformance findings across all checked steps.
    pub fn total_findings(&self) -> u64 {
        self.total_findings
    }

    /// Training steps run by this engine (including overflow-skipped
    /// ones).
    pub fn steps_run(&self) -> u64 {
        self.step
    }

    /// Caps an inter-tier route's bandwidth in the underlying store —
    /// used to emulate real link speeds so wall-clock measurements show
    /// scheduling effects (see the overlap integration test).
    pub fn set_route_throttle(&self, route: Route, bytes_per_sec: Option<f64>) {
        self.store.set_throttle(route, bytes_per_sec);
    }

    /// Saves a crash-safe training checkpoint (masters, Adam moments,
    /// step clocks) as a new *generation* in `dir`: every file is written
    /// to a temp sibling, fsynced, and renamed, with a checksummed
    /// manifest committed last — a crash at any point leaves the previous
    /// generation loadable. The two newest generations are kept. The P16
    /// copies are derivable and not stored. See [`checkpoint`] for the
    /// on-disk format.
    pub fn save_checkpoint(&self, dir: &std::path::Path) -> Result<(), RatelError> {
        checkpoint::save(self, dir)
    }

    /// Restores the newest verifiable checkpoint generation from `dir`
    /// into this engine (which must have the same model shape). Every
    /// blob is length- and checksum-verified before any engine state is
    /// touched; a torn or corrupted generation is skipped in favor of the
    /// previous good one. The P16 compute copies are re-derived from the
    /// restored masters.
    ///
    /// # Errors
    /// [`RatelError::CheckpointCorrupt`] when no generation in `dir`
    /// passes verification (the error lists why each one failed).
    pub fn load_checkpoint(&mut self, dir: &std::path::Path) -> Result<(), RatelError> {
        checkpoint::load(self, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::data::{learnable_batch, random_batch};
    use super::reference::ReferenceTrainer;
    use super::*;

    fn assert_bitwise_close(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x == y,
                "{what}: element {i} differs: {x} vs {y} (diff {})",
                (x - y).abs()
            );
        }
    }

    fn run_equivalence(config: EngineConfig, steps: usize) {
        let model = config.model;
        let seed = config.seed;
        let adam = config.adam;
        let mut engine = RatelEngine::new(config).unwrap();
        let mut reference = ReferenceTrainer::new(model, seed, adam);
        for s in 0..steps {
            let (tokens, targets) = random_batch(&model, 100 + s as u64);
            let stats = engine.train_step(&tokens, &targets).unwrap();
            let ref_loss = reference.train_step(&tokens, &targets);
            assert!(
                stats.loss == ref_loss,
                "step {s}: loss diverged: engine {} vs reference {ref_loss}",
                stats.loss
            );
        }
        for layer in 0..engine.layer_count() {
            let e = engine.master_params(layer).unwrap();
            assert_bitwise_close(&e, reference.master_params(layer), "master");
            let p = engine.p16_params(layer).unwrap();
            assert_bitwise_close(&p, &reference.p16_params(layer), "p16");
        }
    }

    #[test]
    fn offloaded_training_is_bitwise_identical_to_in_memory() {
        // The headline correctness claim: active gradient offloading with
        // everything swapped keeps training fully synchronous. The
        // default config runs the schedule-driven executor.
        run_equivalence(EngineConfig::tiny(), 3);
    }

    #[test]
    fn legacy_stage_loop_is_bitwise_identical_too() {
        let mut config = EngineConfig::tiny();
        config.execution = ExecutionOptions::LegacyOverlapped {
            prefetch_params: false,
        };
        run_equivalence(config, 3);
    }

    #[test]
    fn recompute_decisions_do_not_change_the_math() {
        let mut config = EngineConfig::tiny();
        config.act_decisions = vec![
            ActDecision::Recompute,
            ActDecision::SwapToSsd,
            ActDecision::Recompute,
        ];
        run_equivalence(config, 3);
    }

    #[test]
    fn separate_stage_optimizer_gives_the_same_result() {
        // Both the legacy separate-stage loop and the executor running
        // the SeparateStage plan shape.
        let mut config = EngineConfig::tiny();
        config.execution = ExecutionOptions::LegacySeparateStage {
            prefetch_params: false,
        };
        run_equivalence(config, 2);

        let mut config = EngineConfig::tiny();
        config.execution = ExecutionOptions::Executor(ExecutorOptions {
            offload: crate::offload::GradOffloadMode::SeparateStage,
            ..ExecutorOptions::default()
        });
        run_equivalence(config, 2);
    }

    #[test]
    fn executor_steps_report_a_task_breakdown() {
        use ratel_sim::meta::ResourceClass;
        let config = EngineConfig::tiny();
        let model = config.model;
        let mut engine = RatelEngine::new(config).unwrap();
        let (tokens, targets) = random_batch(&model, 21);
        let stats = engine.train_step(&tokens, &targets).unwrap();
        let tasks = stats.tasks.as_ref().expect("executor attaches breakdown");
        assert_eq!(
            tasks.tasks_total,
            engine.step_dag.as_ref().unwrap().graph.len() as u64
        );
        // Every resource class of the plan ran work.
        for class in [
            ResourceClass::GpuCompute,
            ResourceClass::CpuCompute,
            ResourceClass::PcieG2M,
            ResourceClass::PcieM2G,
            ResourceClass::SsdArray,
        ] {
            assert!(
                tasks.pool(class).is_some_and(|p| p.tasks > 0),
                "{class:?} pool idle"
            );
        }
        assert!(tasks.busy_seconds_total() > 0.0);
        assert!(tasks.critical_path_seconds <= tasks.busy_seconds_total() + 1e-9);

        // Legacy steps carry no breakdown.
        let mut legacy = EngineConfig::tiny();
        legacy.execution = ExecutionOptions::LegacyOverlapped {
            prefetch_params: false,
        };
        let mut engine = RatelEngine::new(legacy).unwrap();
        let stats = engine.train_step(&tokens, &targets).unwrap();
        assert!(stats.tasks.is_none());
    }

    #[test]
    fn ssd_swapped_activations_generate_ssd_traffic() {
        let mut config = EngineConfig::tiny();
        config.act_decisions = vec![ActDecision::SwapToSsd; config.model.layers];
        let model = config.model;
        let mut engine = RatelEngine::new(config).unwrap();
        let (tokens, targets) = random_batch(&model, 1);
        let stats = engine.train_step(&tokens, &targets).unwrap();
        // Each block's A16 blob goes host->ssd and comes back.
        let h2s = stats.traffic.bytes(Route::HostToSsd);
        let s2h = stats.traffic.bytes(Route::SsdToHost);
        assert!(h2s > 0 && s2h > 0);

        let mut host_only = EngineConfig::tiny();
        host_only.act_decisions = vec![ActDecision::SwapToHost; host_only.model.layers];
        let mut engine2 = RatelEngine::new(host_only).unwrap();
        let stats2 = engine2.train_step(&tokens, &targets).unwrap();
        assert!(
            stats.traffic.bytes(Route::HostToSsd) > stats2.traffic.bytes(Route::HostToSsd),
            "SSD swapping must add SSD writes"
        );
        // But the GPU<->host traffic of the swap itself is the same.
        assert_eq!(
            stats.traffic.bytes(Route::GpuToHost),
            stats2.traffic.bytes(Route::GpuToHost)
        );
    }

    #[test]
    fn recompute_reduces_offload_traffic() {
        let swap = {
            let mut c = EngineConfig::tiny();
            c.act_decisions = vec![ActDecision::SwapToHost; c.model.layers];
            c
        };
        let rec = {
            let mut c = EngineConfig::tiny();
            c.act_decisions = vec![ActDecision::Recompute; c.model.layers];
            c
        };
        let model = swap.model;
        let (tokens, targets) = random_batch(&model, 2);
        let mut e1 = RatelEngine::new(swap).unwrap();
        let mut e2 = RatelEngine::new(rec).unwrap();
        let t1 = e1.train_step(&tokens, &targets).unwrap().traffic;
        let t2 = e2.train_step(&tokens, &targets).unwrap().traffic;
        assert!(
            t2.bytes(Route::GpuToHost) < t1.bytes(Route::GpuToHost),
            "recompute should shrink G2M traffic: {} vs {}",
            t2.bytes(Route::GpuToHost),
            t1.bytes(Route::GpuToHost)
        );
    }

    #[test]
    fn state_traffic_matches_the_paper_inventory() {
        // Per step the SSD tier must serve at least: P16 forward (2
        // bytes/param) + P16 backward (2) + P32+OS32 reads (12), and
        // absorb P32+OS32+P16 writes (14).
        let config = EngineConfig::tiny();
        let model = config.model;
        let mut engine = RatelEngine::new(config).unwrap();
        let params = engine.total_params() as u64;
        // The head is staged once (its forward and backward are adjacent
        // at the loss); every other layer is staged twice.
        let head_params = engine.layer_param_count(engine.layer_count() - 1) as u64;
        let (tokens, targets) = random_batch(&model, 3);
        let stats = engine.train_step(&tokens, &targets).unwrap();
        let s2h = stats.traffic.bytes(Route::SsdToHost);
        let h2s = stats.traffic.bytes(Route::HostToSsd);
        let expected_reads = params * 12 + (2 * params - head_params) * 2;
        assert_eq!(
            s2h, expected_reads,
            "SSD reads must be exactly P16 stages + 12P state reads"
        );
        assert_eq!(
            h2s,
            params * 14,
            "SSD writes must be exactly the 14P state write-back"
        );
    }

    #[test]
    fn step_stats_traffic_is_a_per_step_delta() {
        // Regression: StepStats.traffic must be a per-step delta taken
        // against a start-of-step snapshot, not a cumulative counter —
        // two identical steps report identical per-route byte counts.
        let config = EngineConfig::tiny();
        let model = config.model;
        let mut engine = RatelEngine::new(config).unwrap();
        let (tokens, targets) = random_batch(&model, 7);
        let first = engine.train_step(&tokens, &targets).unwrap().traffic;
        let second = engine.train_step(&tokens, &targets).unwrap().traffic;
        for route in Route::ALL {
            assert!(first.bytes(route) > 0, "{route:?} should move bytes");
            assert_eq!(
                first.bytes(route),
                second.bytes(route),
                "{route:?}: identical steps must report identical deltas"
            );
        }
        // The store's cumulative counters keep growing underneath.
        for route in Route::ALL {
            assert_eq!(engine.traffic_bytes(route), 2 * first.bytes(route));
        }
    }

    #[test]
    fn telemetry_captures_spans_and_optimizer_overlap() {
        // The overlap assertion is only reliable on the legacy stage loop,
        // where backward spans cover the whole per-layer stage.
        let mut config = EngineConfig::tiny();
        config.execution = ExecutionOptions::LegacyOverlapped {
            prefetch_params: false,
        };
        let model = config.model;
        let mut engine = RatelEngine::new(config).unwrap();
        engine.enable_telemetry();
        let (tokens, targets) = random_batch(&model, 11);
        let stats = engine.train_step(&tokens, &targets).unwrap();
        let t = engine.last_step_telemetry().expect("telemetry collected");
        assert!(!t.spans.is_empty());
        let tracks: std::collections::HashSet<&str> =
            t.spans.iter().map(|s| s.track.as_str()).collect();
        for track in ["gpu", "cpu-opt", "opt-prefetch", "grad-offload", "engine"] {
            assert!(tracks.contains(track), "missing track {track}");
        }
        // Telemetry's traffic snapshot is the same delta StepStats got.
        for route in Route::ALL {
            assert_eq!(t.traffic.bytes(route), stats.traffic.bytes(route));
        }
        let b = t.stage_breakdown();
        assert!(b.forward > 0.0 && b.backward > 0.0 && b.optimizer > 0.0);
        assert!(b.transfer > 0.0, "store transfers must be spanned");
        // With active offloading on, some optimizer work must hide behind
        // backward (§IV-C). The tiny model still overlaps reliably because
        // each layer's update starts while later layers run backward.
        let overlap = t.optimizer_overlap_ratio();
        assert!(
            overlap > 0.0,
            "active offload should overlap optimizer with backward"
        );
        assert!(overlap <= 1.0 + 1e-9);
        // The timeline view carries every span, rebased to step start.
        let tl = t.timeline("measured");
        assert_eq!(tl.spans.len(), t.spans.len());
        assert!(tl.spans.iter().all(|s| s.start >= -1e-9));
    }

    #[test]
    fn loss_decreases_on_learnable_data() {
        let mut config = EngineConfig::tiny();
        config.adam.lr = 3e-3;
        let model = config.model;
        let mut engine = RatelEngine::new(config).unwrap();
        let (tokens, targets) = learnable_batch(&model, 5);
        let first = engine.train_step(&tokens, &targets).unwrap().loss;
        let mut last = first;
        for _ in 0..30 {
            last = engine.train_step(&tokens, &targets).unwrap().loss;
        }
        assert!(
            last < first * 0.7,
            "loss did not fall enough: {first} -> {last}"
        );
    }

    #[test]
    fn gpu_capacity_is_enforced() {
        let mut config = EngineConfig::tiny();
        config.gpu_capacity = Some(1024); // absurdly small "GPU"
        let err = match RatelEngine::new(config) {
            // Initialization itself doesn't touch the GPU tier...
            Ok(mut engine) => {
                let (tokens, targets) = random_batch(&GptConfig::tiny(), 4);
                engine.train_step(&tokens, &targets).unwrap_err()
            }
            Err(e) => e,
        };
        assert!(
            matches!(
                err,
                RatelError::Storage(StorageError::OutOfMemory {
                    tier: Tier::Gpu,
                    ..
                })
            ),
            "expected GPU OOM, got {err}"
        );
    }

    #[test]
    fn model_states_live_on_the_ssd_tier() {
        let config = EngineConfig::tiny();
        let engine = RatelEngine::new(config).unwrap();
        let params = engine.total_params() as u64;
        // P32 (4) + OS32 (8) + P16 (2) = 14 bytes/param at rest.
        assert_eq!(engine.ssd_state_bytes(), params * 14);
        assert_eq!(engine.store().used(Tier::Gpu), 0);
        assert_eq!(engine.store().used(Tier::Host), 0);
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::data::random_batch;
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ratel-ckpt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn checkpoint_resume_equals_uninterrupted_run() {
        let model = GptConfig::tiny();
        let mk = || RatelEngine::new(EngineConfig::tiny()).unwrap();
        let batches: Vec<_> = (0..6).map(|s| random_batch(&model, 400 + s)).collect();

        // Uninterrupted run.
        let mut straight = mk();
        for (t, y) in &batches {
            straight.train_step(t, y).unwrap();
        }

        // Run 3 steps, checkpoint, resume in a fresh engine.
        let dir = temp_dir("resume");
        let mut first = mk();
        for (t, y) in &batches[..3] {
            first.train_step(t, y).unwrap();
        }
        first.save_checkpoint(&dir).unwrap();
        drop(first);
        let mut resumed = mk();
        resumed.load_checkpoint(&dir).unwrap();
        for (t, y) in &batches[3..] {
            resumed.train_step(t, y).unwrap();
        }

        for l in 0..straight.layer_count() {
            assert_eq!(
                straight.master_params(l).unwrap(),
                resumed.master_params(l).unwrap(),
                "layer {l} diverged after resume"
            );
            assert_eq!(
                straight.p16_params(l).unwrap(),
                resumed.p16_params(l).unwrap()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_files_are_complete() {
        let engine = RatelEngine::new(EngineConfig::tiny()).unwrap();
        let dir = temp_dir("files");
        engine.save_checkpoint(&dir).unwrap();
        assert!(dir.join("manifest-g1.txt").exists());
        for l in 0..engine.layer_count() {
            assert!(dir.join(format!("g1-layer{l}.master")).exists());
            assert!(dir.join(format!("g1-layer{l}.moments")).exists());
        }
        // No temp droppings survive a successful save.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generations_accumulate_and_prune_to_two() {
        let engine = RatelEngine::new(EngineConfig::tiny()).unwrap();
        let dir = temp_dir("gens");
        for _ in 0..4 {
            engine.save_checkpoint(&dir).unwrap();
        }
        assert_eq!(checkpoint::generations(&dir), vec![3, 4]);
        // Pruned generations leave no blob files behind.
        assert!(!dir.join("g1-layer0.master").exists());
        assert!(!dir.join("manifest-g2.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_latest_generation_falls_back_to_previous() {
        let model = GptConfig::tiny();
        let mk = || RatelEngine::new(EngineConfig::tiny()).unwrap();
        let dir = temp_dir("fallback");
        let mut engine = mk();
        let (t, y) = random_batch(&model, 900);
        engine.train_step(&t, &y).unwrap();
        engine.save_checkpoint(&dir).unwrap(); // generation 1 (good)
        engine.train_step(&t, &y).unwrap();
        engine.save_checkpoint(&dir).unwrap(); // generation 2
        let good_master = engine.master_params(0).unwrap();

        // "Kill mid-checkpoint": generation 2's blob is torn after the
        // manifest committed — truncate it behind the manifest's back.
        let victim = dir.join("g2-layer0.master");
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

        let mut resumed = mk();
        resumed.load_checkpoint(&dir).unwrap();
        // Generation 2 fails verification; generation 1 loads.
        assert_eq!(resumed.step, 1, "fell back to the step-1 generation");
        assert_ne!(resumed.master_params(0).unwrap(), good_master);

        // With generation 1 also gone, corruption is an error — never a
        // silently wrong model.
        std::fs::remove_file(dir.join("manifest-g1.txt")).unwrap();
        let mut fresh = mk();
        let err = fresh.load_checkpoint(&dir).unwrap_err();
        assert!(matches!(err, RatelError::CheckpointCorrupt(_)), "{err}");
        assert!(err.to_string().contains("generation 2"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod sampling_tests {
    use super::*;

    #[test]
    fn greedy_degenerate_cases_pick_the_argmax() {
        use rand::SeedableRng;
        let logits = [0.1f32, 2.0, -1.0, 1.9];
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(sample_from_logits(&logits, 0.0, 5, &mut rng), 1);
        assert_eq!(sample_from_logits(&logits, 1.0, 1, &mut rng), 1);
    }

    #[test]
    fn sampling_is_seeded_and_respects_top_k() {
        use rand::SeedableRng;
        let logits = [0.0f32, 0.1, 5.0, 4.9, -3.0];
        // top_k = 2 can only ever return 2 or 3.
        for seed in 0..20u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let pick = sample_from_logits(&logits, 1.0, 2, &mut rng);
            assert!(pick == 2 || pick == 3, "{pick}");
        }
        // Deterministic per seed.
        let mut a = rand::rngs::StdRng::seed_from_u64(7);
        let mut b = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(
            sample_from_logits(&logits, 0.8, 3, &mut a),
            sample_from_logits(&logits, 0.8, 3, &mut b)
        );
    }

    #[test]
    fn low_temperature_concentrates_on_the_mode() {
        use rand::SeedableRng;
        let logits = [1.0f32, 1.2, 1.1];
        let mut hits = 0;
        for seed in 0..50u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            if sample_from_logits(&logits, 0.02, 3, &mut rng) == 1 {
                hits += 1;
            }
        }
        assert!(hits >= 48, "{hits}/50");
    }

    #[test]
    fn engine_sampled_generation_runs_and_is_deterministic() {
        use super::data::random_batch;
        let mut engine = RatelEngine::new(EngineConfig::tiny()).unwrap();
        let c = GptConfig::tiny();
        let (tokens, targets) = random_batch(&c, 1);
        engine.train_step(&tokens, &targets).unwrap();
        let prompt = &tokens[..4];
        let a = engine.generate_sampled(prompt, 5, 0.9, 8, 42).unwrap();
        let b = engine.generate_sampled(prompt, 5, 0.9, 8, 42).unwrap();
        let c2 = engine.generate_sampled(prompt, 5, 0.9, 8, 43).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|&t| t < c.vocab));
        let greedy_like = engine.generate_sampled(prompt, 5, 0.0, 8, 1).unwrap();
        let cached = engine.generate_cached(prompt, 5).unwrap();
        assert_eq!(greedy_like, cached);
        let _ = c2;
    }
}
