//! Lowering the engine's movement plan into an executable step DAG.
//!
//! [`StepDag::lower`] takes the engine's schedule twin (the
//! [`IterationSpec`] from [`super::RatelEngine::movement_spec`]), builds
//! the statically verified task graph, parses every task label back into
//! an [`EngineAction`], and adds *pacing* edges that window read-ahead
//! tasks behind compute — the same two-layer windows the legacy
//! prefetcher threads enforced, now explicit edges in the graph instead
//! of bounded channels in the code.
//!
//! [`StepCtx`] then maps each task onto exactly the tiered-store
//! transfers and tensor kernels the hand-coded stage loop performed.
//! The mapping is byte-for-byte: the same blobs cross the same routes,
//! the same f16 rounding happens at the same points, so an executor step
//! is bitwise identical to a legacy step and to the in-memory reference
//! trainer — whatever worker count each pool runs.

use std::sync::Arc;

use ratel_check::sync::Mutex;

use ratel_sim::{TaskGraph, TaskId};
use ratel_storage::telemetry::SpanCategory;
use ratel_storage::{StorageError, Tier, TieredStore};
use ratel_tensor::dtype::{decode_f16, decode_f32, encode_f16, encode_f32};
use ratel_tensor::{
    block_dropout_spec, Adam, AdamParams, BlockSaved, GptModel, HeadSaved, ParamLayer, Tensor,
};

use super::executor::TaskAction;
use super::scaler::prepare_gradient;
use super::{
    act_key, ckpt_key, grad_key, master_key, moments_key, p16_key, ActDecision, EngineConfig,
};
use crate::error::RatelError;
use crate::schedule::IterationSpec;

/// What one task of the lowered step graph does, parsed from the
/// schedule's stable task labels (`fwd-read L3`, `opt-cpu L0`, …). The
/// payload is the engine layer id (0 = embedding, 1..=L = blocks,
/// L+1 = head).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum EngineAction {
    /// Stage a layer's P16 from SSD into host memory for forward.
    FwdRead(usize),
    /// Move the forward-staged P16 from host into the GPU arena.
    FwdFetch(usize),
    /// Decode the staged P16 and run the layer's forward kernels.
    Fwd(usize),
    /// Offload the block's checkpoint (and saved activations) to host.
    ActOff(usize),
    /// Spill the block's saved activations from host to the SSD tier.
    ActSpill(usize),
    /// Stage a layer's P16 from SSD into host memory for backward.
    BwdRead(usize),
    /// Move the backward-staged P16 from host into the GPU arena.
    BwdFetch(usize),
    /// Load the block's spilled activations from SSD back to host.
    ActLoad(usize),
    /// Fetch the block's checkpoint (and activations) back to the GPU.
    ActUp(usize),
    /// Run the layer's backward kernels.
    Bwd(usize),
    /// Offload the layer's G16 gradient to host memory.
    GradOff(usize),
    /// Stage the layer's master + moments from SSD into host memory.
    OptRead(usize),
    /// Decode the gradient and run the f32 Adam update on the CPU.
    OptCpu(usize),
    /// Write the updated P32/OS32/P16 back to the SSD tier.
    OptWrite(usize),
}

fn parse_action(label: &str) -> Option<EngineAction> {
    let (kind, layer) = label.rsplit_once(" L")?;
    let layer: usize = layer.parse().ok()?;
    Some(match kind {
        "fwd-read" => EngineAction::FwdRead(layer),
        "fwd-fetch" => EngineAction::FwdFetch(layer),
        "fwd" => EngineAction::Fwd(layer),
        "act-off" => EngineAction::ActOff(layer),
        "act-spill" => EngineAction::ActSpill(layer),
        "bwd-read" => EngineAction::BwdRead(layer),
        "bwd-fetch" => EngineAction::BwdFetch(layer),
        "act-load" => EngineAction::ActLoad(layer),
        "act-up" => EngineAction::ActUp(layer),
        "bwd" => EngineAction::Bwd(layer),
        "grad-off" => EngineAction::GradOff(layer),
        "opt-read" => EngineAction::OptRead(layer),
        "opt-cpu" => EngineAction::OptCpu(layer),
        "opt-write" => EngineAction::OptWrite(layer),
        _ => return None,
    })
}

/// A lowered, verified, paced step graph plus the action each task maps
/// to (indexed by `TaskId.0`). Built once per engine (the plan depends
/// only on the config) and reused every step.
#[derive(Debug)]
pub(super) struct StepDag {
    /// The executable task graph.
    pub(super) graph: TaskGraph,
    /// `actions[t]` is what task `t` does.
    pub(super) actions: Vec<EngineAction>,
}

/// How many GPU-compute tasks ahead of the consuming kernel a staging
/// read may start — the executor twin of the legacy prefetcher windows
/// (`prefetch::WINDOW` and `optimizer::PREFETCH_WINDOW`, both 2).
const PACE_WINDOW: usize = 2;

impl StepDag {
    /// Lowers a movement plan into an executable DAG: builds the spec's
    /// (self-verified) graph, parses every label into an
    /// [`EngineAction`], and adds pacing edges. Debug builds re-verify
    /// the paced graph before it can reach the executor.
    ///
    /// # Errors
    /// [`RatelError::InvalidConfig`] if any task label does not parse to
    /// an executable action — multi-GPU or multi-iteration plans and
    /// hook/reduce tasks are simulation-only shapes.
    pub(super) fn lower(spec: &IterationSpec) -> Result<StepDag, RatelError> {
        let (mut graph, _resources, _flops) = spec.build();
        let tasks: Vec<TaskId> = graph.task_ids().collect();
        let mut actions = Vec::with_capacity(tasks.len());
        let mut bad = Vec::new();
        for &t in &tasks {
            let label = graph.label(t).unwrap_or("");
            match parse_action(label) {
                Some(a) => actions.push(a),
                None => bad.push(format!(
                    "plan task {} is not executable: label {label:?} has no engine action \
                     (multi-GPU, multi-iteration, and hook tasks are simulation-only)",
                    t.0
                )),
            }
        }
        if !bad.is_empty() {
            return Err(RatelError::InvalidConfig(bad));
        }

        // GPU compute order: fwd L0..L{n-1} then bwd L{n-1}..L0. A
        // staging read for the kernel at position `p` may not start
        // before the kernel at `p - PACE_WINDOW` finished.
        let n = spec.layers.len();
        let mut gpu_seq: Vec<Option<TaskId>> = vec![None; 2 * n];
        for (&t, a) in tasks.iter().zip(&actions) {
            match *a {
                EngineAction::Fwd(li) => gpu_seq[li] = Some(t),
                EngineAction::Bwd(li) => gpu_seq[n + (n - 1 - li)] = Some(t),
                _ => {}
            }
        }
        for (&t, a) in tasks.iter().zip(&actions) {
            let gate = match *a {
                EngineAction::FwdRead(li) => li.checked_sub(PACE_WINDOW),
                EngineAction::BwdRead(li) | EngineAction::ActLoad(li) | EngineAction::ActUp(li) => {
                    Some(n + (n - 1 - li) - PACE_WINDOW)
                }
                _ => None,
            };
            if let Some(pos) = gate {
                let dep = gpu_seq[pos].ok_or_else(|| {
                    RatelError::InvalidConfig(vec![format!(
                        "pacing edge for task {} gates on sequence slot {pos}, which has no \
                         compute task — every layer must have fwd and bwd compute tasks",
                        t.0
                    )])
                })?;
                graph.add_dep(t, dep);
            }
        }
        // Optimizer handlers in gradient-arrival order: handler h's
        // state read waits for handler h-2's CPU compute, bounding the
        // staged-state window exactly like the legacy prefetcher's
        // bounded channel.
        let mut opt_reads = Vec::new();
        let mut opt_cpus = Vec::new();
        for (&t, a) in tasks.iter().zip(&actions) {
            match a {
                EngineAction::OptRead(_) => opt_reads.push(t),
                EngineAction::OptCpu(_) => opt_cpus.push(t),
                _ => {}
            }
        }
        for h in PACE_WINDOW..opt_reads.len() {
            graph.add_dep(opt_reads[h], opt_cpus[h - PACE_WINDOW]);
        }

        // The builder self-verified the plan; re-verify after pacing so
        // no added edge can smuggle in a defect.
        #[cfg(debug_assertions)]
        {
            let report = ratel_verify::verify(&graph, &ratel_verify::Limits::none());
            assert!(
                report.is_clean(),
                "paced step DAG fails static verification:\n{}",
                report.render()
            );
        }

        Ok(StepDag { graph, actions })
    }
}

/// One layer's computed Adam update, parked between the CPU compute
/// task and the SSD write-back task.
struct OptUpdate {
    master: Vec<f32>,
    moments: Vec<f32>,
    /// False when the unscaled gradient overflowed and the update was
    /// skipped — write-back then only returns the untouched states.
    applied: bool,
}

/// Stores an f16 blob in the GPU tier and swaps it to `target` —
/// identical to the legacy engine's offload helper.
fn offload_f16(
    store: &TieredStore,
    key: &str,
    bytes: Vec<u8>,
    target: Tier,
) -> Result<(), StorageError> {
    store.put(key, Tier::Gpu, bytes)?;
    store.move_to(key, target)?;
    Ok(())
}

/// Fetches an f16 blob back to the GPU tier and removes it, returning
/// the bytes — identical to the legacy engine's fetch helper.
/// A step-DAG slot protocol violation: a task ran before the dependency
/// that fills the slot it consumes. The verifier proves the plan's edges
/// make this unreachable, so hitting it means executor or lowering bug —
/// surfaced as a typed error so the step fails cleanly instead of
/// panicking a worker.
fn slot_violation(what: &str) -> StorageError {
    StorageError::Io(std::io::Error::other(format!(
        "step-DAG slot protocol violated: expected {what}"
    )))
}

fn fetch_f16(store: &TieredStore, key: &str) -> Result<Vec<u8>, StorageError> {
    store.move_to(key, Tier::Gpu)?;
    let bytes = store.read(key)?;
    store.remove(key)?;
    Ok(bytes)
}

/// The staged-copy key a layer's P16 uses for one pass. Forward and
/// backward stage separately (the head is staged once, in forward).
fn staged_key(layer: usize, pass: char) -> String {
    format!("{}#stage-{pass}", p16_key(layer))
}

/// Shared state of one executing step: the [`TaskAction`] behind
/// [`super::RatelEngine::train_step`] in executor mode.
///
/// Worker threads of different pools run disjoint actions concurrently;
/// every hand-off slot (activation bytes, gradients, Adam updates) is a
/// mutex around an `Option`, filled by the producing task and taken by
/// the consuming one. GPU tasks additionally serialize on the model
/// skeleton's lock — the graph already orders them into a chain, so the
/// lock is never contended, it just satisfies the borrow checker.
pub(super) struct StepCtx<'a> {
    store: &'a Arc<TieredStore>,
    config: &'a EngineConfig,
    actions: &'a [EngineAction],
    model: Mutex<&'a mut GptModel>,
    tokens: &'a [usize],
    targets: &'a [usize],
    scale: f32,
    step_seed: u64,
    adam: AdamParams,
    layer_steps: &'a [u64],
    /// The activation flowing forward between layers.
    flow: Mutex<Option<Tensor>>,
    /// The gradient flowing backward between layers.
    dflow: Mutex<Option<Tensor>>,
    /// The head's forward input and saved state, parked between the
    /// adjacent head forward and backward (the head stages once).
    head: Mutex<Option<(Tensor, HeadSaved)>>,
    /// Per block: checkpoint bytes between forward and act-off.
    pending_ckpt: Vec<Mutex<Option<Vec<u8>>>>,
    /// Per block: saved-activation bytes between forward and act-off.
    pending_act: Vec<Mutex<Option<Vec<u8>>>>,
    /// Per block: checkpoint bytes between act-up and backward.
    fetched_ckpt: Vec<Mutex<Option<Vec<u8>>>>,
    /// Per block: saved-activation bytes between act-up and backward.
    fetched_act: Vec<Mutex<Option<Vec<u8>>>>,
    /// Per layer: raw (scaled) f32 gradient between backward and
    /// grad-off.
    grads: Vec<Mutex<Option<Vec<f32>>>>,
    /// Per layer: the Adam update between opt-cpu and opt-write.
    updates: Vec<Mutex<Option<OptUpdate>>>,
    /// Layers whose update was skipped on gradient overflow.
    skipped: Mutex<Vec<usize>>,
    loss: Mutex<f32>,
}

impl<'a> StepCtx<'a> {
    /// Builds the shared context of one step.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn new(
        store: &'a Arc<TieredStore>,
        config: &'a EngineConfig,
        actions: &'a [EngineAction],
        model: &'a mut GptModel,
        tokens: &'a [usize],
        targets: &'a [usize],
        scale: f32,
        step_seed: u64,
        adam: AdamParams,
        layer_steps: &'a [u64],
    ) -> Self {
        let blocks = config.model.layers;
        let layers = blocks + 2;
        fn slots<T>(n: usize) -> Vec<Mutex<Option<T>>> {
            (0..n).map(|_| Mutex::new(None)).collect()
        }
        StepCtx {
            store,
            config,
            actions,
            model: Mutex::new(model),
            tokens,
            targets,
            scale,
            step_seed,
            adam,
            layer_steps,
            flow: Mutex::new(None),
            dflow: Mutex::new(None),
            head: Mutex::new(None),
            pending_ckpt: slots(blocks),
            pending_act: slots(blocks),
            fetched_ckpt: slots(blocks),
            fetched_act: slots(blocks),
            grads: slots(layers),
            updates: slots(layers),
            skipped: Mutex::new(Vec::new()),
            loss: Mutex::new(0.0),
        }
    }

    /// Consumes the context after a successful run, returning the loss
    /// and the overflow-skipped layers (sorted).
    pub(super) fn into_outcome(self) -> (f32, Vec<usize>) {
        debug_assert!(self.flow.lock().is_none(), "forward flow drained");
        debug_assert!(self.dflow.lock().is_none(), "backward flow drained");
        let loss = *self.loss.lock();
        let mut skipped = self.skipped.lock().clone();
        skipped.sort_unstable();
        (loss, skipped)
    }

    fn dropout_spec(&self, block: usize) -> Option<ratel_tensor::DropoutSpec> {
        self.config
            .dropout
            .map(|p| block_dropout_spec(p, self.step_seed, block))
    }

    /// Stage a layer's P16 from SSD into host memory (`pass` selects the
    /// forward or backward staged copy).
    fn param_read(&self, layer: usize, pass: char) -> Result<(), StorageError> {
        self.store
            .copy_to(&p16_key(layer), &staged_key(layer, pass), Tier::Host)
    }

    /// Move a staged P16 into the GPU arena, spanning the prefetch track
    /// like the legacy prefetcher thread did.
    fn param_fetch(&self, layer: usize, pass: char) -> Result<(), StorageError> {
        let rec = self.store.telemetry();
        let t = rec.enabled().then(|| rec.now());
        self.store.move_to(&staged_key(layer, pass), Tier::Gpu)?;
        if let Some(t) = t {
            rec.record_span(
                "param-prefetch",
                SpanCategory::Prefetch,
                format!("pf L{layer}"),
                t,
                rec.now(),
            );
        }
        Ok(())
    }

    /// Decode a staged P16 into the layer skeleton and free the copy.
    /// Caller holds the model lock.
    fn load_params(
        &self,
        model: &mut GptModel,
        layer: usize,
        pass: char,
    ) -> Result<(), StorageError> {
        let staged = staged_key(layer, pass);
        let flat = decode_f16(&self.store.read(&staged)?);
        let l = self.config.model.layers;
        if layer == 0 {
            model.embedding.set_params_flat(&flat);
        } else if layer <= l {
            model.blocks[layer - 1].set_params_flat(&flat);
        } else {
            model.head.set_params_flat(&flat);
        }
        self.store.remove(&staged)?;
        Ok(())
    }

    /// The layer's forward kernels. The span starts after the staged
    /// P16 decode so GPU spans stay compute-only, exactly like the
    /// legacy stage loop's.
    fn forward(&self, layer: usize) -> Result<(), StorageError> {
        let c = self.config.model;
        let l = c.layers;
        let mut model = self.model.lock();
        self.load_params(&mut model, layer, 'f')?;
        let rec = self.store.telemetry();
        if layer == 0 {
            let t = rec.enabled().then(|| rec.now());
            let x = model
                .embedding
                .forward(self.tokens, c.batch, c.seq)
                .quantize_f16();
            if let Some(t) = t {
                rec.record_span("gpu", SpanCategory::Forward, "fwd L0", t, rec.now());
            }
            *self.flow.lock() = Some(x);
        } else if layer <= l {
            let b = layer - 1;
            let x = self
                .flow
                .lock()
                .take()
                .ok_or_else(|| slot_violation("forward flow produced by the previous layer"))?;
            // The block's input is its checkpoint (the inter-block A16);
            // the act-off task offloads these bytes after this kernel.
            *self.pending_ckpt[b].lock() = Some(x.to_f16_bytes());
            let spec = self.dropout_spec(b);
            let t = rec.enabled().then(|| rec.now());
            let (y, mut saved) = model.blocks[b].forward_with(&x, spec);
            if let Some(t) = t {
                rec.record_span(
                    "gpu",
                    SpanCategory::Forward,
                    format!("fwd L{layer}"),
                    t,
                    rec.now(),
                );
            }
            saved.quantize_f16();
            if self.config.act_decisions[b] != ActDecision::Recompute {
                *self.pending_act[b].lock() = Some(saved.to_f16_bytes());
            }
            *self.flow.lock() = Some(y.quantize_f16());
        } else {
            let x = self
                .flow
                .lock()
                .take()
                .ok_or_else(|| slot_violation("forward flow reaches the head"))?;
            let t = rec.enabled().then(|| rec.now());
            let (loss, head_saved) = model.head.forward(&x, self.targets);
            if let Some(t) = t {
                rec.record_span(
                    "gpu",
                    SpanCategory::Forward,
                    format!("fwd L{layer}"),
                    t,
                    rec.now(),
                );
            }
            *self.loss.lock() = loss;
            *self.head.lock() = Some((x, head_saved));
        }
        Ok(())
    }

    /// Offload the block's checkpoint (and saved activations) to host
    /// memory. Both swap decisions stop at host here; the spill task
    /// carries SSD-bound activations onward.
    fn act_off(&self, layer: usize) -> Result<(), StorageError> {
        let b = layer - 1;
        let ckpt = self.pending_ckpt[b]
            .lock()
            .take()
            .ok_or_else(|| slot_violation("checkpoint pending after block forward"))?;
        offload_f16(self.store, &ckpt_key(layer), ckpt, Tier::Host)?;
        if let Some(act) = self.pending_act[b].lock().take() {
            offload_f16(self.store, &act_key(b), act, Tier::Host)?;
        }
        Ok(())
    }

    /// Fetch the block's checkpoint (and activations) back into the GPU
    /// arena for backward.
    fn act_up(&self, layer: usize) -> Result<(), StorageError> {
        let b = layer - 1;
        *self.fetched_ckpt[b].lock() = Some(fetch_f16(self.store, &ckpt_key(layer))?);
        if self.config.act_decisions[b] != ActDecision::Recompute {
            *self.fetched_act[b].lock() = Some(fetch_f16(self.store, &act_key(b))?);
        }
        Ok(())
    }

    /// The layer's backward kernels. Recompute decisions rerun the
    /// block's forward inside this task (same step-seeded dropout
    /// masks), exactly like the legacy loop.
    fn backward(&self, layer: usize) -> Result<(), StorageError> {
        let c = self.config.model;
        let l = c.layers;
        let frozen = self.config.frozen_layers.contains(&layer);
        let mut model = self.model.lock();
        let rec = self.store.telemetry();
        if layer == l + 1 {
            // Head: parameters are still resident from forward (the plan
            // stages the head once), its input was parked at the loss.
            let (x, head_saved) = self
                .head
                .lock()
                .take()
                .ok_or_else(|| slot_violation("head forward parked its input"))?;
            let t = rec.enabled().then(|| rec.now());
            let (dx, head_grads) =
                model
                    .head
                    .backward_scaled(&x, &head_saved, self.targets, self.scale);
            if let Some(t) = t {
                rec.record_span(
                    "gpu",
                    SpanCategory::Backward,
                    format!("bwd L{layer}"),
                    t,
                    rec.now(),
                );
            }
            *self.dflow.lock() = Some(dx);
            if !frozen {
                *self.grads[layer].lock() = Some(head_grads);
            }
        } else if layer >= 1 {
            let b = layer - 1;
            self.load_params(&mut model, layer, 'b')?;
            let rows = c.batch * c.seq;
            let ckpt = self.fetched_ckpt[b]
                .lock()
                .take()
                .ok_or_else(|| slot_violation("checkpoint fetched before block backward"))?;
            let input = Tensor::from_f16_bytes(&[rows, c.hidden], &ckpt);
            let spec = self.dropout_spec(b);
            let fetched = self.fetched_act[b].lock().take();
            let dx = self
                .dflow
                .lock()
                .take()
                .ok_or_else(|| slot_violation("backward flow from the layer above"))?;
            let t = rec.enabled().then(|| rec.now());
            let saved = match fetched {
                Some(bytes) => {
                    BlockSaved::from_f16_bytes(&bytes, c.batch, c.seq, c.hidden, c.heads)
                }
                None => {
                    // Rematerialization regenerates the same dropout
                    // masks from the step/layer-derived seed.
                    let (_, mut s) = model.blocks[b].forward_with(&input, spec);
                    s.quantize_f16();
                    s
                }
            };
            let (dprev, grads) = model.blocks[b].backward_with(&input, &saved, &dx, spec);
            if let Some(t) = t {
                rec.record_span(
                    "gpu",
                    SpanCategory::Backward,
                    format!("bwd L{layer}"),
                    t,
                    rec.now(),
                );
            }
            *self.dflow.lock() = Some(dprev);
            if !frozen {
                *self.grads[layer].lock() = Some(grads);
            }
        } else {
            self.load_params(&mut model, 0, 'b')?;
            let dx = self
                .dflow
                .lock()
                .take()
                .ok_or_else(|| slot_violation("backward flow reaches the embedding"))?;
            let t = rec.enabled().then(|| rec.now());
            let emb_grads = model.embedding.backward(self.tokens, c.batch, c.seq, &dx);
            if let Some(t) = t {
                rec.record_span("gpu", SpanCategory::Backward, "bwd L0", t, rec.now());
            }
            if !frozen {
                *self.grads[0].lock() = Some(emb_grads);
            }
        }
        Ok(())
    }

    /// Quantize the layer's gradient to G16 and land it in host memory —
    /// the active offload's GPU->host leg.
    fn grad_off(&self, layer: usize) -> Result<(), StorageError> {
        let grads = self.grads[layer]
            .lock()
            .take()
            .ok_or_else(|| slot_violation("backward produced this layer's gradient"))?;
        let rec = self.store.telemetry();
        let t = rec.enabled().then(|| rec.now());
        offload_f16(self.store, &grad_key(layer), encode_f16(&grads), Tier::Host)?;
        if let Some(t) = t {
            rec.record_span(
                "grad-offload",
                SpanCategory::Other,
                format!("grad L{layer}"),
                t,
                rec.now(),
            );
        }
        Ok(())
    }

    /// Stage the layer's master + moments from SSD into host memory —
    /// the optimizer prefetcher's SSD->Main leg.
    fn opt_read(&self, layer: usize) -> Result<(), StorageError> {
        let rec = self.store.telemetry();
        let t = rec.enabled().then(|| rec.now());
        self.store.move_to(&master_key(layer), Tier::Host)?;
        self.store.move_to(&moments_key(layer), Tier::Host)?;
        if let Some(t) = t {
            rec.record_span(
                "opt-prefetch",
                SpanCategory::Prefetch,
                format!("opt-pf L{layer}"),
                t,
                rec.now(),
            );
        }
        Ok(())
    }

    /// Decode the G16 gradient and run the f32 Adam step over the
    /// staged states — span-for-span the legacy updater's read + cpu
    /// phases.
    fn opt_cpu(&self, layer: usize) -> Result<(), StorageError> {
        let rec = self.store.telemetry();
        let t_read = rec.enabled().then(|| rec.now());
        let key = grad_key(layer);
        let mut grads = decode_f16(&self.store.read(&key)?);
        self.store.remove(&key)?;
        if let Some(t) = t_read {
            rec.record_span(
                "cpu-opt",
                SpanCategory::Optimizer,
                format!("opt-read L{layer}"),
                t,
                rec.now(),
            );
        }
        let t_cpu = rec.enabled().then(|| rec.now());
        if prepare_gradient(&mut grads, self.scale, self.config.grad_clip).is_some() {
            let mut master = decode_f32(&self.store.read(&master_key(layer))?);
            let moments = decode_f32(&self.store.read(&moments_key(layer))?);
            let mut state = Adam::new(0);
            state.load_flat(&moments, self.layer_steps[layer]);
            state.step(&mut master, &grads, &self.adam);
            if let Some(t) = t_cpu {
                rec.record_span(
                    "cpu-opt",
                    SpanCategory::Optimizer,
                    format!("opt-cpu L{layer}"),
                    t,
                    rec.now(),
                );
            }
            let mut flat = Vec::new();
            state.write_flat_into(&mut flat);
            *self.updates[layer].lock() = Some(OptUpdate {
                master,
                moments: flat,
                applied: true,
            });
        } else {
            if let Some(t) = t_cpu {
                rec.record_span(
                    "cpu-opt",
                    SpanCategory::Other,
                    format!("skip L{layer}"),
                    t,
                    rec.now(),
                );
            }
            self.skipped.lock().push(layer);
            *self.updates[layer].lock() = Some(OptUpdate {
                master: Vec::new(),
                moments: Vec::new(),
                applied: false,
            });
        }
        Ok(())
    }

    /// Write the updated P32 + OS32 back and publish the fresh P16 —
    /// the legacy updater's Main->SSD leg (or, on a skipped update,
    /// just return the untouched states).
    fn opt_write(&self, layer: usize) -> Result<(), StorageError> {
        let update = self.updates[layer]
            .lock()
            .take()
            .ok_or_else(|| slot_violation("opt-cpu parked this layer's update"))?;
        if update.applied {
            let rec = self.store.telemetry();
            let t = rec.enabled().then(|| rec.now());
            self.store
                .overwrite(&master_key(layer), encode_f32(&update.master))?;
            self.store
                .overwrite(&moments_key(layer), encode_f32(&update.moments))?;
            let p16 = p16_key(layer);
            self.store.remove(&p16)?;
            self.store
                .put(&p16, Tier::Host, encode_f16(&update.master))?;
            self.store.move_to(&p16, Tier::Ssd)?;
            self.store.move_to(&master_key(layer), Tier::Ssd)?;
            self.store.move_to(&moments_key(layer), Tier::Ssd)?;
            if let Some(t) = t {
                rec.record_span(
                    "cpu-opt",
                    SpanCategory::Optimizer,
                    format!("opt-write L{layer}"),
                    t,
                    rec.now(),
                );
            }
        } else {
            self.store.move_to(&master_key(layer), Tier::Ssd)?;
            self.store.move_to(&moments_key(layer), Tier::Ssd)?;
        }
        Ok(())
    }
}

impl TaskAction for StepCtx<'_> {
    fn run(&self, task: TaskId) -> Result<(), RatelError> {
        let result = match self.actions[task.0] {
            EngineAction::FwdRead(li) => self.param_read(li, 'f'),
            EngineAction::FwdFetch(li) => self.param_fetch(li, 'f'),
            EngineAction::Fwd(li) => self.forward(li),
            EngineAction::ActOff(li) => self.act_off(li),
            EngineAction::ActSpill(li) => self.store.move_to(&act_key(li - 1), Tier::Ssd),
            EngineAction::BwdRead(li) => self.param_read(li, 'b'),
            EngineAction::BwdFetch(li) => self.param_fetch(li, 'b'),
            EngineAction::ActLoad(li) => self.store.move_to(&act_key(li - 1), Tier::Host),
            EngineAction::ActUp(li) => self.act_up(li),
            EngineAction::Bwd(li) => self.backward(li),
            EngineAction::GradOff(li) => self.grad_off(li),
            EngineAction::OptRead(li) => self.opt_read(li),
            EngineAction::OptCpu(li) => self.opt_cpu(li),
            EngineAction::OptWrite(li) => self.opt_write(li),
        };
        result.map_err(RatelError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offload::GradOffloadMode;
    use crate::schedule::{LayerTask, LinkRates, OptimizerKind, ParamSource};

    /// An engine-shaped spec: 1 iteration, 1 GPU, no overhead, CPU
    /// out-of-core optimizer — the shape `movement_spec` emits.
    fn engine_like_spec(blocks: usize, mode: GradOffloadMode) -> IterationSpec {
        let n = blocks + 2;
        let layers = (0..n)
            .map(|id| {
                let is_block = id >= 1 && id <= blocks;
                let is_head = id == n - 1;
                LayerTask {
                    label: format!("layer{id}"),
                    p16_bytes: 64.0,
                    param_source: ParamSource::Ssd,
                    fwd_flops: 0.0,
                    bwd_flops: 0.0,
                    act_to_host_bytes: if is_block { 32.0 } else { 0.0 },
                    act_to_ssd_bytes: if is_block && id == 1 { 16.0 } else { 0.0 },
                    refetch_in_backward: !is_head,
                    grad_bytes: 64.0,
                    grad_spill_to_ssd: false,
                    optimizer: OptimizerKind::CpuOutOfCore {
                        read_bytes: 384.0,
                        write_bytes: 448.0,
                        cpu_params: 32.0,
                    },
                }
            })
            .collect();
        IterationSpec {
            layers,
            mode,
            rates: LinkRates {
                thp_gpu: 1.0,
                bw_g2m: 1.0,
                bw_m2g: 1.0,
                ssd_read: 1.0,
                ssd_write: 1.0,
                cpu_params_per_sec: 1.0,
                state_io_efficiency: 1.0,
            },
            gpus: 1,
            items_per_iteration: 1.0,
            per_layer_overhead_seconds: 0.0,
        }
    }

    #[test]
    fn lower_parses_every_task_and_adds_pacing_edges() {
        for mode in [
            GradOffloadMode::OptimizedActive,
            GradOffloadMode::SeparateStage,
        ] {
            let spec = engine_like_spec(3, mode);
            let dag = StepDag::lower(&spec).unwrap();
            assert_eq!(dag.actions.len(), dag.graph.len());
            // Every layer's compute is present.
            let fwds = dag
                .actions
                .iter()
                .filter(|a| matches!(a, EngineAction::Fwd(_)))
                .count();
            let bwds = dag
                .actions
                .iter()
                .filter(|a| matches!(a, EngineAction::Bwd(_)))
                .count();
            assert_eq!(fwds, 5);
            assert_eq!(bwds, 5);
            // Pacing: fwd-read L2 gained a dep on the fwd L0 kernel.
            let find = |want: EngineAction| {
                dag.graph
                    .task_ids()
                    .find(|t| dag.actions[t.0] == want)
                    .unwrap()
            };
            let read2 = find(EngineAction::FwdRead(2));
            let fwd0 = find(EngineAction::Fwd(0));
            assert!(
                dag.graph.deps(read2).contains(&fwd0),
                "fwd-read L2 is paced behind fwd L0"
            );
            // The spilled block round-trips through act-spill/act-load.
            assert!(dag.actions.contains(&EngineAction::ActSpill(1)));
            assert!(dag.actions.contains(&EngineAction::ActLoad(1)));
        }
    }

    #[test]
    fn optimizer_reads_are_windowed_behind_compute() {
        let spec = engine_like_spec(3, GradOffloadMode::OptimizedActive);
        let dag = StepDag::lower(&spec).unwrap();
        let reads: Vec<TaskId> = dag
            .graph
            .task_ids()
            .filter(|t| matches!(dag.actions[t.0], EngineAction::OptRead(_)))
            .collect();
        let cpus: Vec<TaskId> = dag
            .graph
            .task_ids()
            .filter(|t| matches!(dag.actions[t.0], EngineAction::OptCpu(_)))
            .collect();
        assert_eq!(reads.len(), 5);
        for h in 2..reads.len() {
            assert!(
                dag.graph.deps(reads[h]).contains(&cpus[h - 2]),
                "handler {h}'s state read waits for handler {}'s compute",
                h - 2
            );
        }
    }

    #[test]
    fn simulation_only_shapes_are_rejected() {
        // Multi-GPU plans carry `gN`-suffixed and `reduce` labels that
        // have no engine action.
        let mut spec = engine_like_spec(2, GradOffloadMode::OptimizedActive);
        spec.gpus = 2;
        let err = StepDag::lower(&spec).unwrap_err();
        assert!(matches!(err, RatelError::InvalidConfig(_)), "{err}");

        // Hook tasks (per-layer overhead) are simulation-only too.
        let mut spec = engine_like_spec(2, GradOffloadMode::OptimizedActive);
        spec.per_layer_overhead_seconds = 0.5;
        let err = StepDag::lower(&spec).unwrap_err();
        assert!(matches!(err, RatelError::InvalidConfig(_)), "{err}");
    }
}
