//! Synthetic fine-tuning data (§V-A: "we simply randomly initialize model
//! parameters and datasets for evaluations that do not require model
//! convergence" — for convergence tests we instead use a *learnable*
//! synthetic language so the loss provably falls).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ratel_tensor::GptConfig;

/// A batch of `(tokens, targets)` where targets are the next token.
pub type Batch = (Vec<usize>, Vec<usize>);

/// Uniformly random tokens — matches the paper's throughput methodology
/// (loss stays near `ln(vocab)`).
pub fn random_batch(config: &GptConfig, seed: u64) -> Batch {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.batch * config.seq;
    let tokens: Vec<usize> = (0..n).map(|_| rng.gen_range(0..config.vocab)).collect();
    let targets: Vec<usize> = (0..n).map(|_| rng.gen_range(0..config.vocab)).collect();
    (tokens, targets)
}

/// A learnable synthetic language: each sequence follows the affine walk
/// `t_{k+1} = (a * t_k + c) mod V` with per-sequence start token, and the
/// target is the next token. A competent model drives the loss toward 0.
pub fn learnable_batch(config: &GptConfig, seed: u64) -> Batch {
    let mut rng = StdRng::seed_from_u64(seed);
    let v = config.vocab;
    let (a, c) = (5usize, 3usize);
    let mut tokens = Vec::with_capacity(config.batch * config.seq);
    let mut targets = Vec::with_capacity(config.batch * config.seq);
    for _ in 0..config.batch {
        let mut t = rng.gen_range(0..v);
        for _ in 0..config.seq {
            tokens.push(t);
            let next = (a * t + c) % v;
            targets.push(next);
            t = next;
        }
    }
    (tokens, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_have_the_right_shape_and_range() {
        let c = GptConfig::tiny();
        for (tokens, targets) in [random_batch(&c, 1), learnable_batch(&c, 1)] {
            assert_eq!(tokens.len(), c.batch * c.seq);
            assert_eq!(targets.len(), c.batch * c.seq);
            assert!(tokens.iter().all(|&t| t < c.vocab));
            assert!(targets.iter().all(|&t| t < c.vocab));
        }
    }

    #[test]
    fn learnable_batch_is_a_deterministic_affine_walk() {
        let c = GptConfig::tiny();
        let (tokens, targets) = learnable_batch(&c, 7);
        for i in 0..c.seq - 1 {
            assert_eq!(targets[i], (5 * tokens[i] + 3) % c.vocab);
            assert_eq!(tokens[i + 1], targets[i]);
        }
        assert_eq!(learnable_batch(&c, 7), learnable_batch(&c, 7));
        assert_ne!(learnable_batch(&c, 7), learnable_batch(&c, 8));
    }
}

/// A character-level vocabulary over a corpus: the minimal "tokenizer"
/// needed to fine-tune on real text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharVocab {
    chars: Vec<char>,
}

impl CharVocab {
    /// Builds the sorted, deduplicated character set of `corpus`.
    pub fn from_corpus(corpus: &str) -> Self {
        let mut chars: Vec<char> = corpus.chars().collect();
        chars.sort_unstable();
        chars.dedup();
        CharVocab { chars }
    }

    /// Number of distinct characters.
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// Encodes text to token ids.
    ///
    /// # Panics
    /// If `text` contains a character outside the vocabulary.
    pub fn encode(&self, text: &str) -> Vec<usize> {
        text.chars()
            .map(|c| {
                self.chars
                    .binary_search(&c)
                    .unwrap_or_else(|_| panic!("character {c:?} not in vocabulary"))
            })
            .collect()
    }

    /// Decodes token ids back to text.
    ///
    /// # Panics
    /// If any id is out of range.
    pub fn decode(&self, ids: &[usize]) -> String {
        ids.iter().map(|&i| self.chars[i]).collect()
    }
}

/// Cuts next-character training batches out of a corpus: batch `k` packs
/// `config.batch` windows of `config.seq` characters starting at evenly
/// strided offsets, with targets shifted by one.
///
/// # Panics
/// If the corpus is shorter than `seq + 1` characters or the vocabulary
/// is larger than `config.vocab`.
pub fn corpus_batches(
    corpus: &str,
    vocab: &CharVocab,
    config: &GptConfig,
    count: usize,
) -> Vec<Batch> {
    assert!(
        vocab.len() <= config.vocab,
        "corpus has {} distinct chars but the model vocab is {}",
        vocab.len(),
        config.vocab
    );
    token_batches(&vocab.encode(corpus), config, count)
}

/// Cuts next-token batches out of an already-tokenized stream (works for
/// any tokenizer, e.g. [`crate::engine::bpe::BpeTokenizer`]): batch `k`
/// packs `config.batch` windows of `config.seq` tokens at evenly strided
/// offsets, targets shifted by one.
///
/// # Panics
/// If the stream is shorter than `seq + 1` tokens or contains ids
/// `>= config.vocab`.
pub fn token_batches(ids: &[usize], config: &GptConfig, count: usize) -> Vec<Batch> {
    assert!(
        ids.iter().all(|&t| t < config.vocab),
        "token id exceeds the model vocabulary"
    );
    assert!(ids.len() > config.seq + 1, "stream shorter than one window");
    let max_start = ids.len() - config.seq - 1;
    let total_windows = count * config.batch;
    let stride = (max_start / total_windows.max(1)).max(1);
    let mut batches = Vec::with_capacity(count);
    let mut w = 0usize;
    for _ in 0..count {
        let mut tokens = Vec::with_capacity(config.batch * config.seq);
        let mut targets = Vec::with_capacity(config.batch * config.seq);
        for _ in 0..config.batch {
            let start = (w * stride) % (max_start + 1);
            tokens.extend_from_slice(&ids[start..start + config.seq]);
            targets.extend_from_slice(&ids[start + 1..start + config.seq + 1]);
            w += 1;
        }
        batches.push((tokens, targets));
    }
    batches
}

#[cfg(test)]
mod corpus_tests {
    use super::*;

    const TEXT: &str = "the quick brown fox jumps over the lazy dog. \
                        pack my box with five dozen liquor jugs. \
                        how vexingly quick daft zebras jump!";

    #[test]
    fn vocab_round_trips() {
        let v = CharVocab::from_corpus(TEXT);
        assert!(v.len() > 20 && v.len() < 40, "{}", v.len());
        let ids = v.encode("quick fox");
        assert_eq!(v.decode(&ids), "quick fox");
    }

    #[test]
    #[should_panic(expected = "not in vocabulary")]
    fn unknown_characters_panic() {
        CharVocab::from_corpus("abc").encode("abcd");
    }

    #[test]
    fn batches_are_shifted_windows() {
        let v = CharVocab::from_corpus(TEXT);
        let config = GptConfig {
            vocab: 64,
            seq: 16,
            hidden: 32,
            heads: 4,
            layers: 2,
            batch: 3,
        };
        let batches = corpus_batches(TEXT, &v, &config, 4);
        assert_eq!(batches.len(), 4);
        for (tokens, targets) in &batches {
            assert_eq!(tokens.len(), config.batch * config.seq);
            // Each window's target is the next character.
            for b in 0..config.batch {
                let t = &tokens[b * config.seq..(b + 1) * config.seq];
                let y = &targets[b * config.seq..(b + 1) * config.seq];
                assert_eq!(&t[1..], &y[..config.seq - 1]);
            }
        }
    }
}
