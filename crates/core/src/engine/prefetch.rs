//! Pipelined parameter prefetching (the `Ratel_hook` of Fig. 4).
//!
//! During a training step the engine touches layers in a fully
//! deterministic order (forward 0..L+1, then backward L..0), so a
//! prefetcher thread can stage each layer's P16 blob from the SSD tier
//! into the GPU arena a window ahead of the compute thread, hiding the
//! SSD→host→GPU latency behind the previous layer's kernels — the same
//! double-buffering the memory model charges the GPU arena for
//! (`RatelMemoryModel::gpu_bytes_per_layer_param` counts three buffers).
//!
//! Numerics are untouched: the staged bytes are identical to what a
//! serial fetch would read, so prefetched and serial training remain
//! bit-identical; only wall-clock time changes (see the
//! `prefetch_timing` integration test).

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver};
use ratel_storage::telemetry::SpanCategory;
use ratel_storage::{StorageError, Tier, TieredStore};

use super::p16_key;

/// How many layers ahead the prefetcher may run. One blob is in use by
/// the compute thread while `WINDOW` more may be staged — with the
/// in-flight one this matches the memory model's triple buffering.
const WINDOW: usize = 2;

/// A staged parameter blob announcement: `(sequence index, staged key)`.
pub(crate) type Staged = (usize, String);

/// Handle to a running parameter prefetcher.
pub(crate) struct ParamPrefetcher {
    rx: Receiver<Result<Staged, StorageError>>,
    handle: Option<JoinHandle<()>>,
    next_seq: usize,
}

impl ParamPrefetcher {
    /// Spawns a prefetcher staging the P16 blobs of `order` (layer ids in
    /// touch order) into the GPU tier. Errors if the prefetcher thread
    /// cannot be spawned.
    pub(crate) fn start(store: Arc<TieredStore>, order: Vec<usize>) -> Result<Self, StorageError> {
        let (tx, rx) = bounded::<Result<Staged, StorageError>>(WINDOW);
        let handle = std::thread::Builder::new()
            .name("ratel-param-prefetch".into())
            .spawn(move || {
                for (seq, layer) in order.into_iter().enumerate() {
                    let key = p16_key(layer);
                    // Unique staged name per sequence position: the same
                    // layer is staged separately for forward and backward.
                    let staged = format!("{key}#pf{seq}");
                    let rec = store.telemetry();
                    let t = rec.enabled().then(|| rec.now());
                    let result = store
                        .copy_to(&key, &staged, Tier::Gpu)
                        .map(|()| (seq, staged));
                    if let Some(t) = t {
                        let rec = store.telemetry();
                        rec.record_span(
                            "param-prefetch",
                            SpanCategory::Prefetch,
                            format!("pf L{layer}"),
                            t,
                            rec.now(),
                        );
                    }
                    let failed = result.is_err();
                    if tx.send(result).is_err() || failed {
                        // Consumer went away or staging failed: stop.
                        break;
                    }
                }
            })
            .map_err(|e| {
                StorageError::Io(std::io::Error::other(format!(
                    "spawn param prefetcher: {e}"
                )))
            })?;
        Ok(ParamPrefetcher {
            rx,
            handle: Some(handle),
            next_seq: 0,
        })
    }

    /// Blocks until the next staged blob is available and returns its
    /// store key. The caller reads, decodes, and removes it.
    pub(crate) fn next(&mut self) -> Result<String, StorageError> {
        // A closed channel here means the prefetcher thread died without
        // reporting its own error first (it always sends before exiting).
        let staged = self.rx.recv().map_err(|_| {
            StorageError::Io(std::io::Error::other(
                "param prefetcher exited unexpectedly",
            ))
        })??;
        assert_eq!(staged.0, self.next_seq, "prefetch order mismatch");
        self.next_seq += 1;
        Ok(staged.1)
    }
}

impl Drop for ParamPrefetcher {
    fn drop(&mut self) {
        // Drain so the thread unblocks, then join.
        while self.rx.try_recv().is_ok() {}
        drop(std::mem::replace(
            &mut self.rx,
            bounded::<Result<Staged, StorageError>>(0).1,
        ));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratel_storage::TierConfig;
    use ratel_tensor::dtype::encode_f16;

    fn store_with_layers(n: usize) -> Arc<TieredStore> {
        let store = Arc::new(TieredStore::new(TierConfig::unbounded_temp()).unwrap());
        for l in 0..n {
            store
                .put(&p16_key(l), Tier::Ssd, encode_f16(&[l as f32; 8]))
                .unwrap();
        }
        store
    }

    #[test]
    fn stages_in_order_and_cleans_up() {
        let store = store_with_layers(3);
        let order = vec![0usize, 1, 2, 2, 1, 0];
        let mut pf = ParamPrefetcher::start(Arc::clone(&store), order.clone()).unwrap();
        for (seq, layer) in order.iter().enumerate() {
            let staged = pf.next().unwrap();
            assert!(staged.contains(&format!("#pf{seq}")));
            let bytes = store.read(&staged).unwrap();
            assert_eq!(
                ratel_tensor::dtype::decode_f16(&bytes),
                vec![*layer as f32; 8]
            );
            store.remove(&staged).unwrap();
        }
        drop(pf);
        assert_eq!(store.used(Tier::Gpu), 0);
    }

    #[test]
    fn staging_error_surfaces_to_the_consumer() {
        // A 1-byte GPU arena cannot hold any staged blob.
        let config = TierConfig {
            gpu_capacity: Some(1),
            host_capacity: None,
            ssd_capacity: None,
            ssd_dir: TierConfig::unbounded_temp().ssd_dir,
        };
        let store = Arc::new(TieredStore::new(config).unwrap());
        store
            .put(&p16_key(0), Tier::Ssd, encode_f16(&[1.0; 8]))
            .unwrap();
        let mut pf = ParamPrefetcher::start(Arc::clone(&store), vec![0]).unwrap();
        assert!(pf.next().is_err());
    }

    #[test]
    fn early_drop_does_not_deadlock() {
        let store = store_with_layers(4);
        let pf = ParamPrefetcher::start(store, vec![0, 1, 2, 3, 0, 1, 2, 3]).unwrap();
        drop(pf); // consumer abandons mid-stream
    }
}
