//! Crash-safe, generation-numbered checkpoints.
//!
//! A checkpoint directory holds *generations*. Saving generation `N`
//! writes every blob as `gN-layer<l>.master` / `gN-layer<l>.moments` and
//! then a `manifest-gN.txt` — each file written to a temp sibling,
//! fsynced, and renamed into place, with the manifest last. Because the
//! manifest commits the generation and earlier generations' files are
//! never touched, a crash at *any* point leaves the directory loadable:
//! either the new manifest exists complete (the save happened) or it
//! doesn't (the save never happened and generation `N-1` is intact).
//!
//! The manifest carries the engine's step clock, per-layer update
//! counts, and an FNV-1a 64 checksum + byte length for every blob, plus
//! a self-checksum over its own body. Loading verifies all of them and
//! walks backward through generations until one passes — torn or
//! bit-flipped checkpoints are *detected*, never silently restored.
//! After a successful save the directory is pruned to the two newest
//! generations.
//!
//! Manifest format (text, one record per line):
//!
//! ```text
//! ratel-checkpoint v1
//! generation 3
//! step 40
//! layer 0 38 51200 a1b2c3d4e5f60718 102400 18f6e5d4c3b2a190
//! ...
//! checksum 0123456789abcdef
//! ```
//!
//! The `layer` fields are: id, applied-update count, master byte length,
//! master FNV-1a 64, moments byte length, moments FNV-1a 64.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use ratel_storage::Tier;
use ratel_tensor::dtype::{decode_f32, encode_f16};

use crate::error::RatelError;

use super::{master_key, moments_key, p16_key, RatelEngine};

/// FNV-1a 64-bit — tiny, dependency-free, and plenty to catch torn
/// writes and bit rot (this is corruption *detection*, not security).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Writes `bytes` to `path` via a temp sibling + fsync + rename, so the
/// final path either holds the complete content or does not exist.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

fn manifest_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("manifest-g{generation}.txt"))
}

fn blob_path(dir: &Path, generation: u64, layer: usize, kind: &str) -> PathBuf {
    dir.join(format!("g{generation}-layer{layer}.{kind}"))
}

/// Generations present in `dir` (by manifest file), ascending.
pub(crate) fn generations(dir: &Path) -> Vec<u64> {
    let mut gens: Vec<u64> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_str()?;
                name.strip_prefix("manifest-g")?
                    .strip_suffix(".txt")?
                    .parse()
                    .ok()
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    gens.sort_unstable();
    gens.dedup();
    gens
}

/// One parsed + verified manifest.
struct Manifest {
    step: u64,
    /// `(applied_steps, master_bytes, moments_bytes)` per layer id.
    layers: Vec<(u64, Vec<u8>, Vec<u8>)>,
}

/// Saves a new generation. See the module docs for the on-disk layout.
pub(crate) fn save(engine: &RatelEngine, dir: &Path) -> Result<(), RatelError> {
    fs::create_dir_all(dir).map_err(|e| {
        RatelError::CheckpointCorrupt(format!("cannot create {}: {e}", dir.display()))
    })?;
    let generation = generations(dir).last().copied().unwrap_or(0) + 1;
    let io_err = |what: &str, e: std::io::Error| {
        RatelError::CheckpointCorrupt(format!("writing {what}: {e}"))
    };

    let mut body = String::from("ratel-checkpoint v1\n");
    body.push_str(&format!("generation {generation}\n"));
    body.push_str(&format!("step {}\n", engine.step));
    for layer in 0..engine.layer_count() {
        let master = engine.store.read(&master_key(layer))?;
        let moments = engine.store.read(&moments_key(layer))?;
        let mpath = blob_path(dir, generation, layer, "master");
        let opath = blob_path(dir, generation, layer, "moments");
        write_atomic(&mpath, &master).map_err(|e| io_err("master blob", e))?;
        write_atomic(&opath, &moments).map_err(|e| io_err("moments blob", e))?;
        body.push_str(&format!(
            "layer {layer} {} {} {:016x} {} {:016x}\n",
            engine.layer_steps[layer],
            master.len(),
            fnv64(&master),
            moments.len(),
            fnv64(&moments),
        ));
    }
    let manifest = format!("{body}checksum {:016x}\n", fnv64(body.as_bytes()));
    // The manifest rename is the commit point of the whole generation.
    write_atomic(&manifest_path(dir, generation), manifest.as_bytes())
        .map_err(|e| io_err("manifest", e))?;
    ratel_obs::flight().record(
        ratel_obs::EventKind::CheckpointCommit,
        0,
        "checkpoint",
        manifest.len() as u64,
        generation,
    );
    ratel_obs::registry()
        .counter(
            "ratel_checkpoint_commits_total",
            "Checkpoint generations committed (manifest renamed into place)",
        )
        .inc();
    ratel_obs::registry()
        .gauge(
            "ratel_checkpoint_generation",
            "Most recently committed checkpoint generation",
        )
        .set(generation as f64);

    // Keep this generation and its predecessor; prune everything older.
    for old in generations(dir) {
        if old + 1 >= generation {
            continue;
        }
        let _ = fs::remove_file(manifest_path(dir, old));
        for layer in 0..engine.layer_count() {
            let _ = fs::remove_file(blob_path(dir, old, layer, "master"));
            let _ = fs::remove_file(blob_path(dir, old, layer, "moments"));
        }
    }
    Ok(())
}

/// Parses and fully verifies one generation, returning the blobs.
fn read_generation(dir: &Path, generation: u64, layer_count: usize) -> Result<Manifest, String> {
    let path = manifest_path(dir, generation);
    let text = fs::read_to_string(&path).map_err(|e| format!("manifest unreadable: {e}"))?;

    // Split off and verify the self-checksum line first.
    let trimmed = text.strip_suffix('\n').unwrap_or(&text);
    let (body_end, checksum_line) = match trimmed.rfind('\n') {
        Some(i) => (i + 1, &trimmed[i + 1..]),
        None => return Err("manifest truncated before checksum".into()),
    };
    let body = &text[..body_end];
    let declared = checksum_line
        .strip_prefix("checksum ")
        .ok_or("manifest missing checksum line")?;
    let declared = u64::from_str_radix(declared, 16).map_err(|e| format!("bad checksum: {e}"))?;
    if declared != fnv64(body.as_bytes()) {
        return Err("manifest self-checksum mismatch".into());
    }

    let mut lines = body.lines();
    if lines.next() != Some("ratel-checkpoint v1") {
        return Err("unrecognized manifest header".into());
    }
    let gen_line = lines.next().ok_or("manifest missing generation line")?;
    let declared_gen: u64 = gen_line
        .strip_prefix("generation ")
        .and_then(|s| s.parse().ok())
        .ok_or("bad generation line")?;
    if declared_gen != generation {
        return Err(format!(
            "manifest names generation {declared_gen}, file says {generation}"
        ));
    }
    let step_line = lines.next().ok_or("manifest missing step line")?;
    let step: u64 = step_line
        .strip_prefix("step ")
        .and_then(|s| s.parse().ok())
        .ok_or("bad step line")?;

    let mut layers = Vec::new();
    for line in lines {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 7 || fields[0] != "layer" {
            return Err(format!("bad layer line {line:?}"));
        }
        let layer: usize = fields[1].parse().map_err(|_| "bad layer id".to_string())?;
        if layer != layers.len() {
            return Err(format!("layer records out of order at {layer}"));
        }
        let steps: u64 = fields[2]
            .parse()
            .map_err(|_| "bad layer steps".to_string())?;
        let parse_blob = |len_s: &str, sum_s: &str, kind: &str| -> Result<Vec<u8>, String> {
            let len: usize = len_s.parse().map_err(|_| format!("bad {kind} length"))?;
            let sum = u64::from_str_radix(sum_s, 16).map_err(|_| format!("bad {kind} checksum"))?;
            let bytes = fs::read(blob_path(dir, generation, layer, kind))
                .map_err(|e| format!("layer {layer} {kind} unreadable: {e}"))?;
            if bytes.len() != len {
                return Err(format!(
                    "layer {layer} {kind} is {} bytes, manifest says {len} (torn write?)",
                    bytes.len()
                ));
            }
            if fnv64(&bytes) != sum {
                return Err(format!("layer {layer} {kind} checksum mismatch"));
            }
            Ok(bytes)
        };
        let master = parse_blob(fields[3], fields[4], "master")?;
        let moments = parse_blob(fields[5], fields[6], "moments")?;
        layers.push((steps, master, moments));
    }
    if layers.len() != layer_count {
        return Err(format!(
            "checkpoint has {} layers, engine has {layer_count}",
            layers.len()
        ));
    }
    Ok(Manifest { step, layers })
}

/// Loads the newest verifiable generation into the engine, falling back
/// through older generations when verification fails.
pub(crate) fn load(engine: &mut RatelEngine, dir: &Path) -> Result<(), RatelError> {
    let gens = generations(dir);
    if gens.is_empty() {
        return Err(RatelError::CheckpointCorrupt(format!(
            "no checkpoint manifests in {}",
            dir.display()
        )));
    }
    let mut failures = Vec::new();
    for &generation in gens.iter().rev() {
        match read_generation(dir, generation, engine.layer_count()) {
            Ok(manifest) => {
                // All blobs verified — only now touch engine state.
                engine.step = manifest.step;
                for (layer, (steps, master, moments)) in manifest.layers.into_iter().enumerate() {
                    engine.layer_steps[layer] = steps;
                    let p16 = encode_f16(&decode_f32(&master));
                    engine.store.overwrite(&master_key(layer), master)?;
                    engine.store.overwrite(&moments_key(layer), moments)?;
                    engine.store.remove(&p16_key(layer))?;
                    engine.store.put(&p16_key(layer), Tier::Ssd, p16)?;
                }
                if !failures.is_empty() {
                    // Restored, but only by falling back past a torn
                    // generation — leave a postmortem trail.
                    ratel_obs::dump_postmortem("checkpoint fallback");
                }
                return Ok(());
            }
            Err(reason) => {
                // Fallback: this generation failed verification and the
                // loader walks back to its predecessor. Flight-record it
                // (with the cumulative counter) so a restore that
                // silently skipped a torn generation is visible later.
                ratel_obs::flight().record(
                    ratel_obs::EventKind::CheckpointFallback,
                    0,
                    &reason,
                    0,
                    generation,
                );
                ratel_obs::registry()
                    .counter(
                        "ratel_checkpoint_fallbacks_total",
                        "Checkpoint generations that failed verification on load",
                    )
                    .inc();
                failures.push(format!("generation {generation}: {reason}"));
            }
        }
    }
    ratel_obs::dump_postmortem("checkpoint fallback exhausted all generations");
    Err(RatelError::CheckpointCorrupt(format!(
        "no loadable generation in {}: {}",
        dir.display(),
        failures.join("; ")
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_is_stable_and_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        let a = fnv64(b"ratel");
        let mut flipped = b"ratel".to_vec();
        flipped[0] ^= 1;
        assert_ne!(a, fnv64(&flipped));
    }

    #[test]
    fn generation_listing_ignores_foreign_files() {
        let dir = std::env::temp_dir().join(format!("ratel-genlist-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(manifest_path(&dir, 2), "x").unwrap();
        fs::write(manifest_path(&dir, 10), "x").unwrap();
        fs::write(dir.join("manifest-gBAD.txt"), "x").unwrap();
        fs::write(dir.join("notes.txt"), "x").unwrap();
        assert_eq!(generations(&dir), vec![2, 10]);
        let _ = fs::remove_dir_all(&dir);
    }
}
