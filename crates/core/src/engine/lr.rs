//! Learning-rate schedules for fine-tuning.
//!
//! GPT-style fine-tuning almost always uses linear warmup followed by
//! cosine decay; the schedule is evaluated per *wall step* (skipped
//! overflow steps still advance it, like PyTorch's `LambdaLR` driven by
//! the outer loop) and applied identically by the out-of-core engine and
//! the in-memory reference.

/// A learning-rate schedule mapping a 0-based step index to a multiplier
/// of the base learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Always the base learning rate.
    Constant,
    /// Linear warmup over `warmup_steps`, then cosine decay to
    /// `min_factor * base` at `total_steps` (clamped afterwards).
    WarmupCosine {
        /// Steps of linear warmup from 0 to the base rate.
        warmup_steps: u64,
        /// Step at which the cosine reaches its floor.
        total_steps: u64,
        /// Floor as a fraction of the base rate.
        min_factor: f32,
    },
    /// Linear warmup, then constant.
    WarmupConstant {
        /// Steps of linear warmup from 0 to the base rate.
        warmup_steps: u64,
    },
}

impl LrSchedule {
    /// The multiplier for 0-based step `step`.
    pub fn factor(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::WarmupConstant { warmup_steps } => {
                if warmup_steps == 0 || step >= warmup_steps {
                    1.0
                } else {
                    (step + 1) as f32 / warmup_steps as f32
                }
            }
            LrSchedule::WarmupCosine {
                warmup_steps,
                total_steps,
                min_factor,
            } => {
                if warmup_steps > 0 && step < warmup_steps {
                    return (step + 1) as f32 / warmup_steps as f32;
                }
                if total_steps <= warmup_steps {
                    return min_factor;
                }
                let progress =
                    ((step - warmup_steps) as f32 / (total_steps - warmup_steps) as f32).min(1.0);
                let cosine = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                min_factor + (1.0 - min_factor) * cosine
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one_everywhere() {
        for s in [0u64, 1, 100, 10_000] {
            assert_eq!(LrSchedule::Constant.factor(s), 1.0);
        }
    }

    #[test]
    fn warmup_ramps_linearly_then_holds() {
        let sched = LrSchedule::WarmupConstant { warmup_steps: 4 };
        assert_eq!(sched.factor(0), 0.25);
        assert_eq!(sched.factor(1), 0.5);
        assert_eq!(sched.factor(3), 1.0);
        assert_eq!(sched.factor(100), 1.0);
    }

    #[test]
    fn cosine_decays_to_the_floor() {
        let sched = LrSchedule::WarmupCosine {
            warmup_steps: 2,
            total_steps: 10,
            min_factor: 0.1,
        };
        assert_eq!(sched.factor(0), 0.5);
        assert_eq!(sched.factor(1), 1.0);
        // Midpoint of the cosine: halfway between 1.0 and the floor.
        let mid = sched.factor(6);
        assert!((mid - 0.55).abs() < 1e-6, "{mid}");
        // At and past the end: the floor.
        assert!((sched.factor(10) - 0.1).abs() < 1e-6);
        assert!((sched.factor(50) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn cosine_is_monotone_after_warmup() {
        let sched = LrSchedule::WarmupCosine {
            warmup_steps: 5,
            total_steps: 50,
            min_factor: 0.0,
        };
        let mut last = f32::INFINITY;
        for s in 5..=50 {
            let f = sched.factor(s);
            assert!(f <= last + 1e-7, "step {s}: {f} > {last}");
            last = f;
        }
    }

    #[test]
    fn degenerate_schedules_are_safe() {
        assert_eq!(
            LrSchedule::WarmupConstant { warmup_steps: 0 }.factor(0),
            1.0
        );
        let broken = LrSchedule::WarmupCosine {
            warmup_steps: 10,
            total_steps: 5, // total < warmup
            min_factor: 0.2,
        };
        assert_eq!(broken.factor(20), 0.2);
    }
}
