//! The active-gradient-offloading CPU optimizer (§IV-C), for real.
//!
//! Two threads implement the optimized handler pipeline of Fig. 3b:
//!
//! * a **prefetcher** walks the known gradient arrival order (backward is
//!   deterministic: head, blocks in reverse, embedding) and stages each
//!   layer's master parameters and Adam moments from the SSD tier into
//!   host memory (`SSD→Main`), at most a small window ahead — so state
//!   reads overlap the updater's CPU compute and write-backs;
//! * an **updater** receives gradient notifications from the training
//!   thread the moment each layer's G16 lands in host memory, performs
//!   the f32 Adam step, and writes the updated P32/OS32 plus the fresh
//!   P16 copy back to the SSD tier (`Main→SSD`).
//!
//! Updates are per-layer independent, so consuming them in arrival order
//! keeps the result bit-identical to a serial optimizer — synchronous
//! semantics with zero staleness, unlike ZeRO-Offload's one-step delayed
//! update.
//!
//! With `active = false` the same updater runs, but only after the
//! training thread has finished backward and closed the channel — the
//! "Ratel+ZeRO" separate-stage ablation.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use ratel_storage::telemetry::SpanCategory;
use ratel_storage::{StorageError, Tier, TieredStore};

use crate::error::RatelError;
use ratel_tensor::dtype::{decode_f16, decode_f32, encode_f16, encode_f32};
use ratel_tensor::{Adam, AdamParams};

use super::scaler::prepare_gradient;
use super::{master_key, moments_key, p16_key};

/// Notification that a layer's gradient blob is in host memory.
#[derive(Debug, Clone)]
pub struct GradMessage {
    /// Layer id.
    pub layer: usize,
    /// Store key of the G16 blob.
    pub key: String,
}

/// How many layers of master state the prefetcher may stage ahead — the
/// host-side optimizer working window (part of Ratel's main-memory
/// budget, see `RatelMemoryModel::host_bytes_per_param`).
const PREFETCH_WINDOW: usize = 2;

/// Handle to a running per-step optimizer.
///
/// [`ActiveOptimizer::finish`] is the normal teardown; if a step errors
/// mid-iteration and the handle is dropped instead, `Drop` still closes
/// the gradient channel and joins both threads, so no optimizer thread
/// outlives its step.
pub struct ActiveOptimizer {
    grad_tx: Option<Sender<GradMessage>>,
    updater: Option<JoinHandle<Result<Vec<usize>, StorageError>>>,
    prefetcher: Option<JoinHandle<Result<(), StorageError>>>,
}

impl ActiveOptimizer {
    /// Spawns the optimizer threads for one training step.
    ///
    /// `order` is the gradient arrival order (layer ids); `layer_steps`
    /// holds each layer's count of *applied* Adam updates so far (skipped
    /// overflow steps do not advance a layer's bias-correction clock).
    /// Errors with [`RatelError::Runtime`] if a thread cannot be
    /// spawned (any thread spawned before the failure is joined first).
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        store: Arc<TieredStore>,
        order: Vec<usize>,
        adam: AdamParams,
        layer_steps: Vec<u64>,
        active: bool,
        loss_scale: f32,
        grad_clip: Option<f32>,
    ) -> Result<Self, RatelError> {
        let (grad_tx, grad_rx) = unbounded::<GradMessage>();

        let (prefetcher, staged_rx) = if active {
            let (staged_tx, staged_rx) = bounded::<usize>(PREFETCH_WINDOW);
            let store2 = Arc::clone(&store);
            let order2 = order.clone();
            let handle = std::thread::Builder::new()
                .name("ratel-opt-prefetch".into())
                .spawn(move || -> Result<(), StorageError> {
                    for layer in order2 {
                        let rec = store2.telemetry();
                        let t = rec.enabled().then(|| rec.now());
                        store2.move_to(&master_key(layer), Tier::Host)?;
                        store2.move_to(&moments_key(layer), Tier::Host)?;
                        if let Some(t) = t {
                            let rec = store2.telemetry();
                            rec.record_span(
                                "opt-prefetch",
                                SpanCategory::Prefetch,
                                format!("opt-pf L{layer}"),
                                t,
                                rec.now(),
                            );
                        }
                        if staged_tx.send(layer).is_err() {
                            break; // updater died; its error surfaces on join
                        }
                    }
                    Ok(())
                })
                .map_err(|e| RatelError::Runtime(format!("spawn optimizer prefetcher: {e}")))?;
            (Some(handle), Some(staged_rx))
        } else {
            (None, None)
        };

        let updater = std::thread::Builder::new()
            .name("ratel-opt-update".into())
            .spawn(move || {
                update_loop(
                    store,
                    grad_rx,
                    staged_rx,
                    adam,
                    layer_steps,
                    active,
                    loss_scale,
                    grad_clip,
                )
            });
        let updater = match updater {
            Ok(h) => h,
            Err(e) => {
                // The updater (and its staged_rx) never existed: the
                // prefetcher's bounded send fails once the window fills,
                // so it drains out and can be joined.
                drop(grad_tx);
                if let Some(p) = prefetcher {
                    let _ = p.join();
                }
                return Err(RatelError::Runtime(format!("spawn optimizer updater: {e}")));
            }
        };

        Ok(ActiveOptimizer {
            grad_tx: Some(grad_tx),
            updater: Some(updater),
            prefetcher,
        })
    }

    /// Notifies the optimizer that a gradient blob is ready in host
    /// memory. Never blocks the training thread.
    pub fn submit(&self, msg: GradMessage) {
        // The updater only exits after the channel closes, so a send can
        // only fail if it panicked/errored; that error surfaces in
        // `finish`.
        if let Some(tx) = &self.grad_tx {
            let _ = tx.send(msg);
        }
    }

    /// Closes the gradient stream and waits for every update to be
    /// written back — the synchronization point that keeps training
    /// synchronous. Returns the layers whose update was skipped due to
    /// gradient overflow.
    pub fn finish(mut self) -> Result<Vec<usize>, RatelError> {
        drop(self.grad_tx.take());
        // `finish` consumes self, so the handle is present unless Drop
        // already ran — which cannot happen — but degrade to a typed
        // error rather than panicking on an impossible state.
        let Some(updater) = self.updater.take() else {
            return Err(RatelError::Runtime(
                "optimizer updater handle already taken".into(),
            ));
        };
        let updater_result = updater
            .join()
            .map_err(|_| RatelError::Runtime("optimizer updater thread panicked".into()))?;
        if let Some(p) = self.prefetcher.take() {
            p.join().map_err(|_| {
                RatelError::Runtime("optimizer prefetcher thread panicked".into())
            })??;
        }
        Ok(updater_result?)
    }
}

impl Drop for ActiveOptimizer {
    fn drop(&mut self) {
        // `finish` takes the handles, so this only does work when a step
        // errored mid-iteration and the optimizer is being torn down
        // without its synchronization point. Closing the channel makes
        // both threads exit; their results (likely the same storage
        // error the step already surfaced) are discarded.
        drop(self.grad_tx.take());
        if let Some(u) = self.updater.take() {
            let _ = u.join();
        }
        if let Some(p) = self.prefetcher.take() {
            let _ = p.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn update_loop(
    store: Arc<TieredStore>,
    grad_rx: Receiver<GradMessage>,
    staged_rx: Option<Receiver<usize>>,
    adam: AdamParams,
    layer_steps: Vec<u64>,
    active: bool,
    loss_scale: f32,
    grad_clip: Option<f32>,
) -> Result<Vec<usize>, StorageError> {
    // Spans land on one updater track: per layer a read (state
    // availability + gradient decode), a cpu (Adam math), and a write
    // (state write-back) span — or a `skip` span on overflow.
    let rec = std::sync::Arc::clone(store.telemetry());
    // One Adam state and one flat blob buffer live across all layers:
    // `load_flat`/`write_flat_into` reuse their capacity, so the per-layer
    // state round-trip costs zero allocations at steady state.
    let mut state = Adam::new(0);
    let mut flat_buf: Vec<f32> = Vec::new();
    // Returns true if the layer's update was applied, false if skipped.
    let mut process = |msg: &GradMessage| -> Result<bool, StorageError> {
        let t_read = rec.enabled().then(|| rec.now());
        if let Some(rx) = &staged_rx {
            // Wait for the prefetcher to stage this layer's states. Arrival
            // order matches `order`, so this is the same layer. A `None`
            // means the prefetcher died early (its error surfaces on
            // join); stage the states ourselves so the update still
            // lands instead of reading stale-tier state.
            let staged = rx.recv().ok();
            if staged != Some(msg.layer) {
                store.move_to(&master_key(msg.layer), Tier::Host)?;
                store.move_to(&moments_key(msg.layer), Tier::Host)?;
            }
        } else {
            // Separate-stage / no prefetcher: fetch states ourselves
            // (serialized SSD→Main, the naive handler's first step).
            store.move_to(&master_key(msg.layer), Tier::Host)?;
            store.move_to(&moments_key(msg.layer), Tier::Host)?;
        }

        // CPU compute: f32 Adam over the staged states, consuming the G16
        // gradient that backward just offloaded (unscale, overflow check,
        // optional per-layer clip first — see `scaler`).
        let mut grads = decode_f16(&store.read(&msg.key)?);
        store.remove(&msg.key)?;
        if let Some(t) = t_read {
            rec.record_span(
                "cpu-opt",
                SpanCategory::Optimizer,
                format!("opt-read L{}", msg.layer),
                t,
                rec.now(),
            );
        }
        let t_cpu = rec.enabled().then(|| rec.now());
        let applied = if prepare_gradient(&mut grads, loss_scale, grad_clip).is_some() {
            let mut master = decode_f32(&store.read(&master_key(msg.layer))?);
            let moments = decode_f32(&store.read(&moments_key(msg.layer))?);
            state.load_flat(&moments, layer_steps[msg.layer]);
            state.step(&mut master, &grads, &adam);
            if let Some(t) = t_cpu {
                rec.record_span(
                    "cpu-opt",
                    SpanCategory::Optimizer,
                    format!("opt-cpu L{}", msg.layer),
                    t,
                    rec.now(),
                );
            }

            // Main→SSD: write back P32 + OS32 and publish the fresh P16.
            let t_write = rec.enabled().then(|| rec.now());
            store.overwrite(&master_key(msg.layer), encode_f32(&master))?;
            state.write_flat_into(&mut flat_buf);
            store.overwrite(&moments_key(msg.layer), encode_f32(&flat_buf))?;
            let p16 = p16_key(msg.layer);
            store.remove(&p16)?;
            store.put(&p16, Tier::Host, encode_f16(&master))?;
            store.move_to(&p16, Tier::Ssd)?;
            // States return to the SSD tier (they were staged out).
            store.move_to(&master_key(msg.layer), Tier::Ssd)?;
            store.move_to(&moments_key(msg.layer), Tier::Ssd)?;
            if let Some(t) = t_write {
                rec.record_span(
                    "cpu-opt",
                    SpanCategory::Optimizer,
                    format!("opt-write L{}", msg.layer),
                    t,
                    rec.now(),
                );
            }
            true
        } else {
            // Overflow skip: record the decision, return the untouched
            // states to the SSD tier.
            if let Some(t) = t_cpu {
                rec.record_span(
                    "cpu-opt",
                    SpanCategory::Other,
                    format!("skip L{}", msg.layer),
                    t,
                    rec.now(),
                );
            }
            store.move_to(&master_key(msg.layer), Tier::Ssd)?;
            store.move_to(&moments_key(msg.layer), Tier::Ssd)?;
            false
        };
        Ok(applied)
    };

    let mut skipped = Vec::new();
    if active {
        // Consume gradients as they arrive, overlapping GPU backward.
        for msg in grad_rx.iter() {
            if !process(&msg)? {
                skipped.push(msg.layer);
            }
        }
    } else {
        // Separate stage: buffer everything until backward finishes (the
        // channel closes), then run the whole optimizer.
        let all: Vec<GradMessage> = grad_rx.iter().collect();
        for msg in &all {
            if !process(msg)? {
                skipped.push(msg.layer);
            }
        }
    }
    Ok(skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratel_storage::TierConfig;

    fn store_with_layer0() -> Arc<TieredStore> {
        let store = Arc::new(TieredStore::new(TierConfig::unbounded_temp()).unwrap());
        store
            .put(&master_key(0), Tier::Ssd, encode_f32(&[1.0, 2.0]))
            .unwrap();
        store
            .put(&moments_key(0), Tier::Ssd, encode_f32(&[0.0; 4]))
            .unwrap();
        store
            .put(&p16_key(0), Tier::Ssd, encode_f16(&[1.0, 2.0]))
            .unwrap();
        store
    }

    #[test]
    fn drop_without_finish_joins_both_threads() {
        // A step that errors mid-iteration drops the handle instead of
        // calling finish(); both threads must still be joined (the test
        // would hang or leak otherwise).
        let store = store_with_layer0();
        let opt = ActiveOptimizer::start(
            Arc::clone(&store),
            vec![0],
            AdamParams::default(),
            vec![0],
            true,
            1.0,
            None,
        )
        .unwrap();
        drop(opt);
        // Threads are gone; the states are wherever the prefetcher left
        // them but still consistent and movable.
        store.move_to(&master_key(0), Tier::Ssd).unwrap();
        store.move_to(&moments_key(0), Tier::Ssd).unwrap();
    }

    #[test]
    fn dead_prefetcher_falls_back_to_self_staging() {
        // Order lists a layer with no states: the prefetcher errors out
        // immediately and closes its channel. The updater must stage
        // layer 0's states itself and still apply the update; the
        // prefetcher's error then surfaces from finish().
        let store = store_with_layer0();
        let opt = ActiveOptimizer::start(
            Arc::clone(&store),
            vec![99, 0],
            AdamParams::default(),
            vec![0],
            true,
            1.0,
            None,
        )
        .unwrap();
        store
            .put("layer0/grad", Tier::Host, encode_f16(&[0.5, -0.5]))
            .unwrap();
        opt.submit(GradMessage {
            layer: 0,
            key: "layer0/grad".into(),
        });
        let err = opt.finish().unwrap_err();
        assert!(matches!(err, RatelError::Storage(_)), "{err}");
        // The update itself landed despite the dead prefetcher.
        let master = decode_f32(&store.read(&master_key(0)).unwrap());
        assert_ne!(master, vec![1.0, 2.0], "update must have applied");
    }
}
