//! The active-gradient-offloading CPU optimizer (§IV-C), for real.
//!
//! Two threads implement the optimized handler pipeline of Fig. 3b:
//!
//! * a **prefetcher** walks the known gradient arrival order (backward is
//!   deterministic: head, blocks in reverse, embedding) and stages each
//!   layer's master parameters and Adam moments from the SSD tier into
//!   host memory (`SSD→Main`), at most a small window ahead — so state
//!   reads overlap the updater's CPU compute and write-backs;
//! * an **updater** receives gradient notifications from the training
//!   thread the moment each layer's G16 lands in host memory, performs
//!   the f32 Adam step, and writes the updated P32/OS32 plus the fresh
//!   P16 copy back to the SSD tier (`Main→SSD`).
//!
//! Updates are per-layer independent, so consuming them in arrival order
//! keeps the result bit-identical to a serial optimizer — synchronous
//! semantics with zero staleness, unlike ZeRO-Offload's one-step delayed
//! update.
//!
//! With `active = false` the same updater runs, but only after the
//! training thread has finished backward and closed the channel — the
//! "Ratel+ZeRO" separate-stage ablation.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use ratel_storage::telemetry::SpanCategory;
use ratel_storage::{StorageError, Tier, TieredStore};

use crate::error::RatelError;
use ratel_tensor::dtype::{decode_f16, decode_f32, encode_f16, encode_f32};
use ratel_tensor::{Adam, AdamParams};

use super::scaler::prepare_gradient;
use super::{master_key, moments_key, p16_key};

/// Notification that a layer's gradient blob is in host memory.
#[derive(Debug, Clone)]
pub struct GradMessage {
    /// Layer id.
    pub layer: usize,
    /// Store key of the G16 blob.
    pub key: String,
}

/// How many layers of master state the prefetcher may stage ahead — the
/// host-side optimizer working window (part of Ratel's main-memory
/// budget, see `RatelMemoryModel::host_bytes_per_param`).
const PREFETCH_WINDOW: usize = 2;

/// Handle to a running per-step optimizer.
pub struct ActiveOptimizer {
    grad_tx: Sender<GradMessage>,
    updater: JoinHandle<Result<Vec<usize>, StorageError>>,
    prefetcher: Option<JoinHandle<Result<(), StorageError>>>,
}

impl ActiveOptimizer {
    /// Spawns the optimizer threads for one training step.
    ///
    /// `order` is the gradient arrival order (layer ids); `layer_steps`
    /// holds each layer's count of *applied* Adam updates so far (skipped
    /// overflow steps do not advance a layer's bias-correction clock).
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        store: Arc<TieredStore>,
        order: Vec<usize>,
        adam: AdamParams,
        layer_steps: Vec<u64>,
        active: bool,
        loss_scale: f32,
        grad_clip: Option<f32>,
    ) -> Self {
        let (grad_tx, grad_rx) = unbounded::<GradMessage>();

        let (prefetcher, staged_rx) = if active {
            let (staged_tx, staged_rx) = bounded::<usize>(PREFETCH_WINDOW);
            let store2 = Arc::clone(&store);
            let order2 = order.clone();
            let handle = std::thread::Builder::new()
                .name("ratel-opt-prefetch".into())
                .spawn(move || -> Result<(), StorageError> {
                    for layer in order2 {
                        let rec = store2.telemetry();
                        let t = rec.enabled().then(|| rec.now());
                        store2.move_to(&master_key(layer), Tier::Host)?;
                        store2.move_to(&moments_key(layer), Tier::Host)?;
                        if let Some(t) = t {
                            let rec = store2.telemetry();
                            rec.record_span(
                                "opt-prefetch",
                                SpanCategory::Prefetch,
                                format!("opt-pf L{layer}"),
                                t,
                                rec.now(),
                            );
                        }
                        if staged_tx.send(layer).is_err() {
                            break; // updater died; its error surfaces on join
                        }
                    }
                    Ok(())
                })
                .expect("spawn prefetcher");
            (Some(handle), Some(staged_rx))
        } else {
            (None, None)
        };

        let updater = std::thread::Builder::new()
            .name("ratel-opt-update".into())
            .spawn(move || {
                update_loop(
                    store,
                    grad_rx,
                    staged_rx,
                    adam,
                    layer_steps,
                    active,
                    loss_scale,
                    grad_clip,
                )
            })
            .expect("spawn updater");

        ActiveOptimizer {
            grad_tx,
            updater,
            prefetcher,
        }
    }

    /// Notifies the optimizer that a gradient blob is ready in host
    /// memory. Never blocks the training thread.
    pub fn submit(&self, msg: GradMessage) {
        // The updater only exits after the channel closes, so a send can
        // only fail if it panicked/errored; that error surfaces in
        // `finish`.
        let _ = self.grad_tx.send(msg);
    }

    /// Closes the gradient stream and waits for every update to be
    /// written back — the synchronization point that keeps training
    /// synchronous. Returns the layers whose update was skipped due to
    /// gradient overflow.
    pub fn finish(self) -> Result<Vec<usize>, RatelError> {
        drop(self.grad_tx);
        let updater_result = self
            .updater
            .join()
            .expect("optimizer updater thread panicked");
        if let Some(p) = self.prefetcher {
            p.join().expect("optimizer prefetcher thread panicked")?;
        }
        Ok(updater_result?)
    }
}

#[allow(clippy::too_many_arguments)]
fn update_loop(
    store: Arc<TieredStore>,
    grad_rx: Receiver<GradMessage>,
    staged_rx: Option<Receiver<usize>>,
    adam: AdamParams,
    layer_steps: Vec<u64>,
    active: bool,
    loss_scale: f32,
    grad_clip: Option<f32>,
) -> Result<Vec<usize>, StorageError> {
    // Spans land on one updater track: per layer a read (state
    // availability + gradient decode), a cpu (Adam math), and a write
    // (state write-back) span — or a `skip` span on overflow.
    let rec = std::sync::Arc::clone(store.telemetry());
    // One Adam state and one flat blob buffer live across all layers:
    // `load_flat`/`write_flat_into` reuse their capacity, so the per-layer
    // state round-trip costs zero allocations at steady state.
    let mut state = Adam::new(0);
    let mut flat_buf: Vec<f32> = Vec::new();
    // Returns true if the layer's update was applied, false if skipped.
    let mut process = |msg: &GradMessage| -> Result<bool, StorageError> {
        let t_read = rec.enabled().then(|| rec.now());
        if let Some(rx) = &staged_rx {
            // Wait for the prefetcher to stage this layer's states. Arrival
            // order matches `order`, so this is the same layer.
            let staged = rx.recv().ok();
            debug_assert_eq!(staged, Some(msg.layer), "prefetch order mismatch");
        } else {
            // Separate-stage / no prefetcher: fetch states ourselves
            // (serialized SSD→Main, the naive handler's first step).
            store.move_to(&master_key(msg.layer), Tier::Host)?;
            store.move_to(&moments_key(msg.layer), Tier::Host)?;
        }

        // CPU compute: f32 Adam over the staged states, consuming the G16
        // gradient that backward just offloaded (unscale, overflow check,
        // optional per-layer clip first — see `scaler`).
        let mut grads = decode_f16(&store.read(&msg.key)?);
        store.remove(&msg.key)?;
        if let Some(t) = t_read {
            rec.record_span(
                "cpu-opt",
                SpanCategory::Optimizer,
                format!("opt-read L{}", msg.layer),
                t,
                rec.now(),
            );
        }
        let t_cpu = rec.enabled().then(|| rec.now());
        let applied = if prepare_gradient(&mut grads, loss_scale, grad_clip).is_some() {
            let mut master = decode_f32(&store.read(&master_key(msg.layer))?);
            let moments = decode_f32(&store.read(&moments_key(msg.layer))?);
            state.load_flat(&moments, layer_steps[msg.layer]);
            state.step(&mut master, &grads, &adam);
            if let Some(t) = t_cpu {
                rec.record_span(
                    "cpu-opt",
                    SpanCategory::Optimizer,
                    format!("opt-cpu L{}", msg.layer),
                    t,
                    rec.now(),
                );
            }

            // Main→SSD: write back P32 + OS32 and publish the fresh P16.
            let t_write = rec.enabled().then(|| rec.now());
            store.overwrite(&master_key(msg.layer), encode_f32(&master))?;
            state.write_flat_into(&mut flat_buf);
            store.overwrite(&moments_key(msg.layer), encode_f32(&flat_buf))?;
            let p16 = p16_key(msg.layer);
            store.remove(&p16)?;
            store.put(&p16, Tier::Host, encode_f16(&master))?;
            store.move_to(&p16, Tier::Ssd)?;
            // States return to the SSD tier (they were staged out).
            store.move_to(&master_key(msg.layer), Tier::Ssd)?;
            store.move_to(&moments_key(msg.layer), Tier::Ssd)?;
            if let Some(t) = t_write {
                rec.record_span(
                    "cpu-opt",
                    SpanCategory::Optimizer,
                    format!("opt-write L{}", msg.layer),
                    t,
                    rec.now(),
                );
            }
            true
        } else {
            // Overflow skip: record the decision, return the untouched
            // states to the SSD tier.
            if let Some(t) = t_cpu {
                rec.record_span(
                    "cpu-opt",
                    SpanCategory::Other,
                    format!("skip L{}", msg.layer),
                    t,
                    rec.now(),
                );
            }
            store.move_to(&master_key(msg.layer), Tier::Ssd)?;
            store.move_to(&moments_key(msg.layer), Tier::Ssd)?;
            false
        };
        Ok(applied)
    };

    let mut skipped = Vec::new();
    if active {
        // Consume gradients as they arrive, overlapping GPU backward.
        for msg in grad_rx.iter() {
            if !process(&msg)? {
                skipped.push(msg.layer);
            }
        }
    } else {
        // Separate stage: buffer everything until backward finishes (the
        // channel closes), then run the whole optimizer.
        let all: Vec<GradMessage> = grad_rx.iter().collect();
        for msg in &all {
            if !process(msg)? {
                skipped.push(msg.layer);
            }
        }
    }
    Ok(skipped)
}
