//! A small byte-pair-encoding tokenizer.
//!
//! Character-level modeling wastes context on long words; BPE learns a
//! subword vocabulary by repeatedly merging the most frequent adjacent
//! pair. This implementation is deliberately classic (greedy merges over
//! a word-frequency table, merge-rank encoding) and deterministic, so
//! fine-tuning runs are reproducible. It operates on Unicode characters
//! rather than raw bytes — the corpus defines the base alphabet.

use std::collections::HashMap;

/// A trained BPE tokenizer: base alphabet plus an ordered merge list.
#[derive(Debug, Clone, PartialEq)]
pub struct BpeTokenizer {
    /// id -> token string. Ids `0..alphabet` are single characters; later
    /// ids are merge products in training order.
    vocab: Vec<String>,
    /// token string -> id.
    lookup: HashMap<String, usize>,
    /// Merge rank by (left id, right id): lower rank merges first.
    merges: HashMap<(usize, usize), usize>,
}

impl BpeTokenizer {
    /// Trains a tokenizer on `corpus` until the vocabulary reaches
    /// `vocab_size` (or no pair repeats). Words are whitespace-delimited;
    /// the space itself stays a base token so decoding is lossless.
    ///
    /// # Panics
    /// If the corpus is empty.
    pub fn train(corpus: &str, vocab_size: usize) -> Self {
        assert!(!corpus.is_empty(), "empty corpus");
        // Base alphabet: every distinct character, sorted for determinism.
        let mut alphabet: Vec<char> = corpus.chars().collect();
        alphabet.sort_unstable();
        alphabet.dedup();
        let mut vocab: Vec<String> = alphabet.iter().map(|c| c.to_string()).collect();
        let mut lookup: HashMap<String, usize> = vocab
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i))
            .collect();
        let mut merges: HashMap<(usize, usize), usize> = HashMap::new();

        // Word-frequency table; each word is a sequence of token ids.
        // Splitting on whitespace keeps merges within words (classic BPE);
        // the separating spaces are re-inserted by `encode`.
        let mut words: HashMap<Vec<usize>, usize> = HashMap::new();
        for word in corpus.split(' ') {
            let ids: Vec<usize> = word.chars().map(|c| lookup[&c.to_string()]).collect();
            if !ids.is_empty() {
                *words.entry(ids).or_insert(0) += 1;
            }
        }

        while vocab.len() < vocab_size {
            // Count adjacent pairs.
            let mut counts: HashMap<(usize, usize), usize> = HashMap::new();
            for (word, freq) in &words {
                for pair in word.windows(2) {
                    *counts.entry((pair[0], pair[1])).or_insert(0) += freq;
                }
            }
            // Deterministic tie-break: highest count, then smallest ids.
            let Some((&pair, &count)) = counts
                .iter()
                .max_by_key(|(&(a, b), &c)| (c, std::cmp::Reverse(a), std::cmp::Reverse(b)))
            else {
                break;
            };
            if count < 2 {
                break; // nothing repeats; further merges are pointless
            }
            let token = format!("{}{}", vocab[pair.0], vocab[pair.1]);
            let id = vocab.len();
            vocab.push(token.clone());
            lookup.insert(token, id);
            merges.insert(pair, merges.len());

            // Apply the merge to every word.
            let mut next: HashMap<Vec<usize>, usize> = HashMap::with_capacity(words.len());
            for (word, freq) in words {
                let merged = merge_word(&word, pair, id);
                *next.entry(merged).or_insert(0) += freq;
            }
            words = next;
        }

        BpeTokenizer {
            vocab,
            lookup,
            merges,
        }
    }

    /// Vocabulary size (fits a model's `vocab` dimension).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The string form of a token id.
    ///
    /// # Panics
    /// If the id is out of range.
    pub fn token(&self, id: usize) -> &str {
        &self.vocab[id]
    }

    /// Encodes text: per word, start from characters and apply merges in
    /// rank order; spaces encode as their own base token.
    ///
    /// # Panics
    /// If `text` contains characters absent from the training corpus.
    pub fn encode(&self, text: &str) -> Vec<usize> {
        let space = self.lookup.get(" ").copied();
        let mut out = Vec::new();
        for (i, word) in text.split(' ').enumerate() {
            if i > 0 {
                out.push(space.expect("corpus contained no spaces"));
            }
            if word.is_empty() {
                continue;
            }
            let mut ids: Vec<usize> = word
                .chars()
                .map(|c| {
                    *self
                        .lookup
                        .get(&c.to_string())
                        .unwrap_or_else(|| panic!("character {c:?} not in vocabulary"))
                })
                .collect();
            // Repeatedly apply the best-ranked applicable merge.
            loop {
                let best = ids
                    .windows(2)
                    .enumerate()
                    .filter_map(|(i, p)| self.merges.get(&(p[0], p[1])).map(|rank| (*rank, i)))
                    .min();
                match best {
                    Some((_, at)) => {
                        let merged = self.lookup
                            [&format!("{}{}", self.vocab[ids[at]], self.vocab[ids[at + 1]])];
                        ids.splice(at..at + 2, [merged]);
                    }
                    None => break,
                }
            }
            out.extend(ids);
        }
        out
    }

    /// Decodes ids back to text (lossless inverse of [`Self::encode`]).
    pub fn decode(&self, ids: &[usize]) -> String {
        ids.iter().map(|&i| self.vocab[i].as_str()).collect()
    }
}

fn merge_word(word: &[usize], pair: (usize, usize), id: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(word.len());
    let mut i = 0;
    while i < word.len() {
        if i + 1 < word.len() && word[i] == pair.0 && word[i + 1] == pair.1 {
            out.push(id);
            i += 2;
        } else {
            out.push(word[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORPUS: &str = "the tensors feed the gradients and the gradients feed the optimizer \
                          while the optimizer moves the weights and the weights move the model";

    #[test]
    fn training_grows_the_vocabulary_with_useful_merges() {
        let bpe = BpeTokenizer::train(CORPUS, 60);
        let base = CORPUS
            .chars()
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(bpe.vocab_size() > base);
        assert!(bpe.vocab_size() <= 60);
        // "the" is the most common word; some multi-char token covering it
        // must exist.
        assert!(
            (0..bpe.vocab_size()).any(|i| bpe.token(i) == "the"),
            "no 'the' token learned"
        );
    }

    #[test]
    fn encode_decode_round_trips_losslessly() {
        let bpe = BpeTokenizer::train(CORPUS, 64);
        for text in [
            CORPUS,
            "the optimizer",
            "weights and gradients",
            " ",
            "a the",
        ] {
            // ("a" appears inside words like "and"/"gradients".)
            assert_eq!(bpe.decode(&bpe.encode(text)), text, "{text:?}");
        }
    }

    #[test]
    fn bpe_compresses_relative_to_characters() {
        let bpe = BpeTokenizer::train(CORPUS, 80);
        let ids = bpe.encode(CORPUS);
        assert!(
            ids.len() * 2 < CORPUS.chars().count(),
            "only {} tokens for {} chars",
            ids.len(),
            CORPUS.chars().count()
        );
        // All ids are in range.
        assert!(ids.iter().all(|&i| i < bpe.vocab_size()));
    }

    #[test]
    fn training_is_deterministic() {
        let a = BpeTokenizer::train(CORPUS, 50);
        let b = BpeTokenizer::train(CORPUS, 50);
        assert_eq!(a, b);
        assert_eq!(a.encode("the gradients"), b.encode("the gradients"));
    }

    #[test]
    fn stops_when_nothing_repeats() {
        let bpe = BpeTokenizer::train("abcdefg", 1000);
        // No pair repeats: vocabulary stays the 7-character alphabet.
        assert_eq!(bpe.vocab_size(), 7);
    }

    #[test]
    #[should_panic(expected = "not in vocabulary")]
    fn unknown_characters_panic() {
        BpeTokenizer::train("abc abc", 10).encode("xyz");
    }
}
