//! Property-based equivalence: the tiled/parallel kernels against the
//! naive reference oracle (`ratel_tensor::ops::naive`), across shapes,
//! thread counts, and NaN/Inf-laced inputs.
//!
//! Tolerance model: the scalar tiled kernel accumulates in exactly the
//! same element order as the reference, so without FMA the results are
//! bitwise equal. The AVX2+FMA microkernel fuses each multiply-add
//! (one rounding instead of two), so each output may differ by the
//! accumulated rounding of `k` fused steps — bounded here by
//! `k * eps * sum(|a_ip| * |b_pj|)` plus one ulp of the result.

use proptest::prelude::*;
use ratel_tensor::ops::{self, naive};
use ratel_tensor::{set_num_threads, Tensor};

/// |tiled - reference| bound for one output element with accumulator
/// magnitude `mag` over a length-`k` reduction.
fn tolerance(k: usize, mag: f32) -> f32 {
    let eps = f32::EPSILON;
    2.0 * (k as f32) * eps * mag + eps
}

/// Sum of |a_ip| * |b_pj| — the worst-case accumulator magnitude.
fn magnitude(av: &[f32], bv: &[f32], m: usize, k: usize, n: usize, i: usize, j: usize) -> f32 {
    debug_assert_eq!(av.len(), m * k);
    debug_assert_eq!(bv.len(), k * n);
    (0..k).map(|p| (av[i * k + p] * bv[p * n + j]).abs()).sum()
}

fn assert_matches_oracle(
    got: &Tensor,
    want: &Tensor,
    a: &Tensor,
    b: &Tensor,
    shape: (usize, usize, usize),
) -> Result<(), proptest::test_runner::TestCaseError> {
    let (m, k, n) = shape;
    let (gd, wd) = (got.data(), want.data());
    prop_assert_eq!(gd.len(), wd.len());
    for i in 0..m {
        for j in 0..n {
            let (g, w) = (gd[i * n + j], wd[i * n + j]);
            // Non-finite results must match in kind and placement; the
            // exact NaN payload / Inf sign can differ only if the
            // reference itself produced NaN (e.g. Inf - Inf), which the
            // same-order scalar path reproduces and the FMA path may not
            // sign-match — so compare classes, not bits.
            if w.is_nan() {
                prop_assert!(g.is_nan(), "[{},{}]: oracle NaN, got {}", i, j, g);
                continue;
            }
            if w.is_infinite() {
                prop_assert!(
                    !g.is_finite(),
                    "[{},{}]: oracle {}, got finite {}",
                    i,
                    j,
                    w,
                    g
                );
                continue;
            }
            let mag = magnitude(a.data(), b.data(), m, k, n, i, j);
            let tol = tolerance(k, mag);
            prop_assert!(
                (g - w).abs() <= tol,
                "[{},{}]: got {}, want {}, tol {}",
                i,
                j,
                g,
                w,
                tol
            );
        }
    }
    Ok(())
}

/// Builds the explicit transpose of a row-major `r x c` matrix.
fn transpose(t: &Tensor, r: usize, c: usize) -> Tensor {
    let d = t.data();
    let mut out = vec![0.0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = d[i * c + j];
        }
    }
    Tensor::from_vec(&[c, r], out)
}

/// Sprinkles NaN/Inf values at pseudo-random positions.
fn lace(data: &mut [f32], specials: &[(usize, f32)]) {
    for &(pos, val) in specials {
        if !data.is_empty() {
            data[pos % data.len()] = val;
        }
    }
}

const SPECIALS: [f32; 4] = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.0];

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..Default::default() })]

    #[test]
    fn tiled_matmul_matches_naive_for_finite_inputs(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        threads in 1usize..5,
        seed_a in proptest::collection::vec(-4.0f32..4.0, 1..1601),
        seed_b in proptest::collection::vec(-4.0f32..4.0, 1..1601),
    ) {
        let av: Vec<f32> = (0..m * k).map(|i| seed_a[i % seed_a.len()]).collect();
        let bv: Vec<f32> = (0..k * n).map(|i| seed_b[i % seed_b.len()]).collect();
        let a = Tensor::from_vec(&[m, k], av);
        let b = Tensor::from_vec(&[k, n], bv);
        set_num_threads(threads);
        let got = ops::matmul(&a, &b);
        set_num_threads(1);
        let want = naive::matmul(&a, &b);
        assert_matches_oracle(&got, &want, &a, &b, (m, k, n))?;
    }

    #[test]
    fn tiled_matmul_at_matches_naive(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        threads in 1usize..5,
        seed in proptest::collection::vec(-3.0f32..3.0, 1..601),
    ) {
        let av: Vec<f32> = (0..m * k).map(|i| seed[(i * 7 + 1) % seed.len()]).collect();
        let bv: Vec<f32> = (0..k * n).map(|i| seed[(i * 11 + 3) % seed.len()]).collect();
        let a = Tensor::from_vec(&[m, k], av);
        let b = Tensor::from_vec(&[k, n], bv);
        // matmul_at takes A already transposed: at is k x m.
        let at = transpose(&a, m, k);
        set_num_threads(threads);
        let got = ops::matmul_at(&at, &b);
        set_num_threads(1);
        let want = naive::matmul_at(&at, &b);
        assert_matches_oracle(&got, &want, &a, &b, (m, k, n))?;
    }

    #[test]
    fn tiled_matmul_bt_matches_naive(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        threads in 1usize..5,
        seed in proptest::collection::vec(-3.0f32..3.0, 1..601),
    ) {
        let av: Vec<f32> = (0..m * k).map(|i| seed[(i * 5 + 2) % seed.len()]).collect();
        let bv: Vec<f32> = (0..k * n).map(|i| seed[(i * 13 + 5) % seed.len()]).collect();
        let a = Tensor::from_vec(&[m, k], av);
        let b = Tensor::from_vec(&[k, n], bv);
        // matmul_bt takes B already transposed: bt is n x k.
        let bt = transpose(&b, k, n);
        set_num_threads(threads);
        let got = ops::matmul_bt(&a, &bt);
        set_num_threads(1);
        let want = naive::matmul_bt(&a, &bt);
        assert_matches_oracle(&got, &want, &a, &b, (m, k, n))?;
    }

    #[test]
    fn nan_and_inf_placement_matches_naive(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        threads in 1usize..5,
        seed in proptest::collection::vec(-2.0f32..2.0, 1..401),
        spots in proptest::collection::vec((any::<usize>(), 0usize..4), 0..6),
    ) {
        let mut av: Vec<f32> = (0..m * k).map(|i| seed[(i * 3 + 1) % seed.len()]).collect();
        let mut bv: Vec<f32> = (0..k * n).map(|i| seed[(i * 17 + 7) % seed.len()]).collect();
        let a_spots: Vec<(usize, f32)> =
            spots.iter().map(|&(p, s)| (p, SPECIALS[s])).collect();
        let b_spots: Vec<(usize, f32)> =
            spots.iter().map(|&(p, s)| (p.rotate_left(16), SPECIALS[s])).collect();
        lace(&mut av, &a_spots);
        lace(&mut bv, &b_spots);
        let a = Tensor::from_vec(&[m, k], av);
        let b = Tensor::from_vec(&[k, n], bv);
        set_num_threads(threads);
        let got = ops::matmul(&a, &b);
        set_num_threads(1);
        let want = naive::matmul(&a, &b);
        assert_matches_oracle(&got, &want, &a, &b, (m, k, n))?;
    }

    #[test]
    fn thread_count_never_changes_bits(
        m in 1usize..32,
        k in 1usize..32,
        n in 1usize..32,
        seed in proptest::collection::vec(-5.0f32..5.0, 1..1025),
    ) {
        let av: Vec<f32> = (0..m * k).map(|i| seed[(i * 19 + 3) % seed.len()]).collect();
        let bv: Vec<f32> = (0..k * n).map(|i| seed[(i * 23 + 9) % seed.len()]).collect();
        let a = Tensor::from_vec(&[m, k], av);
        let b = Tensor::from_vec(&[k, n], bv);
        let mut reference: Option<Vec<u32>> = None;
        for threads in 1..=4 {
            set_num_threads(threads);
            let out = ops::matmul(&a, &b);
            set_num_threads(1);
            let bits: Vec<u32> = out.data().iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(want) => {
                    prop_assert!(want == &bits, "thread count {} changed result bits", threads)
                }
            }
        }
    }
}

/// GELU and layernorm are elementwise/row-wise; their parallel split must
/// be bitwise invariant too. Deterministic (non-proptest) spot check over
/// a sweep of sizes crossing the MIN_BLOCK inline threshold.
#[test]
fn elementwise_kernels_bitwise_stable_across_threads() {
    for &len in &[1usize, 100, 4095, 4096, 10_000, 50_000] {
        let x = Tensor::from_vec(
            &[len],
            (0..len)
                .map(|i| ((i * 29) % 97) as f32 * 0.07 - 3.0)
                .collect(),
        );
        set_num_threads(1);
        let g1 = ops::gelu(&x);
        set_num_threads(4);
        let g4 = ops::gelu(&x);
        set_num_threads(1);
        assert!(
            g1.data()
                .iter()
                .zip(g4.data())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "gelu at len {len} not thread-invariant"
        );
    }
}
