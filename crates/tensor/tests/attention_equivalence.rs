//! Property-based equivalence: the streaming tiled attention against the
//! materialized-score naive oracle, across shapes (crossing the `ATTN_TM`
//! row-block boundary; the `ATTN_TC` column tile exceeds these sequence
//! lengths, so the in-block masking path is the one exercised), thread
//! counts, and NaN/Inf-laced inputs.
//!
//! Tolerance model: the streaming path accumulates the softmax online
//! (rescaling the running context by `exp(m_old - m_new)` per tile) while
//! the oracle normalizes once over the materialized row, so results agree
//! only up to the rounding accumulated over `O(s)` extra operations.
//! Context entries are convex combinations of the laced `|v| < 2` values
//! and gradients stay `O(s)`-bounded at these shapes; the streaming
//! path's polynomial exp adds a further ~3e-7 relative error per weight.
//! A small relative tolerance is therefore sound and still tight enough
//! to catch indexing or rescaling bugs (O(1) errors, not O(s*eps)).
//!
//! Specials: the streaming kernel never computes columns at or beyond a
//! row block's causal bound and gives in-block future columns the same
//! exact-zero probability the oracle's `-inf` mask produces, so a laced
//! NaN/Inf in a *future* `v` row poisons (or doesn't) identically in both
//! backends. The sharp direction that must always hold: a nonfinite
//! streaming output implies the oracle saw a nonfinite output for the
//! same row.

use proptest::prelude::*;
use ratel_tensor::{
    attn_backward_into, attn_backward_naive_into, attn_forward_into, attn_forward_naive_into,
    set_num_threads,
};

/// Runs one forward, returning `(ctx, row_max, row_lse)`.
#[allow(clippy::type_complexity)]
fn forward(
    streaming: bool,
    qkv: &[f32],
    b: usize,
    s: usize,
    h: usize,
    heads: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut ctx = vec![0.0f32; b * s * h];
    let mut row_max = vec![0.0f32; b * heads * s];
    let mut row_lse = vec![0.0f32; b * heads * s];
    if streaming {
        attn_forward_into(qkv, b, s, h, heads, &mut ctx, &mut row_max, &mut row_lse);
    } else {
        attn_forward_naive_into(qkv, b, s, h, heads, &mut ctx, &mut row_max, &mut row_lse);
    }
    (ctx, row_max, row_lse)
}

fn close(got: f32, want: f32, rel: f32) -> bool {
    (got - want).abs() <= rel * (1.0 + want.abs())
}

/// Expands a seed vector into a deterministic `len`-element buffer.
fn expand(seed: &[f32], len: usize, stride: usize, off: usize) -> Vec<f32> {
    (0..len)
        .map(|i| seed[(i * stride + off) % seed.len()])
        .collect()
}

/// Sprinkles special values at pseudo-random positions.
fn lace(data: &mut [f32], spots: &[(usize, usize)]) {
    const SPECIALS: [f32; 4] = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.0];
    for &(pos, s) in spots {
        if !data.is_empty() {
            data[pos % data.len()] = SPECIALS[s % SPECIALS.len()];
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..Default::default() })]

    #[test]
    fn streaming_forward_matches_naive_for_finite_inputs(
        b in 1usize..3,
        heads in 1usize..4,
        d_pow in 2u32..5, // d in {4, 8, 16}
        s in 1usize..100, // crosses the 32-row and 64-column tile edges
        threads in 1usize..5,
        seed in proptest::collection::vec(-2.0f32..2.0, 1..801),
    ) {
        let d = 1usize << d_pow;
        let h = heads * d;
        let qkv = expand(&seed, b * s * 3 * h, 7, 1);
        set_num_threads(threads);
        let (ctx, row_max, row_lse) = forward(true, &qkv, b, s, h, heads);
        set_num_threads(1);
        let (ctx_o, max_o, lse_o) = forward(false, &qkv, b, s, h, heads);
        for (i, (&g, &w)) in ctx.iter().zip(&ctx_o).enumerate() {
            prop_assert!(close(g, w, 5e-4), "ctx[{}]: got {}, want {}", i, g, w);
        }
        for (i, (&g, &w)) in row_max.iter().zip(&max_o).enumerate() {
            prop_assert!(close(g, w, 5e-4), "row_max[{}]: got {}, want {}", i, g, w);
        }
        for (i, (&g, &w)) in row_lse.iter().zip(&lse_o).enumerate() {
            prop_assert!(close(g, w, 5e-4), "row_lse[{}]: got {}, want {}", i, g, w);
        }
    }

    #[test]
    fn streaming_backward_matches_naive_for_finite_inputs(
        b in 1usize..3,
        heads in 1usize..4,
        d_pow in 2u32..5,
        s in 1usize..80,
        threads in 1usize..5,
        seed in proptest::collection::vec(-2.0f32..2.0, 1..801),
    ) {
        let d = 1usize << d_pow;
        let h = heads * d;
        let qkv = expand(&seed, b * s * 3 * h, 7, 1);
        let dctx = expand(&seed, b * s * h, 11, 3);
        // Each backend consumes its own forward's saved set, exactly as
        // the layer does at train time.
        set_num_threads(threads);
        let (ctx, row_max, row_lse) = forward(true, &qkv, b, s, h, heads);
        let mut dqkv = vec![0.0f32; qkv.len()];
        attn_backward_into(
            &qkv, &ctx, &row_max, &row_lse, &dctx, b, s, h, heads, &mut dqkv,
        );
        set_num_threads(1);
        let (ctx_o, max_o, lse_o) = forward(false, &qkv, b, s, h, heads);
        let mut dqkv_o = vec![0.0f32; qkv.len()];
        attn_backward_naive_into(
            &qkv, &ctx_o, &max_o, &lse_o, &dctx, b, s, h, heads, &mut dqkv_o,
        );
        for (i, (&g, &w)) in dqkv.iter().zip(&dqkv_o).enumerate() {
            prop_assert!(close(g, w, 2e-3), "dqkv[{}]: got {}, want {}", i, g, w);
        }
    }

    #[test]
    fn specials_never_make_streaming_less_finite_than_naive(
        b in 1usize..3,
        heads in 1usize..3,
        s in 1usize..70,
        threads in 1usize..5,
        seed in proptest::collection::vec(-2.0f32..2.0, 1..401),
        spots in proptest::collection::vec((any::<usize>(), 0usize..4), 0..8),
    ) {
        let d = 8usize;
        let h = heads * d;
        let mut qkv = expand(&seed, b * s * 3 * h, 7, 1);
        lace(&mut qkv, &spots);
        set_num_threads(threads);
        let (ctx, row_max, row_lse) = forward(true, &qkv, b, s, h, heads);
        set_num_threads(1);
        let (ctx_o, max_o, lse_o) = forward(false, &qkv, b, s, h, heads);
        for bi in 0..b {
            for hd in 0..heads {
                for t in 0..s {
                    let row = (bi * s + t) * h + hd * d;
                    let got = &ctx[row..row + d];
                    let want = &ctx_o[row..row + d];
                    let u = bi * heads + hd;
                    let got_stats = [row_max[u * s + t], row_lse[u * s + t]];
                    let want_stats = [max_o[u * s + t], lse_o[u * s + t]];
                    let naive_finite = want.iter().chain(&want_stats).all(|v| v.is_finite());
                    if naive_finite {
                        // Oracle untouched by specials here -> streaming
                        // must agree (and in particular stay finite).
                        for (j, (&g, &w)) in got.iter().zip(want).enumerate() {
                            prop_assert!(
                                close(g, w, 5e-4),
                                "unit {} row {} ctx[{}]: got {}, want {}", u, t, j, g, w
                            );
                        }
                        for (g, w) in got_stats.iter().zip(&want_stats) {
                            prop_assert!(close(*g, *w, 5e-4), "unit {} row {} stats", u, t);
                        }
                    }
                    // The sharp causality direction: streaming nonfinite
                    // implies naive nonfinite. (Naive nonfinite with
                    // streaming finite is legal: the special sat in a
                    // masked-future column the streaming kernel skips.)
                    let got_nonfinite =
                        got.iter().chain(&got_stats).any(|v| !v.is_finite());
                    prop_assert!(
                        !(got_nonfinite && naive_finite),
                        "unit {} row {}: streaming nonfinite but oracle finite", u, t
                    );
                }
            }
        }
    }

    #[test]
    fn thread_count_never_changes_attention_bits(
        b in 1usize..3,
        heads in 1usize..4,
        s in 1usize..70,
        seed in proptest::collection::vec(-2.0f32..2.0, 1..601),
    ) {
        let d = 8usize;
        let h = heads * d;
        let qkv = expand(&seed, b * s * 3 * h, 5, 2);
        let dctx = expand(&seed, b * s * h, 13, 4);
        let mut reference: Option<Vec<u32>> = None;
        for threads in 1..=4 {
            set_num_threads(threads);
            let (ctx, row_max, row_lse) = forward(true, &qkv, b, s, h, heads);
            let mut dqkv = vec![0.0f32; qkv.len()];
            attn_backward_into(
                &qkv, &ctx, &row_max, &row_lse, &dctx, b, s, h, heads, &mut dqkv,
            );
            set_num_threads(1);
            let bits: Vec<u32> = ctx
                .iter()
                .chain(&row_max)
                .chain(&row_lse)
                .chain(&dqkv)
                .map(|v| v.to_bits())
                .collect();
            match &reference {
                None => reference = Some(bits),
                Some(want) => prop_assert!(
                    want == &bits,
                    "thread count {} changed attention bits", threads
                ),
            }
        }
    }
}
