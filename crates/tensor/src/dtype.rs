//! Data types and software IEEE-754 binary16 conversion.
//!
//! Consumer GPUs compute LLM fine-tuning in half precision; the paper's
//! Table II stores P16/G16/A16 at 2 bytes per element. We emulate that
//! storage format in software: values are converted to binary16 on the way
//! into a storage tier and back to `f32` on the way out, so offloaded
//! tensors really occupy 2 bytes per element and really lose the same
//! precision a GPU transfer would.

/// Element type of a stored tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE float (master weights, optimizer moments).
    F32,
    /// 16-bit IEEE float (parameter copies, gradients, activations).
    F16,
}

impl DType {
    /// Bytes per element.
    pub fn size(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 => 2,
        }
    }
}

/// Converts an `f32` to IEEE-754 binary16 bits with round-to-nearest-even,
/// handling subnormals, overflow to infinity, and NaN.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep a quiet NaN payload bit if any mantissa bit set.
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }

    // Re-bias the exponent from 127 to 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow -> infinity
    }
    if unbiased >= -14 {
        // Normal half. Round the 23-bit mantissa to 10 bits (RNE).
        let mant16 = mant >> 13;
        let rest = mant & 0x1fff;
        let half = 0x1000;
        let mut out = ((unbiased + 15) as u32) << 10 | mant16;
        if rest > half || (rest == half && (mant16 & 1) == 1) {
            out += 1; // may carry into the exponent, which is still correct
        }
        return sign | out as u16;
    }
    if unbiased >= -24 {
        // Subnormal half: shift in the implicit leading 1, then round.
        let full = mant | 0x0080_0000;
        let shift = (-14 - unbiased) as u32 + 13;
        let mant16 = full >> shift;
        let rest = full & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut out = mant16;
        if rest > half || (rest == half && (mant16 & 1) == 1) {
            out += 1;
        }
        return sign | out as u16;
    }
    sign // underflow to signed zero
}

/// Converts IEEE-754 binary16 bits back to `f32` (exact).
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mant = (bits & 0x03ff) as u32;

    let out = if exp == 0 {
        if mant == 0 {
            sign // signed zero
        } else {
            // Subnormal: value = mant * 2^-24. Normalize into f32.
            let mut m = mant;
            let mut e = -14i32;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x03ff;
            sign | (((e + 127) as u32) << 23) | (m << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13) // Inf / NaN
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Rounds an `f32` through binary16 and back — the precision a value has
/// after being stored in a half-precision tier.
pub fn round_to_f16(value: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(value))
}

/// Encodes a slice of `f32` into little-endian binary16 bytes.
pub fn encode_f16(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    for &v in values {
        out.extend_from_slice(&f32_to_f16_bits(v).to_le_bytes());
    }
    out
}

/// Decodes little-endian binary16 bytes into `f32`.
///
/// # Panics
/// If `bytes.len()` is odd.
pub fn decode_f16(bytes: &[u8]) -> Vec<f32> {
    assert!(
        bytes.len().is_multiple_of(2),
        "odd f16 byte length {}",
        bytes.len()
    );
    bytes
        .chunks_exact(2)
        .map(|c| f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])))
        .collect()
}

/// Encodes a slice of `f32` into little-endian f32 bytes (for master
/// states stored at full precision).
pub fn encode_f32(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes little-endian f32 bytes.
///
/// # Panics
/// If `bytes.len()` is not a multiple of 4.
pub fn decode_f32(bytes: &[u8]) -> Vec<f32> {
    assert!(
        bytes.len().is_multiple_of(4),
        "bad f32 byte length {}",
        bytes.len()
    );
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values_round_trip() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 1024.0, 0.25, -3.5] {
            assert_eq!(round_to_f16(v), v, "{v}");
        }
        assert!(f32_to_f16_bits(-0.0) & 0x8000 != 0);
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // max finite half
        assert_eq!(f32_to_f16_bits(65536.0), 0x7c00); // overflow -> inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f16_bits_to_f32(0x3c00), 1.0);
        assert_eq!(f16_bits_to_f32(0x7c00), f32::INFINITY);
    }

    #[test]
    fn nan_survives() {
        let bits = f32_to_f16_bits(f32::NAN);
        assert_eq!(bits & 0x7c00, 0x7c00);
        assert_ne!(bits & 0x03ff, 0);
        assert!(f16_bits_to_f32(bits).is_nan());
    }

    #[test]
    fn subnormals_round_trip() {
        // Smallest positive subnormal half = 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(round_to_f16(tiny), tiny);
        // Largest subnormal = (1023/1024) * 2^-14.
        let big_sub = 1023.0 / 1024.0 * 2.0f32.powi(-14);
        assert_eq!(round_to_f16(big_sub), big_sub);
        // Below half the smallest subnormal: flush to zero.
        assert_eq!(round_to_f16(2.0f32.powi(-26)), 0.0);
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next half
        // (1 + 2^-10); RNE picks the even mantissa, i.e. 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(round_to_f16(halfway), 1.0);
        // Just above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(round_to_f16(above), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn encode_decode_round_trip() {
        let vals = vec![0.0f32, 1.5, -2.25, 100.0];
        assert_eq!(decode_f16(&encode_f16(&vals)), vals);
        assert_eq!(decode_f32(&encode_f32(&vals)), vals);
        assert_eq!(encode_f16(&vals).len(), 8);
        assert_eq!(encode_f32(&vals).len(), 16);
    }

    #[test]
    fn relative_error_is_bounded_for_normals() {
        let mut x = 1e-3f32;
        while x < 6e4 {
            let r = round_to_f16(x);
            let rel = ((r - x) / x).abs();
            assert!(rel <= 1.0 / 1024.0, "x={x} r={r} rel={rel}");
            x *= 1.37;
        }
    }

    #[test]
    #[should_panic(expected = "odd f16 byte length")]
    fn odd_byte_length_panics() {
        decode_f16(&[1, 2, 3]);
    }
}
