//! Data types and software IEEE-754 binary16 conversion.
//!
//! Consumer GPUs compute LLM fine-tuning in half precision; the paper's
//! Table II stores P16/G16/A16 at 2 bytes per element. We emulate that
//! storage format in software: values are converted to binary16 on the way
//! into a storage tier and back to `f32` on the way out, so offloaded
//! tensors really occupy 2 bytes per element and really lose the same
//! precision a GPU transfer would.

/// Element type of a stored tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE float (master weights, optimizer moments).
    F32,
    /// 16-bit IEEE float (parameter copies, gradients, activations).
    F16,
}

impl DType {
    /// Bytes per element.
    pub fn size(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 => 2,
        }
    }
}

/// Converts an `f32` to IEEE-754 binary16 bits with round-to-nearest-even,
/// handling subnormals, overflow to infinity, and NaN.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep a quiet NaN payload bit if any mantissa bit set.
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }

    // Re-bias the exponent from 127 to 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow -> infinity
    }
    if unbiased >= -14 {
        // Normal half. Round the 23-bit mantissa to 10 bits (RNE).
        let mant16 = mant >> 13;
        let rest = mant & 0x1fff;
        let half = 0x1000;
        let mut out = ((unbiased + 15) as u32) << 10 | mant16;
        if rest > half || (rest == half && (mant16 & 1) == 1) {
            out += 1; // may carry into the exponent, which is still correct
        }
        return sign | out as u16;
    }
    if unbiased >= -24 {
        // Subnormal half: shift in the implicit leading 1, then round.
        let full = mant | 0x0080_0000;
        let shift = (-14 - unbiased) as u32 + 13;
        let mant16 = full >> shift;
        let rest = full & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut out = mant16;
        if rest > half || (rest == half && (mant16 & 1) == 1) {
            out += 1;
        }
        return sign | out as u16;
    }
    sign // underflow to signed zero
}

/// Converts IEEE-754 binary16 bits back to `f32` (exact).
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mant = (bits & 0x03ff) as u32;

    let out = if exp == 0 {
        if mant == 0 {
            sign // signed zero
        } else {
            // Subnormal: value = mant * 2^-24. Normalize into f32.
            let mut m = mant;
            let mut e = -14i32;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x03ff;
            sign | (((e + 127) as u32) << 23) | (m << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13) // Inf / NaN
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Rounds an `f32` through binary16 and back — the precision a value has
/// after being stored in a half-precision tier.
pub fn round_to_f16(value: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(value))
}

/// Converts a slice of binary16 bit patterns to `f32`, bitwise identical to
/// mapping [`f16_bits_to_f32`] element by element.
///
/// This is the decode half shared by the blob path ([`decode_f16`]) and the
/// fused dequant GEMM packing in `gemm.rs`: on x86-64 with AVX2 it runs a
/// branchless 8-lane integer decode (F16C's `vcvtph2ps` is deliberately not
/// used — it quietizes signalling NaN payloads, which would break bitwise
/// equality with the software decoder).
///
/// # Panics
/// If `out.len() != bits.len()`.
pub fn f16_bits_to_f32_slice(bits: &[u16], out: &mut [f32]) {
    assert_eq!(bits.len(), out.len(), "f16 decode length mismatch");
    #[cfg(target_arch = "x86_64")]
    if crate::gemm::avx2_available() {
        // SAFETY: AVX2 support was just checked at runtime.
        unsafe { decode_f16_avx2(bits, out) };
        return;
    }
    decode_f16_scalar(bits, out);
}

/// Converts a slice of `f32` to binary16 bit patterns, bitwise identical to
/// mapping [`f32_to_f16_bits`] element by element. Chunked so the compiler
/// can keep the rounding data flow in registers across iterations.
///
/// # Panics
/// If `out.len() != values.len()`.
pub fn f32_to_f16_bits_slice(values: &[f32], out: &mut [u16]) {
    assert_eq!(values.len(), out.len(), "f16 encode length mismatch");
    const CHUNK: usize = 16;
    let mut vi = values.chunks_exact(CHUNK);
    let mut oi = out.chunks_exact_mut(CHUNK);
    for (v, o) in (&mut vi).zip(&mut oi) {
        for i in 0..CHUNK {
            o[i] = f32_to_f16_bits(v[i]);
        }
    }
    for (v, o) in vi.remainder().iter().zip(oi.into_remainder()) {
        *o = f32_to_f16_bits(*v);
    }
}

fn decode_f16_scalar(bits: &[u16], out: &mut [f32]) {
    const CHUNK: usize = 16;
    let mut bi = bits.chunks_exact(CHUNK);
    let mut oi = out.chunks_exact_mut(CHUNK);
    for (b, o) in (&mut bi).zip(&mut oi) {
        for i in 0..CHUNK {
            o[i] = f16_bits_to_f32(b[i]);
        }
    }
    for (b, o) in bi.remainder().iter().zip(oi.into_remainder()) {
        *o = f16_bits_to_f32(*b);
    }
}

/// Branchless 8-lane binary16 → f32 decode.
///
/// Per lane, with `h` the half bits and `em = (h & 0x7fff) << 13`:
/// - normals add the exponent re-bias `(127-15) << 23` to `em`;
/// - Inf/NaN add `(255-31) << 23`, passing the mantissa payload through
///   untouched (so sNaN stays sNaN, unlike F16C);
/// - subnormals use the magic-number trick: `f32(em + (113<<23)) - 2^-14`
///   is exact by Sterbenz's lemma and yields `mant * 2^-24`.
///
/// All three results are computed for every lane and blended by exponent
/// class, then the sign is OR'd back in.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn decode_f16_avx2(bits: &[u16], out: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = bits.len();
    let mut i = 0;
    unsafe {
        let exp_mask = _mm256_set1_epi32(0x7c00 << 13);
        let em_mask = _mm256_set1_epi32(0x7fff);
        let normal_bias = _mm256_set1_epi32(112 << 23);
        let naninf_bias = _mm256_set1_epi32(224 << 23);
        let sub_magic = _mm256_set1_epi32(113 << 23);
        while i + 8 <= n {
            let h = _mm256_cvtepu16_epi32(_mm_loadu_si128(bits.as_ptr().add(i) as *const _));
            let sign = _mm256_slli_epi32::<16>(_mm256_srli_epi32::<15>(h));
            let sign = _mm256_slli_epi32::<15>(sign);
            let em = _mm256_slli_epi32::<13>(_mm256_and_si256(h, em_mask));
            let exp = _mm256_and_si256(em, exp_mask);
            let normal = _mm256_add_epi32(em, normal_bias);
            let naninf = _mm256_add_epi32(em, naninf_bias);
            let sub = _mm256_castps_si256(_mm256_sub_ps(
                _mm256_castsi256_ps(_mm256_add_epi32(em, sub_magic)),
                _mm256_castsi256_ps(sub_magic),
            ));
            let is_naninf = _mm256_cmpeq_epi32(exp, exp_mask);
            let is_sub = _mm256_cmpeq_epi32(exp, _mm256_setzero_si256());
            let body = _mm256_blendv_epi8(normal, naninf, is_naninf);
            let body = _mm256_blendv_epi8(body, sub, is_sub);
            let res = _mm256_or_si256(body, sign);
            _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut _, res);
            i += 8;
        }
    }
    decode_f16_scalar(&bits[i..], &mut out[i..]);
}

/// Encodes a slice of `f32` into little-endian binary16 bytes.
pub fn encode_f16(values: &[f32]) -> Vec<u8> {
    let mut bits = vec![0u16; values.len()];
    f32_to_f16_bits_slice(values, &mut bits);
    let mut out = vec![0u8; values.len() * 2];
    for (c, b) in out.chunks_exact_mut(2).zip(&bits) {
        c.copy_from_slice(&b.to_le_bytes());
    }
    out
}

/// Decodes little-endian binary16 bytes into `f32`, writing into `out`.
///
/// # Panics
/// If `bytes.len() != out.len() * 2`.
pub fn decode_f16_into(bytes: &[u8], out: &mut [f32]) {
    assert_eq!(bytes.len(), out.len() * 2, "f16 byte/slot length mismatch");
    let mut bits = vec![0u16; out.len()];
    for (b, c) in bits.iter_mut().zip(bytes.chunks_exact(2)) {
        *b = u16::from_le_bytes([c[0], c[1]]);
    }
    f16_bits_to_f32_slice(&bits, out);
}

/// Decodes little-endian binary16 bytes into `f32`.
///
/// # Panics
/// If `bytes.len()` is odd.
pub fn decode_f16(bytes: &[u8]) -> Vec<f32> {
    assert!(
        bytes.len().is_multiple_of(2),
        "odd f16 byte length {}",
        bytes.len()
    );
    let mut out = vec![0.0f32; bytes.len() / 2];
    decode_f16_into(bytes, &mut out);
    out
}

/// Encodes a slice of `f32` into little-endian f32 bytes (for master
/// states stored at full precision).
pub fn encode_f32(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes little-endian f32 bytes.
///
/// # Panics
/// If `bytes.len()` is not a multiple of 4.
pub fn decode_f32(bytes: &[u8]) -> Vec<f32> {
    assert!(
        bytes.len().is_multiple_of(4),
        "bad f32 byte length {}",
        bytes.len()
    );
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values_round_trip() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 1024.0, 0.25, -3.5] {
            assert_eq!(round_to_f16(v), v, "{v}");
        }
        assert!(f32_to_f16_bits(-0.0) & 0x8000 != 0);
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // max finite half
        assert_eq!(f32_to_f16_bits(65536.0), 0x7c00); // overflow -> inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f16_bits_to_f32(0x3c00), 1.0);
        assert_eq!(f16_bits_to_f32(0x7c00), f32::INFINITY);
    }

    #[test]
    fn nan_survives() {
        let bits = f32_to_f16_bits(f32::NAN);
        assert_eq!(bits & 0x7c00, 0x7c00);
        assert_ne!(bits & 0x03ff, 0);
        assert!(f16_bits_to_f32(bits).is_nan());
    }

    #[test]
    fn subnormals_round_trip() {
        // Smallest positive subnormal half = 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(round_to_f16(tiny), tiny);
        // Largest subnormal = (1023/1024) * 2^-14.
        let big_sub = 1023.0 / 1024.0 * 2.0f32.powi(-14);
        assert_eq!(round_to_f16(big_sub), big_sub);
        // Below half the smallest subnormal: flush to zero.
        assert_eq!(round_to_f16(2.0f32.powi(-26)), 0.0);
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next half
        // (1 + 2^-10); RNE picks the even mantissa, i.e. 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(round_to_f16(halfway), 1.0);
        // Just above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(round_to_f16(above), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn encode_decode_round_trip() {
        let vals = vec![0.0f32, 1.5, -2.25, 100.0];
        assert_eq!(decode_f16(&encode_f16(&vals)), vals);
        assert_eq!(decode_f32(&encode_f32(&vals)), vals);
        assert_eq!(encode_f16(&vals).len(), 8);
        assert_eq!(encode_f32(&vals).len(), 16);
    }

    #[test]
    fn relative_error_is_bounded_for_normals() {
        let mut x = 1e-3f32;
        while x < 6e4 {
            let r = round_to_f16(x);
            let rel = ((r - x) / x).abs();
            assert!(rel <= 1.0 / 1024.0, "x={x} r={r} rel={rel}");
            x *= 1.37;
        }
    }

    #[test]
    #[should_panic(expected = "odd f16 byte length")]
    fn odd_byte_length_panics() {
        decode_f16(&[1, 2, 3]);
    }

    #[test]
    fn slice_decode_matches_scalar_for_every_bit_pattern() {
        // All 65536 half bit patterns, at a length that exercises both the
        // 8-lane AVX2 body and the scalar tail.
        let bits: Vec<u16> = (0..=u16::MAX).collect();
        let mut out = vec![0.0f32; bits.len()];
        f16_bits_to_f32_slice(&bits, &mut out);
        for (&b, &o) in bits.iter().zip(&out) {
            assert_eq!(
                o.to_bits(),
                f16_bits_to_f32(b).to_bits(),
                "half bits {b:#06x}"
            );
        }
        // Unaligned length: tail-only path.
        let mut tail = vec![0.0f32; 5];
        f16_bits_to_f32_slice(&bits[1000..1005], &mut tail);
        for (i, &o) in tail.iter().enumerate() {
            assert_eq!(o.to_bits(), f16_bits_to_f32(bits[1000 + i]).to_bits());
        }
    }

    #[test]
    fn slice_encode_matches_scalar() {
        let mut vals: Vec<f32> = (0..2000).map(|i| (i as f32 - 1000.0) * 1.37e-2).collect();
        vals.extend([
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            2.0f32.powi(-24),
            65504.0,
            65536.0,
            1.0 + 2.0f32.powi(-11),
        ]);
        let mut bits = vec![0u16; vals.len()];
        f32_to_f16_bits_slice(&vals, &mut bits);
        for (&v, &b) in vals.iter().zip(&bits) {
            assert_eq!(b, f32_to_f16_bits(v), "value {v}");
        }
    }

    #[test]
    fn blob_round_trip_through_slice_helpers() {
        let vals: Vec<f32> = (0..517).map(|i| (i as f32).sin() * 31.0).collect();
        let enc = encode_f16(&vals);
        assert_eq!(enc.len(), vals.len() * 2);
        let dec = decode_f16(&enc);
        for (&v, &d) in vals.iter().zip(&dec) {
            assert_eq!(d, round_to_f16(v));
        }
        let mut into = vec![0.0f32; vals.len()];
        decode_f16_into(&enc, &mut into);
        assert_eq!(dec, into);
    }
}
