//! Thread-local scratch-buffer pool for the hot kernels.
//!
//! Packing buffers and other per-call temporaries used to be fresh `Vec`
//! allocations on every kernel invocation — per training step that is
//! thousands of transient allocations on the critical path. This pool
//! hands out recycled `Vec<f32>`s instead: a checkout returns the most
//! recently returned buffer (warm in cache), grown if needed, and the
//! RAII guard returns it on drop.
//!
//! Ownership rules (see DESIGN.md "Scratch arena"):
//! - Buffers never cross threads: the pool is `thread_local!`, so a
//!   worker spawned by [`crate::parallel`] checks out from its *own*
//!   pool. A guard must therefore not be sent into a spawned closure.
//! - A checked-out buffer is exclusively owned until the guard drops;
//!   recursive kernel calls simply check out further buffers.
//! - Contents are uninitialized from the caller's perspective: the guard
//!   hands out a zero-filled prefix of the requested length, but callers
//!   must not rely on data surviving between checkouts.

use std::cell::RefCell;

thread_local! {
    static POOL: RefCell<Pool> = const { RefCell::new(Pool::new()) };
}

struct Pool {
    free: Vec<Vec<f32>>,
    checkouts: u64,
    misses: u64,
}

impl Pool {
    const fn new() -> Self {
        Pool {
            free: Vec::new(),
            checkouts: 0,
            misses: 0,
        }
    }
}

/// RAII handle to a pooled `Vec<f32>`; derefs to `[f32]` of the requested
/// length and returns the buffer to this thread's pool on drop.
pub struct ScratchVec {
    buf: Vec<f32>,
    len: usize,
}

/// Checks out a zeroed scratch buffer of `len` floats from the current
/// thread's pool.
pub fn scratch_f32(len: usize) -> ScratchVec {
    let mut buf = POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.checkouts += 1;
        match p.free.pop() {
            Some(b) => b,
            None => {
                p.misses += 1;
                Vec::new()
            }
        }
    });
    // Zero the prefix we hand out; `resize` covers growth, the loop
    // covers reuse of a longer recycled buffer.
    if buf.len() < len {
        buf.iter_mut().for_each(|v| *v = 0.0);
        buf.resize(len, 0.0);
    } else {
        buf[..len].iter_mut().for_each(|v| *v = 0.0);
    }
    ScratchVec { buf, len }
}

impl std::ops::Deref for ScratchVec {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf[..self.len]
    }
}

impl std::ops::DerefMut for ScratchVec {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf[..self.len]
    }
}

impl Drop for ScratchVec {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        POOL.with(|p| p.borrow_mut().free.push(buf));
    }
}

/// Pool statistics for this thread: `(checkouts, misses)`. A *miss* is a
/// checkout that had to allocate a new backing `Vec`; in steady state
/// misses stop growing while checkouts keep counting.
pub fn scratch_stats() -> (u64, u64) {
    POOL.with(|p| {
        let p = p.borrow();
        (p.checkouts, p.misses)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_and_zeroing() {
        {
            let mut a = scratch_f32(16);
            a[0] = 42.0;
            a[15] = 7.0;
        }
        let b = scratch_f32(8);
        assert!(b.iter().all(|&v| v == 0.0), "recycled buffer not zeroed");
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn steady_state_stops_missing() {
        // Warm up with the largest size used below.
        for _ in 0..3 {
            let _a = scratch_f32(64);
        }
        let (_, misses_before) = scratch_stats();
        for _ in 0..100 {
            let _a = scratch_f32(64);
            let _b = scratch_f32(32);
            // Two live checkouts at once forces a second pooled buffer,
            // which the warmup above may not have created.
        }
        let (_, misses_after) = scratch_stats();
        // At most one extra backing Vec for the second concurrent
        // checkout; after that, zero new allocations.
        assert!(
            misses_after - misses_before <= 1,
            "pool kept allocating: {misses_before} -> {misses_after}"
        );
    }

    #[test]
    fn nested_checkouts_are_distinct() {
        let mut a = scratch_f32(4);
        let mut b = scratch_f32(4);
        a[0] = 1.0;
        b[0] = 2.0;
        assert_eq!(a[0], 1.0);
        assert_eq!(b[0], 2.0);
    }
}
