//! Scoped-thread work partitioning for the hot kernels.
//!
//! The thread count is a process-wide setting (`RATEL_THREADS` env var,
//! overridable at runtime with [`set_num_threads`]) rather than a
//! per-call argument, so kernels deep inside layer code pick it up
//! without threading a config through every signature. Parallel results
//! are **bitwise deterministic across thread counts**: work is split
//! into fixed-size bands whose per-element reduction order never depends
//! on how bands map to threads.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// 0 = "unset, consult the environment".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Kernel dispatches that fanned out to scoped worker threads.
static SPAWNED_DISPATCHES: AtomicU64 = AtomicU64::new(0);
/// Kernel dispatches that ran inline (single worker or tiny buffer).
static INLINE_DISPATCHES: AtomicU64 = AtomicU64::new(0);

/// Cumulative `(spawned, inline)` kernel-dispatch counts since process
/// start — how often `par_rows`/`par_blocks`/`par_chunks` fanned out to
/// worker threads versus running the closure inline. Cheap relaxed
/// counters, always on; the observability plane exports them as gauges.
pub fn parallel_stats() -> (u64, u64) {
    (
        SPAWNED_DISPATCHES.load(Ordering::Relaxed),
        INLINE_DISPATCHES.load(Ordering::Relaxed),
    )
}

/// Returns the configured worker-thread count (≥ 1).
///
/// Resolution order: [`set_num_threads`] value if set, else the
/// `RATEL_THREADS` environment variable, else the machine's available
/// parallelism. The resolved value is cached.
pub fn num_threads() -> usize {
    let cached = NUM_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("RATEL_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    NUM_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Overrides the worker-thread count for subsequent kernel calls.
///
/// # Panics
/// If `n == 0`.
pub fn set_num_threads(n: usize) {
    assert!(n > 0, "thread count must be >= 1");
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Splits `out` into contiguous chunks of whole `row_len`-sized rows and
/// runs `f(first_row_index, chunk)` for each chunk, one chunk per worker.
///
/// The chunk boundaries depend only on `(rows, threads)` — never on
/// scheduling — and each output row is written by exactly one worker, so
/// results are bitwise deterministic. With one thread (or one row-band)
/// the closure runs inline with no thread spawn.
pub fn par_rows<F>(out: &mut [f32], row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert!(
        out.len().is_multiple_of(row_len),
        "output length {} not a multiple of row length {row_len}",
        out.len()
    );
    let rows = out.len() / row_len;
    let threads = num_threads().min(rows.max(1));
    if threads <= 1 || rows <= 1 || out.len() < MIN_BLOCK {
        INLINE_DISPATCHES.fetch_add(1, Ordering::Relaxed);
        f(0, out);
        return;
    }
    SPAWNED_DISPATCHES.fetch_add(1, Ordering::Relaxed);
    let per = rows.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        let mut rest = out;
        let mut row0 = 0usize;
        let f = &f;
        while !rest.is_empty() {
            let take = per.min(rest.len() / row_len);
            let (band, tail) = rest.split_at_mut(take * row_len);
            rest = tail;
            let start = row0;
            s.spawn(move |_| f(start, band));
            row0 += take;
        }
    })
    .expect("kernel worker panicked");
}

/// Minimum elements per worker before an elementwise op bothers
/// spawning: below this, spawn overhead beats the parallel win.
pub const MIN_BLOCK: usize = 4096;

/// Splits a flat buffer into one near-equal contiguous block per worker
/// and runs `f(start_offset, block)` for each. Meant for elementwise
/// kernels, whose per-element results don't depend on the split at all.
/// Runs inline when a single worker (or a small buffer) makes spawning
/// pointless.
pub fn par_blocks<F>(out: &mut [f32], f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let len = out.len();
    let threads = num_threads().min(len.div_ceil(MIN_BLOCK).max(1));
    if threads <= 1 {
        INLINE_DISPATCHES.fetch_add(1, Ordering::Relaxed);
        f(0, out);
        return;
    }
    SPAWNED_DISPATCHES.fetch_add(1, Ordering::Relaxed);
    let per = len.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        let mut rest = out;
        let mut off = 0usize;
        let f = &f;
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (block, tail) = rest.split_at_mut(take);
            rest = tail;
            let start = off;
            s.spawn(move |_| f(start, block));
            off += take;
        }
    })
    .expect("kernel worker panicked");
}

/// Runs `f(chunk_index)` for `chunks` independent chunks, spread over the
/// configured workers. Used when the work units are not slices of one
/// output buffer (e.g. pre-packing panels into separate scratch buffers).
pub fn par_chunks<F>(chunks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = num_threads().min(chunks.max(1));
    if threads <= 1 || chunks <= 1 {
        INLINE_DISPATCHES.fetch_add(1, Ordering::Relaxed);
        for c in 0..chunks {
            f(c);
        }
        return;
    }
    SPAWNED_DISPATCHES.fetch_add(1, Ordering::Relaxed);
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        let f = &f;
        let next = &next;
        for _ in 0..threads {
            s.spawn(move |_| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= chunks {
                    break;
                }
                f(c);
            });
        }
    })
    .expect("kernel worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_rows_covers_every_row_once() {
        set_num_threads(4);
        let mut out = vec![0.0f32; 7 * 3];
        par_rows(&mut out, 3, |row0, band| {
            for (r, row) in band.chunks_exact_mut(3).enumerate() {
                for v in row {
                    *v += (row0 + r) as f32 + 1.0;
                }
            }
        });
        for (r, row) in out.chunks_exact(3).enumerate() {
            assert!(row.iter().all(|&v| v == (r + 1) as f32), "row {r}: {row:?}");
        }
        set_num_threads(1);
    }

    #[test]
    fn par_rows_single_row_runs_inline() {
        set_num_threads(8);
        let mut out = vec![0.0f32; 5];
        par_rows(&mut out, 5, |row0, band| {
            assert_eq!(row0, 0);
            band.fill(2.0);
        });
        assert!(out.iter().all(|&v| v == 2.0));
        set_num_threads(1);
    }

    #[test]
    fn par_chunks_visits_each_index() {
        set_num_threads(3);
        let hits: Vec<AtomicUsize> = (0..10).map(|_| AtomicUsize::new(0)).collect();
        par_chunks(10, |c| {
            hits[c].fetch_add(1, Ordering::SeqCst);
        });
        for (c, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "chunk {c}");
        }
        set_num_threads(1);
    }

    #[test]
    fn dispatch_counters_track_spawned_and_inline() {
        let (s0, i0) = parallel_stats();
        set_num_threads(1);
        par_chunks(4, |_| {}); // single worker -> inline
        set_num_threads(2);
        par_chunks(4, |_| {}); // multi-worker -> spawned
        let (s1, i1) = parallel_stats();
        assert!(s1 > s0, "spawned counter should advance");
        assert!(i1 > i0, "inline counter should advance");
        set_num_threads(1);
    }

    #[test]
    fn env_parsing_ignores_garbage() {
        // Can't safely mutate the environment in-process; just exercise
        // the setter/getter contract.
        set_num_threads(2);
        assert_eq!(num_threads(), 2);
        set_num_threads(1);
        assert_eq!(num_threads(), 1);
    }
}
