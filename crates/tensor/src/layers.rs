//! Transformer layers with explicit forward/backward and flat parameter
//! access.
//!
//! Every layer exposes its parameters as one flat `Vec<f32>` (and accepts
//! gradients in the same order), because that is the unit the out-of-core
//! engine moves between tiers and the unit the CPU Adam updates. Saved
//! activations are separate structs with half-precision (de)serialization
//! so they can be offloaded byte-for-byte like the paper's A16 tensors.

use crate::attention::{
    attn_backend, attn_backward_into, attn_backward_naive_into, attn_forward_into,
    attn_forward_naive_into, AttnBackend,
};
use crate::ops::{
    add_bias, apply_mask, bias_grad, cross_entropy, cross_entropy_backward, dropout_mask,
    embedding_gather, embedding_scatter_add, gelu, gelu_backward, layernorm, layernorm_backward,
    matmul, matmul_at, matmul_bt, DropoutSpec, LayerNormStats,
};
use crate::scratch::scratch_f32;
use crate::tensor::Tensor;

/// Common flat-parameter access for movable layers.
pub trait ParamLayer {
    /// Number of scalar parameters.
    fn param_count(&self) -> usize;
    /// Copies all parameters into one flat vector (fixed field order).
    fn params_flat(&self) -> Vec<f32>;
    /// Loads parameters from a flat vector produced by
    /// [`ParamLayer::params_flat`].
    ///
    /// # Panics
    /// If the length does not match [`ParamLayer::param_count`].
    fn set_params_flat(&mut self, flat: &[f32]);
}

fn push_tensor(out: &mut Vec<f32>, t: &Tensor) {
    out.extend_from_slice(t.data());
}

fn take_tensor(t: &mut Tensor, flat: &[f32], offset: &mut usize) {
    let n = t.len();
    t.data_mut().copy_from_slice(&flat[*offset..*offset + n]);
    *offset += n;
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// A dense layer `y = x @ w + b` with `w: [in, out]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    /// Weight matrix `[in, out]`.
    pub w: Tensor,
    /// Bias `[out]`.
    pub b: Tensor,
}

/// Gradients of a [`Linear`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinearGrads {
    /// `dL/dw`.
    pub dw: Tensor,
    /// `dL/db`.
    pub db: Tensor,
}

impl Linear {
    /// GPT-style init: normal(0, 0.02) weights, zero bias.
    pub fn new(dim_in: usize, dim_out: usize, seed: u64) -> Self {
        Linear {
            w: Tensor::randn(&[dim_in, dim_out], 0.02, seed),
            b: Tensor::zeros(&[dim_out]),
        }
    }

    /// `y = x @ w + b`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut y = matmul(x, &self.w);
        add_bias(&mut y, &self.b);
        y
    }

    /// Returns `(dx, grads)` given the forward input `x`.
    pub fn backward(&self, x: &Tensor, dy: &Tensor) -> (Tensor, LinearGrads) {
        let dx = matmul_bt(dy, &self.w);
        let dw = matmul_at(x, dy);
        let db = bias_grad(dy);
        (dx, LinearGrads { dw, db })
    }
}

impl ParamLayer for Linear {
    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
    fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        push_tensor(&mut out, &self.w);
        push_tensor(&mut out, &self.b);
        out
    }
    fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count(), "Linear param length");
        let mut off = 0;
        take_tensor(&mut self.w, flat, &mut off);
        take_tensor(&mut self.b, flat, &mut off);
    }
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

/// Layer normalization with learned scale and shift.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNorm {
    /// Scale `[h]`.
    pub gamma: Tensor,
    /// Shift `[h]`.
    pub beta: Tensor,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl LayerNorm {
    /// Identity init (gamma 1, beta 0).
    pub fn new(h: usize) -> Self {
        LayerNorm {
            gamma: Tensor::full(&[h], 1.0),
            beta: Tensor::zeros(&[h]),
            eps: 1e-5,
        }
    }

    /// Normalizes rows; returns output and per-row stats for the backward.
    pub fn forward(&self, x: &Tensor) -> (Tensor, LayerNormStats) {
        layernorm(x, &self.gamma, &self.beta, self.eps)
    }

    /// Returns `(dx, dgamma, dbeta)`.
    pub fn backward(
        &self,
        x: &Tensor,
        stats: &LayerNormStats,
        dy: &Tensor,
    ) -> (Tensor, Tensor, Tensor) {
        layernorm_backward(x, &self.gamma, stats, dy)
    }
}

impl ParamLayer for LayerNorm {
    fn param_count(&self) -> usize {
        self.gamma.len() + self.beta.len()
    }
    fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        push_tensor(&mut out, &self.gamma);
        push_tensor(&mut out, &self.beta);
        out
    }
    fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count(), "LayerNorm param length");
        let mut off = 0;
        take_tensor(&mut self.gamma, flat, &mut off);
        take_tensor(&mut self.beta, flat, &mut off);
    }
}

// ---------------------------------------------------------------------------
// Multi-head causal self-attention
// ---------------------------------------------------------------------------

/// Multi-head causal self-attention.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHeadAttention {
    /// Fused QKV projection `[h, 3h]` (+ bias).
    pub wqkv: Linear,
    /// Output projection `[h, h]` (+ bias).
    pub wo: Linear,
    /// Number of attention heads.
    pub heads: usize,
}

/// Activations saved by an attention forward, consumed by its backward.
///
/// The `[s, s]` probability matrices are *not* stored: backward recomputes
/// per-tile probabilities from `qkv` and the per-row softmax statistics
/// (`p = exp(score - row_max - row_lse)`), so the saved set is
/// `O(b·heads·s)` instead of `O(b·heads·s²)` — the difference is what the
/// engine no longer quantizes, offloads, and refetches per block per step.
#[derive(Debug, Clone, PartialEq)]
pub struct AttnSaved {
    /// Fused QKV output `[b*s, 3h]`.
    pub qkv: Tensor,
    /// Per-row score max, `[b*heads*s]` unit-major.
    pub row_max: Vec<f32>,
    /// Per-row `ln(Σ exp(score - row_max))`, `[b*heads*s]` unit-major.
    pub row_lse: Vec<f32>,
    /// Concatenated per-head context `[b*s, h]` (input to `wo`).
    pub ctx: Tensor,
}

impl MultiHeadAttention {
    /// Creates attention over `h` channels split into `heads` heads.
    ///
    /// # Panics
    /// If `h` is not divisible by `heads`.
    pub fn new(h: usize, heads: usize, seed: u64) -> Self {
        assert_eq!(h % heads, 0, "hidden {h} not divisible by heads {heads}");
        MultiHeadAttention {
            wqkv: Linear::new(h, 3 * h, seed),
            wo: Linear::new(h, h, seed.wrapping_add(1)),
            heads,
        }
    }

    fn dims(&self, x: &Tensor, batch: usize, seq: usize) -> (usize, usize) {
        let h = x.shape()[1];
        assert_eq!(x.shape()[0], batch * seq, "attention input rows");
        (h, h / self.heads)
    }

    /// Causal attention forward over `x: [b*s, h]`, dispatched to the
    /// process-wide backend ([`crate::attention::attn_backend`]): the
    /// streaming tiled kernel by default, the materialized-score oracle
    /// when selected. Both produce the same shrunken saved set.
    pub fn forward(&self, x: &Tensor, batch: usize, seq: usize) -> (Tensor, AttnSaved) {
        let (h, _d) = self.dims(x, batch, seq);
        let qkv = self.wqkv.forward(x);

        let mut ctx = vec![0.0f32; batch * seq * h];
        let mut row_max = vec![0.0f32; batch * self.heads * seq];
        let mut row_lse = vec![0.0f32; batch * self.heads * seq];
        match attn_backend() {
            AttnBackend::Streaming => attn_forward_into(
                qkv.data(),
                batch,
                seq,
                h,
                self.heads,
                &mut ctx,
                &mut row_max,
                &mut row_lse,
            ),
            AttnBackend::NaiveOracle => attn_forward_naive_into(
                qkv.data(),
                batch,
                seq,
                h,
                self.heads,
                &mut ctx,
                &mut row_max,
                &mut row_lse,
            ),
        }

        let ctx = Tensor::from_vec(&[batch * seq, h], ctx);
        let out = self.wo.forward(&ctx);
        (
            out,
            AttnSaved {
                qkv,
                row_max,
                row_lse,
                ctx,
            },
        )
    }

    /// Backward; returns `(dx, d_wqkv, d_wo)` given the forward input `x`.
    /// Attention probabilities are recomputed from `saved.qkv` and the
    /// saved row statistics — nothing `O(s²)` is read back.
    pub fn backward(
        &self,
        x: &Tensor,
        saved: &AttnSaved,
        dy: &Tensor,
        batch: usize,
        seq: usize,
    ) -> (Tensor, LinearGrads, LinearGrads) {
        let (h, _d) = self.dims(x, batch, seq);

        let (dctx, dwo) = self.wo.backward(&saved.ctx, dy);

        let mut dqkv = vec![0.0f32; batch * seq * 3 * h];
        match attn_backend() {
            AttnBackend::Streaming => attn_backward_into(
                saved.qkv.data(),
                saved.ctx.data(),
                &saved.row_max,
                &saved.row_lse,
                dctx.data(),
                batch,
                seq,
                h,
                self.heads,
                &mut dqkv,
            ),
            AttnBackend::NaiveOracle => attn_backward_naive_into(
                saved.qkv.data(),
                saved.ctx.data(),
                &saved.row_max,
                &saved.row_lse,
                dctx.data(),
                batch,
                seq,
                h,
                self.heads,
                &mut dqkv,
            ),
        }

        let dqkv = Tensor::from_vec(&[batch * seq, 3 * h], dqkv);
        let (dx, dwqkv) = self.wqkv.backward(x, &dqkv);
        (dx, dwqkv, dwo)
    }
}

impl ParamLayer for MultiHeadAttention {
    fn param_count(&self) -> usize {
        self.wqkv.param_count() + self.wo.param_count()
    }
    fn params_flat(&self) -> Vec<f32> {
        let mut out = self.wqkv.params_flat();
        out.extend(self.wo.params_flat());
        out
    }
    fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count(), "attention param length");
        let n1 = self.wqkv.param_count();
        self.wqkv.set_params_flat(&flat[..n1]);
        self.wo.set_params_flat(&flat[n1..]);
    }
}

// ---------------------------------------------------------------------------
// MLP
// ---------------------------------------------------------------------------

/// The transformer feed-forward block: `fc2(gelu(fc1(x)))` with a 4x
/// expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    /// Expansion projection `[h, 4h]`.
    pub fc1: Linear,
    /// Contraction projection `[4h, h]`.
    pub fc2: Linear,
}

/// Activations saved by an MLP forward.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpSaved {
    /// `fc1` output before GELU `[b*s, 4h]`.
    pub pre: Tensor,
    /// GELU output `[b*s, 4h]` (input to `fc2`).
    pub act: Tensor,
}

impl Mlp {
    /// Creates the feed-forward block for hidden size `h`.
    pub fn new(h: usize, seed: u64) -> Self {
        Mlp {
            fc1: Linear::new(h, 4 * h, seed),
            fc2: Linear::new(4 * h, h, seed.wrapping_add(1)),
        }
    }

    /// Forward pass; saves the pre-GELU and post-GELU activations.
    pub fn forward(&self, x: &Tensor) -> (Tensor, MlpSaved) {
        let pre = self.fc1.forward(x);
        let act = gelu(&pre);
        let y = self.fc2.forward(&act);
        (y, MlpSaved { pre, act })
    }

    /// Backward; returns `(dx, d_fc1, d_fc2)` given the forward input `x`.
    pub fn backward(
        &self,
        x: &Tensor,
        saved: &MlpSaved,
        dy: &Tensor,
    ) -> (Tensor, LinearGrads, LinearGrads) {
        let (dact, dfc2) = self.fc2.backward(&saved.act, dy);
        let dpre = gelu_backward(&saved.pre, &dact);
        let (dx, dfc1) = self.fc1.backward(x, &dpre);
        (dx, dfc1, dfc2)
    }
}

impl ParamLayer for Mlp {
    fn param_count(&self) -> usize {
        self.fc1.param_count() + self.fc2.param_count()
    }
    fn params_flat(&self) -> Vec<f32> {
        let mut out = self.fc1.params_flat();
        out.extend(self.fc2.params_flat());
        out
    }
    fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count(), "mlp param length");
        let n1 = self.fc1.param_count();
        self.fc1.set_params_flat(&flat[..n1]);
        self.fc2.set_params_flat(&flat[n1..]);
    }
}

// ---------------------------------------------------------------------------
// Transformer block
// ---------------------------------------------------------------------------

/// A pre-norm transformer block:
/// `x + attn(ln1(x))` followed by `(+) mlp(ln2(.))`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerBlock {
    /// Pre-attention layer norm.
    pub ln1: LayerNorm,
    /// Self-attention.
    pub attn: MultiHeadAttention,
    /// Pre-MLP layer norm.
    pub ln2: LayerNorm,
    /// Feed-forward.
    pub mlp: Mlp,
    /// Micro-batch size the block was built for.
    pub batch: usize,
    /// Sequence length the block was built for.
    pub seq: usize,
}

/// Everything a block's backward needs besides its input — the "A16
/// intra-block activations" of the paper, offloadable as one blob.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSaved {
    /// `ln1` output `[b*s, h]`.
    pub x1: Tensor,
    /// `ln1` statistics.
    pub ln1_stats: LayerNormStats,
    /// Attention intermediates.
    pub attn: AttnSaved,
    /// Residual after attention `[b*s, h]`.
    pub x2: Tensor,
    /// `ln2` output `[b*s, h]`.
    pub x3: Tensor,
    /// `ln2` statistics.
    pub ln2_stats: LayerNormStats,
    /// MLP intermediates.
    pub mlp: MlpSaved,
}

/// Gradients of one transformer block in flat-parameter order.
pub type BlockGrads = Vec<f32>;

/// Derives block `block`'s dropout spec for a given training step: the
/// same `(p, step_seed, block)` triple always produces the same masks, so
/// swapped and recomputed backward paths agree, and the out-of-core
/// engine and the in-memory reference agree.
pub fn block_dropout_spec(p: f32, step_seed: u64, block: usize) -> DropoutSpec {
    DropoutSpec {
        p,
        seed: step_seed ^ ((block as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    }
}

impl TransformerBlock {
    /// Creates a block for `(batch, seq, h, heads)` with a deterministic
    /// seed.
    pub fn new(batch: usize, seq: usize, h: usize, heads: usize, seed: u64) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(h),
            attn: MultiHeadAttention::new(h, heads, seed),
            ln2: LayerNorm::new(h),
            mlp: Mlp::new(h, seed.wrapping_add(100)),
            batch,
            seq,
        }
    }

    /// Forward pass over `x: [b*s, h]`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, BlockSaved) {
        self.forward_with(x, None)
    }

    /// Forward with optional residual dropout after the attention and MLP
    /// sublayers (GPT-2 style). The masks are *not* stored with the saved
    /// activations: they are regenerated from `spec.seed` during backward
    /// — and during recomputation — which is exactly how checkpointing
    /// systems keep dropout deterministic across rematerialization.
    pub fn forward_with(&self, x: &Tensor, dropout: Option<DropoutSpec>) -> (Tensor, BlockSaved) {
        let (x1, ln1_stats) = self.ln1.forward(x);
        let (a, attn_saved) = self.attn.forward(&x1, self.batch, self.seq);
        let a = match dropout {
            Some(spec) => apply_mask(&a, &dropout_mask(a.len(), spec)),
            None => a,
        };
        let x2 = x.add(&a);
        let (x3, ln2_stats) = self.ln2.forward(&x2);
        let (m, mlp_saved) = self.mlp.forward(&x3);
        let m = match dropout {
            Some(spec) => apply_mask(
                &m,
                &dropout_mask(
                    m.len(),
                    DropoutSpec {
                        p: spec.p,
                        seed: spec.seed ^ 0x9e37_79b9,
                    },
                ),
            ),
            None => m,
        };
        let y = x2.add(&m);
        (
            y,
            BlockSaved {
                x1,
                ln1_stats,
                attn: attn_saved,
                x2,
                x3,
                ln2_stats,
                mlp: mlp_saved,
            },
        )
    }

    /// Backward pass. Needs the forward input `x` plus the saved
    /// activations; returns `(dx, flat_grads)` with gradients laid out in
    /// [`ParamLayer::params_flat`] order.
    pub fn backward(&self, x: &Tensor, saved: &BlockSaved, dy: &Tensor) -> (Tensor, BlockGrads) {
        self.backward_with(x, saved, dy, None)
    }

    /// Backward matching [`TransformerBlock::forward_with`]: the dropout
    /// masks are regenerated from the same spec and applied to the
    /// sublayer gradients.
    pub fn backward_with(
        &self,
        x: &Tensor,
        saved: &BlockSaved,
        dy: &Tensor,
        dropout: Option<DropoutSpec>,
    ) -> (Tensor, BlockGrads) {
        // y = x2 + drop(mlp(ln2(x2)))
        let dm = match dropout {
            Some(spec) => apply_mask(
                dy,
                &dropout_mask(
                    dy.len(),
                    DropoutSpec {
                        p: spec.p,
                        seed: spec.seed ^ 0x9e37_79b9,
                    },
                ),
            ),
            None => dy.clone(),
        };
        let (dx3, dfc1, dfc2) = self.mlp.backward(&saved.x3, &saved.mlp, &dm);
        let (dx2_ln, dg2, db2) = self.ln2.backward(&saved.x2, &saved.ln2_stats, &dx3);
        let mut dx2 = dy.clone();
        dx2.add_assign(&dx2_ln);
        // x2 = x + drop(attn(ln1(x)))
        let da = match dropout {
            Some(spec) => apply_mask(&dx2, &dropout_mask(dx2.len(), spec)),
            None => dx2.clone(),
        };
        let (dx1, dwqkv, dwo) =
            self.attn
                .backward(&saved.x1, &saved.attn, &da, self.batch, self.seq);
        let (dx_ln, dg1, db1) = self.ln1.backward(x, &saved.ln1_stats, &dx1);
        let mut dx = dx2;
        dx.add_assign(&dx_ln);

        // Flat grads in params_flat order: ln1, attn(wqkv, wo), ln2, mlp.
        let mut grads = Vec::with_capacity(self.param_count());
        push_tensor(&mut grads, &dg1);
        push_tensor(&mut grads, &db1);
        push_tensor(&mut grads, &dwqkv.dw);
        push_tensor(&mut grads, &dwqkv.db);
        push_tensor(&mut grads, &dwo.dw);
        push_tensor(&mut grads, &dwo.db);
        push_tensor(&mut grads, &dg2);
        push_tensor(&mut grads, &db2);
        push_tensor(&mut grads, &dfc1.dw);
        push_tensor(&mut grads, &dfc1.db);
        push_tensor(&mut grads, &dfc2.dw);
        push_tensor(&mut grads, &dfc2.db);
        (dx, grads)
    }
}

impl ParamLayer for TransformerBlock {
    fn param_count(&self) -> usize {
        self.ln1.param_count()
            + self.attn.param_count()
            + self.ln2.param_count()
            + self.mlp.param_count()
    }
    fn params_flat(&self) -> Vec<f32> {
        let mut out = self.ln1.params_flat();
        out.extend(self.attn.params_flat());
        out.extend(self.ln2.params_flat());
        out.extend(self.mlp.params_flat());
        out
    }
    fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count(), "block param length");
        let mut off = 0;
        for part in [
            &mut self.ln1 as &mut dyn ParamLayer,
            &mut self.attn,
            &mut self.ln2,
            &mut self.mlp,
        ] {
            let n = part.param_count();
            part.set_params_flat(&flat[off..off + n]);
            off += n;
        }
    }
}

impl BlockSaved {
    /// Stored activation elements for a block of the given shape — the
    /// exact count [`BlockSaved::to_f16_bytes`] serializes (the A16 blob
    /// is twice this many bytes), computable without running a forward.
    pub fn element_count_for(batch: usize, seq: usize, h: usize, heads: usize) -> usize {
        let rows = batch * seq;
        // x1 + qkv(3) + ctx + x2 + x3 + mlp.pre(4) + mlp.act(4) = 15 rows*h,
        // plus two LayerNorm (mean, rstd) pairs and the attention row
        // statistics (max + logsumexp per row per head). Streaming
        // attention stores no `[s, s]` probabilities, so there is no
        // quadratic-in-seq term.
        rows * (15 * h + 4) + 2 * batch * heads * seq
    }

    /// Total stored activation elements (for accounting).
    pub fn element_count(&self) -> usize {
        self.x1.len()
            + self.ln1_stats.mean.len()
            + self.ln1_stats.rstd.len()
            + self.attn.qkv.len()
            + self.attn.row_max.len()
            + self.attn.row_lse.len()
            + self.attn.ctx.len()
            + self.x2.len()
            + self.x3.len()
            + self.ln2_stats.mean.len()
            + self.ln2_stats.rstd.len()
            + self.mlp.pre.len()
            + self.mlp.act.len()
    }

    /// Serializes all saved activations as half-precision bytes — the A16
    /// offload format.
    pub fn to_f16_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.element_count() * 2);
        for t in self.tensors() {
            out.extend(crate::dtype::encode_f16(t));
        }
        out
    }

    /// Reconstructs saved activations from half-precision bytes.
    ///
    /// # Panics
    /// If the byte length does not match the shapes implied by
    /// `(batch, seq, h, heads)`.
    pub fn from_f16_bytes(
        bytes: &[u8],
        batch: usize,
        seq: usize,
        h: usize,
        heads: usize,
    ) -> BlockSaved {
        let rows = batch * seq;
        let vals = crate::dtype::decode_f16(bytes);
        let mut off = 0usize;
        let mut take = |n: usize| {
            let v = vals[off..off + n].to_vec();
            off += n;
            v
        };
        let x1 = Tensor::from_vec(&[rows, h], take(rows * h));
        let ln1_stats = LayerNormStats {
            mean: take(rows),
            rstd: take(rows),
        };
        let qkv = Tensor::from_vec(&[rows, 3 * h], take(rows * 3 * h));
        let row_max = take(batch * heads * seq);
        let row_lse = take(batch * heads * seq);
        let ctx = Tensor::from_vec(&[rows, h], take(rows * h));
        let x2 = Tensor::from_vec(&[rows, h], take(rows * h));
        let x3 = Tensor::from_vec(&[rows, h], take(rows * h));
        let ln2_stats = LayerNormStats {
            mean: take(rows),
            rstd: take(rows),
        };
        let pre = Tensor::from_vec(&[rows, 4 * h], take(rows * 4 * h));
        let act = Tensor::from_vec(&[rows, 4 * h], take(rows * 4 * h));
        assert_eq!(off, vals.len(), "activation blob length mismatch");
        BlockSaved {
            x1,
            ln1_stats,
            attn: AttnSaved {
                qkv,
                row_max,
                row_lse,
                ctx,
            },
            x2,
            x3,
            ln2_stats,
            mlp: MlpSaved { pre, act },
        }
    }

    /// Rounds every saved value through binary16 in place — applied right
    /// after forward so that swapped and recomputed-from-f16-input paths
    /// see identical data.
    pub fn quantize_f16(&mut self) {
        let q = |t: &mut Tensor| *t = t.quantize_f16();
        q(&mut self.x1);
        q(&mut self.attn.qkv);
        q(&mut self.attn.ctx);
        q(&mut self.x2);
        q(&mut self.x3);
        q(&mut self.mlp.pre);
        q(&mut self.mlp.act);
        for v in self
            .attn
            .row_max
            .iter_mut()
            .chain(self.attn.row_lse.iter_mut())
            .chain(self.ln1_stats.mean.iter_mut())
            .chain(self.ln1_stats.rstd.iter_mut())
            .chain(self.ln2_stats.mean.iter_mut())
            .chain(self.ln2_stats.rstd.iter_mut())
        {
            *v = crate::dtype::round_to_f16(*v);
        }
    }

    fn tensors(&self) -> [&[f32]; 13] {
        [
            self.x1.data(),
            &self.ln1_stats.mean,
            &self.ln1_stats.rstd,
            self.attn.qkv.data(),
            &self.attn.row_max,
            &self.attn.row_lse,
            self.attn.ctx.data(),
            self.x2.data(),
            self.x3.data(),
            &self.ln2_stats.mean,
            &self.ln2_stats.rstd,
            self.mlp.pre.data(),
            self.mlp.act.data(),
        ]
    }
}

// ---------------------------------------------------------------------------
// Embedding and head
// ---------------------------------------------------------------------------

/// Token + learned positional embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    /// Token table `[vocab, h]`.
    pub tokens: Tensor,
    /// Positional table `[seq, h]`.
    pub positions: Tensor,
}

impl Embedding {
    /// Creates embeddings for `(vocab, seq, h)`.
    pub fn new(vocab: usize, seq: usize, h: usize, seed: u64) -> Self {
        Embedding {
            tokens: Tensor::randn(&[vocab, h], 0.02, seed),
            positions: Tensor::randn(&[seq, h], 0.01, seed.wrapping_add(1)),
        }
    }

    /// Embeds `ids: [b*s]` (sequence-major within each sample).
    pub fn forward(&self, ids: &[usize], batch: usize, seq: usize) -> Tensor {
        assert_eq!(ids.len(), batch * seq, "id count");
        let mut x = embedding_gather(&self.tokens, ids);
        let h = self.tokens.shape()[1];
        for bi in 0..batch {
            for t in 0..seq {
                let row = (bi * seq + t) * h;
                let pos = &self.positions.data()[t * h..(t + 1) * h];
                for (v, &p) in x.data_mut()[row..row + h].iter_mut().zip(pos) {
                    *v += p;
                }
            }
        }
        x
    }

    /// Embeds a single token at absolute position `pos` (incremental
    /// decoding path).
    ///
    /// # Panics
    /// If the token or position is out of range.
    pub fn forward_at(&self, token: usize, pos: usize) -> Tensor {
        let h = self.tokens.shape()[1];
        assert!(token < self.tokens.shape()[0], "token {token} out of vocab");
        assert!(
            pos < self.positions.shape()[0],
            "position {pos} out of range"
        );
        let data: Vec<f32> = self.tokens.data()[token * h..(token + 1) * h]
            .iter()
            .zip(&self.positions.data()[pos * h..(pos + 1) * h])
            .map(|(t, p)| t + p)
            .collect();
        Tensor::from_vec(&[1, h], data)
    }

    /// Backward: returns flat gradients (tokens then positions).
    pub fn backward(&self, ids: &[usize], batch: usize, seq: usize, dy: &Tensor) -> Vec<f32> {
        let h = self.tokens.shape()[1];
        let dtok = embedding_scatter_add(self.tokens.shape(), ids, dy);
        let mut dpos = vec![0.0f32; seq * h];
        for bi in 0..batch {
            for t in 0..seq {
                let row = (bi * seq + t) * h;
                for j in 0..h {
                    dpos[t * h + j] += dy.data()[row + j];
                }
            }
        }
        let mut out = Vec::with_capacity(self.param_count());
        push_tensor(&mut out, &dtok);
        out.extend_from_slice(&dpos);
        out
    }
}

impl ParamLayer for Embedding {
    fn param_count(&self) -> usize {
        self.tokens.len() + self.positions.len()
    }
    fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        push_tensor(&mut out, &self.tokens);
        push_tensor(&mut out, &self.positions);
        out
    }
    fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count(), "embedding param length");
        let mut off = 0;
        take_tensor(&mut self.tokens, flat, &mut off);
        take_tensor(&mut self.positions, flat, &mut off);
    }
}

/// Final layer norm plus (untied) LM head projection and loss.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossEntropy {
    /// Final layer norm.
    pub ln_f: LayerNorm,
    /// Output projection `[h, vocab]` (untied from the embedding so the
    /// head is a self-contained movable layer).
    pub w_out: Tensor,
}

/// Activations saved by the head forward.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadSaved {
    /// `ln_f` output.
    pub xf: Tensor,
    /// `ln_f` statistics.
    pub ln_stats: LayerNormStats,
    /// Softmax probabilities (consumed immediately by the backward, like
    /// the paper's loss values).
    pub probs: Tensor,
}

impl CrossEntropy {
    /// Creates the head for `(h, vocab)`.
    pub fn new(h: usize, vocab: usize, seed: u64) -> Self {
        CrossEntropy {
            ln_f: LayerNorm::new(h),
            w_out: Tensor::randn(&[h, vocab], 0.02, seed),
        }
    }

    /// Computes the vocabulary logits for every position (inference path:
    /// no targets, nothing saved).
    pub fn logits(&self, x: &Tensor) -> Tensor {
        let (xf, _) = self.ln_f.forward(x);
        matmul(&xf, &self.w_out)
    }

    /// Computes mean loss against `targets`; saves what backward needs.
    pub fn forward(&self, x: &Tensor, targets: &[usize]) -> (f32, HeadSaved) {
        let (xf, ln_stats) = self.ln_f.forward(x);
        let logits = matmul(&xf, &self.w_out);
        let (loss, probs) = cross_entropy(&logits, targets);
        (
            loss,
            HeadSaved {
                xf,
                ln_stats,
                probs,
            },
        )
    }

    /// Backward; returns `(dx, flat_grads)` given the forward input `x`.
    pub fn backward(&self, x: &Tensor, saved: &HeadSaved, targets: &[usize]) -> (Tensor, Vec<f32>) {
        self.backward_scaled(x, saved, targets, 1.0)
    }

    /// Backward with *loss scaling*: the loss gradient is multiplied by
    /// `scale` before propagating, so small gradients survive the f16
    /// G16 format; the optimizer divides by the same factor.
    pub fn backward_scaled(
        &self,
        x: &Tensor,
        saved: &HeadSaved,
        targets: &[usize],
        scale: f32,
    ) -> (Tensor, Vec<f32>) {
        let mut dlogits = cross_entropy_backward(&saved.probs, targets);
        if scale != 1.0 {
            dlogits = dlogits.scale(scale);
        }
        let dw = matmul_at(&saved.xf, &dlogits);
        let dxf = matmul_bt(&dlogits, &self.w_out);
        let (dx, dgamma, dbeta) = self.ln_f.backward(x, &saved.ln_stats, &dxf);
        let mut grads = Vec::with_capacity(self.param_count());
        push_tensor(&mut grads, &dgamma);
        push_tensor(&mut grads, &dbeta);
        push_tensor(&mut grads, &dw);
        (dx, grads)
    }
}

impl ParamLayer for CrossEntropy {
    fn param_count(&self) -> usize {
        self.ln_f.param_count() + self.w_out.len()
    }
    fn params_flat(&self) -> Vec<f32> {
        let mut out = self.ln_f.params_flat();
        push_tensor(&mut out, &self.w_out);
        out
    }
    fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count(), "head param length");
        let n = self.ln_f.param_count();
        self.ln_f.set_params_flat(&flat[..n]);
        let mut off = n;
        take_tensor(&mut self.w_out, flat, &mut off);
    }
}

// ---------------------------------------------------------------------------
// Whole model
// ---------------------------------------------------------------------------

/// Shape of a small executable GPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GptConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length.
    pub seq: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Micro-batch size.
    pub batch: usize,
}

impl GptConfig {
    /// A tiny config used across tests and examples.
    pub fn tiny() -> Self {
        GptConfig {
            vocab: 64,
            seq: 16,
            hidden: 32,
            heads: 4,
            layers: 3,
            batch: 2,
        }
    }

    /// Scalar parameters of the embedding layer (token + positional
    /// tables).
    pub fn embedding_params(&self) -> usize {
        self.vocab * self.hidden + self.seq * self.hidden
    }

    /// Scalar parameters of one transformer block: two LayerNorms (2h
    /// each), fused QKV (h·3h + 3h), output projection (h·h + h), and the
    /// 4h MLP (h·4h + 4h and 4h·h + h) — `12h² + 13h` in total.
    pub fn block_params(&self) -> usize {
        12 * self.hidden * self.hidden + 13 * self.hidden
    }

    /// Scalar parameters of the head (final LayerNorm + untied LM
    /// projection).
    pub fn head_params(&self) -> usize {
        2 * self.hidden + self.hidden * self.vocab
    }

    /// Scalar parameters of the largest schedulable layer — what sizes
    /// the per-layer working set capacity checks reason about.
    pub fn max_layer_params(&self) -> usize {
        let mut m = self.embedding_params().max(self.head_params());
        if self.layers > 0 {
            m = m.max(self.block_params());
        }
        m
    }

    /// Total scalar parameters of the model.
    pub fn total_params(&self) -> usize {
        self.embedding_params() + self.layers * self.block_params() + self.head_params()
    }
}

/// A complete small GPT: embedding, `L` transformer blocks, head.
#[derive(Debug, Clone, PartialEq)]
pub struct GptModel {
    /// The shape this model was built with.
    pub config: GptConfig,
    /// Token + positional embedding.
    pub embedding: Embedding,
    /// Transformer blocks.
    pub blocks: Vec<TransformerBlock>,
    /// Final norm + LM head + loss.
    pub head: CrossEntropy,
}

impl GptModel {
    /// Builds a model with deterministic per-layer seeds derived from
    /// `seed`.
    pub fn new(config: GptConfig, seed: u64) -> Self {
        let blocks = (0..config.layers)
            .map(|i| {
                TransformerBlock::new(
                    config.batch,
                    config.seq,
                    config.hidden,
                    config.heads,
                    seed.wrapping_add(1000 + i as u64 * 17),
                )
            })
            .collect();
        GptModel {
            config,
            embedding: Embedding::new(config.vocab, config.seq, config.hidden, seed),
            blocks,
            head: CrossEntropy::new(config.hidden, config.vocab, seed.wrapping_add(7)),
        }
    }

    /// Total parameters across all movable layers.
    pub fn param_count(&self) -> usize {
        self.embedding.param_count()
            + self.blocks.iter().map(|b| b.param_count()).sum::<usize>()
            + self.head.param_count()
    }

    /// Straight-line forward+backward with everything in memory: returns
    /// `(loss, per-layer flat gradients)` ordered embedding, blocks 0..L,
    /// head. This is the reference the out-of-core engine must match.
    ///
    /// `quantize_activations` applies the A16 rounding right after each
    /// block's forward, mirroring what offloading does, so the two paths
    /// stay bit-identical.
    pub fn train_step_reference(
        &self,
        tokens: &[usize],
        targets: &[usize],
        quantize_activations: bool,
    ) -> (f32, Vec<Vec<f32>>) {
        self.train_step_reference_scaled(tokens, targets, quantize_activations, 1.0)
    }

    /// [`GptModel::train_step_reference`] with a loss-scaling factor: all
    /// returned gradients are multiplied by `scale` (the caller unscales
    /// after the f16 round trip, as mixed-precision training does).
    pub fn train_step_reference_scaled(
        &self,
        tokens: &[usize],
        targets: &[usize],
        quantize_activations: bool,
        scale: f32,
    ) -> (f32, Vec<Vec<f32>>) {
        self.train_step_reference_opts(tokens, targets, quantize_activations, scale, None)
    }

    /// The full-option reference step: loss scaling plus optional
    /// residual dropout, given as `(p, step_seed)`.
    pub fn train_step_reference_opts(
        &self,
        tokens: &[usize],
        targets: &[usize],
        quantize_activations: bool,
        scale: f32,
        dropout: Option<(f32, u64)>,
    ) -> (f32, Vec<Vec<f32>>) {
        let c = self.config;
        let mut x = self.embedding.forward(tokens, c.batch, c.seq);
        if quantize_activations {
            x = x.quantize_f16();
        }
        let mut inputs = Vec::with_capacity(c.layers);
        let mut saves = Vec::with_capacity(c.layers);
        for (bi, block) in self.blocks.iter().enumerate() {
            let spec = dropout.map(|(p, seed)| block_dropout_spec(p, seed, bi));
            let (y, mut saved) = block.forward_with(&x, spec);
            let mut y = y;
            if quantize_activations {
                saved.quantize_f16();
                y = y.quantize_f16();
            }
            inputs.push(x);
            saves.push(saved);
            x = y;
        }
        let (loss, head_saved) = self.head.forward(&x, targets);
        let (mut dx, head_grads) = self.head.backward_scaled(&x, &head_saved, targets, scale);

        let mut block_grads: Vec<Vec<f32>> = Vec::with_capacity(c.layers);
        for i in (0..c.layers).rev() {
            let spec = dropout.map(|(p, seed)| block_dropout_spec(p, seed, i));
            let (dprev, grads) = self.blocks[i].backward_with(&inputs[i], &saves[i], &dx, spec);
            block_grads.push(grads);
            dx = dprev;
        }
        block_grads.reverse();

        let embed_grads = self.embedding.backward(tokens, c.batch, c.seq, &dx);

        let mut all = Vec::with_capacity(c.layers + 2);
        all.push(embed_grads);
        all.extend(block_grads);
        all.push(head_grads);
        (loss, all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::LayerNormStats;

    fn finite(vs: &[f32]) -> bool {
        vs.iter().all(|v| v.is_finite())
    }

    #[test]
    fn config_param_formulas_match_the_built_model() {
        let c = GptConfig::tiny();
        let m = GptModel::new(c, 1);
        assert_eq!(c.embedding_params(), m.embedding.param_count());
        assert_eq!(c.block_params(), m.blocks[0].param_count());
        assert_eq!(c.head_params(), m.head.param_count());
        let total: usize = m.embedding.param_count()
            + m.blocks.iter().map(|b| b.param_count()).sum::<usize>()
            + m.head.param_count();
        assert_eq!(c.total_params(), total);
        assert!(c.max_layer_params() >= c.block_params());
    }

    #[test]
    fn linear_gradient_check() {
        let lin = Linear::new(4, 3, 21);
        let x = Tensor::randn(&[5, 4], 1.0, 22);
        let probe = Tensor::randn(&[5, 3], 1.0, 23);
        let (dx, grads) = lin.backward(&x, &probe);
        let loss = |xx: &Tensor| -> f64 {
            lin.forward(xx)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(&a, &b)| (a * b) as f64)
                .sum()
        };
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = ((loss(&xp) - loss(&xm)) / (2.0 * eps as f64)) as f32;
            let ana = dx.data()[i];
            assert!((num - ana).abs() < 2e-2, "{num} vs {ana}");
        }
        assert!(finite(grads.dw.data()) && finite(grads.db.data()));
    }

    #[test]
    fn attention_gradient_check_against_finite_differences() {
        let (batch, seq, h, heads) = (1usize, 4usize, 8usize, 2usize);
        let attn = MultiHeadAttention::new(h, heads, 31);
        let x = Tensor::randn(&[batch * seq, h], 0.5, 32);
        let probe = Tensor::randn(&[batch * seq, h], 1.0, 33);
        let (_, saved) = attn.forward(&x, batch, seq);
        let (dx, _, _) = attn.backward(&x, &saved, &probe, batch, seq);
        let loss = |xx: &Tensor| -> f64 {
            attn.forward(xx, batch, seq)
                .0
                .data()
                .iter()
                .zip(probe.data())
                .map(|(&a, &b)| (a * b) as f64)
                .sum()
        };
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = ((loss(&xp) - loss(&xm)) / (2.0 * eps as f64)) as f32;
            let ana = dx.data()[i];
            let denom = num.abs().max(ana.abs()).max(1.0);
            assert!(
                (num - ana).abs() / denom < 3e-2,
                "elem {i}: numeric {num} analytic {ana}"
            );
        }
    }

    #[test]
    fn attention_is_causal() {
        let (batch, seq, h, heads) = (1usize, 6usize, 8usize, 2usize);
        let attn = MultiHeadAttention::new(h, heads, 41);
        let x = Tensor::randn(&[seq, h], 1.0, 42);
        let (y1, _) = attn.forward(&x, batch, seq);
        // Changing a *later* token must not change earlier outputs.
        let mut x2 = x.clone();
        for j in 0..h {
            x2.data_mut()[(seq - 1) * h + j] += 5.0;
        }
        let (y2, _) = attn.forward(&x2, batch, seq);
        for t in 0..seq - 1 {
            for j in 0..h {
                assert_eq!(
                    y1.data()[t * h + j],
                    y2.data()[t * h + j],
                    "token {t} leaked future information"
                );
            }
        }
        // And the last token's output does change.
        assert_ne!(&y1.data()[(seq - 1) * h..], &y2.data()[(seq - 1) * h..]);
    }

    #[test]
    fn block_gradient_check() {
        let (batch, seq, h, heads) = (1usize, 3usize, 8usize, 2usize);
        let block = TransformerBlock::new(batch, seq, h, heads, 51);
        let x = Tensor::randn(&[batch * seq, h], 0.5, 52);
        let probe = Tensor::randn(&[batch * seq, h], 1.0, 53);
        let (_, saved) = block.forward(&x);
        let (dx, grads) = block.backward(&x, &saved, &probe);
        assert_eq!(grads.len(), block.param_count());
        assert!(finite(&grads));
        let loss = |xx: &Tensor| -> f64 {
            block
                .forward(xx)
                .0
                .data()
                .iter()
                .zip(probe.data())
                .map(|(&a, &b)| (a * b) as f64)
                .sum()
        };
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = ((loss(&xp) - loss(&xm)) / (2.0 * eps as f64)) as f32;
            let ana = dx.data()[i];
            let denom = num.abs().max(ana.abs()).max(1.0);
            assert!(
                (num - ana).abs() / denom < 3e-2,
                "elem {i}: numeric {num} analytic {ana}"
            );
        }
    }

    #[test]
    fn params_flat_round_trips() {
        let mut block = TransformerBlock::new(2, 4, 16, 4, 61);
        let flat = block.params_flat();
        assert_eq!(flat.len(), block.param_count());
        let mut clone = TransformerBlock::new(2, 4, 16, 4, 999);
        assert_ne!(clone.params_flat(), flat);
        clone.set_params_flat(&flat);
        assert_eq!(clone.params_flat(), flat);
        // Mutating through set preserves structure.
        let zeros = vec![0.0f32; flat.len()];
        block.set_params_flat(&zeros);
        assert_eq!(block.params_flat(), zeros);
    }

    #[test]
    fn block_saved_f16_round_trip() {
        let (batch, seq, h, heads) = (2usize, 4usize, 16usize, 4usize);
        let block = TransformerBlock::new(batch, seq, h, heads, 71);
        let x = Tensor::randn(&[batch * seq, h], 0.5, 72);
        let (_, mut saved) = block.forward(&x);
        saved.quantize_f16();
        let bytes = saved.to_f16_bytes();
        assert_eq!(bytes.len(), saved.element_count() * 2);
        assert_eq!(
            saved.element_count(),
            BlockSaved::element_count_for(batch, seq, h, heads)
        );
        let restored = BlockSaved::from_f16_bytes(&bytes, batch, seq, h, heads);
        assert_eq!(restored, saved);
    }

    #[test]
    fn recompute_equals_saved_backward() {
        // The core recomputation invariant: running forward again from the
        // (quantized) input produces the same saved activations, hence the
        // same gradients.
        let (batch, seq, h, heads) = (2usize, 4usize, 16usize, 4usize);
        let block = TransformerBlock::new(batch, seq, h, heads, 81);
        let x = Tensor::randn(&[batch * seq, h], 0.5, 82).quantize_f16();
        let probe = Tensor::randn(&[batch * seq, h], 1.0, 83);
        let (_, saved) = block.forward(&x);
        let (_, recomputed) = block.forward(&x);
        assert_eq!(saved, recomputed);
        let (dx1, g1) = block.backward(&x, &saved, &probe);
        let (dx2, g2) = block.backward(&x, &recomputed, &probe);
        assert_eq!(dx1, dx2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn embedding_forward_backward_shapes() {
        let emb = Embedding::new(16, 4, 8, 91);
        let ids = vec![1usize, 2, 3, 4, 5, 6, 7, 8];
        let x = emb.forward(&ids, 2, 4);
        assert_eq!(x.shape(), &[8, 8]);
        let dy = Tensor::full(&[8, 8], 1.0);
        let g = emb.backward(&ids, 2, 4, &dy);
        assert_eq!(g.len(), emb.param_count());
    }

    #[test]
    fn model_reference_step_decreases_loss_with_sgd() {
        let config = GptConfig::tiny();
        let mut model = GptModel::new(config, 1234);
        let n = config.batch * config.seq;
        let tokens: Vec<usize> = (0..n).map(|i| i % config.vocab).collect();
        let targets: Vec<usize> = (0..n).map(|i| (i + 1) % config.vocab).collect();
        let (loss0, grads) = model.train_step_reference(&tokens, &targets, false);
        assert!(loss0.is_finite());
        // Manual SGD step on every layer.
        let lr = 0.5f32;
        let apply = |layer: &mut dyn ParamLayer, g: &[f32]| {
            let mut p = layer.params_flat();
            for (pv, gv) in p.iter_mut().zip(g) {
                *pv -= lr * gv;
            }
            layer.set_params_flat(&p);
        };
        apply(&mut model.embedding, &grads[0]);
        for (i, block) in model.blocks.iter_mut().enumerate() {
            apply(block, &grads[i + 1]);
        }
        apply(&mut model.head, &grads[config.layers + 1]);
        let (loss1, _) = model.train_step_reference(&tokens, &targets, false);
        assert!(loss1 < loss0, "loss did not decrease: {loss0} -> {loss1}");
    }

    #[test]
    fn quantized_reference_is_deterministic() {
        let config = GptConfig::tiny();
        let model = GptModel::new(config, 99);
        let n = config.batch * config.seq;
        let tokens: Vec<usize> = (0..n).map(|i| (i * 7) % config.vocab).collect();
        let targets: Vec<usize> = (0..n).map(|i| (i * 7 + 1) % config.vocab).collect();
        let (l1, g1) = model.train_step_reference(&tokens, &targets, true);
        let (l2, g2) = model.train_step_reference(&tokens, &targets, true);
        assert_eq!(l1, l2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn layernorm_stats_survive_blob_round_trip() {
        let stats = LayerNormStats {
            mean: vec![0.5, -0.25],
            rstd: vec![1.0, 2.0],
        };
        // Values exactly representable in f16 survive quantization.
        let mut s2 = stats.clone();
        for v in s2.mean.iter_mut().chain(s2.rstd.iter_mut()) {
            *v = crate::dtype::round_to_f16(*v);
        }
        assert_eq!(stats, s2);
    }
}

// ---------------------------------------------------------------------------
// Incremental (KV-cached) inference
// ---------------------------------------------------------------------------

/// Per-block key/value cache for incremental decoding (batch 1): keys and
/// values of every past position, laid out `[heads][t][d]`. Like any other
/// tensor in this system it serializes to half-precision bytes, so the
/// out-of-core engine can *offload the KV cache* between tiers — the
/// inference-side analogue of activation swapping.
#[derive(Debug, Clone, PartialEq)]
pub struct KvCache {
    k: Vec<f32>,
    v: Vec<f32>,
    heads: usize,
    head_dim: usize,
    tokens: usize,
}

impl KvCache {
    /// An empty cache for `heads` heads of dimension `head_dim`.
    pub fn new(heads: usize, head_dim: usize) -> Self {
        KvCache {
            k: Vec::new(),
            v: Vec::new(),
            heads,
            head_dim,
            tokens: 0,
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.tokens
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens == 0
    }

    /// Serializes to half-precision bytes (`[k..., v...]`).
    pub fn to_f16_bytes(&self) -> Vec<u8> {
        let mut out = crate::dtype::encode_f16(&self.k);
        out.extend(crate::dtype::encode_f16(&self.v));
        out
    }

    /// Restores a cache of `tokens` positions from
    /// [`KvCache::to_f16_bytes`] output.
    pub fn from_f16_bytes(bytes: &[u8], heads: usize, head_dim: usize, tokens: usize) -> Self {
        let vals = crate::dtype::decode_f16(bytes);
        let n = heads * tokens * head_dim;
        assert_eq!(vals.len(), 2 * n, "kv blob length");
        KvCache {
            k: vals[..n].to_vec(),
            v: vals[n..].to_vec(),
            heads,
            head_dim,
            tokens,
        }
    }

    fn head_k(&self, head: usize) -> &[f32] {
        let per_head = self.tokens * self.head_dim;
        &self.k[head * per_head..(head + 1) * per_head]
    }
    fn head_v(&self, head: usize) -> &[f32] {
        let per_head = self.tokens * self.head_dim;
        &self.v[head * per_head..(head + 1) * per_head]
    }

    /// Appends one position's per-head keys/values (layout `[3h]` fused
    /// qkv row; k at offset h, v at 2h).
    fn append(&mut self, qkv_row: &[f32], h: usize) {
        let d = self.head_dim;
        // Rebuild per-head contiguous layout with the new token appended.
        let t = self.tokens;
        let mut k = vec![0.0f32; self.heads * (t + 1) * d];
        let mut v = vec![0.0f32; self.heads * (t + 1) * d];
        for hd in 0..self.heads {
            let old = t * d;
            k[hd * (t + 1) * d..hd * (t + 1) * d + old]
                .copy_from_slice(&self.k[hd * old..(hd + 1) * old]);
            v[hd * (t + 1) * d..hd * (t + 1) * d + old]
                .copy_from_slice(&self.v[hd * old..(hd + 1) * old]);
            k[hd * (t + 1) * d + old..hd * (t + 1) * d + old + d]
                .copy_from_slice(&qkv_row[h + hd * d..h + (hd + 1) * d]);
            v[hd * (t + 1) * d + old..hd * (t + 1) * d + old + d]
                .copy_from_slice(&qkv_row[2 * h + hd * d..2 * h + (hd + 1) * d]);
        }
        self.k = k;
        self.v = v;
        self.tokens = t + 1;
    }
}

impl MultiHeadAttention {
    /// Incremental attention for one new token (batch 1): appends the
    /// token's K/V to the cache and attends over all cached positions.
    /// Equivalent to the last row of [`MultiHeadAttention::forward`] over
    /// the full sequence.
    pub fn forward_cached(&self, x_t: &Tensor, cache: &mut KvCache) -> Tensor {
        let h = x_t.shape()[1];
        assert_eq!(x_t.shape()[0], 1, "incremental path is batch 1");
        let d = h / self.heads;
        assert_eq!(cache.head_dim, d, "cache head_dim");
        let qkv = self.wqkv.forward(x_t);
        cache.append(qkv.data(), h);
        let t = cache.tokens;
        let scale = 1.0 / (d as f32).sqrt();

        let mut ctx = vec![0.0f32; h];
        // One decode step scores every cached position per head; the buffer
        // comes from the thread-local scratch pool so the per-token decode
        // loop stops allocating once the pool is warm.
        let mut scores = scratch_f32(t);
        for hd in 0..self.heads {
            let q = &qkv.data()[hd * d..(hd + 1) * d];
            let keys = cache.head_k(hd);
            let vals = cache.head_v(hd);
            // scores over all t cached positions (the new one included).
            for (p, s) in scores.iter_mut().enumerate() {
                let krow = &keys[p * d..(p + 1) * d];
                *s = q.iter().zip(krow).map(|(a, b)| a * b).sum::<f32>() * scale;
            }
            // Softmax (stable).
            let max = scores.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let mut sum = 0.0f32;
            for s in scores.iter_mut() {
                *s = (*s - max).exp();
                sum += *s;
            }
            let inv = 1.0 / sum;
            let out = &mut ctx[hd * d..(hd + 1) * d];
            for (p, &s) in scores.iter().enumerate() {
                let w = s * inv;
                let vrow = &vals[p * d..(p + 1) * d];
                for (o, &vv) in out.iter_mut().zip(vrow) {
                    *o += w * vv;
                }
            }
        }
        self.wo.forward(&Tensor::from_vec(&[1, h], ctx))
    }
}

impl TransformerBlock {
    /// Incremental block forward for one token (batch 1), using and
    /// updating the KV cache. Matches the last row of
    /// [`TransformerBlock::forward`] over the full context.
    pub fn forward_cached(&self, x_t: &Tensor, cache: &mut KvCache) -> Tensor {
        let (x1, _) = self.ln1.forward(x_t);
        let a = self.attn.forward_cached(&x1, cache);
        let x2 = x_t.add(&a);
        let (x3, _) = self.ln2.forward(&x2);
        let (m, _) = self.mlp.forward(&x3);
        x2.add(&m)
    }
}

#[cfg(test)]
mod kv_cache_tests {
    use super::*;

    #[test]
    fn incremental_attention_matches_full_forward() {
        let (seq, h, heads) = (6usize, 16usize, 4usize);
        let attn = MultiHeadAttention::new(h, heads, 3);
        let x = Tensor::randn(&[seq, h], 0.7, 4);
        let (full, _) = attn.forward(&x, 1, seq);
        let mut cache = KvCache::new(heads, h / heads);
        for t in 0..seq {
            let row = Tensor::from_vec(&[1, h], x.data()[t * h..(t + 1) * h].to_vec());
            let inc = attn.forward_cached(&row, &mut cache);
            for j in 0..h {
                let a = full.data()[t * h + j];
                let b = inc.data()[j];
                assert!((a - b).abs() < 1e-4, "token {t} channel {j}: {a} vs {b}");
            }
        }
        assert_eq!(cache.len(), seq);
    }

    #[test]
    fn incremental_block_matches_full_forward() {
        let (seq, h, heads) = (5usize, 16usize, 4usize);
        let block = TransformerBlock::new(1, seq, h, heads, 7);
        let x = Tensor::randn(&[seq, h], 0.5, 8);
        let (full, _) = block.forward(&x);
        let mut cache = KvCache::new(heads, h / heads);
        for t in 0..seq {
            let row = Tensor::from_vec(&[1, h], x.data()[t * h..(t + 1) * h].to_vec());
            let inc = block.forward_cached(&row, &mut cache);
            for j in 0..h {
                let a = full.data()[t * h + j];
                let b = inc.data()[j];
                assert!((a - b).abs() < 1e-4, "token {t} ch {j}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn kv_cache_blob_round_trips() {
        let (h, heads) = (16usize, 4usize);
        let attn = MultiHeadAttention::new(h, heads, 11);
        let mut cache = KvCache::new(heads, h / heads);
        for t in 0..4 {
            let row = Tensor::randn(&[1, h], 0.5, 20 + t);
            attn.forward_cached(&row, &mut cache);
        }
        // Quantize then round-trip: restoring must be exact.
        let bytes = cache.to_f16_bytes();
        let restored = KvCache::from_f16_bytes(&bytes, heads, h / heads, cache.len());
        assert_eq!(restored.to_f16_bytes(), bytes);
        assert_eq!(restored.len(), 4);
    }
}
