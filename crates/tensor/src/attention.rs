//! Streaming tiled causal attention kernels.
//!
//! The forward pass processes K/V in column tiles with an online-softmax
//! accumulator (running `(max, sum-of-exp)` per query row, rescaled by
//! `exp(m_old - m_new)` when a tile raises the max) and never materializes
//! the `[s, s]` score or probability matrices: the only per-row state that
//! survives the forward is `(row_max, row_lse)` plus the `[s, d]` context.
//! The backward pass recomputes per-tile probabilities from Q/K and the
//! saved row statistics — `p = exp(score - row_max - row_lse)` — and uses
//! the flash-attention identity `D_t = dc_t · ctx_t = Σ_j p_tj (dc_t · v_j)`
//! so the softmax Jacobian never needs a full row either.
//!
//! Score tiles are produced by the serial entry of the blocked GEMM
//! (`gemm::gemm_serial`), so the microkernel and its AVX2 dispatch are
//! shared with the matmul path; parallelism lives one level up, over
//! `(batch, head)` units, which write disjoint per-unit scratch regions and
//! are therefore bitwise deterministic across thread counts. All tile and
//! panel buffers come from the thread-local scratch pool ([`crate::scratch`]),
//! so a steady-state single-threaded attention step performs zero heap
//! allocations in these kernels (asserted by the perf suite).
//!
//! The previous materialized path is kept as a selectable oracle backend
//! ([`AttnBackend::NaiveOracle`], `RATEL_ATTN_BACKEND=naive`): it builds the
//! full score matrix per unit exactly as before and is the reference the
//! streaming path is property-tested against. Both backends produce the same
//! shrunken saved set — the oracle, too, recomputes probabilities in
//! backward from the row statistics.
//!
//! Causality works at two granularities in the streaming path: columns at
//! or beyond a row block's bound (`j >= t0 + tm`) are never computed at
//! all, while in-block future columns (`t < j < t0 + tm`) are assigned an
//! exact `0.0` probability before the tile-level `P~ @ V` GEMM — the same
//! zero the oracle's `exp(-inf)` mask produces, so IEEE poisoning
//! (`0 * inf = 0 * NaN = NaN`) behaves identically in both backends.
//! All-finite rows take a vectorized polynomial exp ([`exp_nonpos`],
//! AVX2+FMA when available); any row holding a non-finite score falls
//! back to libm `exp` so NaN propagation and `exp(-inf) = 0` stay exact.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::gemm::{
    gemm_serial, gemm_serial_packed, pack_b_full, packed_b_len, LayoutA, LayoutB, NR,
};
use crate::ops::{matmul, matmul_at, matmul_bt, softmax_backward_into};
use crate::parallel::{num_threads, par_rows};
use crate::scratch::scratch_f32;
use crate::tensor::Tensor;

/// Query rows per streaming block.
pub const ATTN_TM: usize = 64;
/// K/V columns per streaming tile.
pub const ATTN_TC: usize = 256;

/// Which attention implementation [`crate::layers::MultiHeadAttention`]
/// dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttnBackend {
    /// Online-softmax tiled kernels; never materializes `[s, s]`.
    Streaming,
    /// The original materialized-score path, kept as a correctness oracle.
    NaiveOracle,
}

/// 0 = unset (consult `RATEL_ATTN_BACKEND`), 1 = streaming, 2 = naive.
static BACKEND: AtomicU8 = AtomicU8::new(0);

/// Returns the process-wide attention backend.
///
/// Resolution order: [`set_attn_backend`] value if set, else the
/// `RATEL_ATTN_BACKEND` environment variable (`naive` selects the oracle),
/// else [`AttnBackend::Streaming`]. The resolved value is cached.
pub fn attn_backend() -> AttnBackend {
    match BACKEND.load(Ordering::Relaxed) {
        1 => return AttnBackend::Streaming,
        2 => return AttnBackend::NaiveOracle,
        _ => {}
    }
    let resolved = match std::env::var("RATEL_ATTN_BACKEND").ok().as_deref() {
        Some("naive") | Some("oracle") => AttnBackend::NaiveOracle,
        _ => AttnBackend::Streaming,
    };
    set_attn_backend(resolved);
    resolved
}

/// Overrides the attention backend for subsequent forward/backward calls.
pub fn set_attn_backend(backend: AttnBackend) {
    let code = match backend {
        AttnBackend::Streaming => 1,
        AttnBackend::NaiveOracle => 2,
    };
    BACKEND.store(code, Ordering::Relaxed);
}

/// Branch-free polynomial `exp` for non-positive finite arguments.
///
/// Arguments below -87 flush to `exp(-87)` (~1.6e-38) instead of underflowing
/// — harmless wherever the result meets a sum whose leading term is
/// `exp(0) = 1` or scales a finite value. Max relative error is ~3e-7
/// against `f32::exp` (Cephes minimax coefficients). Because the body has
/// no branches or calls, LLVM vectorizes loops over it; that is the whole
/// point — the scalar libm `exp` is the forward pass's largest non-GEMM
/// cost. Callers must route rows containing non-finite scores to the
/// exact `f32::exp` path instead: this helper flushes `NaN`/`-inf` and
/// would otherwise break the IEEE-poisoning contract the oracle
/// equivalence tests pin down.
#[inline(always)]
fn exp_nonpos(x: f32) -> f32 {
    // Round-to-nearest integer via the 1.5 * 2^23 shift (|z| < 2^22 here).
    const RND: f32 = 12_582_912.0;
    // Cody-Waite split of ln(2): computing the residual in the original
    // domain keeps full precision where `z - round(z)` would not.
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let x = x.max(-87.0);
    let n = (x * std::f32::consts::LOG2_E + RND) - RND;
    let r = (x - n * LN2_HI) - n * LN2_LO;
    let mut p = 1.987_569_1e-4f32;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_6e-1;
    p = p * r + 5e-1;
    let poly = p * r * r + r + 1.0;
    f32::from_bits(((n as i32 + 127) << 23) as u32) * poly
}

/// In-place `row[i] = exp(row[i] - m)` over finite scores with max `m`,
/// returning the row sum. Eight independent accumulator lanes keep the
/// reduction order fixed (bitwise deterministic for a given machine)
/// regardless of how the surrounding tile loop is scheduled.
#[inline]
fn exp_shift_sum(row: &mut [f32], m: f32) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if crate::gemm::fma_available() {
        // SAFETY: gated on runtime detection of avx2+fma.
        return unsafe { exp_shift_sum_fma(row, m) };
    }
    let n8 = row.len() & !7;
    let mut lanes = [0.0f32; 8];
    for c in row[..n8].chunks_exact_mut(8) {
        for (i, v) in c.iter_mut().enumerate() {
            let e = exp_nonpos(*v - m);
            *v = e;
            lanes[i] += e;
        }
    }
    let mut tail = 0.0f32;
    for v in row[n8..].iter_mut() {
        let e = exp_nonpos(*v - m);
        *v = e;
        tail += e;
    }
    lanes.iter().sum::<f32>() + tail
}

/// AVX2+FMA lane of [`exp_shift_sum`]: [`exp_nonpos`] on eight elements
/// per step (`cvtps` round-to-nearest supplies the exponent split), with
/// the same eight-lane fixed-order reduction as the scalar fallback.
///
/// # Safety
/// Caller must ensure the CPU supports `avx2` and `fma`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn exp_shift_sum_fma(row: &mut [f32], m: f32) -> f32 {
    use std::arch::x86_64::*;
    let n8 = row.len() & !7;
    let mv = _mm256_set1_ps(m);
    let clamp = _mm256_set1_ps(-87.0);
    let log2e = _mm256_set1_ps(std::f32::consts::LOG2_E);
    let ln2_hi = _mm256_set1_ps(0.693_359_4);
    let ln2_lo = _mm256_set1_ps(-2.121_944_4e-4);
    let c0 = _mm256_set1_ps(1.987_569_1e-4);
    let c1 = _mm256_set1_ps(1.398_199_9e-3);
    let c2 = _mm256_set1_ps(8.333_452e-3);
    let c3 = _mm256_set1_ps(4.166_579_6e-2);
    let c4 = _mm256_set1_ps(1.666_666_6e-1);
    let c5 = _mm256_set1_ps(5e-1);
    let one = _mm256_set1_ps(1.0);
    let bias = _mm256_set1_epi32(127);
    let mut acc = _mm256_setzero_ps();
    let p = row.as_mut_ptr();
    let mut i = 0usize;
    while i < n8 {
        let x = _mm256_max_ps(_mm256_sub_ps(_mm256_loadu_ps(p.add(i)), mv), clamp);
        let z = _mm256_mul_ps(x, log2e);
        let ni = _mm256_cvtps_epi32(z);
        let n = _mm256_cvtepi32_ps(ni);
        let r = _mm256_fnmadd_ps(n, ln2_lo, _mm256_fnmadd_ps(n, ln2_hi, x));
        let mut q = c0;
        q = _mm256_fmadd_ps(q, r, c1);
        q = _mm256_fmadd_ps(q, r, c2);
        q = _mm256_fmadd_ps(q, r, c3);
        q = _mm256_fmadd_ps(q, r, c4);
        q = _mm256_fmadd_ps(q, r, c5);
        let poly = _mm256_add_ps(_mm256_fmadd_ps(q, _mm256_mul_ps(r, r), r), one);
        let scale2n = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(ni, bias)));
        let e = _mm256_mul_ps(poly, scale2n);
        _mm256_storeu_ps(p.add(i), e);
        acc = _mm256_add_ps(acc, e);
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut sum = lanes.iter().sum::<f32>();
    for v in row[n8..].iter_mut() {
        let e = exp_nonpos(*v - m);
        *v = e;
        sum += e;
    }
    sum
}

fn check_shapes(
    qkv: &[f32],
    batch: usize,
    seq: usize,
    h: usize,
    heads: usize,
    ctx_len: usize,
    stat_len: usize,
) -> usize {
    assert!(
        heads > 0 && h.is_multiple_of(heads),
        "h {h} / heads {heads}"
    );
    assert_eq!(qkv.len(), batch * seq * 3 * h, "qkv length");
    assert_eq!(ctx_len, batch * seq * h, "ctx length");
    assert_eq!(stat_len, batch * heads * seq, "row-stat length");
    h / heads
}

/// Streaming causal attention forward.
///
/// Reads `qkv: [b*s, 3h]` and writes the concatenated per-head context
/// `ctx: [b*s, h]` plus per-row softmax statistics `row_max`/`row_lse`
/// (`[b*heads*s]`, unit-major) — everything backward needs.
#[allow(clippy::too_many_arguments)]
pub fn attn_forward_into(
    qkv: &[f32],
    batch: usize,
    seq: usize,
    h: usize,
    heads: usize,
    ctx: &mut [f32],
    row_max: &mut [f32],
    row_lse: &mut [f32],
) {
    let d = check_shapes(qkv, batch, seq, h, heads, ctx.len(), row_max.len());
    assert_eq!(row_lse.len(), row_max.len(), "row-stat length");
    let units = batch * heads;
    let scale = 1.0 / (d as f32).sqrt();
    let mut ctx_units = scratch_f32(units * seq * d);
    {
        let threads = num_threads().min(units);
        if threads <= 1 {
            for u in 0..units {
                unit_forward(
                    qkv,
                    u / heads,
                    u % heads,
                    seq,
                    h,
                    d,
                    scale,
                    &mut ctx_units[u * seq * d..(u + 1) * seq * d],
                    &mut row_max[u * seq..(u + 1) * seq],
                    &mut row_lse[u * seq..(u + 1) * seq],
                );
            }
        } else {
            // Bands of whole units: each unit's outputs are computed by
            // exactly one worker with unit-local loop order, so any split
            // is bitwise equivalent.
            let per = units.div_ceil(threads);
            crossbeam::thread::scope(|s| {
                let mut cu = &mut ctx_units[..];
                let mut mu = &mut row_max[..];
                let mut lu = &mut row_lse[..];
                let mut u0 = 0usize;
                while !cu.is_empty() {
                    let take = per.min(cu.len() / (seq * d));
                    let (cb, ct) = cu.split_at_mut(take * seq * d);
                    cu = ct;
                    let (mb, mt) = mu.split_at_mut(take * seq);
                    mu = mt;
                    let (lb, lt) = lu.split_at_mut(take * seq);
                    lu = lt;
                    let start = u0;
                    s.spawn(move |_| {
                        for i in 0..take {
                            let u = start + i;
                            unit_forward(
                                qkv,
                                u / heads,
                                u % heads,
                                seq,
                                h,
                                d,
                                scale,
                                &mut cb[i * seq * d..(i + 1) * seq * d],
                                &mut mb[i * seq..(i + 1) * seq],
                                &mut lb[i * seq..(i + 1) * seq],
                            );
                        }
                    });
                    u0 += take;
                }
            })
            .expect("attention worker panicked");
        }
    }
    // Interleave the unit-major context back into [b*s, h] rows.
    let cu = &ctx_units[..];
    par_rows(ctx, h, |row0, band| {
        for (r, row) in band.chunks_exact_mut(h).enumerate() {
            let gr = row0 + r;
            let (bi, t) = (gr / seq, gr % seq);
            for hd in 0..heads {
                let src = ((bi * heads + hd) * seq + t) * d;
                row[hd * d..(hd + 1) * d].copy_from_slice(&cu[src..src + d]);
            }
        }
    });
}

/// One `(batch, head)` unit of the streaming forward: gathers this head's
/// `[s, d]` Q/K/V panels, then walks query-row blocks × K/V column tiles
/// with the online-softmax recurrence.
#[allow(clippy::too_many_arguments)]
fn unit_forward(
    qkv: &[f32],
    bi: usize,
    hd: usize,
    seq: usize,
    h: usize,
    d: usize,
    scale: f32,
    ctx_u: &mut [f32],
    m_out: &mut [f32],
    lse_out: &mut [f32],
) {
    let mut qb = scratch_f32(seq * d);
    let mut kb = scratch_f32(seq * d);
    let mut vb = scratch_f32(seq * d);
    gather_head(qkv, bi, seq, h, 0, hd, d, &mut qb);
    gather_head(qkv, bi, seq, h, 1, hd, d, &mut kb);
    gather_head(qkv, bi, seq, h, 2, hd, d, &mut vb);
    // Fold the softmax scale into the Q panel once (s*d multiplies)
    // instead of into every score tile (s^2/2).
    for q in qb.iter_mut() {
        *q *= scale;
    }
    // Pre-pack K^T once per unit: every row block walks the same K
    // columns, so per-tile re-packing (a strided scalar gather for the
    // transposed layout) would otherwise dominate the score GEMMs.
    let mut kpack = scratch_f32(packed_b_len(d, seq));
    pack_b_full(d, seq, &kb, LayoutB::Transposed, &mut kpack);
    let mut sc = scratch_f32(ATTN_TM * ATTN_TC);
    let mut acc = scratch_f32(ATTN_TM * d);
    let mut pv = scratch_f32(ATTN_TM * d);
    let mut mvec = [f32::NEG_INFINITY; ATTN_TM];
    let mut lvec = [0.0f32; ATTN_TM];
    let mut fvec = [1.0f32; ATTN_TM];

    let mut t0 = 0usize;
    while t0 < seq {
        let tm = ATTN_TM.min(seq - t0);
        // Causal bound for this row block: no row needs a column >= t0+tm.
        let w = t0 + tm;
        acc[..tm * d].fill(0.0);
        mvec[..tm].fill(f32::NEG_INFINITY);
        lvec[..tm].fill(0.0);
        let mut j0 = 0usize;
        while j0 < w {
            let tc = ATTN_TC.min(w - j0);
            gemm_serial_packed(
                tm,
                d,
                tc,
                &qb[t0 * d..(t0 + tm) * d],
                LayoutA::Normal,
                &kpack[(j0 / NR) * d * NR..(j0 + tc).div_ceil(NR) * d * NR],
                &mut sc[..tm * tc],
            );
            // Turn the score tile into unnormalized probabilities in
            // place, per row, updating the online (max, sum) recurrence.
            // Masked columns get an exact 0.0 weight — the same zero the
            // oracle's `exp(-inf)` produces — so the tile-level GEMM
            // below can consume the full [tm, tc] buffer.
            for r in 0..tm {
                let t = t0 + r;
                let row = &mut sc[r * tc..(r + 1) * tc];
                if t < j0 {
                    // Row entirely in the future of this tile: zero
                    // weight everywhere, recurrence untouched.
                    row.fill(0.0);
                    fvec[r] = 1.0;
                    continue;
                }
                let cnt = (t + 1 - j0).min(tc);
                // Fold the tile max (scores carry the scale via the Q
                // panel); f32::max ignores NaN like the oracle's fold.
                // The finiteness fold picks the exp flavor below.
                let mut tile_max = f32::NEG_INFINITY;
                let mut finite = true;
                for &v in row[..cnt].iter() {
                    tile_max = tile_max.max(v);
                    finite &= v.is_finite();
                }
                let m_new = mvec[r].max(tile_max);
                // Rescale the running sum; exp(0) = 1 and exp(-inf) = 0
                // make the no-change and first-tile cases exact, and a
                // +inf score poisons the row to NaN exactly like the
                // materialized softmax does.
                let factor = (mvec[r] - m_new).exp();
                lvec[r] *= factor;
                fvec[r] = factor;
                if finite && m_new.is_finite() {
                    // All-finite tile under a finite running max (the
                    // overwhelmingly common case): vectorized polynomial
                    // exp. A +inf max inherited from a poisoned earlier
                    // tile falls through to the exact path.
                    lvec[r] += exp_shift_sum(&mut row[..cnt], m_new);
                } else {
                    // Exact IEEE path: `exp` propagates NaN and maps
                    // `-inf` to a true zero weight, matching the
                    // oracle's masked softmax bit for bit.
                    let mut sum = 0.0f32;
                    for v in row[..cnt].iter_mut() {
                        *v = (*v - m_new).exp();
                        sum += *v;
                    }
                    lvec[r] += sum;
                }
                row[cnt..].fill(0.0);
                mvec[r] = m_new;
            }
            // The bulk of the forward's arithmetic: P~ @ V_tile on the
            // tiled kernel (running it as scalar axpys halves forward
            // throughput), then the per-row rescale-and-add.
            gemm_serial(
                tm,
                tc,
                d,
                &sc[..tm * tc],
                LayoutA::Normal,
                &vb[j0 * d..(j0 + tc) * d],
                LayoutB::Normal,
                &mut pv[..tm * d],
            );
            for r in 0..tm {
                let f = fvec[r];
                let prow = &pv[r * d..(r + 1) * d];
                for (x, &p) in acc[r * d..(r + 1) * d].iter_mut().zip(prow) {
                    *x = *x * f + p;
                }
            }
            j0 += tc;
        }
        for r in 0..tm {
            let t = t0 + r;
            m_out[t] = mvec[r];
            lse_out[t] = lvec[r].ln();
            let inv = 1.0 / lvec[r];
            let arow = &acc[r * d..(r + 1) * d];
            for (c, &a) in ctx_u[t * d..(t + 1) * d].iter_mut().zip(arow) {
                *c = a * inv;
            }
        }
        t0 += tm;
    }
}

/// Streaming causal attention backward.
///
/// Consumes the forward's `qkv`/`ctx` plus the saved row statistics and the
/// gradient `dctx: [b*s, h]` w.r.t. the context, and fully overwrites
/// `dqkv: [b*s, 3h]`. Probabilities are recomputed tile by tile as
/// `exp(score - row_max - row_lse)`.
#[allow(clippy::too_many_arguments)]
pub fn attn_backward_into(
    qkv: &[f32],
    ctx: &[f32],
    row_max: &[f32],
    row_lse: &[f32],
    dctx: &[f32],
    batch: usize,
    seq: usize,
    h: usize,
    heads: usize,
    dqkv: &mut [f32],
) {
    let d = check_shapes(qkv, batch, seq, h, heads, ctx.len(), row_max.len());
    assert_eq!(row_lse.len(), row_max.len(), "row-stat length");
    assert_eq!(dctx.len(), ctx.len(), "dctx length");
    assert_eq!(dqkv.len(), qkv.len(), "dqkv length");
    let units = batch * heads;
    let scale = 1.0 / (d as f32).sqrt();
    // Per-unit [dq | dk | dv] accumulators, unit-major like the forward.
    let mut dunits = scratch_f32(units * 3 * seq * d);
    {
        let threads = num_threads().min(units);
        if threads <= 1 {
            for u in 0..units {
                unit_backward(
                    qkv,
                    ctx,
                    dctx,
                    &row_max[u * seq..(u + 1) * seq],
                    &row_lse[u * seq..(u + 1) * seq],
                    u / heads,
                    u % heads,
                    seq,
                    h,
                    d,
                    scale,
                    &mut dunits[u * 3 * seq * d..(u + 1) * 3 * seq * d],
                );
            }
        } else {
            let per = units.div_ceil(threads);
            crossbeam::thread::scope(|s| {
                let mut du = &mut dunits[..];
                let mut u0 = 0usize;
                while !du.is_empty() {
                    let take = per.min(du.len() / (3 * seq * d));
                    let (band, tail) = du.split_at_mut(take * 3 * seq * d);
                    du = tail;
                    let start = u0;
                    s.spawn(move |_| {
                        for (i, chunk) in band.chunks_exact_mut(3 * seq * d).enumerate() {
                            let u = start + i;
                            unit_backward(
                                qkv,
                                ctx,
                                dctx,
                                &row_max[u * seq..(u + 1) * seq],
                                &row_lse[u * seq..(u + 1) * seq],
                                u / heads,
                                u % heads,
                                seq,
                                h,
                                d,
                                scale,
                                chunk,
                            );
                        }
                    });
                    u0 += take;
                }
            })
            .expect("attention worker panicked");
        }
    }
    // Interleave [unit][dq|dk|dv] back into [b*s, 3h] rows.
    let du = &dunits[..];
    par_rows(dqkv, 3 * h, |row0, band| {
        for (r, row) in band.chunks_exact_mut(3 * h).enumerate() {
            let gr = row0 + r;
            let (bi, t) = (gr / seq, gr % seq);
            for hd in 0..heads {
                let base = (bi * heads + hd) * 3 * seq * d;
                for which in 0..3 {
                    let src = base + (which * seq + t) * d;
                    let dst = which * h + hd * d;
                    row[dst..dst + d].copy_from_slice(&du[src..src + d]);
                }
            }
        }
    });
}

/// One `(batch, head)` unit of the streaming backward. `dout` is this
/// unit's `[dq | dk | dv]` region (`3 * seq * d`), fully overwritten.
#[allow(clippy::too_many_arguments)]
fn unit_backward(
    qkv: &[f32],
    ctx: &[f32],
    dctx: &[f32],
    m: &[f32],
    lse: &[f32],
    bi: usize,
    hd: usize,
    seq: usize,
    h: usize,
    d: usize,
    scale: f32,
    dout: &mut [f32],
) {
    let mut qb = scratch_f32(seq * d);
    let mut kb = scratch_f32(seq * d);
    let mut vb = scratch_f32(seq * d);
    let mut dc = scratch_f32(seq * d);
    let mut cx = scratch_f32(seq * d);
    gather_head(qkv, bi, seq, h, 0, hd, d, &mut qb);
    gather_head(qkv, bi, seq, h, 1, hd, d, &mut kb);
    gather_head(qkv, bi, seq, h, 2, hd, d, &mut vb);
    gather_ctx_head(dctx, bi, seq, h, hd, d, &mut dc);
    gather_ctx_head(ctx, bi, seq, h, hd, d, &mut cx);

    // D_t = dc_t . ctx_t  (= sum_j p_tj (dc_t . v_j), the flash identity).
    let mut dvec = scratch_f32(seq);
    for t in 0..seq {
        let mut acc = 0.0f32;
        for (x, y) in dc[t * d..(t + 1) * d].iter().zip(&cx[t * d..(t + 1) * d]) {
            acc += x * y;
        }
        dvec[t] = acc;
    }

    dout.fill(0.0);
    let (dq_u, rest) = dout.split_at_mut(seq * d);
    let (dk_u, dv_u) = rest.split_at_mut(seq * d);

    // Pre-pack K^T and V^T once per unit for the score and dP tile
    // GEMMs — the transposed per-tile pack is a strided scalar gather
    // that every row block would otherwise repeat.
    let mut kpack = scratch_f32(packed_b_len(d, seq));
    pack_b_full(d, seq, &kb, LayoutB::Transposed, &mut kpack);
    let mut vpack = scratch_f32(packed_b_len(d, seq));
    pack_b_full(d, seq, &vb, LayoutB::Transposed, &mut vpack);

    let mut p = scratch_f32(ATTN_TM * ATTN_TC);
    let mut dp = scratch_f32(ATTN_TM * ATTN_TC);
    let mut ds = scratch_f32(ATTN_TM * ATTN_TC);
    let mut tmp = scratch_f32(ATTN_TM.max(ATTN_TC) * d);

    let mut t0 = 0usize;
    while t0 < seq {
        let tm = ATTN_TM.min(seq - t0);
        let w = t0 + tm;
        let q_block = &qb[t0 * d..(t0 + tm) * d];
        let dc_block = &dc[t0 * d..(t0 + tm) * d];
        let mut j0 = 0usize;
        while j0 < w {
            let tc = ATTN_TC.min(w - j0);
            let k_tile = &kb[j0 * d..(j0 + tc) * d];
            // Recompute probabilities for this tile from Q/K + row stats;
            // entries above the diagonal are exact zeros so the tile-level
            // products below see no future contribution.
            gemm_serial_packed(
                tm,
                d,
                tc,
                q_block,
                LayoutA::Normal,
                &kpack[(j0 / NR) * d * NR..(j0 + tc).div_ceil(NR) * d * NR],
                &mut p[..tm * tc],
            );
            gemm_serial_packed(
                tm,
                d,
                tc,
                dc_block,
                LayoutA::Normal,
                &vpack[(j0 / NR) * d * NR..(j0 + tc).div_ceil(NR) * d * NR],
                &mut dp[..tm * tc],
            );
            for r in 0..tm {
                let t = t0 + r;
                let cnt = (t + 1).saturating_sub(j0).min(tc);
                // A non-finite row statistic means the forward already
                // poisoned this row (a NaN or +inf score); only then is
                // the exact libm exp needed to reproduce that poisoning.
                // Finite stats imply every recomputed probability is
                // exp(finite_or_neg_inf), where the polynomial's 2^-126
                // flush of -inf scales gradients by ~1e-38 — vanishing.
                let mlse = m[t] + lse[t];
                if mlse.is_finite() {
                    let dvt = dvec[t];
                    let prow = &mut p[r * tc..r * tc + cnt];
                    let dprow = &dp[r * tc..r * tc + cnt];
                    let dsrow = &mut ds[r * tc..r * tc + cnt];
                    for ((pv, &dpv), dsv) in prow.iter_mut().zip(dprow).zip(dsrow.iter_mut()) {
                        let pj = exp_nonpos(*pv * scale - mlse);
                        *pv = pj;
                        *dsv = pj * (dpv - dvt) * scale;
                    }
                } else {
                    for j in 0..cnt {
                        let pj = (p[r * tc + j] * scale - m[t] - lse[t]).exp();
                        p[r * tc + j] = pj;
                        ds[r * tc + j] = pj * (dp[r * tc + j] - dvec[t]) * scale;
                    }
                }
                for j in cnt..tc {
                    p[r * tc + j] = 0.0;
                    ds[r * tc + j] = 0.0;
                }
            }
            // dq_block += ds @ K_tile
            gemm_serial(
                tm,
                tc,
                d,
                &ds[..tm * tc],
                LayoutA::Normal,
                k_tile,
                LayoutB::Normal,
                &mut tmp[..tm * d],
            );
            for (x, &y) in dq_u[t0 * d..(t0 + tm) * d].iter_mut().zip(&tmp[..tm * d]) {
                *x += y;
            }
            // dk_tile += ds^T @ Q_block
            gemm_serial(
                tc,
                tm,
                d,
                &ds[..tm * tc],
                LayoutA::Transposed,
                q_block,
                LayoutB::Normal,
                &mut tmp[..tc * d],
            );
            for (x, &y) in dk_u[j0 * d..(j0 + tc) * d].iter_mut().zip(&tmp[..tc * d]) {
                *x += y;
            }
            // dv_tile += p^T @ dC_block
            gemm_serial(
                tc,
                tm,
                d,
                &p[..tm * tc],
                LayoutA::Transposed,
                dc_block,
                LayoutB::Normal,
                &mut tmp[..tc * d],
            );
            for (x, &y) in dv_u[j0 * d..(j0 + tc) * d].iter_mut().zip(&tmp[..tc * d]) {
                *x += y;
            }
            j0 += tc;
        }
        t0 += tm;
    }
}

/// Gathers one head's `[s, d]` q/k/v panel (`which`: 0=q, 1=k, 2=v) out of
/// the fused `[b*s, 3h]` buffer.
#[allow(clippy::too_many_arguments)]
fn gather_head(
    qkv: &[f32],
    bi: usize,
    seq: usize,
    h: usize,
    which: usize,
    hd: usize,
    d: usize,
    out: &mut [f32],
) {
    for t in 0..seq {
        let src = (bi * seq + t) * 3 * h + which * h + hd * d;
        out[t * d..(t + 1) * d].copy_from_slice(&qkv[src..src + d]);
    }
}

/// Gathers one head's `[s, d]` slice out of a `[b*s, h]` buffer.
fn gather_ctx_head(
    buf: &[f32],
    bi: usize,
    seq: usize,
    h: usize,
    hd: usize,
    d: usize,
    out: &mut [f32],
) {
    for t in 0..seq {
        let src = (bi * seq + t) * h + hd * d;
        out[t * d..(t + 1) * d].copy_from_slice(&buf[src..src + d]);
    }
}

// ---------------------------------------------------------------------------
// Naive oracle backend
// ---------------------------------------------------------------------------

/// The materialized-score oracle forward: per unit, builds the full `[s, s]`
/// score matrix, masks, softmaxes, and multiplies — exactly the original
/// implementation — while also emitting the `(row_max, row_lse)` statistics
/// so both backends share one saved-set layout.
#[allow(clippy::too_many_arguments)]
pub fn attn_forward_naive_into(
    qkv: &[f32],
    batch: usize,
    seq: usize,
    h: usize,
    heads: usize,
    ctx: &mut [f32],
    row_max: &mut [f32],
    row_lse: &mut [f32],
) {
    let d = check_shapes(qkv, batch, seq, h, heads, ctx.len(), row_max.len());
    assert_eq!(row_lse.len(), row_max.len(), "row-stat length");
    let scale = 1.0 / (d as f32).sqrt();
    for bi in 0..batch {
        for hd in 0..heads {
            let q = head_tensor(qkv, bi, seq, h, 0, hd, d);
            let k = head_tensor(qkv, bi, seq, h, 1, hd, d);
            let v = head_tensor(qkv, bi, seq, h, 2, hd, d);
            let mut scores = matmul_bt(&q, &k).scale(scale);
            apply_causal_mask(&mut scores, seq);
            // Row softmax in the same operation order as `softmax_rows`,
            // capturing the per-row max and log-sum-exp on the way.
            let u = bi * heads + hd;
            let data = scores.data_mut();
            for t in 0..seq {
                let row = &mut data[t * seq..(t + 1) * seq];
                let mx = row.iter().fold(f32::NEG_INFINITY, |a, &v| a.max(v));
                let mut sum = 0.0f32;
                for v in row.iter_mut() {
                    *v = (*v - mx).exp();
                    sum += *v;
                }
                let inv = 1.0 / sum;
                for v in row.iter_mut() {
                    *v *= inv;
                }
                row_max[u * seq + t] = mx;
                row_lse[u * seq + t] = sum.ln();
            }
            let c = matmul(&scores, &v); // [s, d]
            for t in 0..seq {
                let dst = (bi * seq + t) * h + hd * d;
                ctx[dst..dst + d].copy_from_slice(&c.data()[t * d..(t + 1) * d]);
            }
        }
    }
}

/// The oracle backward: recomputes the full `[s, s]` probability matrix per
/// unit from Q/K and the saved row statistics, then applies the exact
/// softmax Jacobian via `softmax_backward_into`.
#[allow(clippy::too_many_arguments)]
pub fn attn_backward_naive_into(
    qkv: &[f32],
    ctx: &[f32],
    row_max: &[f32],
    row_lse: &[f32],
    dctx: &[f32],
    batch: usize,
    seq: usize,
    h: usize,
    heads: usize,
    dqkv: &mut [f32],
) {
    let d = check_shapes(qkv, batch, seq, h, heads, ctx.len(), row_max.len());
    assert_eq!(row_lse.len(), row_max.len(), "row-stat length");
    assert_eq!(dctx.len(), ctx.len(), "dctx length");
    assert_eq!(dqkv.len(), qkv.len(), "dqkv length");
    let scale = 1.0 / (d as f32).sqrt();
    for bi in 0..batch {
        for hd in 0..heads {
            let q = head_tensor(qkv, bi, seq, h, 0, hd, d);
            let k = head_tensor(qkv, bi, seq, h, 1, hd, d);
            let v = head_tensor(qkv, bi, seq, h, 2, hd, d);
            let u = bi * heads + hd;
            let mut p = matmul_bt(&q, &k).scale(scale);
            apply_causal_mask(&mut p, seq);
            {
                let data = p.data_mut();
                for t in 0..seq {
                    let (mx, ls) = (row_max[u * seq + t], row_lse[u * seq + t]);
                    for v in data[t * seq..(t + 1) * seq].iter_mut() {
                        *v = (*v - mx - ls).exp();
                    }
                }
            }

            let mut dc = vec![0.0f32; seq * d];
            for t in 0..seq {
                let src = (bi * seq + t) * h + hd * d;
                dc[t * d..(t + 1) * d].copy_from_slice(&dctx[src..src + d]);
            }
            let dc = Tensor::from_vec(&[seq, d], dc);

            let dv = matmul_at(&p, &dc); // p^T @ dc
            let dp = matmul_bt(&dc, &v); // dc @ v^T
            let mut dscores = scratch_f32(seq * seq);
            softmax_backward_into(p.data(), dp.data(), seq, &mut dscores);
            for x in dscores.iter_mut() {
                *x *= scale;
            }
            let dscores = Tensor::from_vec(&[seq, seq], dscores.to_vec());
            let dq = matmul(&dscores, &k);
            let dk = matmul_at(&dscores, &q);

            for t in 0..seq {
                let row = (bi * seq + t) * 3 * h;
                let qdst = row + hd * d;
                let kdst = row + h + hd * d;
                let vdst = row + 2 * h + hd * d;
                dqkv[qdst..qdst + d].copy_from_slice(&dq.data()[t * d..(t + 1) * d]);
                dqkv[kdst..kdst + d].copy_from_slice(&dk.data()[t * d..(t + 1) * d]);
                dqkv[vdst..vdst + d].copy_from_slice(&dv.data()[t * d..(t + 1) * d]);
            }
        }
    }
}

/// Extracts one head's `[s, d]` q/k/v slice as a tensor (oracle path).
fn head_tensor(
    qkv: &[f32],
    bi: usize,
    seq: usize,
    h: usize,
    which: usize,
    hd: usize,
    d: usize,
) -> Tensor {
    let mut out = vec![0.0f32; seq * d];
    gather_head(qkv, bi, seq, h, which, hd, d, &mut out);
    Tensor::from_vec(&[seq, d], out)
}

/// Writes `-inf` above the diagonal of an `[s, s]` score matrix.
pub fn apply_causal_mask(scores: &mut Tensor, seq: usize) {
    let data = scores.data_mut();
    for t in 0..seq {
        for u in (t + 1)..seq {
            data[t * seq + u] = f32::NEG_INFINITY;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::exp_nonpos;

    #[test]
    fn exp_nonpos_tracks_libm_exp_on_the_softmax_range() {
        // Dense grid over the arguments the streaming kernels feed it:
        // non-positive, down past the -87 flush threshold.
        let mut worst = 0.0f64;
        let mut x = -90.0f32;
        while x <= 0.0 {
            let got = exp_nonpos(x) as f64;
            let want = (x as f64).exp();
            if x >= -87.0 {
                let rel = ((got - want) / want).abs();
                worst = worst.max(rel);
            } else {
                // Flushed region: tiny, never negative, never large.
                assert!((0.0..=1.7e-38).contains(&got), "exp_nonpos({x}) = {got}");
            }
            x += 1e-3;
        }
        assert!(worst < 1e-6, "max relative error {worst:e}");
        assert_eq!(exp_nonpos(0.0), 1.0);
        assert_eq!(exp_nonpos(f32::NEG_INFINITY), exp_nonpos(-104.0));
    }
}
