//! Cache-blocked, register-tiled GEMM behind all three matmul variants.
//!
//! Design (see DESIGN.md "Tiled kernels"): the operand layouts
//! (`A`/`Aᵀ` on the left, `B`/`Bᵀ` on the right) differ only in how
//! panels are *packed*; one microkernel serves all four combinations.
//! Panels of A are packed as `[k][MR]` column-major strips and panels of
//! B as `[k][NR]` row-major strips, both zero-padded at the edges, so the
//! microkernel always sees full `MR×NR` tiles and streams both packs
//! linearly.
//!
//! Two microkernels sit behind a runtime dispatch:
//! - an AVX2+FMA kernel (`MR=6`, `NR=16`: 12 ymm accumulators, one
//!   broadcast of A and two loads of B per k step), selected when the CPU
//!   reports `avx2`+`fma` — the build stays at the default target so the
//!   binary still runs on SSE2-only machines;
//! - a portable scalar kernel that accumulates each output element
//!   strictly in k order with separate multiply and add, making it
//!   **bitwise identical** to the naive reference loops.
//!
//! Determinism: every output element is the same sequential-in-k
//! reduction regardless of panel boundaries or thread count, so results
//! are bitwise reproducible across `RATEL_THREADS` settings (the FMA and
//! scalar kernels differ from each other by fused-multiply rounding; the
//! choice is per-machine, not per-run).
//!
//! Parallelism: the caller's thread packs all B strips once, then worker
//! threads own disjoint bands of MR-row panels, packing their own A
//! strips into thread-local scratch ([`crate::scratch`]).

use crate::parallel::num_threads;
use crate::scratch::scratch_f32;

/// Rows per microkernel tile.
pub const MR: usize = 6;
/// Columns per microkernel tile (two 8-float SIMD lanes).
pub const NR: usize = 16;

/// Problems with `m*n*k` at or below this run the naive reference loop:
/// at tiny sizes packing costs more than it saves.
pub const NAIVE_THRESHOLD: usize = 8 * 1024;

/// How the left operand is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutA {
    /// `a` is `[m, k]` row-major; logical `A[i][p] = a[i*k + p]`.
    Normal,
    /// `a` is `[k, m]` row-major and the kernel computes with `aᵀ`;
    /// logical `A[i][p] = a[p*m + i]`.
    Transposed,
}

/// How the right operand is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutB {
    /// `b` is `[k, n]` row-major; logical `B[p][j] = b[p*n + j]`.
    Normal,
    /// `b` is `[n, k]` row-major and the kernel computes with `bᵀ`;
    /// logical `B[p][j] = b[j*k + p]`.
    Transposed,
}

/// `out[m,n] = A[m,k] @ B[k,n]` with the given operand layouts,
/// dispatching between the naive reference (tiny problems) and the
/// tiled, multi-threaded path. `out` is fully overwritten.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    la: LayoutA,
    b: &[f32],
    lb: LayoutB,
    out: &mut [f32],
) {
    check_dims(m, k, n, a, b, out);
    if m * n * k <= NAIVE_THRESHOLD {
        gemm_reference(m, k, n, a, la, b, lb, out);
    } else {
        gemm_tiled(m, k, n, a, la, b, lb, out);
    }
}

/// Naive triple-loop reference — the oracle the tiled path is tested
/// against. No zero-skip shortcuts: `0.0 * inf` and NaNs propagate per
/// IEEE 754, and latency is data-independent.
#[allow(clippy::too_many_arguments)]
pub fn gemm_reference(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    la: LayoutA,
    b: &[f32],
    lb: LayoutB,
    out: &mut [f32],
) {
    check_dims(m, k, n, a, b, out);
    out.iter_mut().for_each(|o| *o = 0.0);
    match (la, lb) {
        (LayoutA::Normal, LayoutB::Normal) => {
            // i-k-j: inner loop streams b's row and out's row.
            for i in 0..m {
                let out_row = &mut out[i * n..(i + 1) * n];
                for p in 0..k {
                    let aip = a[i * k + p];
                    let b_row = &b[p * n..(p + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += aip * bv;
                    }
                }
            }
        }
        (LayoutA::Transposed, LayoutB::Normal) => {
            // k-i-j: both a's and b's row are streamed per k step.
            for p in 0..k {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for (i, &av) in a_row.iter().enumerate() {
                    let out_row = &mut out[i * n..(i + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        }
        (LayoutA::Normal, LayoutB::Transposed) => {
            // i-j-k: dot product of two contiguous rows.
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    out[i * n + j] = acc;
                }
            }
        }
        (LayoutA::Transposed, LayoutB::Transposed) => {
            for i in 0..m {
                for j in 0..n {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (p, &bv) in b_row.iter().enumerate() {
                        acc += a[p * m + i] * bv;
                    }
                    out[i * n + j] = acc;
                }
            }
        }
    }
}

/// Single-threaded tiled GEMM for callers that are already inside a
/// worker thread (e.g. the per-`(batch, head)` attention units): same
/// packing and microkernel as [`gemm_tiled`], but never spawns, so nested
/// use does not oversubscribe the machine. Bitwise identical to
/// [`gemm_tiled`] at any thread count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_serial(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    la: LayoutA,
    b: &[f32],
    lb: LayoutB,
    out: &mut [f32],
) {
    check_dims(m, k, n, a, b, out);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.iter_mut().for_each(|o| *o = 0.0);
        return;
    }
    let nstrips = n.div_ceil(NR);
    let mut bpack = scratch_f32(nstrips * k * NR);
    for (s, strip) in bpack.chunks_exact_mut(k * NR).enumerate() {
        pack_b(k, n, b, lb, s * NR, strip);
    }
    run_band(0, m, k, n, a, la, &bpack, out);
}

/// Number of f32s a full [`pack_b_full`] pre-pack of a `[k, n]` right
/// operand occupies (whole `NR`-column strips, zero-padded).
pub(crate) fn packed_b_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * k * NR
}

/// Packs all of B once into `NR`-column strips for repeated
/// [`gemm_serial_packed`] calls over column sub-ranges. The strip for
/// columns `[s*NR, (s+1)*NR)` lives at `out[s*k*NR..(s+1)*k*NR]`.
pub(crate) fn pack_b_full(k: usize, n: usize, b: &[f32], lb: LayoutB, out: &mut [f32]) {
    assert_eq!(b.len(), k * n, "gemm rhs size");
    assert_eq!(out.len(), packed_b_len(k, n), "packed rhs size");
    for (s, strip) in out.chunks_exact_mut(k * NR).enumerate() {
        pack_b(k, n, b, lb, s * NR, strip);
    }
}

/// [`gemm_serial`] against an already-packed right operand: `bpack` are
/// the [`pack_b_full`] strips covering columns `[j0, j0 + n)` of the
/// original operand, where `j0` (the slice start the caller cut at) is a
/// multiple of `NR`. Skipping the per-call pack is what lets repeated
/// small-tile GEMMs against one operand — the attention kernels' K/V
/// panels — run at large-GEMM efficiency; the microkernel consumes
/// identical packed bytes, so results are bitwise equal to
/// [`gemm_serial`] on the equivalent unpacked tile.
pub(crate) fn gemm_serial_packed(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    la: LayoutA,
    bpack: &[f32],
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm lhs size");
    assert_eq!(bpack.len(), packed_b_len(k, n), "packed rhs size");
    assert_eq!(out.len(), m * n, "gemm out size");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.iter_mut().for_each(|o| *o = 0.0);
        return;
    }
    run_band(0, m, k, n, a, la, bpack, out);
}

/// `out[m,n] = A[m,k] @ B16[k,n]` where the right operand is IEEE binary16
/// bit patterns: the pack step decodes f16 panels directly into the
/// `[k][NR]` strips (chunked AVX2 decode from `dtype.rs` on contiguous
/// rows), so staged half-precision blobs feed the microkernel without a
/// full-f32 materialization buffer. Bitwise identical to decoding all of
/// `b` up front and calling [`gemm`] on the result.
#[allow(clippy::too_many_arguments)]
pub fn gemm_f16b(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    la: LayoutA,
    b: &[u16],
    lb: LayoutB,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm lhs size");
    assert_eq!(b.len(), k * n, "gemm rhs size");
    assert_eq!(out.len(), m * n, "gemm out size");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.iter_mut().for_each(|o| *o = 0.0);
        return;
    }
    let nstrips = n.div_ceil(NR);
    let mut bpack = scratch_f32(nstrips * k * NR);
    for (s, strip) in bpack.chunks_exact_mut(k * NR).enumerate() {
        pack_b_f16(k, n, b, lb, s * NR, strip);
    }
    let bpack = &bpack[..];

    let panels = m.div_ceil(MR);
    let threads = num_threads().min(panels);
    if threads <= 1 {
        run_band(0, m, k, n, a, la, bpack, out);
        return;
    }
    let band_rows = panels.div_ceil(threads) * MR;
    crossbeam::thread::scope(|s| {
        let mut rest = out;
        let mut i0 = 0usize;
        while !rest.is_empty() {
            let rows = band_rows.min(rest.len() / n);
            let (band, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let start = i0;
            s.spawn(move |_| run_band(start, rows, k, n, a, la, bpack, band));
            i0 += rows;
        }
    })
    .expect("gemm worker panicked");
}

/// The tiled, multi-threaded path, exposed separately so tests can force
/// it below [`NAIVE_THRESHOLD`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_tiled(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    la: LayoutA,
    b: &[f32],
    lb: LayoutB,
    out: &mut [f32],
) {
    check_dims(m, k, n, a, b, out);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.iter_mut().for_each(|o| *o = 0.0);
        return;
    }
    let nstrips = n.div_ceil(NR);
    let mut bpack = scratch_f32(nstrips * k * NR);
    for (s, strip) in bpack.chunks_exact_mut(k * NR).enumerate() {
        pack_b(k, n, b, lb, s * NR, strip);
    }
    let bpack = &bpack[..];

    let panels = m.div_ceil(MR);
    let threads = num_threads().min(panels);
    if threads <= 1 {
        run_band(0, m, k, n, a, la, bpack, out);
        return;
    }
    // Bands are whole MR-row panels; per-element reduction order is
    // unaffected by the banding, so any split is bitwise equivalent.
    let band_rows = panels.div_ceil(threads) * MR;
    crossbeam::thread::scope(|s| {
        let mut rest = out;
        let mut i0 = 0usize;
        while !rest.is_empty() {
            let rows = band_rows.min(rest.len() / n);
            let (band, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let start = i0;
            s.spawn(move |_| run_band(start, rows, k, n, a, la, bpack, band));
            i0 += rows;
        }
    })
    .expect("gemm worker panicked");
}

/// Computes `rows` output rows starting at global row `i0` into `band`
/// (a `[rows, n]` slice of the output).
#[allow(clippy::too_many_arguments)]
fn run_band(
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
    a: &[f32],
    la: LayoutA,
    bpack: &[f32],
    band: &mut [f32],
) {
    let use_fma = fma_available();
    let nstrips = n.div_ceil(NR);
    let mut apack = scratch_f32(k * MR);
    let mut acc = [[0.0f32; NR]; MR];
    let mut r0 = 0usize;
    while r0 < rows {
        let h = MR.min(rows - r0);
        pack_a(k, a, la, i0 + r0, h, &mut apack);
        for s in 0..nstrips {
            let j0 = s * NR;
            let w = NR.min(n - j0);
            let bstrip = &bpack[s * k * NR..(s + 1) * k * NR];
            if use_fma {
                // SAFETY: gated on runtime detection of avx2+fma.
                unsafe { microkernel_fma(k, &apack, bstrip, &mut acc) };
            } else {
                microkernel_scalar(k, &apack, bstrip, &mut acc);
            }
            for (r, acc_row) in acc.iter().enumerate().take(h) {
                let dst = &mut band[(r0 + r) * n + j0..(r0 + r) * n + j0 + w];
                dst.copy_from_slice(&acc_row[..w]);
            }
        }
        r0 += MR;
    }
}

/// Packs the `h`-row strip of logical A starting at row `i0` into
/// `out[k][MR]`, zero-padding rows `h..MR`.
fn pack_a(k: usize, a: &[f32], la: LayoutA, i0: usize, h: usize, out: &mut [f32]) {
    match la {
        LayoutA::Normal => {
            for (p, dst) in out.chunks_exact_mut(MR).enumerate().take(k) {
                for (r, d) in dst.iter_mut().enumerate() {
                    *d = if r < h { a[(i0 + r) * k + p] } else { 0.0 };
                }
            }
        }
        LayoutA::Transposed => {
            // a is [k, m]: the strip is contiguous per k row.
            let m = a.len() / k;
            for (p, dst) in out.chunks_exact_mut(MR).enumerate().take(k) {
                let src = &a[p * m + i0..p * m + i0 + h];
                dst[..h].copy_from_slice(src);
                dst[h..].iter_mut().for_each(|d| *d = 0.0);
            }
        }
    }
}

/// Packs the column strip of logical B starting at column `j0` into
/// `out[k][NR]`, zero-padding columns beyond `n`.
fn pack_b(k: usize, n: usize, b: &[f32], lb: LayoutB, j0: usize, out: &mut [f32]) {
    let w = NR.min(n - j0);
    match lb {
        LayoutB::Normal => {
            for (p, dst) in out.chunks_exact_mut(NR).enumerate().take(k) {
                let src = &b[p * n + j0..p * n + j0 + w];
                dst[..w].copy_from_slice(src);
                dst[w..].iter_mut().for_each(|d| *d = 0.0);
            }
        }
        LayoutB::Transposed => {
            // b is [n, k]: gather column p of each of the w rows.
            for (p, dst) in out.chunks_exact_mut(NR).enumerate().take(k) {
                for (c, d) in dst.iter_mut().enumerate() {
                    *d = if c < w { b[(j0 + c) * k + p] } else { 0.0 };
                }
            }
        }
    }
}

/// Packs the column strip of logical B starting at column `j0` into
/// `out[k][NR]`, decoding binary16 bits on the fly. The decode is the
/// same `f16_bits_to_f32` everywhere (chunked/AVX2 on contiguous rows),
/// so the packed strip is bitwise identical to packing a pre-decoded `b`.
fn pack_b_f16(k: usize, n: usize, b: &[u16], lb: LayoutB, j0: usize, out: &mut [f32]) {
    let w = NR.min(n - j0);
    match lb {
        LayoutB::Normal => {
            for (p, dst) in out.chunks_exact_mut(NR).enumerate().take(k) {
                let src = &b[p * n + j0..p * n + j0 + w];
                crate::dtype::f16_bits_to_f32_slice(src, &mut dst[..w]);
                dst[w..].iter_mut().for_each(|d| *d = 0.0);
            }
        }
        LayoutB::Transposed => {
            // b is [n, k]: gather column p of each of the w rows.
            for (p, dst) in out.chunks_exact_mut(NR).enumerate().take(k) {
                for (c, d) in dst.iter_mut().enumerate() {
                    *d = if c < w {
                        crate::dtype::f16_bits_to_f32(b[(j0 + c) * k + p])
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Portable microkernel: per-element accumulation is sequential in k
/// with separate multiply and add — bitwise identical to the reference.
fn microkernel_scalar(k: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    let mut c = [[0.0f32; NR]; MR];
    for p in 0..k {
        let arow = &ap[p * MR..p * MR + MR];
        let brow = &bp[p * NR..p * NR + NR];
        for (r, crow) in c.iter_mut().enumerate() {
            let av = arow[r];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    *acc = c;
}

/// Runtime AVX2+FMA check shared with the attention exp kernels.
#[cfg(target_arch = "x86_64")]
pub(crate) fn fma_available() -> bool {
    static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVAILABLE.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
}

#[cfg(not(target_arch = "x86_64"))]
#[allow(dead_code)]
pub(crate) fn fma_available() -> bool {
    false
}

/// Runtime AVX2 check shared with the f16 decode path in `dtype.rs`.
#[cfg(target_arch = "x86_64")]
pub(crate) fn avx2_available() -> bool {
    // Under miri the AVX2 intrinsics are unsupported, and
    // RATEL_FORCE_SCALAR lets CI (or a bisecting human) pin the scalar
    // kernels on any machine — both force the software paths, which are
    // bitwise-identical to the SIMD ones by construction.
    if cfg!(miri) || std::env::var_os("RATEL_FORCE_SCALAR").is_some() {
        return false;
    }
    static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVAILABLE.get_or_init(|| is_x86_feature_detected!("avx2"))
}

#[cfg(not(target_arch = "x86_64"))]
#[allow(dead_code)]
pub(crate) fn avx2_available() -> bool {
    false
}

/// AVX2+FMA microkernel: 12 ymm accumulators for the 6×16 tile, one
/// broadcast of A and two 8-lane loads of B per k step.
///
/// # Safety
/// Caller must ensure the CPU supports `avx2` and `fma`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_fma(k: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= k * MR && bp.len() >= k * NR);
    let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
    let mut apk = ap.as_ptr();
    let mut bpk = bp.as_ptr();
    for _ in 0..k {
        let b0 = _mm256_loadu_ps(bpk);
        let b1 = _mm256_loadu_ps(bpk.add(8));
        for (r, cr) in c.iter_mut().enumerate() {
            let av = _mm256_broadcast_ss(&*apk.add(r));
            cr[0] = _mm256_fmadd_ps(av, b0, cr[0]);
            cr[1] = _mm256_fmadd_ps(av, b1, cr[1]);
        }
        apk = apk.add(MR);
        bpk = bpk.add(NR);
    }
    for (r, cr) in c.iter().enumerate() {
        _mm256_storeu_ps(acc[r].as_mut_ptr(), cr[0]);
        _mm256_storeu_ps(acc[r].as_mut_ptr().add(8), cr[1]);
    }
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn microkernel_fma(_k: usize, _ap: &[f32], _bp: &[f32], _acc: &mut [[f32; NR]; MR]) {
    unreachable!("fma path is never selected off x86_64")
}

fn check_dims(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm lhs size");
    assert_eq!(b.len(), k * n, "gemm rhs size");
    assert_eq!(out.len(), m * n, "gemm out size");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    fn layouts() -> [(LayoutA, LayoutB); 4] {
        [
            (LayoutA::Normal, LayoutB::Normal),
            (LayoutA::Transposed, LayoutB::Normal),
            (LayoutA::Normal, LayoutB::Transposed),
            (LayoutA::Transposed, LayoutB::Transposed),
        ]
    }

    fn a_len(la: LayoutA, m: usize, k: usize) -> usize {
        match la {
            LayoutA::Normal => m * k,
            LayoutA::Transposed => k * m,
        }
    }

    #[test]
    fn tiled_matches_reference_all_layouts_and_edges() {
        // Shapes straddling the MR/NR tile edges.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (6, 8, 16),
            (7, 5, 17),
            (13, 9, 31),
            (12, 16, 32),
            (5, 33, 3),
        ] {
            for (la, lb) in layouts() {
                let a = fill(a_len(la, m, k), 1 + m as u64);
                let b = fill(k * n, 2 + n as u64);
                let mut want = vec![0.0f32; m * n];
                let mut got = vec![0.0f32; m * n];
                gemm_reference(m, k, n, &a, la, &b, lb, &mut want);
                gemm_tiled(m, k, n, &a, la, &b, lb, &mut got);
                let fma = fma_available();
                for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                    if fma {
                        // FMA fuses the rounding; allow a tiny bound.
                        let tol = 1e-5 * (1.0 + w.abs());
                        assert!(
                            (w - g).abs() <= tol,
                            "({m},{k},{n}) {la:?}/{lb:?} elem {i}: {w} vs {g}"
                        );
                    } else {
                        assert_eq!(
                            w.to_bits(),
                            g.to_bits(),
                            "({m},{k},{n}) {la:?}/{lb:?} elem {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tiled_bitwise_deterministic_across_thread_counts() {
        let (m, k, n) = (23, 17, 29);
        let a = fill(m * k, 7);
        let b = fill(k * n, 8);
        let mut base = vec![0.0f32; m * n];
        crate::parallel::set_num_threads(1);
        gemm_tiled(m, k, n, &a, LayoutA::Normal, &b, LayoutB::Normal, &mut base);
        for t in [2usize, 3, 4] {
            crate::parallel::set_num_threads(t);
            let mut out = vec![0.0f32; m * n];
            gemm_tiled(m, k, n, &a, LayoutA::Normal, &b, LayoutB::Normal, &mut out);
            for (i, (x, y)) in base.iter().zip(&out).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "threads={t} elem {i}");
            }
        }
        crate::parallel::set_num_threads(1);
    }

    #[test]
    fn serial_matches_tiled_bitwise() {
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (7, 5, 17), (23, 17, 29)] {
            for (la, lb) in layouts() {
                let a = fill(a_len(la, m, k), 11 + m as u64);
                let b = fill(k * n, 13 + n as u64);
                let mut want = vec![0.0f32; m * n];
                let mut got = vec![0.0f32; m * n];
                crate::parallel::set_num_threads(4);
                gemm_tiled(m, k, n, &a, la, &b, lb, &mut want);
                crate::parallel::set_num_threads(1);
                gemm_serial(m, k, n, &a, la, &b, lb, &mut got);
                for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                    assert_eq!(w.to_bits(), g.to_bits(), "({m},{k},{n}) elem {i}");
                }
            }
        }
    }

    #[test]
    fn fused_f16_pack_matches_decode_then_gemm_bitwise() {
        use crate::dtype::{f16_bits_to_f32, f32_to_f16_bits};
        for &(m, k, n) in &[
            (1usize, 3usize, 1usize),
            (7, 5, 17),
            (13, 33, 31),
            (48, 64, 40),
        ] {
            for lb in [LayoutB::Normal, LayoutB::Transposed] {
                let a = fill(m * k, 3 + m as u64);
                let bf: Vec<f32> = fill(k * n, 5 + n as u64);
                let bits: Vec<u16> = bf.iter().map(|&v| f32_to_f16_bits(v)).collect();
                let decoded: Vec<f32> = bits.iter().map(|&b| f16_bits_to_f32(b)).collect();
                let mut want = vec![0.0f32; m * n];
                let mut got = vec![0.0f32; m * n];
                // Same code path on both sides (always-tiled), so the
                // comparison is bitwise even under FMA.
                gemm_tiled(m, k, n, &a, LayoutA::Normal, &decoded, lb, &mut want);
                gemm_f16b(m, k, n, &a, LayoutA::Normal, &bits, lb, &mut got);
                for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                    assert_eq!(w.to_bits(), g.to_bits(), "({m},{k},{n}) {lb:?} elem {i}");
                }
            }
        }
    }

    #[test]
    fn fused_f16_pack_propagates_specials() {
        let (m, k, n) = (4usize, 6usize, 9usize);
        let a = fill(m * k, 17);
        let mut bf = fill(k * n, 19);
        bf[0] = f32::NAN;
        bf[7] = f32::INFINITY;
        bf[13] = f32::NEG_INFINITY;
        let bits: Vec<u16> = bf
            .iter()
            .map(|&v| crate::dtype::f32_to_f16_bits(v))
            .collect();
        let decoded: Vec<f32> = bits
            .iter()
            .map(|&b| crate::dtype::f16_bits_to_f32(b))
            .collect();
        let mut want = vec![0.0f32; m * n];
        let mut got = vec![0.0f32; m * n];
        gemm_tiled(
            m,
            k,
            n,
            &a,
            LayoutA::Normal,
            &decoded,
            LayoutB::Normal,
            &mut want,
        );
        gemm_f16b(
            m,
            k,
            n,
            &a,
            LayoutA::Normal,
            &bits,
            LayoutB::Normal,
            &mut got,
        );
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
        assert!(got.iter().any(|v| v.is_nan()));
    }

    #[test]
    fn k_zero_writes_zeros() {
        let mut out = vec![1.0f32; 6];
        gemm_tiled(
            2,
            0,
            3,
            &[],
            LayoutA::Normal,
            &[],
            LayoutB::Normal,
            &mut out,
        );
        assert!(out.iter().all(|&v| v == 0.0));
    }
}
