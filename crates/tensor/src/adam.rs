//! The Adam optimizer, executed on the CPU in full precision.
//!
//! This is the "out-of-core CPU Adam" of the paper: it owns the fp32 first
//! and second moments (`OS32` of Table II), consumes fp16 gradients, updates
//! fp32 master parameters, and its state is a flat `[m..., v...]` buffer so
//! the whole thing can be spilled to and restored from the SSD tier as one
//! blob.

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamParams {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay of the first moment.
    pub beta1: f32,
    /// Exponential decay of the second moment.
    pub beta2: f32,
    /// Denominator epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW); 0 disables it.
    pub weight_decay: f32,
}

impl Default for AdamParams {
    fn default() -> Self {
        AdamParams {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Adam state for one layer's flat parameter vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    /// First moment, one entry per parameter.
    pub m: Vec<f32>,
    /// Second moment, one entry per parameter.
    pub v: Vec<f32>,
    /// Completed steps (bias correction uses `t + 1`).
    pub t: u64,
}

impl Adam {
    /// Fresh state for `n` parameters.
    pub fn new(n: usize) -> Self {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Applies one Adam update to `params` given `grads`.
    ///
    /// The update is elementwise, so it is split into contiguous bands —
    /// one per worker thread — without changing any result bit; see
    /// [`crate::parallel`].
    ///
    /// # Panics
    /// If lengths disagree with the state.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32], hp: &AdamParams) {
        assert_eq!(params.len(), self.m.len(), "param/state length");
        assert_eq!(grads.len(), self.m.len(), "grad/state length");
        self.t += 1;
        let t = self.t as i32;
        let bc1 = 1.0 - hp.beta1.powi(t);
        let bc2 = 1.0 - hp.beta2.powi(t);
        let n = params.len();
        let threads = crate::parallel::num_threads();
        if threads <= 1 || n < 2 * crate::parallel::MIN_BLOCK {
            step_band(params, grads, &mut self.m, &mut self.v, hp, bc1, bc2);
            return;
        }
        let per = n.div_ceil(threads);
        crossbeam::thread::scope(|s| {
            let mut p_rest = &mut params[..];
            let mut m_rest = &mut self.m[..];
            let mut v_rest = &mut self.v[..];
            let mut off = 0usize;
            while !p_rest.is_empty() {
                let take = per.min(p_rest.len());
                let (pb, pt) = p_rest.split_at_mut(take);
                let (mb, mt) = m_rest.split_at_mut(take);
                let (vb, vt) = v_rest.split_at_mut(take);
                p_rest = pt;
                m_rest = mt;
                v_rest = vt;
                let gb = &grads[off..off + take];
                s.spawn(move |_| step_band(pb, gb, mb, vb, hp, bc1, bc2));
                off += take;
            }
        })
        .expect("adam worker panicked");
    }

    /// Serializes the moments as one flat `[m..., v...]` f32 buffer — the
    /// OS32 blob stored in the SSD tier.
    ///
    /// Allocates a fresh buffer; hot paths should use
    /// [`Adam::write_flat_into`] with a reused buffer instead.
    pub fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.m.len() * 2);
        out.extend_from_slice(&self.m);
        out.extend_from_slice(&self.v);
        out
    }

    /// Writes the flat `[m..., v...]` blob into `out`, resizing it only
    /// on first use — the allocation-free counterpart of
    /// [`Adam::to_flat`] for the per-step optimizer loop.
    pub fn write_flat_into(&self, out: &mut Vec<f32>) {
        let n = self.m.len();
        out.resize(2 * n, 0.0);
        out[..n].copy_from_slice(&self.m);
        out[n..].copy_from_slice(&self.v);
    }

    /// Restores moments from [`Adam::to_flat`] output; `t` is tracked by
    /// the caller per layer.
    ///
    /// Allocates fresh moment vectors; hot paths should keep one `Adam`
    /// alive and use [`Adam::load_flat`] instead.
    ///
    /// # Panics
    /// If the buffer length is odd or disagrees with `n`.
    pub fn from_flat(flat: &[f32], t: u64) -> Self {
        let mut adam = Adam::new(0);
        adam.load_flat(flat, t);
        adam
    }

    /// Reloads moments from a flat `[m..., v...]` blob in place, reusing
    /// the existing moment buffers when the size matches — the
    /// allocation-free counterpart of [`Adam::from_flat`].
    ///
    /// # Panics
    /// If the buffer length is odd.
    pub fn load_flat(&mut self, flat: &[f32], t: u64) {
        assert!(
            flat.len().is_multiple_of(2),
            "flat Adam state must be [m..., v...]"
        );
        let n = flat.len() / 2;
        self.m.resize(n, 0.0);
        self.v.resize(n, 0.0);
        self.m.copy_from_slice(&flat[..n]);
        self.v.copy_from_slice(&flat[n..]);
        self.t = t;
    }
}

/// The per-element Adam update over one contiguous band.
fn step_band(
    params: &mut [f32],
    grads: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    hp: &AdamParams,
    bc1: f32,
    bc2: f32,
) {
    for i in 0..params.len() {
        let g = grads[i];
        m[i] = hp.beta1 * m[i] + (1.0 - hp.beta1) * g;
        v[i] = hp.beta2 * v[i] + (1.0 - hp.beta2) * g * g;
        let mhat = m[i] / bc1;
        let vhat = v[i] / bc2;
        params[i] -= hp.lr * (mhat / (vhat.sqrt() + hp.eps) + hp.weight_decay * params[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_moves_by_lr_against_gradient_sign() {
        let mut adam = Adam::new(2);
        let mut p = vec![1.0f32, -1.0];
        let g = vec![0.5f32, -0.5];
        let hp = AdamParams {
            lr: 0.1,
            ..Default::default()
        };
        adam.step(&mut p, &g, &hp);
        // On step one, mhat/vhat = g/|g| so the move is ~lr * sign(g).
        assert!((p[0] - 0.9).abs() < 1e-3, "{}", p[0]);
        assert!((p[1] + 0.9).abs() < 1e-3, "{}", p[1]);
    }

    #[test]
    fn converges_on_a_quadratic() {
        let mut adam = Adam::new(1);
        let mut p = vec![5.0f32];
        let hp = AdamParams {
            lr: 0.1,
            ..Default::default()
        };
        for _ in 0..500 {
            let g = vec![2.0 * p[0]]; // d/dp p^2
            adam.step(&mut p, &g, &hp);
        }
        assert!(p[0].abs() < 1e-2, "{}", p[0]);
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut adam = Adam::new(1);
        let mut p = vec![1.0f32];
        let hp = AdamParams {
            lr: 0.1,
            weight_decay: 0.5,
            ..Default::default()
        };
        adam.step(&mut p, &[0.0], &hp);
        assert!(p[0] < 1.0);
    }

    #[test]
    fn state_round_trips_through_flat_blob() {
        let mut adam = Adam::new(4);
        let mut p = vec![1.0f32; 4];
        adam.step(&mut p, &[0.1, 0.2, 0.3, 0.4], &AdamParams::default());
        let flat = adam.to_flat();
        let restored = Adam::from_flat(&flat, adam.t);
        assert_eq!(restored, adam);
    }

    #[test]
    fn sequential_updates_are_deterministic() {
        let run = || {
            let mut adam = Adam::new(3);
            let mut p = vec![0.3f32, -0.7, 1.1];
            for s in 0..10 {
                let g: Vec<f32> = p.iter().map(|v| v * 0.1 + s as f32 * 0.01).collect();
                adam.step(&mut p, &g, &AdamParams::default());
            }
            p
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn load_flat_and_write_flat_into_match_allocating_forms() {
        let mut adam = Adam::new(8);
        let mut p = vec![0.5f32; 8];
        let g: Vec<f32> = (0..8).map(|i| i as f32 * 0.1 - 0.3).collect();
        adam.step(&mut p, &g, &AdamParams::default());

        let mut blob = Vec::new();
        adam.write_flat_into(&mut blob);
        assert_eq!(blob, adam.to_flat());

        let mut reused = Adam::new(8);
        reused.load_flat(&blob, adam.t);
        assert_eq!(reused, adam);
        // Reload into the same instance: no growth needed, same result.
        let cap_m = reused.m.capacity();
        reused.load_flat(&blob, adam.t);
        assert_eq!(reused, adam);
        assert_eq!(reused.m.capacity(), cap_m);
    }

    #[test]
    fn parallel_step_is_bitwise_equal_to_serial() {
        let n = 20_000; // above the parallel threshold at 4 threads
        let g: Vec<f32> = (0..n)
            .map(|i| ((i * 37) % 101) as f32 * 0.01 - 0.5)
            .collect();
        let run = |threads: usize| {
            crate::parallel::set_num_threads(threads);
            let mut adam = Adam::new(n);
            let mut p = vec![0.25f32; n];
            for _ in 0..3 {
                adam.step(&mut p, &g, &AdamParams::default());
            }
            crate::parallel::set_num_threads(1);
            (p, adam)
        };
        let (p1, a1) = run(1);
        let (p4, a4) = run(4);
        assert!(p1.iter().zip(&p4).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(a1, a4);
    }

    #[test]
    #[should_panic(expected = "grad/state length")]
    fn mismatched_grads_panic() {
        let mut adam = Adam::new(2);
        let mut p = vec![0.0f32; 2];
        adam.step(&mut p, &[1.0], &AdamParams::default());
    }
}
