//! Numerical primitives: matmuls, activations, normalization, embedding and
//! loss, each with an explicit backward.
//!
//! Conventions: matrices are row-major; `Linear` weights are laid out
//! `[in, out]` so that `y = x @ w + b`, giving the backward identities
//! `dx = dy @ w^T` and `dw = x^T @ dy`.

use crate::gemm::{self, LayoutA, LayoutB};
use crate::parallel;
use crate::tensor::Tensor;

/// `c[m,n] = a[m,k] @ b[k,n]`.
///
/// Runs the tiled, multi-threaded GEMM ([`crate::gemm`]); small problems
/// fall back to the naive loop. No zero-skip shortcuts anywhere: NaN and
/// Inf propagate per IEEE 754 (`0.0 * inf = NaN`), which matters because
/// fp16-emulated overflow surfaces as Inf and must not be silently
/// swallowed by a "sparse" fast path.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    gemm::gemm(
        m,
        k,
        n,
        a.data(),
        LayoutA::Normal,
        b.data(),
        LayoutB::Normal,
        &mut out,
    );
    Tensor::from_vec(&[m, n], out)
}

/// `c[m,n] = a[k,m]^T @ b[k,n]` — the `dw = x^T @ dy` shape.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_at lhs");
    let (k2, n) = dims2(b, "matmul_at rhs");
    assert_eq!(k, k2, "matmul_at inner dims: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    gemm::gemm(
        m,
        k,
        n,
        a.data(),
        LayoutA::Transposed,
        b.data(),
        LayoutB::Normal,
        &mut out,
    );
    Tensor::from_vec(&[m, n], out)
}

/// `c[m,n] = a[m,k] @ b[n,k]^T` — the `dx = dy @ w^T` shape.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_bt lhs");
    let (n, k2) = dims2(b, "matmul_bt rhs");
    assert_eq!(k, k2, "matmul_bt inner dims: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    gemm::gemm(
        m,
        k,
        n,
        a.data(),
        LayoutA::Normal,
        b.data(),
        LayoutB::Transposed,
        &mut out,
    );
    Tensor::from_vec(&[m, n], out)
}

/// Naive reference matmuls — the oracle the tiled kernels are verified
/// against (see `tests/kernel_equivalence.rs`). Single-threaded,
/// unblocked, and free of shortcuts, so their IEEE behaviour is the
/// plain textbook reduction.
pub mod naive {
    use super::{dims2, LayoutA, LayoutB, Tensor};
    use crate::gemm::gemm_reference;

    /// Reference `a[m,k] @ b[k,n]`.
    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = dims2(a, "matmul lhs");
        let (_, n) = dims2(b, "matmul rhs");
        let mut out = vec![0.0f32; m * n];
        gemm_reference(
            m,
            k,
            n,
            a.data(),
            LayoutA::Normal,
            b.data(),
            LayoutB::Normal,
            &mut out,
        );
        Tensor::from_vec(&[m, n], out)
    }

    /// Reference `a[k,m]^T @ b[k,n]`.
    pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
        let (k, m) = dims2(a, "matmul_at lhs");
        let (_, n) = dims2(b, "matmul_at rhs");
        let mut out = vec![0.0f32; m * n];
        gemm_reference(
            m,
            k,
            n,
            a.data(),
            LayoutA::Transposed,
            b.data(),
            LayoutB::Normal,
            &mut out,
        );
        Tensor::from_vec(&[m, n], out)
    }

    /// Reference `a[m,k] @ b[n,k]^T`.
    pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = dims2(a, "matmul_bt lhs");
        let (n, _) = dims2(b, "matmul_bt rhs");
        let mut out = vec![0.0f32; m * n];
        gemm_reference(
            m,
            k,
            n,
            a.data(),
            LayoutA::Normal,
            b.data(),
            LayoutB::Transposed,
            &mut out,
        );
        Tensor::from_vec(&[m, n], out)
    }
}

/// Adds a `[cols]` bias to every row of a `[rows, cols]` tensor, in place.
pub fn add_bias(x: &mut Tensor, bias: &Tensor) {
    let (_, c) = dims2(x, "add_bias input");
    assert_eq!(bias.shape(), &[c], "bias shape");
    let bd = bias.data();
    for row in x.data_mut().chunks_exact_mut(c) {
        for (v, &b) in row.iter_mut().zip(bd) {
            *v += b;
        }
    }
}

/// Sums gradient rows into a `[cols]` bias gradient.
pub fn bias_grad(dy: &Tensor) -> Tensor {
    let (_, c) = dims2(dy, "bias_grad input");
    let mut out = vec![0.0f32; c];
    for row in dy.data().chunks_exact(c) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
    Tensor::from_vec(&[c], out)
}

/// GELU activation (tanh approximation, as used by GPT-2/3).
/// Elementwise, so the parallel split cannot change results.
pub fn gelu(x: &Tensor) -> Tensor {
    let xd = x.data();
    let mut out = vec![0.0f32; xd.len()];
    parallel::par_blocks(&mut out, |off, block| {
        let src = &xd[off..off + block.len()];
        for (o, &v) in block.iter_mut().zip(src) {
            *o = gelu_scalar(v);
        }
    });
    Tensor::from_vec(x.shape(), out)
}

/// Backward of [`gelu`]: needs the forward *input*.
pub fn gelu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(x.shape(), dy.shape(), "gelu_backward shapes");
    let xd = x.data();
    let dyd = dy.data();
    let mut out = vec![0.0f32; xd.len()];
    parallel::par_blocks(&mut out, |off, block| {
        for (i, o) in block.iter_mut().enumerate() {
            *o = gelu_grad_scalar(xd[off + i]) * dyd[off + i];
        }
    });
    Tensor::from_vec(x.shape(), out)
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)
const GELU_A: f32 = 0.044_715;

fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + GELU_A * x * x * x)).tanh())
}

fn gelu_grad_scalar(x: f32) -> f32 {
    let u = GELU_C * (x + GELU_A * x * x * x);
    let t = u.tanh();
    let du = GELU_C * (1.0 + 3.0 * GELU_A * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Row-wise numerically stable softmax of a `[rows, cols]` buffer, in
/// place. Slice-level core of [`softmax_rows`], allocation-free so hot
/// paths can run it on scratch-pool buffers.
///
/// # Panics
/// If `data.len()` is not a multiple of `cols`.
pub fn softmax_rows_inplace(data: &mut [f32], cols: usize) {
    assert!(cols > 0, "softmax cols must be positive");
    assert!(
        data.len().is_multiple_of(cols),
        "softmax length {} not a multiple of cols {cols}",
        data.len()
    );
    for row in data.chunks_exact_mut(cols) {
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Row-wise numerically stable softmax of a `[rows, cols]` tensor.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let (_, c) = dims2(x, "softmax input");
    let mut out = x.data().to_vec();
    softmax_rows_inplace(&mut out, c);
    Tensor::from_vec(x.shape(), out)
}

/// Backward of a row softmax given the forward *output* `probs`:
/// `dx = p * (dy - sum(dy * p))` per row, written into `out`.
/// Slice-level core of [`softmax_backward`], allocation-free so hot paths
/// can run it on scratch-pool buffers.
///
/// # Panics
/// If lengths mismatch or are not a multiple of `cols`.
pub fn softmax_backward_into(probs: &[f32], dy: &[f32], cols: usize, out: &mut [f32]) {
    assert!(cols > 0, "softmax cols must be positive");
    assert_eq!(probs.len(), dy.len(), "softmax_backward shapes");
    assert_eq!(probs.len(), out.len(), "softmax_backward output length");
    assert!(
        probs.len().is_multiple_of(cols),
        "softmax length {} not a multiple of cols {cols}",
        probs.len()
    );
    for ((orow, prow), dyrow) in out
        .chunks_exact_mut(cols)
        .zip(probs.chunks_exact(cols))
        .zip(dy.chunks_exact(cols))
    {
        let dot: f32 = prow.iter().zip(dyrow).map(|(&p, &g)| p * g).sum();
        for ((o, &p), &g) in orow.iter_mut().zip(prow).zip(dyrow) {
            *o = p * (g - dot);
        }
    }
}

/// Backward of [`softmax_rows`] given the forward *output* `probs`:
/// `dx = p * (dy - sum(dy * p))` per row.
pub fn softmax_backward(probs: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(probs.shape(), dy.shape(), "softmax_backward shapes");
    let (_, c) = dims2(probs, "softmax_backward");
    let mut out = vec![0.0f32; probs.len()];
    softmax_backward_into(probs.data(), dy.data(), c, &mut out);
    Tensor::from_vec(probs.shape(), out)
}

/// Saved statistics of a layer-norm forward, needed by its backward.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNormStats {
    /// Per-row mean.
    pub mean: Vec<f32>,
    /// Per-row reciprocal standard deviation.
    pub rstd: Vec<f32>,
}

/// Layer normalization over the last dimension of a `[rows, h]` tensor.
pub fn layernorm(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> (Tensor, LayerNormStats) {
    let (rows, h) = dims2(x, "layernorm input");
    assert_eq!(gamma.shape(), &[h], "gamma shape");
    assert_eq!(beta.shape(), &[h], "beta shape");
    let mut out = vec![0.0f32; rows * h];
    let mut mean = vec![0.0f32; rows];
    let mut rstd = vec![0.0f32; rows];
    let g = gamma.data();
    let b = beta.data();
    let xd = x.data();
    // Each worker owns a contiguous band of rows across all three output
    // buffers; per-row statistics are computed serially inside the row,
    // so the split never changes results.
    layernorm_rows(xd, g, b, eps, h, &mut out, &mut mean, &mut rstd);
    (
        Tensor::from_vec(x.shape(), out),
        LayerNormStats { mean, rstd },
    )
}

#[allow(clippy::too_many_arguments)]
fn layernorm_rows(
    xd: &[f32],
    g: &[f32],
    b: &[f32],
    eps: f32,
    h: usize,
    out: &mut [f32],
    mean: &mut [f32],
    rstd: &mut [f32],
) {
    let rows = mean.len();
    let serial = |row0: usize, out: &mut [f32], mean: &mut [f32], rstd: &mut [f32]| {
        for (r, (orow, (mo, ro))) in out
            .chunks_exact_mut(h)
            .zip(mean.iter_mut().zip(rstd.iter_mut()))
            .enumerate()
        {
            let xrow = &xd[(row0 + r) * h..(row0 + r + 1) * h];
            let m = xrow.iter().sum::<f32>() / h as f32;
            let var = xrow.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / h as f32;
            let rs = 1.0 / (var + eps).sqrt();
            *mo = m;
            *ro = rs;
            for (j, (o, &xv)) in orow.iter_mut().zip(xrow).enumerate() {
                *o = (xv - m) * rs * g[j] + b[j];
            }
        }
    };
    let threads = parallel::num_threads().min(rows.max(1));
    if threads <= 1 || rows <= 1 || out.len() < parallel::MIN_BLOCK {
        serial(0, out, mean, rstd);
        return;
    }
    let per = rows.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        let mut out_rest = out;
        let mut mean_rest = mean;
        let mut rstd_rest = rstd;
        let mut row0 = 0usize;
        let serial = &serial;
        while !out_rest.is_empty() {
            let take = per.min(mean_rest.len());
            let (oband, otail) = out_rest.split_at_mut(take * h);
            let (mband, mtail) = mean_rest.split_at_mut(take);
            let (rband, rtail) = rstd_rest.split_at_mut(take);
            out_rest = otail;
            mean_rest = mtail;
            rstd_rest = rtail;
            let start = row0;
            s.spawn(move |_| serial(start, oband, mband, rband));
            row0 += take;
        }
    })
    .expect("layernorm worker panicked");
}

/// Backward of [`layernorm`]: returns `(dx, dgamma, dbeta)`.
pub fn layernorm_backward(
    x: &Tensor,
    gamma: &Tensor,
    stats: &LayerNormStats,
    dy: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let (rows, h) = dims2(x, "layernorm_backward input");
    assert_eq!(dy.shape(), x.shape(), "layernorm_backward dy");
    let g = gamma.data();
    let mut dx = vec![0.0f32; rows * h];
    let mut dgamma = vec![0.0f32; h];
    let mut dbeta = vec![0.0f32; h];
    for i in 0..rows {
        let xrow = &x.data()[i * h..(i + 1) * h];
        let dyrow = &dy.data()[i * h..(i + 1) * h];
        let m = stats.mean[i];
        let rs = stats.rstd[i];
        // xhat_j = (x_j - m) * rs; dy_hat_j = dy_j * gamma_j
        let mut sum_dyh = 0.0f32;
        let mut sum_dyh_xhat = 0.0f32;
        for j in 0..h {
            let xhat = (xrow[j] - m) * rs;
            let dyh = dyrow[j] * g[j];
            sum_dyh += dyh;
            sum_dyh_xhat += dyh * xhat;
            dgamma[j] += dyrow[j] * xhat;
            dbeta[j] += dyrow[j];
        }
        let inv_h = 1.0 / h as f32;
        let dxrow = &mut dx[i * h..(i + 1) * h];
        for j in 0..h {
            let xhat = (xrow[j] - m) * rs;
            let dyh = dyrow[j] * g[j];
            dxrow[j] = rs * (dyh - inv_h * sum_dyh - xhat * inv_h * sum_dyh_xhat);
        }
    }
    (
        Tensor::from_vec(x.shape(), dx),
        Tensor::from_vec(&[h], dgamma),
        Tensor::from_vec(&[h], dbeta),
    )
}

/// Gathers embedding rows: `out[i] = table[ids[i]]`.
///
/// # Panics
/// If any id is out of range.
pub fn embedding_gather(table: &Tensor, ids: &[usize]) -> Tensor {
    let (v, h) = dims2(table, "embedding table");
    let mut out = vec![0.0f32; ids.len() * h];
    for (orow, &id) in out.chunks_exact_mut(h).zip(ids) {
        assert!(id < v, "token id {id} out of vocab {v}");
        orow.copy_from_slice(&table.data()[id * h..(id + 1) * h]);
    }
    Tensor::from_vec(&[ids.len(), h], out)
}

/// Backward of [`embedding_gather`]: scatter-adds `dy` rows into a
/// zero-initialized table gradient.
pub fn embedding_scatter_add(table_shape: &[usize], ids: &[usize], dy: &Tensor) -> Tensor {
    let v = table_shape[0];
    let h = table_shape[1];
    assert_eq!(dy.shape(), &[ids.len(), h], "embedding grad shape");
    let mut grad = vec![0.0f32; v * h];
    for (dyrow, &id) in dy.data().chunks_exact(h).zip(ids) {
        let grow = &mut grad[id * h..(id + 1) * h];
        for (g, &d) in grow.iter_mut().zip(dyrow) {
            *g += d;
        }
    }
    Tensor::from_vec(table_shape, grad)
}

/// Mean cross-entropy over rows of `logits[n, v]` against `targets[n]`.
/// Returns `(loss, probs)`; the probs are reused by the backward.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    let (n, v) = dims2(logits, "cross_entropy logits");
    assert_eq!(targets.len(), n, "target count");
    let probs = softmax_rows(logits);
    let mut loss = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < v, "target {t} out of vocab {v}");
        let p = probs.data()[i * v + t].max(1e-30);
        loss -= (p as f64).ln();
    }
    ((loss / n as f64) as f32, probs)
}

/// Backward of [`cross_entropy`]: `dlogits = (probs - onehot) / n`.
pub fn cross_entropy_backward(probs: &Tensor, targets: &[usize]) -> Tensor {
    let (n, v) = dims2(probs, "cross_entropy probs");
    let mut d = probs.data().to_vec();
    let inv_n = 1.0 / n as f32;
    for (i, &t) in targets.iter().enumerate() {
        d[i * v + t] -= 1.0;
    }
    for x in &mut d {
        *x *= inv_n;
    }
    Tensor::from_vec(probs.shape(), d)
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().len(),
        2,
        "{what} must be 2-D, got {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference gradient check: perturbs each input element and
    /// compares against the analytic gradient under a scalar loss
    /// `L = sum(out * probe)`.
    fn grad_check<F>(x: &Tensor, analytic: &Tensor, f: F, tol: f32)
    where
        F: Fn(&Tensor) -> f64,
    {
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = ((f(&xp) - f(&xm)) / (2.0 * eps as f64)) as f32;
            let ana = analytic.data()[i];
            let denom = num.abs().max(ana.abs()).max(1.0);
            assert!(
                (num - ana).abs() / denom < tol,
                "elem {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    fn probe_loss(out: &Tensor, probe: &Tensor) -> f64 {
        out.data()
            .iter()
            .zip(probe.data())
            .map(|(&a, &b)| (a * b) as f64)
            .sum()
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_variants_agree_with_explicit_transposes() {
        let a = Tensor::randn(&[4, 3], 1.0, 1);
        let b = Tensor::randn(&[4, 5], 1.0, 2);
        // a^T @ b via matmul_at vs manual transpose.
        let mut at = Tensor::zeros(&[3, 4]);
        for i in 0..4 {
            for j in 0..3 {
                at.data_mut()[j * 4 + i] = a.data()[i * 3 + j];
            }
        }
        assert_close(&matmul_at(&a, &b), &matmul(&at, &b), 1e-5);

        let c = Tensor::randn(&[5, 3], 1.0, 3);
        let mut ct = Tensor::zeros(&[3, 5]);
        for i in 0..5 {
            for j in 0..3 {
                ct.data_mut()[j * 5 + i] = c.data()[i * 3 + j];
            }
        }
        // x[4,3] @ c[5,3]^T
        let x = Tensor::randn(&[4, 3], 1.0, 4);
        assert_close(&matmul_bt(&x, &c), &matmul(&x, &ct), 1e-5);
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    /// Regression test for the removed `if aik == 0.0 { continue }`
    /// shortcut: with a zero row in A and an Inf in B, IEEE 754 demands
    /// `0.0 * inf = NaN` — the old skip returned clean zeros instead,
    /// masking fp16-overflow Infs during training. All three variants
    /// must propagate identically.
    #[test]
    fn zero_times_inf_is_nan_in_all_variants() {
        // A's row 0 is all zeros; B has an Inf in column 1.
        let a = Tensor::from_vec(&[2, 2], vec![0.0, 0.0, 1.0, 1.0]);
        let mut b = Tensor::from_vec(&[2, 2], vec![1.0, f32::INFINITY, 1.0, 2.0]);
        let c = matmul(&a, &b);
        assert!(
            c.data()[1].is_nan(),
            "matmul: 0*inf must be NaN, got {}",
            c.data()[1]
        );
        assert!(c.data()[3].is_infinite(), "nonzero row must see the Inf");

        // Same logical product through matmul_at: lhs stored as [k, m].
        let at = Tensor::from_vec(&[2, 2], vec![0.0, 1.0, 0.0, 1.0]);
        let c_at = matmul_at(&at, &b);
        assert!(c_at.data()[1].is_nan(), "matmul_at: 0*inf must be NaN");
        assert!(c_at.data()[3].is_infinite());

        // And through matmul_bt: rhs stored as [n, k].
        b = Tensor::from_vec(&[2, 2], vec![1.0, 1.0, f32::INFINITY, 2.0]);
        let c_bt = matmul_bt(&a, &b);
        assert!(c_bt.data()[1].is_nan(), "matmul_bt: 0*inf must be NaN");
        assert!(c_bt.data()[3].is_infinite());
    }

    /// NaNs and Infs laced anywhere in the inputs must land in exactly
    /// the same output positions for the tiled kernels as for the naive
    /// oracle, in every variant.
    #[test]
    fn nan_inf_placement_matches_naive_oracle() {
        // Big enough that matmul's dispatch takes the tiled path.
        let (m, k, n) = (33, 17, 29);
        assert!(m * k * n > crate::gemm::NAIVE_THRESHOLD);
        let mut av = Tensor::randn(&[m, k], 1.0, 21);
        let mut bv = Tensor::randn(&[k, n], 1.0, 22);
        av.data_mut()[3] = f32::NAN;
        av.data_mut()[k + 1] = f32::INFINITY;
        bv.data_mut()[5] = f32::NEG_INFINITY;
        bv.data_mut()[2 * n + 3] = f32::NAN;
        let same_specials = |fast: &Tensor, slow: &Tensor, what: &str| {
            assert_eq!(fast.shape(), slow.shape());
            for (i, (f, s)) in fast.data().iter().zip(slow.data()).enumerate() {
                assert_eq!(
                    f.is_nan(),
                    s.is_nan(),
                    "{what} elem {i}: NaN mismatch ({f} vs {s})"
                );
                assert_eq!(
                    f.is_infinite() && !f.is_nan(),
                    s.is_infinite() && !s.is_nan(),
                    "{what} elem {i}: Inf mismatch ({f} vs {s})"
                );
            }
        };
        same_specials(&matmul(&av, &bv), &naive::matmul(&av, &bv), "matmul");

        let at = Tensor::from_vec(&[k, m], {
            // transpose av into [k, m]
            let mut t = vec![0.0f32; k * m];
            for i in 0..m {
                for p in 0..k {
                    t[p * m + i] = av.data()[i * k + p];
                }
            }
            t
        });
        same_specials(
            &matmul_at(&at, &bv),
            &naive::matmul_at(&at, &bv),
            "matmul_at",
        );

        let bt = Tensor::from_vec(&[n, k], {
            let mut t = vec![0.0f32; n * k];
            for p in 0..k {
                for j in 0..n {
                    t[j * k + p] = bv.data()[p * n + j];
                }
            }
            t
        });
        same_specials(
            &matmul_bt(&av, &bt),
            &naive::matmul_bt(&av, &bt),
            "matmul_bt",
        );
    }

    #[test]
    fn bias_roundtrip() {
        let mut x = Tensor::zeros(&[2, 3]);
        let b = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        add_bias(&mut x, &b);
        assert_eq!(x.data(), &[1., 2., 3., 1., 2., 3.]);
        let g = bias_grad(&x);
        assert_eq!(g.data(), &[2., 4., 6.]);
    }

    #[test]
    fn gelu_gradient_check() {
        let x = Tensor::randn(&[2, 5], 1.0, 9);
        let probe = Tensor::randn(&[2, 5], 1.0, 10);
        let analytic = gelu_backward(&x, &probe);
        grad_check(&x, &analytic, |xx| probe_loss(&gelu(xx), &probe), 2e-2);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::randn(&[4, 7], 3.0, 11);
        let p = softmax_rows(&x);
        for row in p.data().chunks_exact(7) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_gradient_check() {
        let x = Tensor::randn(&[3, 4], 1.0, 12);
        let probe = Tensor::randn(&[3, 4], 1.0, 13);
        let p = softmax_rows(&x);
        let analytic = softmax_backward(&p, &probe);
        grad_check(
            &x,
            &analytic,
            |xx| probe_loss(&softmax_rows(xx), &probe),
            2e-2,
        );
    }

    #[test]
    fn layernorm_normalizes() {
        let x = Tensor::randn(&[3, 16], 5.0, 14);
        let g = Tensor::full(&[16], 1.0);
        let b = Tensor::zeros(&[16]);
        let (y, _) = layernorm(&x, &g, &b, 1e-5);
        for row in y.data().chunks_exact(16) {
            let m: f32 = row.iter().sum::<f32>() / 16.0;
            let v: f32 = row.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / 16.0;
            assert!(m.abs() < 1e-4, "mean {m}");
            assert!((v - 1.0).abs() < 1e-2, "var {v}");
        }
    }

    #[test]
    fn layernorm_gradient_check() {
        let x = Tensor::randn(&[2, 8], 1.0, 15);
        let g = Tensor::randn(&[8], 0.5, 16).add(&Tensor::full(&[8], 1.0));
        let b = Tensor::randn(&[8], 0.5, 17);
        let probe = Tensor::randn(&[2, 8], 1.0, 18);
        let (_, stats) = layernorm(&x, &g, &b, 1e-5);
        let (dx, dgamma, dbeta) = layernorm_backward(&x, &g, &stats, &probe);
        grad_check(
            &x,
            &dx,
            |xx| probe_loss(&layernorm(xx, &g, &b, 1e-5).0, &probe),
            3e-2,
        );
        grad_check(
            &g,
            &dgamma,
            |gg| probe_loss(&layernorm(&x, gg, &b, 1e-5).0, &probe),
            2e-2,
        );
        grad_check(
            &b,
            &dbeta,
            |bb| probe_loss(&layernorm(&x, &g, bb, 1e-5).0, &probe),
            2e-2,
        );
    }

    #[test]
    fn embedding_gather_scatter_round_trip() {
        let table = Tensor::randn(&[10, 4], 1.0, 19);
        let ids = vec![3usize, 3, 7];
        let out = embedding_gather(&table, &ids);
        assert_eq!(out.shape(), &[3, 4]);
        assert_eq!(&out.data()[0..4], &table.data()[12..16]);
        let dy = Tensor::full(&[3, 4], 1.0);
        let g = embedding_scatter_add(&[10, 4], &ids, &dy);
        // id 3 appears twice -> gradient 2.0, id 7 once -> 1.0.
        assert_eq!(g.data()[3 * 4], 2.0);
        assert_eq!(g.data()[7 * 4], 1.0);
        assert_eq!(g.data()[0], 0.0);
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let logits = Tensor::randn(&[3, 5], 1.0, 20);
        let targets = vec![0usize, 2, 4];
        let (_, probs) = cross_entropy(&logits, &targets);
        let analytic = cross_entropy_backward(&probs, &targets);
        grad_check(
            &logits,
            &analytic,
            |ll| cross_entropy(ll, &targets).0 as f64,
            2e-2,
        );
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_near_zero() {
        let mut logits = Tensor::full(&[2, 4], -20.0);
        logits.data_mut()[1] = 20.0; // row 0 predicts class 1
        logits.data_mut()[4 + 2] = 20.0; // row 1 predicts class 2
        let (loss, _) = cross_entropy(&logits, &[1, 2]);
        assert!(loss < 1e-4, "loss {loss}");
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn embedding_rejects_bad_ids() {
        let table = Tensor::zeros(&[4, 2]);
        embedding_gather(&table, &[4]);
    }
}

/// Specification of a dropout application: probability and the seed that
/// makes the mask *rematerializable* — recomputing a discarded forward
/// must regenerate the exact same mask, the RNG-state problem every
/// activation-checkpointing system has to solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropoutSpec {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    /// Mask seed (derived from step and layer by the caller).
    pub seed: u64,
}

/// Generates the inverted-dropout mask for `len` elements: each entry is
/// `0` with probability `p`, otherwise `1/(1-p)`. Deterministic in
/// `spec.seed`.
pub fn dropout_mask(len: usize, spec: DropoutSpec) -> Vec<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!((0.0..1.0).contains(&spec.p), "dropout p {}", spec.p);
    if spec.p == 0.0 {
        return vec![1.0; len];
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let keep_scale = 1.0 / (1.0 - spec.p);
    (0..len)
        .map(|_| {
            if rng.gen::<f32>() < spec.p {
                0.0
            } else {
                keep_scale
            }
        })
        .collect()
}

/// Applies a mask elementwise (forward and backward of dropout are the
/// same multiplication).
pub fn apply_mask(x: &Tensor, mask: &[f32]) -> Tensor {
    assert_eq!(x.len(), mask.len(), "mask length");
    Tensor::from_vec(
        x.shape(),
        x.data().iter().zip(mask).map(|(v, m)| v * m).collect(),
    )
}

#[cfg(test)]
mod dropout_tests {
    use super::*;

    #[test]
    fn mask_is_deterministic_and_scaled() {
        let spec = DropoutSpec { p: 0.5, seed: 9 };
        let a = dropout_mask(1000, spec);
        let b = dropout_mask(1000, spec);
        assert_eq!(a, b, "same seed must give the same mask");
        let c = dropout_mask(1000, DropoutSpec { p: 0.5, seed: 10 });
        assert_ne!(a, c);
        // Every entry is 0 or 2, and ~half are dropped.
        assert!(a.iter().all(|&v| v == 0.0 || v == 2.0));
        let dropped = a.iter().filter(|&&v| v == 0.0).count();
        assert!((350..650).contains(&dropped), "{dropped}");
    }

    #[test]
    fn zero_probability_is_identity() {
        let mask = dropout_mask(16, DropoutSpec { p: 0.0, seed: 1 });
        assert!(mask.iter().all(|&v| v == 1.0));
        let x = Tensor::randn(&[4, 4], 1.0, 2);
        assert_eq!(apply_mask(&x, &mask), x);
    }

    #[test]
    fn mask_preserves_expectation() {
        let mask = dropout_mask(100_000, DropoutSpec { p: 0.3, seed: 4 });
        let mean: f64 = mask.iter().map(|&v| v as f64).sum::<f64>() / mask.len() as f64;
        assert!((mean - 1.0).abs() < 0.02, "{mean}");
    }
}
