//! Numerical primitives: matmuls, activations, normalization, embedding and
//! loss, each with an explicit backward.
//!
//! Conventions: matrices are row-major; `Linear` weights are laid out
//! `[in, out]` so that `y = x @ w + b`, giving the backward identities
//! `dx = dy @ w^T` and `dw = x^T @ dy`.

use crate::tensor::Tensor;

/// `c[m,n] = a[m,k] @ b[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    // i-k-j order: the inner loop streams both b's row and out's row.
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for kk in 0..k {
            let aik = ad[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let b_row = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// `c[m,n] = a[k,m]^T @ b[k,n]` — the `dw = x^T @ dy` shape.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_at lhs");
    let (k2, n) = dims2(b, "matmul_at rhs");
    assert_eq!(k, k2, "matmul_at inner dims: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for kk in 0..k {
        let a_row = &ad[kk * m..(kk + 1) * m];
        let b_row = &bd[kk * n..(kk + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// `c[m,n] = a[m,k] @ b[n,k]^T` — the `dx = dy @ w^T` shape.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_bt lhs");
    let (n, k2) = dims2(b, "matmul_bt rhs");
    assert_eq!(k, k2, "matmul_bt inner dims: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// Adds a `[cols]` bias to every row of a `[rows, cols]` tensor, in place.
pub fn add_bias(x: &mut Tensor, bias: &Tensor) {
    let (_, c) = dims2(x, "add_bias input");
    assert_eq!(bias.shape(), &[c], "bias shape");
    let bd: Vec<f32> = bias.data().to_vec();
    for row in x.data_mut().chunks_exact_mut(c) {
        for (v, &b) in row.iter_mut().zip(&bd) {
            *v += b;
        }
    }
}

/// Sums gradient rows into a `[cols]` bias gradient.
pub fn bias_grad(dy: &Tensor) -> Tensor {
    let (_, c) = dims2(dy, "bias_grad input");
    let mut out = vec![0.0f32; c];
    for row in dy.data().chunks_exact(c) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
    Tensor::from_vec(&[c], out)
}

/// GELU activation (tanh approximation, as used by GPT-2/3).
pub fn gelu(x: &Tensor) -> Tensor {
    let data = x.data().iter().map(|&v| gelu_scalar(v)).collect();
    Tensor::from_vec(x.shape(), data)
}

/// Backward of [`gelu`]: needs the forward *input*.
pub fn gelu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(x.shape(), dy.shape(), "gelu_backward shapes");
    let data = x
        .data()
        .iter()
        .zip(dy.data())
        .map(|(&v, &g)| gelu_grad_scalar(v) * g)
        .collect();
    Tensor::from_vec(x.shape(), data)
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)
const GELU_A: f32 = 0.044_715;

fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + GELU_A * x * x * x)).tanh())
}

fn gelu_grad_scalar(x: f32) -> f32 {
    let u = GELU_C * (x + GELU_A * x * x * x);
    let t = u.tanh();
    let du = GELU_C * (1.0 + 3.0 * GELU_A * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Row-wise numerically stable softmax of a `[rows, cols]` tensor.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let (_, c) = dims2(x, "softmax input");
    let mut out = x.data().to_vec();
    for row in out.chunks_exact_mut(c) {
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    Tensor::from_vec(x.shape(), out)
}

/// Backward of [`softmax_rows`] given the forward *output* `probs`:
/// `dx = p * (dy - sum(dy * p))` per row.
pub fn softmax_backward(probs: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(probs.shape(), dy.shape(), "softmax_backward shapes");
    let (_, c) = dims2(probs, "softmax_backward");
    let mut out = vec![0.0f32; probs.len()];
    for ((orow, prow), dyrow) in out
        .chunks_exact_mut(c)
        .zip(probs.data().chunks_exact(c))
        .zip(dy.data().chunks_exact(c))
    {
        let dot: f32 = prow.iter().zip(dyrow).map(|(&p, &g)| p * g).sum();
        for ((o, &p), &g) in orow.iter_mut().zip(prow).zip(dyrow) {
            *o = p * (g - dot);
        }
    }
    Tensor::from_vec(probs.shape(), out)
}

/// Saved statistics of a layer-norm forward, needed by its backward.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNormStats {
    /// Per-row mean.
    pub mean: Vec<f32>,
    /// Per-row reciprocal standard deviation.
    pub rstd: Vec<f32>,
}

/// Layer normalization over the last dimension of a `[rows, h]` tensor.
pub fn layernorm(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> (Tensor, LayerNormStats) {
    let (rows, h) = dims2(x, "layernorm input");
    assert_eq!(gamma.shape(), &[h], "gamma shape");
    assert_eq!(beta.shape(), &[h], "beta shape");
    let mut out = vec![0.0f32; rows * h];
    let mut mean = vec![0.0f32; rows];
    let mut rstd = vec![0.0f32; rows];
    let g = gamma.data();
    let b = beta.data();
    for (i, (orow, xrow)) in out
        .chunks_exact_mut(h)
        .zip(x.data().chunks_exact(h))
        .enumerate()
    {
        let m = xrow.iter().sum::<f32>() / h as f32;
        let var = xrow.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / h as f32;
        let rs = 1.0 / (var + eps).sqrt();
        mean[i] = m;
        rstd[i] = rs;
        for (j, (o, &xv)) in orow.iter_mut().zip(xrow).enumerate() {
            *o = (xv - m) * rs * g[j] + b[j];
        }
    }
    (
        Tensor::from_vec(x.shape(), out),
        LayerNormStats { mean, rstd },
    )
}

/// Backward of [`layernorm`]: returns `(dx, dgamma, dbeta)`.
pub fn layernorm_backward(
    x: &Tensor,
    gamma: &Tensor,
    stats: &LayerNormStats,
    dy: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let (rows, h) = dims2(x, "layernorm_backward input");
    assert_eq!(dy.shape(), x.shape(), "layernorm_backward dy");
    let g = gamma.data();
    let mut dx = vec![0.0f32; rows * h];
    let mut dgamma = vec![0.0f32; h];
    let mut dbeta = vec![0.0f32; h];
    for i in 0..rows {
        let xrow = &x.data()[i * h..(i + 1) * h];
        let dyrow = &dy.data()[i * h..(i + 1) * h];
        let m = stats.mean[i];
        let rs = stats.rstd[i];
        // xhat_j = (x_j - m) * rs; dy_hat_j = dy_j * gamma_j
        let mut sum_dyh = 0.0f32;
        let mut sum_dyh_xhat = 0.0f32;
        for j in 0..h {
            let xhat = (xrow[j] - m) * rs;
            let dyh = dyrow[j] * g[j];
            sum_dyh += dyh;
            sum_dyh_xhat += dyh * xhat;
            dgamma[j] += dyrow[j] * xhat;
            dbeta[j] += dyrow[j];
        }
        let inv_h = 1.0 / h as f32;
        let dxrow = &mut dx[i * h..(i + 1) * h];
        for j in 0..h {
            let xhat = (xrow[j] - m) * rs;
            let dyh = dyrow[j] * g[j];
            dxrow[j] = rs * (dyh - inv_h * sum_dyh - xhat * inv_h * sum_dyh_xhat);
        }
    }
    (
        Tensor::from_vec(x.shape(), dx),
        Tensor::from_vec(&[h], dgamma),
        Tensor::from_vec(&[h], dbeta),
    )
}

/// Gathers embedding rows: `out[i] = table[ids[i]]`.
///
/// # Panics
/// If any id is out of range.
pub fn embedding_gather(table: &Tensor, ids: &[usize]) -> Tensor {
    let (v, h) = dims2(table, "embedding table");
    let mut out = vec![0.0f32; ids.len() * h];
    for (orow, &id) in out.chunks_exact_mut(h).zip(ids) {
        assert!(id < v, "token id {id} out of vocab {v}");
        orow.copy_from_slice(&table.data()[id * h..(id + 1) * h]);
    }
    Tensor::from_vec(&[ids.len(), h], out)
}

/// Backward of [`embedding_gather`]: scatter-adds `dy` rows into a
/// zero-initialized table gradient.
pub fn embedding_scatter_add(table_shape: &[usize], ids: &[usize], dy: &Tensor) -> Tensor {
    let v = table_shape[0];
    let h = table_shape[1];
    assert_eq!(dy.shape(), &[ids.len(), h], "embedding grad shape");
    let mut grad = vec![0.0f32; v * h];
    for (dyrow, &id) in dy.data().chunks_exact(h).zip(ids) {
        let grow = &mut grad[id * h..(id + 1) * h];
        for (g, &d) in grow.iter_mut().zip(dyrow) {
            *g += d;
        }
    }
    Tensor::from_vec(table_shape, grad)
}

/// Mean cross-entropy over rows of `logits[n, v]` against `targets[n]`.
/// Returns `(loss, probs)`; the probs are reused by the backward.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    let (n, v) = dims2(logits, "cross_entropy logits");
    assert_eq!(targets.len(), n, "target count");
    let probs = softmax_rows(logits);
    let mut loss = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < v, "target {t} out of vocab {v}");
        let p = probs.data()[i * v + t].max(1e-30);
        loss -= (p as f64).ln();
    }
    ((loss / n as f64) as f32, probs)
}

/// Backward of [`cross_entropy`]: `dlogits = (probs - onehot) / n`.
pub fn cross_entropy_backward(probs: &Tensor, targets: &[usize]) -> Tensor {
    let (n, v) = dims2(probs, "cross_entropy probs");
    let mut d = probs.data().to_vec();
    let inv_n = 1.0 / n as f32;
    for (i, &t) in targets.iter().enumerate() {
        d[i * v + t] -= 1.0;
    }
    for x in &mut d {
        *x *= inv_n;
    }
    Tensor::from_vec(probs.shape(), d)
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().len(),
        2,
        "{what} must be 2-D, got {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference gradient check: perturbs each input element and
    /// compares against the analytic gradient under a scalar loss
    /// `L = sum(out * probe)`.
    fn grad_check<F>(x: &Tensor, analytic: &Tensor, f: F, tol: f32)
    where
        F: Fn(&Tensor) -> f64,
    {
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = ((f(&xp) - f(&xm)) / (2.0 * eps as f64)) as f32;
            let ana = analytic.data()[i];
            let denom = num.abs().max(ana.abs()).max(1.0);
            assert!(
                (num - ana).abs() / denom < tol,
                "elem {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    fn probe_loss(out: &Tensor, probe: &Tensor) -> f64 {
        out.data()
            .iter()
            .zip(probe.data())
            .map(|(&a, &b)| (a * b) as f64)
            .sum()
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_variants_agree_with_explicit_transposes() {
        let a = Tensor::randn(&[4, 3], 1.0, 1);
        let b = Tensor::randn(&[4, 5], 1.0, 2);
        // a^T @ b via matmul_at vs manual transpose.
        let mut at = Tensor::zeros(&[3, 4]);
        for i in 0..4 {
            for j in 0..3 {
                at.data_mut()[j * 4 + i] = a.data()[i * 3 + j];
            }
        }
        assert_close(&matmul_at(&a, &b), &matmul(&at, &b), 1e-5);

        let c = Tensor::randn(&[5, 3], 1.0, 3);
        let mut ct = Tensor::zeros(&[3, 5]);
        for i in 0..5 {
            for j in 0..3 {
                ct.data_mut()[j * 5 + i] = c.data()[i * 3 + j];
            }
        }
        // x[4,3] @ c[5,3]^T
        let x = Tensor::randn(&[4, 3], 1.0, 4);
        assert_close(&matmul_bt(&x, &c), &matmul(&x, &ct), 1e-5);
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn bias_roundtrip() {
        let mut x = Tensor::zeros(&[2, 3]);
        let b = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        add_bias(&mut x, &b);
        assert_eq!(x.data(), &[1., 2., 3., 1., 2., 3.]);
        let g = bias_grad(&x);
        assert_eq!(g.data(), &[2., 4., 6.]);
    }

    #[test]
    fn gelu_gradient_check() {
        let x = Tensor::randn(&[2, 5], 1.0, 9);
        let probe = Tensor::randn(&[2, 5], 1.0, 10);
        let analytic = gelu_backward(&x, &probe);
        grad_check(&x, &analytic, |xx| probe_loss(&gelu(xx), &probe), 2e-2);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::randn(&[4, 7], 3.0, 11);
        let p = softmax_rows(&x);
        for row in p.data().chunks_exact(7) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_gradient_check() {
        let x = Tensor::randn(&[3, 4], 1.0, 12);
        let probe = Tensor::randn(&[3, 4], 1.0, 13);
        let p = softmax_rows(&x);
        let analytic = softmax_backward(&p, &probe);
        grad_check(
            &x,
            &analytic,
            |xx| probe_loss(&softmax_rows(xx), &probe),
            2e-2,
        );
    }

    #[test]
    fn layernorm_normalizes() {
        let x = Tensor::randn(&[3, 16], 5.0, 14);
        let g = Tensor::full(&[16], 1.0);
        let b = Tensor::zeros(&[16]);
        let (y, _) = layernorm(&x, &g, &b, 1e-5);
        for row in y.data().chunks_exact(16) {
            let m: f32 = row.iter().sum::<f32>() / 16.0;
            let v: f32 = row.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / 16.0;
            assert!(m.abs() < 1e-4, "mean {m}");
            assert!((v - 1.0).abs() < 1e-2, "var {v}");
        }
    }

    #[test]
    fn layernorm_gradient_check() {
        let x = Tensor::randn(&[2, 8], 1.0, 15);
        let g = Tensor::randn(&[8], 0.5, 16).add(&Tensor::full(&[8], 1.0));
        let b = Tensor::randn(&[8], 0.5, 17);
        let probe = Tensor::randn(&[2, 8], 1.0, 18);
        let (_, stats) = layernorm(&x, &g, &b, 1e-5);
        let (dx, dgamma, dbeta) = layernorm_backward(&x, &g, &stats, &probe);
        grad_check(
            &x,
            &dx,
            |xx| probe_loss(&layernorm(xx, &g, &b, 1e-5).0, &probe),
            3e-2,
        );
        grad_check(
            &g,
            &dgamma,
            |gg| probe_loss(&layernorm(&x, gg, &b, 1e-5).0, &probe),
            2e-2,
        );
        grad_check(
            &b,
            &dbeta,
            |bb| probe_loss(&layernorm(&x, &g, bb, 1e-5).0, &probe),
            2e-2,
        );
    }

    #[test]
    fn embedding_gather_scatter_round_trip() {
        let table = Tensor::randn(&[10, 4], 1.0, 19);
        let ids = vec![3usize, 3, 7];
        let out = embedding_gather(&table, &ids);
        assert_eq!(out.shape(), &[3, 4]);
        assert_eq!(&out.data()[0..4], &table.data()[12..16]);
        let dy = Tensor::full(&[3, 4], 1.0);
        let g = embedding_scatter_add(&[10, 4], &ids, &dy);
        // id 3 appears twice -> gradient 2.0, id 7 once -> 1.0.
        assert_eq!(g.data()[3 * 4], 2.0);
        assert_eq!(g.data()[7 * 4], 1.0);
        assert_eq!(g.data()[0], 0.0);
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let logits = Tensor::randn(&[3, 5], 1.0, 20);
        let targets = vec![0usize, 2, 4];
        let (_, probs) = cross_entropy(&logits, &targets);
        let analytic = cross_entropy_backward(&probs, &targets);
        grad_check(
            &logits,
            &analytic,
            |ll| cross_entropy(ll, &targets).0 as f64,
            2e-2,
        );
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_near_zero() {
        let mut logits = Tensor::full(&[2, 4], -20.0);
        logits.data_mut()[1] = 20.0; // row 0 predicts class 1
        logits.data_mut()[4 + 2] = 20.0; // row 1 predicts class 2
        let (loss, _) = cross_entropy(&logits, &[1, 2]);
        assert!(loss < 1e-4, "loss {loss}");
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn embedding_rejects_bad_ids() {
        let table = Tensor::zeros(&[4, 2]);
        embedding_gather(&table, &[4]);
    }
}

/// Specification of a dropout application: probability and the seed that
/// makes the mask *rematerializable* — recomputing a discarded forward
/// must regenerate the exact same mask, the RNG-state problem every
/// activation-checkpointing system has to solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropoutSpec {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    /// Mask seed (derived from step and layer by the caller).
    pub seed: u64,
}

/// Generates the inverted-dropout mask for `len` elements: each entry is
/// `0` with probability `p`, otherwise `1/(1-p)`. Deterministic in
/// `spec.seed`.
pub fn dropout_mask(len: usize, spec: DropoutSpec) -> Vec<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!((0.0..1.0).contains(&spec.p), "dropout p {}", spec.p);
    if spec.p == 0.0 {
        return vec![1.0; len];
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let keep_scale = 1.0 / (1.0 - spec.p);
    (0..len)
        .map(|_| {
            if rng.gen::<f32>() < spec.p {
                0.0
            } else {
                keep_scale
            }
        })
        .collect()
}

/// Applies a mask elementwise (forward and backward of dropout are the
/// same multiplication).
pub fn apply_mask(x: &Tensor, mask: &[f32]) -> Tensor {
    assert_eq!(x.len(), mask.len(), "mask length");
    Tensor::from_vec(
        x.shape(),
        x.data().iter().zip(mask).map(|(v, m)| v * m).collect(),
    )
}

#[cfg(test)]
mod dropout_tests {
    use super::*;

    #[test]
    fn mask_is_deterministic_and_scaled() {
        let spec = DropoutSpec { p: 0.5, seed: 9 };
        let a = dropout_mask(1000, spec);
        let b = dropout_mask(1000, spec);
        assert_eq!(a, b, "same seed must give the same mask");
        let c = dropout_mask(1000, DropoutSpec { p: 0.5, seed: 10 });
        assert_ne!(a, c);
        // Every entry is 0 or 2, and ~half are dropped.
        assert!(a.iter().all(|&v| v == 0.0 || v == 2.0));
        let dropped = a.iter().filter(|&&v| v == 0.0).count();
        assert!((350..650).contains(&dropped), "{dropped}");
    }

    #[test]
    fn zero_probability_is_identity() {
        let mask = dropout_mask(16, DropoutSpec { p: 0.0, seed: 1 });
        assert!(mask.iter().all(|&v| v == 1.0));
        let x = Tensor::randn(&[4, 4], 1.0, 2);
        assert_eq!(apply_mask(&x, &mask), x);
    }

    #[test]
    fn mask_preserves_expectation() {
        let mask = dropout_mask(100_000, DropoutSpec { p: 0.3, seed: 4 });
        let mean: f64 = mask.iter().map(|&v| v as f64).sum::<f64>() / mask.len() as f64;
        assert!((mean - 1.0).abs() < 0.02, "{mean}");
    }
}
