#![warn(missing_docs)]
//! A minimal CPU tensor and transformer-layer library with *explicit*
//! per-layer forward/backward passes.
//!
//! The Ratel engine schedules work layer by layer: fetch a layer's fp16
//! parameters, run its forward, offload its activations, and later run its
//! backward (possibly after recomputing discarded activations), emitting
//! per-layer gradients that the CPU optimizer consumes immediately. That
//! structure is easiest to drive when every layer exposes
//! `forward(input) -> (output, saved)` and
//! `backward(saved, grad_out) -> (grad_in, param_grads)` directly, rather
//! than through a dynamic autograd tape — so that is exactly the API here.
//!
//! Numerics are plain `f32` with an emulated IEEE-754 binary16 used for the
//! stored copies (P16/A16/G16 of Table II), mirroring mixed-precision
//! training: compute in full precision, store and move in half precision.
//!
//! Scope: big enough to really train a small GPT (embedding, pre-norm
//! transformer blocks with causal attention, GELU MLP, cross-entropy) and
//! verify Ratel's synchronous-update claim by bit-comparing offloaded and
//! in-memory training; deliberately not a general autograd framework.

pub mod adam;
pub mod attention;
pub mod dtype;
pub mod gemm;
pub mod layers;
pub mod ops;
pub mod parallel;
pub mod scratch;
pub mod tensor;

pub use adam::{Adam, AdamParams};
pub use attention::{
    attn_backend, attn_backward_into, attn_backward_naive_into, attn_forward_into,
    attn_forward_naive_into, set_attn_backend, AttnBackend,
};
pub use dtype::{f16_bits_to_f32, f32_to_f16_bits, DType};
pub use layers::{
    block_dropout_spec, AttnSaved, BlockSaved, CrossEntropy, Embedding, GptConfig, GptModel,
    HeadSaved, KvCache, LayerNorm, Linear, Mlp, MlpSaved, MultiHeadAttention, ParamLayer,
    TransformerBlock,
};
pub use ops::DropoutSpec;
pub use parallel::{num_threads, parallel_stats, set_num_threads};
pub use scratch::{scratch_f32, scratch_stats, ScratchVec};
pub use tensor::Tensor;
