//! A dense row-major `f32` tensor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dtype::{decode_f16, encode_f16, round_to_f16};

/// A dense row-major tensor of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    /// If `data.len()` does not match the shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "shape {shape:?} needs {n} elements");
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Standard-normal initialization scaled by `std`, from a seeded RNG —
    /// deterministic across runs, which the equivalence tests rely on.
    pub fn randn(shape: &[usize], std: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        let data = (0..n)
            .map(|_| {
                // Box-Muller from two uniforms; avoids a distribution dep.
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                std * (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
            })
            .collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the raw data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a reshaped copy sharing no storage.
    ///
    /// # Panics
    /// If the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Elementwise `self + other`.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise scale.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Rounds every element through binary16 — what a tensor looks like
    /// after a half-precision offload/fetch round trip.
    pub fn quantize_f16(&self) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| round_to_f16(v)).collect(),
        }
    }

    /// Serializes to half-precision bytes (A16/P16/G16 storage format).
    pub fn to_f16_bytes(&self) -> Vec<u8> {
        encode_f16(&self.data)
    }

    /// Deserializes from half-precision bytes produced by
    /// [`Tensor::to_f16_bytes`].
    pub fn from_f16_bytes(shape: &[usize], bytes: &[u8]) -> Tensor {
        Tensor::from_vec(shape, decode_f16(bytes))
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Maximum absolute element, or 0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert_eq!(t.sum(), 0.0);
        let u = Tensor::full(&[2], 1.5);
        assert_eq!(u.data(), &[1.5, 1.5]);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn(&[16], 1.0, 42);
        let b = Tensor::randn(&[16], 1.0, 42);
        let c = Tensor::randn(&[16], 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn randn_has_roughly_unit_scale() {
        let t = Tensor::randn(&[10_000], 1.0, 7);
        let mean = t.sum() / t.len() as f64;
        let var: f64 = t
            .data()
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / t.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn arithmetic_ops() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[3], vec![0.5, 0.5, 0.5]);
        assert_eq!(a.add(&b).data(), &[1.5, 2.5, 3.5]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data(), &[1.5, 2.5, 3.5]);
        assert_eq!(a.max_abs(), 3.0);
    }

    #[test]
    fn f16_round_trip_matches_quantize() {
        let t = Tensor::randn(&[64], 1.0, 3);
        let rt = Tensor::from_f16_bytes(t.shape(), &t.to_f16_bytes());
        assert_eq!(rt, t.quantize_f16());
        assert_eq!(t.to_f16_bytes().len(), 128);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn mismatched_add_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f32).collect());
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }
}
