#![warn(missing_docs)]
//! A three-tier tensor store: "GPU" arena, host pool, and an SSD volume
//! backed by real files.
//!
//! This is the substrate the *real* out-of-core engine runs on. It mirrors
//! the paper's memory hierarchy at API level:
//!
//! * every blob lives in exactly one tier at a time;
//! * the GPU and host tiers have hard byte capacities — exceeding one is an
//!   out-of-memory error, which is how the maximum-trainable-size
//!   experiments fail honestly;
//! * the SSD tier stores each blob as a file on disk, so offloaded model
//!   states and activations really leave memory;
//! * consumer GPUs have no GPUDirect (§III-C), so a GPU→SSD move is
//!   forcibly two hops (GPU→Host, Host→SSD) and both hops are metered;
//! * all inter-tier traffic is counted per route, letting tests assert the
//!   exact byte flows the paper reasons about (e.g. "the optimizer reads
//!   12P and writes 14P per iteration");
//! * the SSD tier can be wrapped in a deterministic [`FaultPlan`] that
//!   injects transient/permanent I/O errors and latency spikes, with
//!   bounded [`RetryPolicy`] recovery and always-on [`FaultStats`]
//!   counters — the failure model chaos tests and the simulator share.

pub mod error;
pub mod fault;
pub mod store;
pub mod telemetry;
pub mod traffic;

pub use error::StorageError;
pub use fault::{FaultEvent, FaultKind, FaultOp, FaultPlan, RetryPolicy};
pub use store::{Tier, TierConfig, TieredStore};
pub use telemetry::{
    FaultStats, LatencyHistogram, RouteMetrics, SpanCategory, SpanRecord, TelemetryRecorder,
};
pub use traffic::{Route, TrafficSnapshot};
