//! The tiered store itself.

use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use ratel_check::lockorder;
use ratel_check::sync::{Condvar, Mutex, MutexGuard};

use std::sync::Arc;

use crate::error::StorageError;
use crate::fault::{FaultKind, FaultOp, FaultPlan, RetryPolicy};
use crate::telemetry::TelemetryRecorder;
use crate::traffic::{Route, TrafficCounters, TrafficSnapshot};

/// A storage tier in the server's memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// GPU device memory (capacity-enforced arena).
    Gpu,
    /// Main memory (capacity-enforced pool).
    Host,
    /// NVMe SSD volume (files on disk).
    Ssd,
}

/// Capacities for the memory tiers. `None` means unbounded (useful in
/// tests that only exercise traffic accounting).
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// GPU arena capacity in bytes.
    pub gpu_capacity: Option<u64>,
    /// Host pool capacity in bytes.
    pub host_capacity: Option<u64>,
    /// SSD volume capacity in bytes.
    pub ssd_capacity: Option<u64>,
    /// Directory holding SSD-tier blob files.
    pub ssd_dir: PathBuf,
}

impl TierConfig {
    /// Unbounded tiers spilling to a fresh unique directory under the
    /// system temp dir.
    pub fn unbounded_temp() -> Self {
        TierConfig {
            gpu_capacity: None,
            host_capacity: None,
            ssd_capacity: None,
            ssd_dir: unique_temp_dir(),
        }
    }

    /// Bounded GPU/host tiers spilling to a fresh temp directory.
    pub fn bounded_temp(gpu_capacity: u64, host_capacity: u64) -> Self {
        TierConfig {
            gpu_capacity: Some(gpu_capacity),
            host_capacity: Some(host_capacity),
            ssd_capacity: None,
            ssd_dir: unique_temp_dir(),
        }
    }
}

/// Creates a unique empty directory under the system temp dir.
fn unique_temp_dir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "ratel-ssd-{}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0),
        n
    ));
    // Best-effort: `TieredStore::new` re-creates the directory and is
    // the place that surfaces a typed error if the filesystem refuses.
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Where an SSD-tier blob's bytes live on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SsdLoc {
    /// Its own file (`blob_path(key)`).
    File {
        /// Blob size in bytes.
        len: u64,
    },
    /// A byte range inside a shared segment file written by
    /// [`TieredStore::put_batch`].
    Segment {
        /// Segment id (`seg-{id}` file).
        seg: u64,
        /// Byte offset of this blob within the segment.
        offset: u64,
        /// Blob size in bytes.
        len: u64,
    },
}

impl SsdLoc {
    fn len(self) -> u64 {
        match self {
            SsdLoc::File { len } | SsdLoc::Segment { len, .. } => len,
        }
    }
}

#[derive(Debug)]
struct Inner {
    /// In-memory blobs (GPU and host tiers).
    mem: HashMap<String, (Tier, Vec<u8>)>,
    /// SSD-tier blob locations (contents live in files).
    ssd: HashMap<String, SsdLoc>,
    /// Live-blob count per segment file; a segment is unlinked when its
    /// count reaches zero. Blobs removed earlier leave dead bytes in the
    /// file until then (accounted per blob, so `ssd_used` can undercount
    /// disk footprint while a segment is partially dead).
    segments: HashMap<u64, u32>,
    next_seg: u64,
    /// Keys with SSD file I/O in flight *outside* the lock. Any operation
    /// touching one of these keys waits on the store's condvar, which
    /// preserves per-key atomicity while letting unrelated keys' I/O —
    /// and its injected latency spikes and retry backoff — overlap.
    pending: HashSet<String>,
    gpu_used: u64,
    host_used: u64,
    ssd_used: u64,
}

/// A thread-safe three-tier blob store with traffic metering.
///
/// Blobs are identified by string keys (e.g. `"block3/p16"`); each key
/// lives in exactly one tier. Dropping the store removes its SSD directory.
#[derive(Debug)]
pub struct TieredStore {
    config: TierConfig,
    inner: Mutex<Inner>,
    /// Signalled whenever a key's in-flight SSD I/O completes.
    pending_cv: Condvar,
    traffic: TrafficCounters,
    /// Optional per-route bandwidth caps (bytes/second). A transfer over a
    /// throttled route sleeps for `bytes / rate` *outside* the store lock,
    /// so concurrent transfers on different routes still overlap — this is
    /// how the real engine emulates the paper's link speeds and lets
    /// wall-clock measurements show the active-offloading overlap.
    throttle: Mutex<[Option<f64>; 4]>,
    /// Span/metrics recorder; disabled by default. Shared (`Arc`) so the
    /// engine's worker threads record onto the same timeline.
    telemetry: Arc<TelemetryRecorder>,
    /// Scripted SSD failures (None = healthy drives). Every SSD file op
    /// consults the plan; see [`FaultPlan`].
    fault: Mutex<Option<Arc<FaultPlan>>>,
    /// Bounded retry-with-backoff applied to failing SSD file ops.
    retry: Mutex<RetryPolicy>,
    /// When set, blobs headed for a full host pool spill to the SSD tier
    /// (counted as a degradation event) instead of erroring the caller.
    host_spill: AtomicBool,
}

impl TieredStore {
    /// Opens a store with the given tier configuration.
    pub fn new(config: TierConfig) -> Result<Self, StorageError> {
        fs::create_dir_all(&config.ssd_dir)?;
        Ok(TieredStore {
            config,
            inner: Mutex::named(
                "store.inner",
                Inner {
                    mem: HashMap::new(),
                    ssd: HashMap::new(),
                    segments: HashMap::new(),
                    next_seg: 0,
                    pending: HashSet::new(),
                    gpu_used: 0,
                    host_used: 0,
                    ssd_used: 0,
                },
            ),
            pending_cv: Condvar::named("store.pending_cv"),
            traffic: TrafficCounters::default(),
            throttle: Mutex::named("store.throttle", [None; 4]),
            telemetry: Arc::new(TelemetryRecorder::new()),
            fault: Mutex::named("store.fault", None),
            retry: Mutex::named("store.retry", RetryPolicy::default()),
            host_spill: AtomicBool::new(false),
        })
    }

    /// Installs (or clears) a fault-injection plan. All subsequent SSD
    /// file operations consult the plan before touching disk.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.fault.lock() = plan;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault.lock().clone()
    }

    /// Replaces the SSD retry policy (default: 3 retries, 500 µs base
    /// backoff, doubling).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.lock() = policy;
    }

    /// The SSD retry policy in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry.lock()
    }

    /// Enables graceful degradation: an operation whose *final target* is
    /// the host pool and which would fail with a host OOM instead lands
    /// the blob on the SSD tier. Each spill bumps
    /// [`crate::telemetry::FaultStats::host_spills`]. Reads stay
    /// transparent — the blob is simply found on the SSD tier later.
    /// Off by default (capacity errors stay honest for sizing tests).
    pub fn set_spill_on_host_pressure(&self, on: bool) {
        self.host_spill.store(on, Ordering::Relaxed);
    }

    /// Whether host-pressure spilling is enabled.
    pub fn spill_on_host_pressure(&self) -> bool {
        self.host_spill.load(Ordering::Relaxed)
    }

    /// Runs one SSD file operation under the fault plan and retry policy:
    /// consults the plan (advancing its op counter — retries present new
    /// indices, which is how transient faults clear), then retries
    /// failures with geometric backoff up to the policy's budget. Retries
    /// and give-ups are counted in the recorder's always-on
    /// [`crate::telemetry::FaultStats`].
    ///
    /// Callers must NOT hold the store lock: backoff sleeps and injected
    /// latency spikes block for up to seconds, and holding the lock
    /// through them would serialize every unrelated transfer (the bug
    /// this protocol replaced). Instead, call sites mark their keys
    /// in [`Inner::pending`], drop the lock via
    /// [`TieredStore::run_unlocked`], and finalize after re-acquiring it.
    fn ssd_io<T>(
        &self,
        op: FaultOp,
        key: &str,
        mut io: impl FnMut() -> std::io::Result<T>,
    ) -> Result<T, StorageError> {
        let policy = *self.retry.lock();
        let plan = self.fault.lock().clone();
        // The whole I/O + latency-spike + retry-backoff loop must run
        // with no store lock held (PR 7 fixed two lock-held sleeps found
        // by eye; this excludes the class mechanically in debug builds).
        lockorder::assert_blocking_ok("ssd_io (file I/O, spikes, retry backoff)");
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let injected = plan.as_ref().and_then(|p| p.before_op(op, key));
            let result = match injected {
                Some(FaultKind::Transient) | Some(FaultKind::Permanent) => {
                    Err(StorageError::Faulted {
                        op,
                        key: key.to_string(),
                        attempts: attempt,
                    })
                }
                Some(FaultKind::LatencySpike(secs)) => {
                    if secs > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
                    }
                    io().map_err(StorageError::Io)
                }
                None => io().map_err(StorageError::Io),
            };
            match result {
                Ok(v) => return Ok(v),
                Err(e) if attempt <= policy.max_retries && e.is_retryable() => {
                    self.telemetry.count_retry();
                    ratel_obs::flight().record(
                        ratel_obs::EventKind::Retry,
                        op.index() as u8,
                        key,
                        0,
                        attempt as u64,
                    );
                    let backoff = policy.backoff_seconds(attempt);
                    if backoff > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(backoff));
                    }
                }
                Err(e) => {
                    if e.is_retryable() {
                        self.telemetry.count_give_up();
                        // Black-box the failure: the ring's tail now holds
                        // this op's retries; dump it before the error
                        // propagates (the process may not survive it).
                        ratel_obs::flight().record(
                            ratel_obs::EventKind::GiveUp,
                            op.index() as u8,
                            key,
                            0,
                            attempt as u64,
                        );
                        ratel_obs::dump_postmortem("ssd retry budget exhausted");
                    }
                    return Err(match e {
                        StorageError::Faulted { op, key, .. } => StorageError::Faulted {
                            op,
                            key,
                            attempts: attempt,
                        },
                        other => other,
                    });
                }
            }
        }
    }

    /// Locks the store and blocks until `key` has no SSD I/O in flight.
    /// Every operation that examines or mutates a key's state must enter
    /// through this (or [`TieredStore::lock_keys`]) so it never observes
    /// the transient mid-I/O state.
    fn lock_key(&self, key: &str) -> MutexGuard<'_, Inner> {
        let mut inner = self.inner.lock();
        while inner.pending.contains(key) {
            self.pending_cv.wait(&mut inner);
        }
        inner
    }

    /// Locks the store and blocks until none of `keys` has I/O in flight.
    fn lock_keys(&self, keys: &[&str]) -> MutexGuard<'_, Inner> {
        let mut inner = self.inner.lock();
        loop {
            if keys.iter().any(|k| inner.pending.contains(*k)) {
                self.pending_cv.wait(&mut inner);
            } else {
                return inner;
            }
        }
    }

    /// Releases the lock, runs `f` (the slow part: file I/O, injected
    /// spikes, retry backoff), and re-acquires the lock. The caller must
    /// have marked the affected keys pending first and must clear them
    /// (via [`TieredStore::unpend`]) after finalizing.
    fn run_unlocked<'a, T>(
        &'a self,
        inner: MutexGuard<'a, Inner>,
        f: impl FnOnce() -> T,
    ) -> (MutexGuard<'a, Inner>, T) {
        drop(inner);
        lockorder::assert_blocking_ok("run_unlocked slow path");
        let result = f();
        (self.inner.lock(), result)
    }

    /// Clears pending marks and wakes waiters.
    fn unpend(&self, inner: &mut Inner, keys: &[&str]) {
        for k in keys {
            inner.pending.remove(*k);
        }
        self.pending_cv.notify_all();
    }

    /// Reads an SSD blob's bytes given its location. No lock held.
    fn read_ssd_blob(&self, key: &str, loc: SsdLoc) -> Result<Vec<u8>, StorageError> {
        match loc {
            SsdLoc::File { .. } => {
                self.ssd_io(FaultOp::Read, key, || fs::read(self.blob_path(key)))
            }
            SsdLoc::Segment { seg, offset, len } => {
                let path = self.segment_path(seg);
                self.ssd_io(FaultOp::Read, key, || {
                    use std::io::{Read, Seek, SeekFrom};
                    let mut f = fs::File::open(&path)?;
                    f.seek(SeekFrom::Start(offset))?;
                    let mut buf = vec![0u8; len as usize];
                    f.read_exact(&mut buf)?;
                    Ok(buf)
                })
            }
        }
    }

    /// Drops one reference to a segment (a blob left it). Returns the
    /// segment file to unlink if this was the last live blob; the caller
    /// unlinks best-effort *after* releasing the lock.
    fn release_segment(inner: &mut Inner, seg: u64) -> Option<u64> {
        // A missing refcount would mean the index already forgot this
        // segment; nothing to release, and unlinking now could race a
        // concurrent reuse — leave the file for store-drop cleanup.
        let live = inner.segments.get_mut(&seg)?;
        *live -= 1;
        if *live == 0 {
            inner.segments.remove(&seg);
            Some(seg)
        } else {
            None
        }
    }

    /// Best-effort unlink of a dead segment file. The blobs are already
    /// gone from the index, so a failure only orphans bytes in the SSD
    /// dir (cleaned up on store drop); it is not surfaced.
    fn unlink_segment(&self, seg: Option<u64>) {
        if let Some(seg) = seg {
            let _ = fs::remove_file(self.segment_path(seg));
        }
    }

    fn segment_path(&self, seg: u64) -> PathBuf {
        self.config.ssd_dir.join(format!("seg-{seg}"))
    }

    /// The store's telemetry recorder (disabled until
    /// [`TelemetryRecorder::set_enabled`] is called). Every transfer the
    /// store performs while enabled is recorded as a span tagged with
    /// route, blob key, and bytes, plus per-route latency metrics.
    pub fn telemetry(&self) -> &Arc<TelemetryRecorder> {
        &self.telemetry
    }

    /// Caps `route` at `bytes_per_sec` (None removes the cap). Transfers
    /// over a capped route block the calling thread for `bytes / rate`.
    pub fn set_throttle(&self, route: Route, bytes_per_sec: Option<f64>) {
        self.throttle.lock()[route.index()] = bytes_per_sec;
    }

    /// Sleeps according to the route's throttle, if any.
    fn apply_throttle(&self, route: Route, bytes: u64) {
        let rate = self.throttle.lock()[route.index()];
        if let Some(rate) = rate {
            if rate > 0.0 {
                let secs = bytes as f64 / rate;
                lockorder::assert_blocking_ok("throttle sleep");
                std::thread::sleep(std::time::Duration::from_secs_f64(secs));
            }
        }
    }

    fn capacity(&self, tier: Tier) -> Option<u64> {
        match tier {
            Tier::Gpu => self.config.gpu_capacity,
            Tier::Host => self.config.host_capacity,
            Tier::Ssd => self.config.ssd_capacity,
        }
    }

    fn used_locked(inner: &Inner, tier: Tier) -> u64 {
        match tier {
            Tier::Gpu => inner.gpu_used,
            Tier::Host => inner.host_used,
            Tier::Ssd => inner.ssd_used,
        }
    }

    fn check_fits(&self, inner: &Inner, tier: Tier, bytes: u64) -> Result<(), StorageError> {
        if let Some(cap) = self.capacity(tier) {
            let used = Self::used_locked(inner, tier);
            if used + bytes > cap {
                return Err(StorageError::OutOfMemory {
                    tier,
                    requested: bytes,
                    available: cap.saturating_sub(used),
                });
            }
        }
        Ok(())
    }

    fn add_used(inner: &mut Inner, tier: Tier, bytes: i64) {
        let slot = match tier {
            Tier::Gpu => &mut inner.gpu_used,
            Tier::Host => &mut inner.host_used,
            Tier::Ssd => &mut inner.ssd_used,
        };
        *slot = (*slot as i64 + bytes).max(0) as u64;
    }

    fn blob_path(&self, key: &str) -> PathBuf {
        // Keys may contain '/', which we flatten to keep one flat dir.
        self.config.ssd_dir.join(key.replace('/', "_"))
    }

    /// Stores a new blob in `tier`.
    ///
    /// With [`TieredStore::set_spill_on_host_pressure`] enabled, a put
    /// into a full host pool degrades to an SSD put (metered as a
    /// `Host -> SSD` transfer and counted as a spill) instead of erroring.
    ///
    /// # Errors
    /// [`StorageError::AlreadyExists`] on duplicate keys,
    /// [`StorageError::OutOfMemory`] if the tier is full.
    pub fn put(&self, key: &str, tier: Tier, bytes: Vec<u8>) -> Result<(), StorageError> {
        let len = bytes.len() as u64;
        let mut inner = self.lock_key(key);
        if inner.mem.contains_key(key) || inner.ssd.contains_key(key) {
            return Err(StorageError::AlreadyExists(key.to_string()));
        }
        let mut tier = tier;
        if let Err(e) = self.check_fits(&inner, tier, len) {
            let spillable = tier == Tier::Host && self.spill_on_host_pressure();
            if !spillable {
                return Err(e);
            }
            // Degrade: the blob lands on the SSD tier instead. The extra
            // hop is metered so traffic accounting stays honest.
            self.check_fits(&inner, Tier::Ssd, len)?;
            self.telemetry.count_host_spill();
            ratel_obs::flight().record(
                ratel_obs::EventKind::Spill,
                Route::HostToSsd.index() as u8,
                key,
                len,
                0,
            );
            tier = Tier::Ssd;
        }
        match tier {
            Tier::Gpu | Tier::Host => {
                inner.mem.insert(key.to_string(), (tier, bytes));
                Self::add_used(&mut inner, tier, len as i64);
                Ok(())
            }
            Tier::Ssd => {
                // Reserve space and mark the key in flight, then write
                // with the lock released so injected spikes and backoff
                // never stall unrelated keys.
                Self::add_used(&mut inner, Tier::Ssd, len as i64);
                inner.pending.insert(key.to_string());
                let (mut inner, res) = self.run_unlocked(inner, || {
                    self.ssd_io(FaultOp::Write, key, || {
                        fs::write(self.blob_path(key), &bytes)
                    })
                });
                match &res {
                    Ok(_) => {
                        inner.ssd.insert(key.to_string(), SsdLoc::File { len });
                    }
                    Err(_) => {
                        // Roll back the reservation; the key was never
                        // registered.
                        Self::add_used(&mut inner, Tier::Ssd, -(len as i64));
                    }
                }
                self.unpend(&mut inner, &[key]);
                res.map(|_| ())
            }
        }
    }

    /// Stores many new blobs at once. For the SSD tier the blobs are
    /// coalesced into **one** sequential segment file written with a
    /// single I/O — the batched write path that turns per-blob random
    /// writes into the sequential streams SSDs like. Memory tiers fall
    /// back to per-blob puts.
    ///
    /// All-or-nothing on SSD: capacity for the whole batch is checked up
    /// front, and a failed segment write registers none of the keys.
    ///
    /// # Errors
    /// Same as [`TieredStore::put`]; the first duplicate key aborts the
    /// whole batch before anything is written.
    pub fn put_batch(
        &self,
        tier: Tier,
        entries: Vec<(String, Vec<u8>)>,
    ) -> Result<(), StorageError> {
        if entries.is_empty() {
            return Ok(());
        }
        if tier != Tier::Ssd {
            for (key, bytes) in entries {
                self.put(&key, tier, bytes)?;
            }
            return Ok(());
        }
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        let total: u64 = entries.iter().map(|(_, b)| b.len() as u64).sum();
        let mut inner = self.lock_keys(&keys);
        for key in &keys {
            if inner.mem.contains_key(*key) || inner.ssd.contains_key(*key) {
                return Err(StorageError::AlreadyExists(key.to_string()));
            }
        }
        self.check_fits(&inner, Tier::Ssd, total)?;
        Self::add_used(&mut inner, Tier::Ssd, total as i64);
        let seg = inner.next_seg;
        inner.next_seg += 1;
        for key in &keys {
            inner.pending.insert(key.to_string());
        }
        let seg_name = format!("seg-{seg}");
        let path = self.segment_path(seg);
        let (mut inner, res) = self.run_unlocked(inner, || {
            // One sequential stream into the segment file — no staging
            // copy. `File::create` truncates, so a retried attempt
            // restarts the segment from scratch.
            self.ssd_io(FaultOp::Write, &seg_name, || {
                use std::io::Write;
                let mut f = fs::File::create(&path)?;
                for (_, bytes) in &entries {
                    f.write_all(bytes)?;
                }
                Ok(())
            })
        });
        match &res {
            Ok(_) => {
                let mut offset = 0u64;
                for (key, bytes) in &entries {
                    let len = bytes.len() as u64;
                    inner
                        .ssd
                        .insert(key.clone(), SsdLoc::Segment { seg, offset, len });
                    offset += len;
                }
                inner.segments.insert(seg, entries.len() as u32);
            }
            Err(_) => {
                Self::add_used(&mut inner, Tier::Ssd, -(total as i64));
            }
        }
        self.unpend(&mut inner, &keys);
        res.map(|_| ())
    }

    /// Which tier currently holds `key`.
    pub fn tier_of(&self, key: &str) -> Result<Tier, StorageError> {
        let inner = self.lock_key(key);
        if let Some((tier, _)) = inner.mem.get(key) {
            Ok(*tier)
        } else if inner.ssd.contains_key(key) {
            Ok(Tier::Ssd)
        } else {
            Err(StorageError::NotFound(key.to_string()))
        }
    }

    /// Whether `key` exists in any tier.
    pub fn contains(&self, key: &str) -> bool {
        let inner = self.lock_key(key);
        inner.mem.contains_key(key) || inner.ssd.contains_key(key)
    }

    /// Reads a copy of the blob without moving it.
    pub fn read(&self, key: &str) -> Result<Vec<u8>, StorageError> {
        let mut inner = self.lock_key(key);
        if let Some((_, data)) = inner.mem.get(key) {
            return Ok(data.clone());
        }
        let Some(&loc) = inner.ssd.get(key) else {
            return Err(StorageError::NotFound(key.to_string()));
        };
        inner.pending.insert(key.to_string());
        let (mut inner, res) = self.run_unlocked(inner, || self.read_ssd_blob(key, loc));
        self.unpend(&mut inner, &[key]);
        res
    }

    /// Removes a blob, freeing its tier space.
    pub fn remove(&self, key: &str) -> Result<(), StorageError> {
        let mut inner = self.lock_key(key);
        if let Some((tier, data)) = inner.mem.remove(key) {
            let len = data.len() as i64;
            Self::add_used(&mut inner, tier, -len);
            return Ok(());
        }
        let Some(&loc) = inner.ssd.get(key) else {
            return Err(StorageError::NotFound(key.to_string()));
        };
        match loc {
            SsdLoc::File { len } => {
                inner.pending.insert(key.to_string());
                let (mut inner, res) = self.run_unlocked(inner, || {
                    self.ssd_io(FaultOp::Remove, key, || {
                        fs::remove_file(self.blob_path(key))
                    })
                });
                if res.is_ok() {
                    inner.ssd.remove(key);
                    Self::add_used(&mut inner, Tier::Ssd, -(len as i64));
                }
                self.unpend(&mut inner, &[key]);
                res
            }
            SsdLoc::Segment { seg, len, .. } => {
                // No per-blob file op: the bytes just go dead inside the
                // segment, which is unlinked when its last live blob leaves.
                inner.ssd.remove(key);
                Self::add_used(&mut inner, Tier::Ssd, -(len as i64));
                let dead = Self::release_segment(&mut inner, seg);
                drop(inner);
                self.unlink_segment(dead);
                Ok(())
            }
        }
    }

    /// Moves a blob to `target`, metering every hop. GPU↔SSD moves are
    /// forced through the host tier (no GPUDirect on consumer GPUs,
    /// §III-C), so they record two hops *and* require transient host space.
    ///
    /// With [`TieredStore::set_spill_on_host_pressure`] enabled, a move
    /// whose *final target* is a full host pool degrades instead of
    /// erroring: an SSD-resident blob simply stays on SSD, a GPU-resident
    /// blob streams straight through to SSD (both hops metered, no host
    /// residency). Transit host space for GPU↔SSD moves is still required
    /// — only the destination degrades, not the data path.
    pub fn move_to(&self, key: &str, target: Tier) -> Result<(), StorageError> {
        let current = self.tier_of(key)?;
        if current == target {
            return Ok(());
        }
        let result = match (current, target) {
            (Tier::Gpu, Tier::Ssd) => self
                .move_one_hop(key, Tier::Host)
                .and_then(|_| self.move_one_hop(key, Tier::Ssd)),
            (Tier::Ssd, Tier::Gpu) => self
                .move_one_hop(key, Tier::Host)
                .and_then(|_| self.move_one_hop(key, Tier::Gpu)),
            _ => self.move_one_hop(key, target),
        };
        match result {
            Err(StorageError::OutOfMemory {
                tier: Tier::Host, ..
            }) if target == Tier::Host && self.spill_on_host_pressure() => {
                self.telemetry.count_host_spill();
                ratel_obs::flight().record(
                    ratel_obs::EventKind::Spill,
                    Route::HostToSsd.index() as u8,
                    key,
                    0,
                    0,
                );
                match current {
                    // Already on the slow tier: degrading means staying put.
                    Tier::Ssd => Ok(()),
                    // Stream GPU -> SSD without host residency.
                    Tier::Gpu => self.spill_gpu_to_ssd(key),
                    Tier::Host => unreachable!("current == target handled above"),
                }
            }
            other => other,
        }
    }

    /// Degraded GPU→SSD path used when the host pool is full: the blob is
    /// written straight to an SSD file and both logical hops are metered,
    /// but no host-tier residency is consumed (modeling a bounce buffer
    /// too small to count).
    fn spill_gpu_to_ssd(&self, key: &str) -> Result<(), StorageError> {
        let mut inner = self.lock_key(key);
        let bytes = match inner.mem.get(key) {
            Some((Tier::Gpu, data)) => data.clone(),
            _ => return Err(StorageError::NotFound(key.to_string())),
        };
        let len = bytes.len() as u64;
        self.check_fits(&inner, Tier::Ssd, len)?;
        Self::add_used(&mut inner, Tier::Ssd, len as i64);
        inner.pending.insert(key.to_string());
        let (mut inner, res) = self.run_unlocked(inner, || {
            self.ssd_io(FaultOp::Write, key, || {
                fs::write(self.blob_path(key), &bytes)
            })
        });
        match &res {
            Ok(_) => {
                inner.mem.remove(key);
                Self::add_used(&mut inner, Tier::Gpu, -(len as i64));
                inner.ssd.insert(key.to_string(), SsdLoc::File { len });
            }
            Err(_) => Self::add_used(&mut inner, Tier::Ssd, -(len as i64)),
        }
        self.unpend(&mut inner, &[key]);
        drop(inner);
        res?;
        for route in [Route::GpuToHost, Route::HostToSsd] {
            let t0 = self.telemetry.enabled().then(|| self.telemetry.now());
            self.traffic.record(route, len);
            ratel_obs::flight().record(
                ratel_obs::EventKind::Transfer,
                route.index() as u8,
                key,
                len,
                0,
            );
            self.apply_throttle(route, len);
            if let Some(t0) = t0 {
                self.telemetry
                    .record_transfer(route, key, len, t0, self.telemetry.now());
            }
        }
        Ok(())
    }

    fn move_one_hop(&self, key: &str, target: Tier) -> Result<(), StorageError> {
        // Span covers the whole hop — lock wait, file I/O, throttle sleep —
        // which is what a wall-clock bandwidth measurement should see.
        let t0 = self.telemetry.enabled().then(|| self.telemetry.now());
        let mut inner = self.lock_key(key);
        let current = if let Some((tier, _)) = inner.mem.get(key) {
            *tier
        } else if inner.ssd.contains_key(key) {
            Tier::Ssd
        } else {
            return Err(StorageError::NotFound(key.to_string()));
        };
        debug_assert_ne!(current, target);

        let route = match (current, target) {
            (Tier::Gpu, Tier::Host) => Route::GpuToHost,
            (Tier::Host, Tier::Gpu) => Route::HostToGpu,
            (Tier::Host, Tier::Ssd) => Route::HostToSsd,
            (Tier::Ssd, Tier::Host) => Route::SsdToHost,
            (a, b) => unreachable!("single hop {a:?}->{b:?}"),
        };

        // Commit target-first: the new copy exists before the old one goes
        // away, so a fault between the two steps can at worst orphan a
        // stale source copy — never lose the blob. All file I/O (and its
        // injected faults, spikes, and retry backoff) runs with the lock
        // released and the key marked pending.
        let len = match (current, target) {
            (Tier::Gpu, Tier::Host) | (Tier::Host, Tier::Gpu) => {
                // Pure in-memory hop: no file I/O, finish under the lock.
                let bytes = match inner.mem.get(key) {
                    Some((_, b)) => b.clone(),
                    None => return Err(StorageError::NotFound(key.to_string())),
                };
                let len = bytes.len() as u64;
                // The source still holds the blob while we check the
                // target, which is how double-buffered transfers behave.
                self.check_fits(&inner, target, len)?;
                inner.mem.insert(key.to_string(), (target, bytes));
                Self::add_used(&mut inner, target, len as i64);
                Self::add_used(&mut inner, current, -(len as i64));
                drop(inner);
                len
            }
            (_, Tier::Ssd) => {
                let bytes = match inner.mem.get(key) {
                    Some((_, b)) => b.clone(),
                    None => return Err(StorageError::NotFound(key.to_string())),
                };
                let len = bytes.len() as u64;
                self.check_fits(&inner, Tier::Ssd, len)?;
                Self::add_used(&mut inner, Tier::Ssd, len as i64);
                inner.pending.insert(key.to_string());
                let (mut inner, res) = self.run_unlocked(inner, || {
                    self.ssd_io(FaultOp::Write, key, || {
                        fs::write(self.blob_path(key), &bytes)
                    })
                });
                match &res {
                    Ok(_) => {
                        inner.ssd.insert(key.to_string(), SsdLoc::File { len });
                        inner.mem.remove(key);
                        Self::add_used(&mut inner, current, -(len as i64));
                    }
                    Err(_) => Self::add_used(&mut inner, Tier::Ssd, -(len as i64)),
                }
                self.unpend(&mut inner, &[key]);
                drop(inner);
                res?;
                len
            }
            (Tier::Ssd, _) => {
                let loc = match inner.ssd.get(key) {
                    Some(loc) => *loc,
                    None => return Err(StorageError::NotFound(key.to_string())),
                };
                let len = loc.len();
                self.check_fits(&inner, target, len)?;
                inner.pending.insert(key.to_string());
                let (mut inner, res) = self.run_unlocked(inner, || self.read_ssd_blob(key, loc));
                let bytes = match res {
                    Ok(b) => b,
                    Err(e) => {
                        self.unpend(&mut inner, &[key]);
                        return Err(e);
                    }
                };
                inner.mem.insert(key.to_string(), (target, bytes));
                Self::add_used(&mut inner, target, len as i64);
                inner.ssd.remove(key);
                Self::add_used(&mut inner, Tier::Ssd, -(len as i64));
                // Drop the stale on-disk copy, best-effort (the blob is
                // safe in its target tier). The key stays pending through
                // the unlink so a concurrent re-put can't race with it.
                let dead_seg = match loc {
                    SsdLoc::File { .. } => {
                        inner = self
                            .run_unlocked(inner, || {
                                let _ = self.ssd_io(FaultOp::Remove, key, || {
                                    fs::remove_file(self.blob_path(key))
                                });
                            })
                            .0;
                        None
                    }
                    SsdLoc::Segment { seg, .. } => Self::release_segment(&mut inner, seg),
                };
                self.unpend(&mut inner, &[key]);
                drop(inner);
                self.unlink_segment(dead_seg);
                len
            }
            (a, b) => unreachable!("single hop {a:?}->{b:?}"),
        };

        self.traffic.record(route, len);
        ratel_obs::flight().record(
            ratel_obs::EventKind::Transfer,
            route.index() as u8,
            key,
            len,
            0,
        );
        self.apply_throttle(route, len);
        if let Some(t0) = t0 {
            self.telemetry
                .record_transfer(route, key, len, t0, self.telemetry.now());
        }
        Ok(())
    }

    /// Stages a *copy* of `key` into `tier` under `new_key`, metering the
    /// hops from the source tier (via host if GPU<->SSD). This models a
    /// read-only fetch — e.g. streaming a layer's P16 from SSD to the GPU
    /// for compute — where the source copy stays put and the staged copy
    /// is discarded (via [`TieredStore::remove`]) after use.
    pub fn copy_to(&self, key: &str, new_key: &str, tier: Tier) -> Result<(), StorageError> {
        let src_tier = self.tier_of(key)?;
        let bytes = self.read(key)?;
        let len = bytes.len() as u64;
        let hops: &[Route] = match (src_tier, tier) {
            (a, b) if a == b => &[],
            (Tier::Gpu, Tier::Host) => &[Route::GpuToHost],
            (Tier::Host, Tier::Gpu) => &[Route::HostToGpu],
            (Tier::Host, Tier::Ssd) => &[Route::HostToSsd],
            (Tier::Ssd, Tier::Host) => &[Route::SsdToHost],
            (Tier::Gpu, Tier::Ssd) => &[Route::GpuToHost, Route::HostToSsd],
            (Tier::Ssd, Tier::Gpu) => &[Route::SsdToHost, Route::HostToGpu],
            _ => unreachable!(),
        };
        self.put(new_key, tier, bytes)?;
        for &h in hops {
            let t0 = self.telemetry.enabled().then(|| self.telemetry.now());
            self.traffic.record(h, len);
            ratel_obs::flight().record(
                ratel_obs::EventKind::Transfer,
                h.index() as u8,
                key,
                len,
                0,
            );
            self.apply_throttle(h, len);
            if let Some(t0) = t0 {
                self.telemetry
                    .record_transfer(h, key, len, t0, self.telemetry.now());
            }
        }
        Ok(())
    }

    /// Overwrites an existing blob in place (same tier). Used by the
    /// optimizer to write back updated master states. A segment-resident
    /// SSD blob migrates to its own file (its segment bytes go dead).
    pub fn overwrite(&self, key: &str, bytes: Vec<u8>) -> Result<(), StorageError> {
        let new_len = bytes.len() as u64;
        let mut inner = self.lock_key(key);
        if let Some((tier, data)) = inner.mem.get(key) {
            let tier = *tier;
            let old_len = data.len() as u64;
            if new_len > old_len {
                self.check_fits(&inner, tier, new_len - old_len)?;
            }
            inner.mem.insert(key.to_string(), (tier, bytes));
            Self::add_used(&mut inner, tier, new_len as i64 - old_len as i64);
            return Ok(());
        }
        let Some(&loc) = inner.ssd.get(key) else {
            return Err(StorageError::NotFound(key.to_string()));
        };
        let old_len = loc.len();
        // Reserve any growth up front so concurrent writers can't both
        // pass the capacity check; shrinkage is credited after success.
        if new_len > old_len {
            self.check_fits(&inner, Tier::Ssd, new_len - old_len)?;
            Self::add_used(&mut inner, Tier::Ssd, (new_len - old_len) as i64);
        }
        inner.pending.insert(key.to_string());
        let (mut inner, res) = self.run_unlocked(inner, || {
            self.ssd_io(FaultOp::Write, key, || {
                fs::write(self.blob_path(key), &bytes)
            })
        });
        let dead_seg = match &res {
            Ok(_) => {
                if new_len < old_len {
                    Self::add_used(&mut inner, Tier::Ssd, -((old_len - new_len) as i64));
                }
                let old = inner
                    .ssd
                    .insert(key.to_string(), SsdLoc::File { len: new_len });
                match old {
                    Some(SsdLoc::Segment { seg, .. }) => Self::release_segment(&mut inner, seg),
                    _ => None,
                }
            }
            Err(_) => {
                if new_len > old_len {
                    Self::add_used(&mut inner, Tier::Ssd, -((new_len - old_len) as i64));
                }
                None
            }
        };
        self.unpend(&mut inner, &[key]);
        drop(inner);
        self.unlink_segment(dead_seg);
        res.map(|_| ())
    }

    /// Bytes currently resident in `tier`.
    pub fn used(&self, tier: Tier) -> u64 {
        Self::used_locked(&self.inner.lock(), tier)
    }

    /// Current traffic counters.
    pub fn traffic(&self) -> TrafficSnapshot {
        self.traffic.snapshot()
    }

    /// Resets the traffic counters (e.g. between iterations).
    pub fn reset_traffic(&self) {
        self.traffic.reset();
    }
}

impl Drop for TieredStore {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.config.ssd_dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_read_remove_round_trip() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.put("a", Tier::Gpu, vec![1, 2, 3]).unwrap();
        assert_eq!(store.read("a").unwrap(), vec![1, 2, 3]);
        assert_eq!(store.tier_of("a").unwrap(), Tier::Gpu);
        assert_eq!(store.used(Tier::Gpu), 3);
        store.remove("a").unwrap();
        assert!(!store.contains("a"));
        assert_eq!(store.used(Tier::Gpu), 0);
    }

    #[test]
    fn ssd_tier_really_writes_files() {
        let config = TierConfig::unbounded_temp();
        let dir = config.ssd_dir.clone();
        let store = TieredStore::new(config).unwrap();
        store.put("w/x", Tier::Ssd, vec![9u8; 64]).unwrap();
        let entries: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1);
        assert_eq!(store.read("w/x").unwrap(), vec![9u8; 64]);
        drop(store);
        assert!(!dir.exists(), "ssd dir should be cleaned up on drop");
    }

    #[test]
    fn capacity_is_enforced() {
        let store = TieredStore::new(TierConfig::bounded_temp(10, 100)).unwrap();
        store.put("a", Tier::Gpu, vec![0u8; 8]).unwrap();
        let err = store.put("b", Tier::Gpu, vec![0u8; 8]).unwrap_err();
        match err {
            StorageError::OutOfMemory {
                tier,
                requested,
                available,
            } => {
                assert_eq!(tier, Tier::Gpu);
                assert_eq!(requested, 8);
                assert_eq!(available, 2);
            }
            other => panic!("expected OOM, got {other}"),
        }
        // Freeing makes room again.
        store.remove("a").unwrap();
        store.put("b", Tier::Gpu, vec![0u8; 8]).unwrap();
    }

    #[test]
    fn gpu_to_ssd_routes_through_host_and_meters_both_hops() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.put("t", Tier::Gpu, vec![0u8; 100]).unwrap();
        store.move_to("t", Tier::Ssd).unwrap();
        assert_eq!(store.tier_of("t").unwrap(), Tier::Ssd);
        let s = store.traffic();
        assert_eq!(s.bytes(Route::GpuToHost), 100);
        assert_eq!(s.bytes(Route::HostToSsd), 100);
        // And back.
        store.move_to("t", Tier::Gpu).unwrap();
        let s = store.traffic();
        assert_eq!(s.bytes(Route::SsdToHost), 100);
        assert_eq!(s.bytes(Route::HostToGpu), 100);
        assert_eq!(store.used(Tier::Host), 0);
    }

    #[test]
    fn gpu_to_ssd_requires_transient_host_space() {
        let mut config = TierConfig::bounded_temp(1000, 50);
        config.ssd_capacity = None;
        let store = TieredStore::new(config).unwrap();
        store.put("big", Tier::Gpu, vec![0u8; 100]).unwrap();
        let err = store.move_to("big", Tier::Ssd).unwrap_err();
        assert!(matches!(
            err,
            StorageError::OutOfMemory {
                tier: Tier::Host,
                ..
            }
        ));
        // Blob is still intact on the GPU tier.
        assert_eq!(store.tier_of("big").unwrap(), Tier::Gpu);
    }

    #[test]
    fn move_to_same_tier_is_a_noop() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.put("t", Tier::Host, vec![0u8; 10]).unwrap();
        store.move_to("t", Tier::Host).unwrap();
        assert_eq!(store.traffic().total(), 0);
    }

    #[test]
    fn overwrite_adjusts_usage() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.put("s", Tier::Ssd, vec![0u8; 10]).unwrap();
        store.overwrite("s", vec![1u8; 30]).unwrap();
        assert_eq!(store.used(Tier::Ssd), 30);
        assert_eq!(store.read("s").unwrap(), vec![1u8; 30]);
        store.overwrite("s", vec![2u8; 5]).unwrap();
        assert_eq!(store.used(Tier::Ssd), 5);
    }

    #[test]
    fn duplicate_put_is_rejected() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.put("k", Tier::Host, vec![1]).unwrap();
        assert!(matches!(
            store.put("k", Tier::Ssd, vec![2]),
            Err(StorageError::AlreadyExists(_))
        ));
    }

    #[test]
    fn missing_keys_error() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        assert!(matches!(store.read("nope"), Err(StorageError::NotFound(_))));
        assert!(matches!(
            store.move_to("nope", Tier::Gpu),
            Err(StorageError::NotFound(_))
        ));
        assert!(matches!(
            store.remove("nope"),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let store = std::sync::Arc::new(TieredStore::new(TierConfig::unbounded_temp()).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let key = format!("t{t}/k{i}");
                    s.put(&key, Tier::Host, vec![0u8; 128]).unwrap();
                    s.move_to(&key, Tier::Ssd).unwrap();
                    s.move_to(&key, Tier::Host).unwrap();
                    s.remove(&key).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.used(Tier::Host), 0);
        assert_eq!(store.used(Tier::Ssd), 0);
        assert_eq!(store.traffic().bytes(Route::HostToSsd), 4 * 50 * 128);
    }
}

#[cfg(test)]
mod segment_tests {
    use super::*;

    fn batch(n: usize, len: usize) -> Vec<(String, Vec<u8>)> {
        (0..n)
            .map(|i| (format!("seg/k{i}"), vec![i as u8 + 1; len]))
            .collect()
    }

    #[test]
    fn put_batch_coalesces_into_one_segment_file() {
        let config = TierConfig::unbounded_temp();
        let dir = config.ssd_dir.clone();
        let store = TieredStore::new(config).unwrap();
        store.put_batch(Tier::Ssd, batch(3, 64)).unwrap();
        // One sequential segment file, not three blob files.
        let entries: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1, "expected one coalesced segment file");
        for i in 0..3 {
            let key = format!("seg/k{i}");
            assert_eq!(store.tier_of(&key).unwrap(), Tier::Ssd);
            assert_eq!(store.read(&key).unwrap(), vec![i as u8 + 1; 64]);
        }
        assert_eq!(store.used(Tier::Ssd), 3 * 64);
    }

    #[test]
    fn segment_is_unlinked_when_last_blob_leaves() {
        let config = TierConfig::unbounded_temp();
        let dir = config.ssd_dir.clone();
        let store = TieredStore::new(config).unwrap();
        store.put_batch(Tier::Ssd, batch(2, 32)).unwrap();
        store.remove("seg/k0").unwrap();
        // Dead bytes linger while k1 is live.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        assert_eq!(store.used(Tier::Ssd), 32);
        assert_eq!(store.read("seg/k1").unwrap(), vec![2u8; 32]);
        store.remove("seg/k1").unwrap();
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0, "segment not GCed");
        assert_eq!(store.used(Tier::Ssd), 0);
    }

    #[test]
    fn overwrite_migrates_segment_blob_to_own_file() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.put_batch(Tier::Ssd, batch(2, 16)).unwrap();
        store.overwrite("seg/k0", vec![9u8; 40]).unwrap();
        assert_eq!(store.read("seg/k0").unwrap(), vec![9u8; 40]);
        // The neighbour's bytes are untouched by the migration.
        assert_eq!(store.read("seg/k1").unwrap(), vec![2u8; 16]);
        assert_eq!(store.used(Tier::Ssd), 40 + 16);
        // k0 now lives in its own file; removing k1 GCs the segment and
        // removing k0 unlinks the file.
        store.remove("seg/k1").unwrap();
        store.remove("seg/k0").unwrap();
        assert_eq!(store.used(Tier::Ssd), 0);
    }

    #[test]
    fn move_lifts_blob_out_of_its_segment() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.put_batch(Tier::Ssd, batch(2, 128)).unwrap();
        store.move_to("seg/k0", Tier::Host).unwrap();
        assert_eq!(store.tier_of("seg/k0").unwrap(), Tier::Host);
        assert_eq!(store.read("seg/k0").unwrap(), vec![1u8; 128]);
        assert_eq!(store.read("seg/k1").unwrap(), vec![2u8; 128]);
        assert_eq!(store.traffic().bytes(Route::SsdToHost), 128);
        assert_eq!(store.used(Tier::Ssd), 128);
        assert_eq!(store.used(Tier::Host), 128);
    }

    #[test]
    fn put_batch_rejects_duplicates_atomically() {
        let config = TierConfig::unbounded_temp();
        let dir = config.ssd_dir.clone();
        let store = TieredStore::new(config).unwrap();
        store.put("seg/k1", Tier::Host, vec![0u8; 4]).unwrap();
        let err = store.put_batch(Tier::Ssd, batch(3, 8)).unwrap_err();
        assert!(matches!(err, StorageError::AlreadyExists(_)));
        // Nothing from the batch landed.
        assert!(!store.contains("seg/k0"));
        assert_eq!(store.used(Tier::Ssd), 0);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
    }

    #[test]
    fn put_batch_enforces_total_capacity() {
        let mut config = TierConfig::unbounded_temp();
        config.ssd_capacity = Some(100);
        let store = TieredStore::new(config).unwrap();
        let err = store.put_batch(Tier::Ssd, batch(3, 40)).unwrap_err();
        assert!(matches!(
            err,
            StorageError::OutOfMemory {
                tier: Tier::Ssd,
                ..
            }
        ));
        assert_eq!(store.used(Tier::Ssd), 0);
        // A batch that fits goes through.
        store.put_batch(Tier::Ssd, batch(2, 40)).unwrap();
        assert_eq!(store.used(Tier::Ssd), 80);
    }

    #[test]
    fn put_batch_to_memory_tier_falls_back_to_per_blob_puts() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.put_batch(Tier::Host, batch(2, 16)).unwrap();
        assert_eq!(store.tier_of("seg/k0").unwrap(), Tier::Host);
        assert_eq!(store.used(Tier::Host), 32);
    }

    #[test]
    fn failed_segment_write_registers_nothing() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.set_retry_policy(RetryPolicy::none());
        let plan = Arc::new(crate::fault::FaultPlan::new());
        plan.fault_on_key("seg-0", crate::fault::FaultKind::Permanent);
        store.set_fault_plan(Some(plan));
        let err = store.put_batch(Tier::Ssd, batch(2, 8)).unwrap_err();
        assert!(matches!(err, StorageError::Faulted { .. }));
        assert!(!store.contains("seg/k0"));
        assert!(!store.contains("seg/k1"));
        assert_eq!(store.used(Tier::Ssd), 0);
        // The keys are not left pending: later puts proceed normally.
        store.set_fault_plan(None);
        store.put_batch(Tier::Ssd, batch(2, 8)).unwrap();
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultKind, FaultOp, FaultPlan};

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_seconds: 0.0,
            multiplier: 1.0,
        }
    }

    #[test]
    fn transient_fault_is_retried_transparently() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.set_retry_policy(fast_retry());
        let plan = Arc::new(FaultPlan::new());
        plan.fault_at(0, FaultKind::Transient); // first SSD op fails once
        store.set_fault_plan(Some(plan.clone()));
        store.put("k", Tier::Ssd, vec![7u8; 32]).unwrap();
        assert_eq!(store.read("k").unwrap(), vec![7u8; 32]);
        assert_eq!(plan.injected_count(), 1);
        let stats = store.telemetry().fault_stats();
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.give_ups, 0);
    }

    #[test]
    fn permanent_fault_exhausts_retries_and_surfaces() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.set_retry_policy(fast_retry());
        let plan = Arc::new(FaultPlan::new());
        plan.fault_at(0, FaultKind::Permanent);
        store.set_fault_plan(Some(plan));
        let err = store.put("k", Tier::Ssd, vec![0u8; 8]).unwrap_err();
        match err {
            StorageError::Faulted { op, attempts, .. } => {
                assert_eq!(op, FaultOp::Write);
                assert_eq!(attempts, 4, "1 initial + 3 retries");
            }
            other => panic!("expected Faulted, got {other}"),
        }
        let stats = store.telemetry().fault_stats();
        assert_eq!(stats.retries, 3);
        assert_eq!(stats.give_ups, 1);
        // The store stays consistent: the key was never registered.
        assert!(!store.contains("k"));
    }

    #[test]
    fn latency_spike_delays_but_succeeds() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        let plan = Arc::new(FaultPlan::new());
        plan.fault_at(0, FaultKind::LatencySpike(0.05));
        store.set_fault_plan(Some(plan));
        let t0 = std::time::Instant::now();
        store.put("k", Tier::Ssd, vec![1u8; 8]).unwrap();
        assert!(t0.elapsed().as_secs_f64() >= 0.045, "spike not applied");
        assert_eq!(store.read("k").unwrap(), vec![1u8; 8]);
        assert_eq!(store.telemetry().fault_stats().retries, 0);
    }

    #[test]
    fn faulted_move_leaves_blob_in_source_tier() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.set_retry_policy(RetryPolicy::none());
        store.put("k", Tier::Host, vec![3u8; 16]).unwrap();
        let plan = Arc::new(FaultPlan::new());
        plan.fault_at_op(0, FaultOp::Write, FaultKind::Permanent);
        store.set_fault_plan(Some(plan));
        let err = store.move_to("k", Tier::Ssd).unwrap_err();
        assert!(matches!(err, StorageError::Faulted { .. }));
        // Target-first commit: the write never landed, the source copy is
        // still intact and readable.
        assert_eq!(store.tier_of("k").unwrap(), Tier::Host);
        assert_eq!(store.read("k").unwrap(), vec![3u8; 16]);
        assert_eq!(store.used(Tier::Ssd), 0);
    }

    #[test]
    fn host_pressure_put_spills_to_ssd_when_enabled() {
        let store = TieredStore::new(TierConfig::bounded_temp(1000, 10)).unwrap();
        // Without the knob the OOM is honest.
        assert!(matches!(
            store.put("big", Tier::Host, vec![0u8; 64]),
            Err(StorageError::OutOfMemory {
                tier: Tier::Host,
                ..
            })
        ));
        store.set_spill_on_host_pressure(true);
        store.put("big", Tier::Host, vec![5u8; 64]).unwrap();
        assert_eq!(store.tier_of("big").unwrap(), Tier::Ssd);
        assert_eq!(store.read("big").unwrap(), vec![5u8; 64]);
        assert_eq!(store.used(Tier::Host), 0);
        assert_eq!(store.telemetry().fault_stats().host_spills, 1);
    }

    #[test]
    fn host_pressure_move_spills_gpu_blob_to_ssd() {
        let store = TieredStore::new(TierConfig::bounded_temp(1000, 10)).unwrap();
        store.set_spill_on_host_pressure(true);
        store.put("g", Tier::Gpu, vec![2u8; 64]).unwrap();
        store.move_to("g", Tier::Host).unwrap();
        assert_eq!(store.tier_of("g").unwrap(), Tier::Ssd);
        // Both logical hops of the degraded path are metered.
        let s = store.traffic();
        assert_eq!(s.bytes(Route::GpuToHost), 64);
        assert_eq!(s.bytes(Route::HostToSsd), 64);
        assert_eq!(store.used(Tier::Gpu), 0);
        assert_eq!(store.telemetry().fault_stats().host_spills, 1);
    }

    #[test]
    fn host_pressure_move_keeps_ssd_blob_on_ssd() {
        let store = TieredStore::new(TierConfig::bounded_temp(1000, 10)).unwrap();
        store.set_spill_on_host_pressure(true);
        store.put("s", Tier::Ssd, vec![4u8; 64]).unwrap();
        store.move_to("s", Tier::Host).unwrap();
        assert_eq!(store.tier_of("s").unwrap(), Tier::Ssd);
        assert_eq!(store.telemetry().fault_stats().host_spills, 1);
        // No phantom traffic for a move that never happened.
        assert_eq!(store.traffic().total(), 0);
    }

    #[test]
    fn latency_spike_on_one_key_does_not_stall_other_keys() {
        // Regression test for sleeping while holding the store lock: a
        // seconds-scale injected spike on one blob must not serialize an
        // unrelated blob's I/O behind it.
        let store = std::sync::Arc::new(TieredStore::new(TierConfig::unbounded_temp()).unwrap());
        let plan = Arc::new(FaultPlan::new());
        plan.fault_on_key_op("slow", FaultOp::Write, FaultKind::LatencySpike(0.6));
        store.set_fault_plan(Some(plan));

        let s = store.clone();
        let spiked = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            s.put("slow", Tier::Ssd, vec![1u8; 64]).unwrap();
            t0.elapsed().as_secs_f64()
        });
        // Give the spiked write time to enter its sleep.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let t0 = std::time::Instant::now();
        store.put("fast", Tier::Ssd, vec![2u8; 64]).unwrap();
        let bytes = store.read("fast").unwrap();
        let fast_elapsed = t0.elapsed().as_secs_f64();
        let slow_elapsed = spiked.join().unwrap();

        assert!(
            slow_elapsed >= 0.55,
            "spike not applied: {slow_elapsed:.3}s"
        );
        assert!(
            fast_elapsed < 0.3,
            "unrelated key serialized behind the spike: {fast_elapsed:.3}s"
        );
        assert_eq!(bytes, vec![2u8; 64]);
        assert_eq!(store.read("slow").unwrap(), vec![1u8; 64]);
    }

    #[test]
    fn retry_backoff_does_not_hold_the_lock() {
        // Same property for the retry path: a transient fault's backoff
        // sleep must only delay the faulted key.
        let store = std::sync::Arc::new(TieredStore::new(TierConfig::unbounded_temp()).unwrap());
        store.set_retry_policy(RetryPolicy {
            max_retries: 1,
            base_seconds: 0.5,
            multiplier: 1.0,
        });
        let plan = Arc::new(FaultPlan::new());
        plan.fault_on_key("flaky", FaultKind::Transient);
        store.set_fault_plan(Some(plan));

        let s = store.clone();
        let flaky = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            s.put("flaky", Tier::Ssd, vec![3u8; 32]).unwrap();
            t0.elapsed().as_secs_f64()
        });
        std::thread::sleep(std::time::Duration::from_millis(100));
        let t0 = std::time::Instant::now();
        store.put("steady", Tier::Ssd, vec![4u8; 32]).unwrap();
        let steady_elapsed = t0.elapsed().as_secs_f64();
        let flaky_elapsed = flaky.join().unwrap();

        assert!(
            flaky_elapsed >= 0.45,
            "backoff skipped: {flaky_elapsed:.3}s"
        );
        assert!(
            steady_elapsed < 0.25,
            "unrelated key waited out the backoff: {steady_elapsed:.3}s"
        );
        assert_eq!(store.read("flaky").unwrap(), vec![3u8; 32]);
        assert_eq!(store.telemetry().fault_stats().retries, 1);
    }

    #[test]
    fn same_key_operations_still_serialize_behind_in_flight_io() {
        // The per-key pending set is what preserves atomicity: a reader of
        // the spiked key must wait for the write to land.
        let store = std::sync::Arc::new(TieredStore::new(TierConfig::unbounded_temp()).unwrap());
        let plan = Arc::new(FaultPlan::new());
        plan.fault_on_key_op("k", FaultOp::Write, FaultKind::LatencySpike(0.3));
        store.set_fault_plan(Some(plan));
        let s = store.clone();
        let writer = std::thread::spawn(move || s.put("k", Tier::Ssd, vec![5u8; 16]).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(100));
        // The key is mid-write; contains() must not observe the half-done
        // state, and read() must return the completed bytes.
        assert!(store.contains("k"));
        assert_eq!(store.read("k").unwrap(), vec![5u8; 16]);
        writer.join().unwrap();
    }
}

#[cfg(test)]
mod throttle_tests {
    use super::*;

    #[test]
    fn throttled_route_takes_proportional_time() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.put("t", Tier::Host, vec![0u8; 100_000]).unwrap();
        // 1 MB/s -> 100 KB takes ~100 ms.
        store.set_throttle(Route::HostToSsd, Some(1e6));
        let t0 = std::time::Instant::now();
        store.move_to("t", Tier::Ssd).unwrap();
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(elapsed >= 0.09, "only {elapsed:.3}s");
        // The reverse route is not throttled.
        let t0 = std::time::Instant::now();
        store.move_to("t", Tier::Host).unwrap();
        assert!(t0.elapsed().as_secs_f64() < 0.05);
        // Removing the cap restores full speed.
        store.set_throttle(Route::HostToSsd, None);
        let t0 = std::time::Instant::now();
        store.move_to("t", Tier::Ssd).unwrap();
        assert!(t0.elapsed().as_secs_f64() < 0.05);
    }

    #[test]
    fn throttled_transfer_lands_in_the_latency_histogram() {
        let store = TieredStore::new(TierConfig::unbounded_temp()).unwrap();
        store.telemetry().set_enabled(true);
        store.put("t", Tier::Host, vec![0u8; 100_000]).unwrap();
        // 1 MB/s -> this 100 KB hop must take >= bytes/rate = 100 ms.
        store.set_throttle(Route::HostToSsd, Some(1e6));
        let t0 = std::time::Instant::now();
        store.move_to("t", Tier::Ssd).unwrap();
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(elapsed >= 0.1, "only {elapsed:.3}s for bytes/rate = 0.1s");

        let metrics = store.telemetry().route_metrics();
        let m = &metrics[Route::HostToSsd.index()];
        assert_eq!(m.ops, 1);
        assert_eq!(m.bytes, 100_000);
        assert!(m.seconds >= 0.1, "span shorter than the throttle sleep");
        assert_eq!(m.histogram.count(), 1);
        // The observation sits in a bucket whose bounds contain it.
        let bucket = (0..crate::telemetry::HISTOGRAM_BUCKETS)
            .find(|&i| m.histogram.bucket_count(i) == 1)
            .expect("one bucket holds the observation");
        let (lo, hi) = crate::telemetry::LatencyHistogram::bucket_bounds(bucket);
        assert!(lo <= m.seconds && m.seconds < hi);
        // Achieved bandwidth reflects the cap (can only be slower).
        let bw = m.achieved_bandwidth().unwrap();
        assert!(
            bw <= 1e6 * 1.01,
            "achieved {bw:.0} B/s beats the 1 MB/s cap"
        );
        // The untouched routes recorded nothing.
        assert_eq!(metrics[Route::GpuToHost.index()].ops, 0);
    }

    #[test]
    fn throttled_routes_overlap_across_threads() {
        // Two different routes sleep concurrently, not serially — the
        // property the active optimizer's overlap relies on.
        let store = std::sync::Arc::new(TieredStore::new(TierConfig::unbounded_temp()).unwrap());
        store.put("a", Tier::Host, vec![0u8; 100_000]).unwrap();
        store.put("b", Tier::Ssd, vec![0u8; 100_000]).unwrap();
        store.set_throttle(Route::HostToSsd, Some(1e6));
        store.set_throttle(Route::SsdToHost, Some(1e6));
        let t0 = std::time::Instant::now();
        let s1 = store.clone();
        let h = std::thread::spawn(move || s1.move_to("a", Tier::Ssd).unwrap());
        store.move_to("b", Tier::Host).unwrap();
        h.join().unwrap();
        let elapsed = t0.elapsed().as_secs_f64();
        // Each move sleeps ~100 ms; overlapped they finish well under the
        // 200 ms serial time.
        assert!(elapsed < 0.18, "transfers serialized: {elapsed:.3}s");
    }
}
