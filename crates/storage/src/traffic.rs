//! Inter-tier traffic accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// A directed inter-tier transfer route. The GPU↔host routes correspond to
/// the paper's duplex PCIe directions (`PCIe_G2M` / `PCIe_M2G`); the
/// host↔SSD routes to `BW_M2S` / `BW_S2M`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Route {
    /// GPU to main memory (activation/gradient offload).
    GpuToHost,
    /// Main memory to GPU (parameter/activation fetch).
    HostToGpu,
    /// Main memory to SSD (state write-back, activation spill).
    HostToSsd,
    /// SSD to main memory (state read, activation fetch).
    SsdToHost,
}

impl Route {
    /// All routes, in a fixed order.
    pub const ALL: [Route; 4] = [
        Route::GpuToHost,
        Route::HostToGpu,
        Route::HostToSsd,
        Route::SsdToHost,
    ];

    /// Position of this route in [`Route::ALL`]; stable across releases,
    /// usable to index per-route arrays (e.g. telemetry metrics).
    pub fn index(self) -> usize {
        match self {
            Route::GpuToHost => 0,
            Route::HostToGpu => 1,
            Route::HostToSsd => 2,
            Route::SsdToHost => 3,
        }
    }

    /// Short stable name, e.g. `"gpu->host"`; used as a telemetry track.
    pub fn name(self) -> &'static str {
        match self {
            Route::GpuToHost => "gpu->host",
            Route::HostToGpu => "host->gpu",
            Route::HostToSsd => "host->ssd",
            Route::SsdToHost => "ssd->host",
        }
    }
}

/// Byte counters per route; lives inside the store and is read via
/// [`TrafficCounters::snapshot`].
#[derive(Debug, Default)]
pub(crate) struct TrafficCounters {
    bytes: [AtomicU64; 4],
}

impl TrafficCounters {
    pub(crate) fn record(&self, route: Route, bytes: u64) {
        self.bytes[route.index()].fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            bytes: [
                self.bytes[0].load(Ordering::Relaxed),
                self.bytes[1].load(Ordering::Relaxed),
                self.bytes[2].load(Ordering::Relaxed),
                self.bytes[3].load(Ordering::Relaxed),
            ],
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.bytes {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of the traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    bytes: [u64; 4],
}

impl TrafficSnapshot {
    /// Bytes moved on `route` since the last reset.
    pub fn bytes(&self, route: Route) -> u64 {
        self.bytes[route.index()]
    }

    /// Total bytes moved on all routes.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Route-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        let mut out = [0u64; 4];
        for (o, (a, b)) in out.iter_mut().zip(self.bytes.iter().zip(&earlier.bytes)) {
            *o = a.saturating_sub(*b);
        }
        TrafficSnapshot { bytes: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let c = TrafficCounters::default();
        c.record(Route::GpuToHost, 10);
        c.record(Route::GpuToHost, 5);
        c.record(Route::SsdToHost, 7);
        let s = c.snapshot();
        assert_eq!(s.bytes(Route::GpuToHost), 15);
        assert_eq!(s.bytes(Route::SsdToHost), 7);
        assert_eq!(s.total(), 22);
        c.reset();
        assert_eq!(c.snapshot().total(), 0);
    }

    #[test]
    fn route_all_ordering_matches_snapshot_indexing() {
        // `Route::ALL[i].index() == i` is a documented invariant: telemetry
        // metrics arrays and `TrafficSnapshot` both rely on it.
        for (i, r) in Route::ALL.iter().enumerate() {
            assert_eq!(r.index(), i, "Route::ALL order diverged from index()");
        }
        // Recording on ALL[i] shows up at exactly that route, no other.
        for (i, &r) in Route::ALL.iter().enumerate() {
            let c = TrafficCounters::default();
            c.record(r, 7);
            let s = c.snapshot();
            for (j, &q) in Route::ALL.iter().enumerate() {
                assert_eq!(s.bytes(q), if i == j { 7 } else { 0 });
            }
        }
    }

    #[test]
    fn since_subtracts_per_route() {
        let c = TrafficCounters::default();
        c.record(Route::HostToSsd, 100);
        let before = c.snapshot();
        c.record(Route::HostToSsd, 50);
        c.record(Route::HostToGpu, 30);
        let delta = c.snapshot().since(&before);
        assert_eq!(delta.bytes(Route::HostToSsd), 50);
        assert_eq!(delta.bytes(Route::HostToGpu), 30);
        assert_eq!(delta.bytes(Route::GpuToHost), 0);
    }
}
