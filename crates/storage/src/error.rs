//! Storage error types.

use std::fmt;

use crate::fault::FaultOp;
use crate::store::Tier;

/// Errors raised by the tiered store.
#[derive(Debug)]
pub enum StorageError {
    /// A tier's byte capacity would be exceeded — the honest OOM that
    /// bounds maximum trainable model size.
    OutOfMemory {
        /// Tier that ran out.
        tier: Tier,
        /// Bytes the operation needed.
        requested: u64,
        /// Bytes actually free.
        available: u64,
    },
    /// The key is not present in any tier.
    NotFound(String),
    /// The key already exists (put of a duplicate).
    AlreadyExists(String),
    /// Underlying filesystem failure in the SSD tier.
    Io(std::io::Error),
    /// An SSD-tier fault (injected by a [`crate::FaultPlan`], or a real
    /// I/O error) that survived the store's bounded retries.
    Faulted {
        /// The SSD operation that kept failing.
        op: FaultOp,
        /// Blob key the operation targeted.
        key: String,
        /// Attempts made (1 initial + retries) before giving up.
        attempts: u32,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::OutOfMemory {
                tier,
                requested,
                available,
            } => write!(
                f,
                "{tier:?} tier out of memory: need {requested} bytes, {available} free"
            ),
            StorageError::NotFound(k) => write!(f, "blob {k:?} not found"),
            StorageError::AlreadyExists(k) => write!(f, "blob {k:?} already exists"),
            StorageError::Io(e) => write!(f, "ssd tier I/O error: {e}"),
            StorageError::Faulted { op, key, attempts } => write!(
                f,
                "ssd {} of {key:?} still failing after {attempts} attempts",
                op.name()
            ),
        }
    }
}

impl StorageError {
    /// Whether retrying the operation could plausibly succeed — the
    /// store's retry loop re-issues only these. Logical errors
    /// (missing/duplicate keys, capacity) are never retried.
    pub fn is_retryable(&self) -> bool {
        matches!(self, StorageError::Io(_) | StorageError::Faulted { .. })
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::OutOfMemory {
            tier: Tier::Gpu,
            requested: 100,
            available: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("Gpu") && msg.contains("100") && msg.contains("10"));
        assert!(StorageError::NotFound("k".into()).to_string().contains("k"));
    }
}
