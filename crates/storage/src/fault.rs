//! Deterministic fault injection for the SSD tier.
//!
//! Commodity NVMe arrays — the substrate the paper's consumer-GPU rig
//! trains on — throw transient I/O errors, stall on internal GC, and
//! occasionally die outright. A [`FaultPlan`] scripts those failures
//! deterministically: every SSD-tier file operation the
//! [`crate::TieredStore`] performs consults the plan, which decides by
//! *operation index* (a global, monotonically increasing counter of SSD
//! ops) whether to inject a fault. Because injection keys off the op
//! counter and the store's op sequence is deterministic for a fixed
//! workload, a seeded plan reproduces the exact same failure schedule on
//! every run — chaos tests can assert bitwise-identical training results
//! with and without faults.
//!
//! Three fault kinds model the failure taxonomy:
//!
//! * [`FaultKind::Transient`] — the op fails once with an injected I/O
//!   error; the store's bounded retry (see `TieredStore`) re-issues it,
//!   which consumes a *new* op index and therefore succeeds. This is the
//!   bit-flip / command-timeout class a retry absorbs.
//! * [`FaultKind::Permanent`] — every op from that index onward fails:
//!   a dead drive. Retries are exhausted and the error surfaces.
//! * [`FaultKind::LatencySpike`] — the op succeeds but only after an
//!   injected sleep: SSD garbage-collection pauses and thermal
//!   throttling. Numerics are untouched; only wall-clock suffers.

use ratel_check::sync::Mutex;

/// Which SSD-tier file operation a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Reading a blob file (`SSD -> Main` data path).
    Read,
    /// Writing or overwriting a blob file (`Main -> SSD` data path).
    Write,
    /// Unlinking a blob file.
    Remove,
}

impl FaultOp {
    /// Short stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Read => "read",
            FaultOp::Write => "write",
            FaultOp::Remove => "remove",
        }
    }

    /// Stable index, matching the flight recorder's retry/give-up `code`
    /// contract (`ratel_obs::EventKind::code_name` resolves it back).
    pub fn index(self) -> usize {
        match self {
            FaultOp::Read => 0,
            FaultOp::Write => 1,
            FaultOp::Remove => 2,
        }
    }
}

/// What kind of failure to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail this one op with an injected I/O error; a retry succeeds.
    Transient,
    /// Fail this and every later matching op — a dead device.
    Permanent,
    /// Delay the op by the given seconds, then let it succeed.
    LatencySpike(f64),
}

/// One injected fault, recorded for post-run inspection.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// Global SSD op index at which the fault fired.
    pub op_index: u64,
    /// The operation that was hit.
    pub op: FaultOp,
    /// Blob key the operation targeted.
    pub key: String,
    /// The injected failure.
    pub kind: FaultKind,
}

/// One scripted fault in a plan.
#[derive(Debug, Clone)]
enum Rule {
    /// Fires by global op index.
    AtIndex {
        /// Restrict to one op type (`None` matches any).
        op: Option<FaultOp>,
        /// Op index the rule triggers at. `Transient`/`LatencySpike` fire
        /// at exactly this index; `Permanent` fires at this index and
        /// every one after it.
        at_op: u64,
        kind: FaultKind,
    },
    /// Fires by blob key, independent of op ordering — the deterministic
    /// choice when several threads interleave SSD ops and the global
    /// index is racy. `Transient`/`LatencySpike` fire on the *first*
    /// matching op only; `Permanent` fires on every matching op.
    OnKey {
        /// Restrict to one op type (`None` matches any).
        op: Option<FaultOp>,
        key: String,
        kind: FaultKind,
        fired: bool,
    },
}

#[derive(Debug, Default)]
struct Inner {
    rules: Vec<Rule>,
    next_op: u64,
    injected: Vec<FaultEvent>,
}

/// A deterministic schedule of SSD faults, shared with a
/// [`crate::TieredStore`] via `Arc`.
///
/// The plan is consulted *before* each SSD file operation; the op counter
/// advances on every consultation (including retries, which is what makes
/// a [`FaultKind::Transient`] fault recoverable: the retry presents a new
/// index that no longer matches the rule).
#[derive(Debug)]
pub struct FaultPlan {
    inner: Mutex<Inner>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            inner: Mutex::named("storage.fault_plan", Inner::default()),
        }
    }
}

/// SplitMix64 — a tiny, dependency-free deterministic PRNG step, used to
/// scatter seeded fault indices.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan: no faults, but the op counter still runs, so the
    /// plan doubles as an SSD-op profiler (see [`FaultPlan::ops_seen`]).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan with `count` transient faults at distinct pseudorandom op
    /// indices in `[0, window)`, deterministic in `seed`. `window` should
    /// be (an estimate of) the total SSD ops of the workload — run once
    /// with an empty plan and read [`FaultPlan::ops_seen`] to measure it.
    pub fn seeded_transient(seed: u64, count: usize, window: u64) -> Self {
        assert!(window > 0, "fault window must be non-empty");
        assert!(
            (count as u64) <= window,
            "cannot place {count} faults in {window} ops"
        );
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        let mut indices = std::collections::BTreeSet::new();
        while indices.len() < count {
            indices.insert(splitmix64(&mut state) % window);
        }
        let plan = FaultPlan::new();
        {
            let mut inner = plan.inner.lock();
            for at_op in indices {
                inner.rules.push(Rule::AtIndex {
                    op: None,
                    at_op,
                    kind: FaultKind::Transient,
                });
            }
        }
        plan
    }

    /// Adds one scripted fault at `at_op` (any op type).
    pub fn fault_at(&self, at_op: u64, kind: FaultKind) {
        self.inner.lock().rules.push(Rule::AtIndex {
            op: None,
            at_op,
            kind,
        });
    }

    /// Adds one scripted fault at `at_op`, restricted to `op`.
    pub fn fault_at_op(&self, at_op: u64, op: FaultOp, kind: FaultKind) {
        self.inner.lock().rules.push(Rule::AtIndex {
            op: Some(op),
            at_op,
            kind,
        });
    }

    /// Adds a fault targeting a blob key (any op type): deterministic
    /// even when concurrent threads race for op indices.
    /// `Transient`/`LatencySpike` fire on the first op touching `key`;
    /// `Permanent` fires on all of them.
    pub fn fault_on_key(&self, key: &str, kind: FaultKind) {
        self.inner.lock().rules.push(Rule::OnKey {
            op: None,
            key: key.to_string(),
            kind,
            fired: false,
        });
    }

    /// Like [`FaultPlan::fault_on_key`], restricted to one op type.
    pub fn fault_on_key_op(&self, key: &str, op: FaultOp, kind: FaultKind) {
        self.inner.lock().rules.push(Rule::OnKey {
            op: Some(op),
            key: key.to_string(),
            kind,
            fired: false,
        });
    }

    /// Consults the plan for the next SSD operation. Advances the op
    /// counter and returns the fault to inject, if any. Called by the
    /// store; not normally called by users.
    pub fn before_op(&self, op: FaultOp, key: &str) -> Option<FaultKind> {
        let mut inner = self.inner.lock();
        let idx = inner.next_op;
        inner.next_op += 1;
        let kind = inner.rules.iter_mut().find_map(|r| match r {
            Rule::AtIndex {
                op: rop,
                at_op,
                kind,
            } => {
                let op_matches = rop.is_none() || *rop == Some(op);
                let idx_matches = match kind {
                    FaultKind::Permanent => idx >= *at_op,
                    FaultKind::Transient | FaultKind::LatencySpike(_) => idx == *at_op,
                };
                (op_matches && idx_matches).then_some(*kind)
            }
            Rule::OnKey {
                op: rop,
                key: rkey,
                kind,
                fired,
            } => {
                let op_matches = rop.is_none() || *rop == Some(op);
                let once_ok = matches!(kind, FaultKind::Permanent) || !*fired;
                if op_matches && rkey == key && once_ok {
                    *fired = true;
                    Some(*kind)
                } else {
                    None
                }
            }
        })?;
        inner.injected.push(FaultEvent {
            op_index: idx,
            op,
            key: key.to_string(),
            kind,
        });
        Some(kind)
    }

    /// Total SSD ops consulted so far (fired or not).
    pub fn ops_seen(&self) -> u64 {
        self.inner.lock().next_op
    }

    /// Every fault injected so far, in firing order.
    pub fn injected(&self) -> Vec<FaultEvent> {
        self.inner.lock().injected.clone()
    }

    /// Number of faults injected so far.
    pub fn injected_count(&self) -> usize {
        self.inner.lock().injected.len()
    }
}

/// Bounded retry-with-backoff policy for SSD-tier I/O errors.
///
/// Attempt `k` (1-based) sleeps `base_seconds * multiplier^(k-1)` before
/// re-issuing the op. Transient faults clear within a retry or two;
/// permanent ones exhaust the budget and surface as
/// [`crate::StorageError::Faulted`] / [`crate::StorageError::Io`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 disables retrying).
    pub max_retries: u32,
    /// Sleep before the first retry, in seconds.
    pub base_seconds: f64,
    /// Backoff growth factor per retry.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    /// Three retries starting at 500 µs, doubling: worst case ~3.5 ms of
    /// backoff per op — invisible next to an SSD round trip, enough to
    /// ride out transient device hiccups.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_seconds: 5e-4,
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based), in seconds.
    pub fn backoff_seconds(&self, attempt: u32) -> f64 {
        self.base_seconds * self.multiplier.powi(attempt.saturating_sub(1) as i32)
    }

    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_seconds: 0.0,
            multiplier: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_fires_exactly_once_at_its_index() {
        let plan = FaultPlan::new();
        plan.fault_at(2, FaultKind::Transient);
        assert_eq!(plan.before_op(FaultOp::Read, "a"), None); // op 0
        assert_eq!(plan.before_op(FaultOp::Write, "b"), None); // op 1
        assert_eq!(
            plan.before_op(FaultOp::Read, "c"),
            Some(FaultKind::Transient)
        ); // op 2
        assert_eq!(plan.before_op(FaultOp::Read, "c"), None); // op 3: retry clears
        assert_eq!(plan.injected_count(), 1);
        let ev = &plan.injected()[0];
        assert_eq!(ev.op_index, 2);
        assert_eq!(ev.key, "c");
    }

    #[test]
    fn permanent_fires_from_its_index_onward() {
        let plan = FaultPlan::new();
        plan.fault_at(1, FaultKind::Permanent);
        assert_eq!(plan.before_op(FaultOp::Write, "k"), None);
        for _ in 0..5 {
            assert_eq!(
                plan.before_op(FaultOp::Write, "k"),
                Some(FaultKind::Permanent)
            );
        }
        assert_eq!(plan.injected_count(), 5);
    }

    #[test]
    fn op_restricted_rules_skip_other_ops() {
        let plan = FaultPlan::new();
        plan.fault_at_op(0, FaultOp::Remove, FaultKind::Transient);
        assert_eq!(plan.before_op(FaultOp::Read, "k"), None); // op 0, wrong type
        assert_eq!(plan.before_op(FaultOp::Remove, "k"), None); // op 1, right type, wrong index
    }

    #[test]
    fn seeded_plans_are_deterministic_and_distinct() {
        let a = FaultPlan::seeded_transient(7, 5, 100);
        let b = FaultPlan::seeded_transient(7, 5, 100);
        let c = FaultPlan::seeded_transient(8, 5, 100);
        let fire = |p: &FaultPlan| -> Vec<u64> {
            (0..100)
                .filter(|_| p.before_op(FaultOp::Read, "k").is_some())
                .map(|i| i as u64)
                .collect()
        };
        let fa = fire(&a);
        assert_eq!(fa.len(), 5, "all 5 faults must land in the window");
        assert_eq!(fa, fire(&b), "same seed, same schedule");
        assert_ne!(fa, fire(&c), "different seed, different schedule");
    }

    #[test]
    fn key_rules_fire_regardless_of_op_order() {
        let plan = FaultPlan::new();
        plan.fault_on_key("slow", FaultKind::LatencySpike(0.5));
        // Ops on other keys at any index are untouched.
        assert_eq!(plan.before_op(FaultOp::Write, "other"), None);
        assert_eq!(plan.before_op(FaultOp::Read, "another"), None);
        assert_eq!(
            plan.before_op(FaultOp::Write, "slow"),
            Some(FaultKind::LatencySpike(0.5))
        );
        // One-shot: the next op on the same key is clean.
        assert_eq!(plan.before_op(FaultOp::Read, "slow"), None);
        assert_eq!(plan.injected_count(), 1);
        assert_eq!(plan.injected()[0].key, "slow");
    }

    #[test]
    fn key_rule_op_restriction_applies() {
        let plan = FaultPlan::new();
        plan.fault_on_key_op("k", FaultOp::Read, FaultKind::Transient);
        assert_eq!(plan.before_op(FaultOp::Write, "k"), None);
        assert_eq!(
            plan.before_op(FaultOp::Read, "k"),
            Some(FaultKind::Transient)
        );
    }

    #[test]
    fn retry_policy_backoff_grows_geometrically() {
        let p = RetryPolicy {
            max_retries: 3,
            base_seconds: 0.001,
            multiplier: 2.0,
        };
        assert!((p.backoff_seconds(1) - 0.001).abs() < 1e-12);
        assert!((p.backoff_seconds(2) - 0.002).abs() < 1e-12);
        assert!((p.backoff_seconds(3) - 0.004).abs() < 1e-12);
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }
}
