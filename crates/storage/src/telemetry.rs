//! Runtime telemetry: timestamped spans and per-route transfer metrics.
//!
//! The [`TelemetryRecorder`] is the observability substrate for the *real*
//! engine (the simulator has its own report types). It is created by every
//! [`crate::TieredStore`] but **disabled by default**: the disabled fast
//! path is a single relaxed atomic load, so un-instrumented training pays
//! essentially nothing. When enabled it collects
//!
//! * **spans** — `(track, category, label, start, end)` intervals recorded
//!   by the engine for every stage (per-layer forward/backward, optimizer
//!   read/update/write-back, prefetch, scaler decisions) and by the store
//!   for every inter-tier transfer (tagged with route, blob key, bytes);
//! * **per-route metrics** — op/byte counters, busy seconds, and a
//!   power-of-two latency histogram per transfer route, from which the
//!   achieved bandwidth on each link can be compared against the profiled
//!   one.
//!
//! Timestamps are `f64` seconds since the recorder's creation instant, so
//! spans from concurrent threads share one clock and can be rendered on a
//! common timeline (see `ratel_sim::trace`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use ratel_check::sync::Mutex;
use ratel_obs::EventKind;

use crate::traffic::Route;

/// Coarse classification of a span, used to group tracks and color slices
/// when exporting. Deliberately independent of the simulator's `Stage`
/// enum: storage sits below `ratel-sim` in the dependency order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanCategory {
    /// Forward compute for one layer.
    Forward,
    /// Backward compute for one layer.
    Backward,
    /// Active-optimizer work (state read, Adam update, write-back).
    Optimizer,
    /// An inter-tier blob transfer (recorded by the store itself).
    Transfer,
    /// Parameter or optimizer-state prefetch.
    Prefetch,
    /// Everything else (scaler decisions, skips, bookkeeping).
    Other,
}

impl SpanCategory {
    /// Short stable name, used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanCategory::Forward => "forward",
            SpanCategory::Backward => "backward",
            SpanCategory::Optimizer => "optimizer",
            SpanCategory::Transfer => "transfer",
            SpanCategory::Prefetch => "prefetch",
            SpanCategory::Other => "other",
        }
    }

    /// Stable index, matching the flight recorder's span `code` contract
    /// (`ratel_obs::EventKind::code_name` resolves it back to a name).
    pub fn index(self) -> usize {
        match self {
            SpanCategory::Forward => 0,
            SpanCategory::Backward => 1,
            SpanCategory::Optimizer => 2,
            SpanCategory::Transfer => 3,
            SpanCategory::Prefetch => 4,
            SpanCategory::Other => 5,
        }
    }
}

/// One recorded interval.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Logical lane the span belongs to (e.g. `"gpu"`, `"cpu-opt"`, or a
    /// route name like `"ssd->host"`). Spans on one track are expected not
    /// to overlap; tracks map to timeline rows on export.
    pub track: String,
    /// Coarse classification (stage or transfer).
    pub category: SpanCategory,
    /// Human-readable label, e.g. `"fwd L3"` or a blob key.
    pub label: String,
    /// Start, in seconds since the recorder epoch.
    pub start: f64,
    /// End, in seconds since the recorder epoch.
    pub end: f64,
    /// Payload size for transfers, `None` for compute spans.
    pub bytes: Option<u64>,
    /// Transfer route, `None` for compute spans.
    pub route: Option<Route>,
}

impl SpanRecord {
    /// Span duration in seconds (non-negative).
    pub fn seconds(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// Number of latency histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Lower bound of bucket 0, in seconds (1 µs). Bucket `i` covers
/// `[1µs·2^i, 1µs·2^(i+1))`; the first and last buckets also absorb
/// anything below/above the covered range (up to ~4295 s).
pub const HISTOGRAM_BASE_SECONDS: f64 = 1e-6;

/// A power-of-two latency histogram: bucket `i` counts transfers whose
/// wall time fell in `[1µs·2^i, 1µs·2^(i+1))`.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    total_seconds: f64,
    max_seconds: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total_seconds: 0.0,
            max_seconds: 0.0,
        }
    }
}

/// Bucket index for a latency, clamped into the covered range.
fn bucket_index(seconds: f64) -> usize {
    if seconds <= HISTOGRAM_BASE_SECONDS {
        return 0;
    }
    let idx = (seconds / HISTOGRAM_BASE_SECONDS).log2().floor() as i64;
    idx.clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
}

impl LatencyHistogram {
    /// Adds one observation.
    pub fn record(&mut self, seconds: f64) {
        let seconds = seconds.max(0.0);
        self.buckets[bucket_index(seconds)] += 1;
        self.count += 1;
        self.total_seconds += seconds;
        if seconds > self.max_seconds {
            self.max_seconds = seconds;
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// `[low, high)` bounds of bucket `i`, in seconds.
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        let low = HISTOGRAM_BASE_SECONDS * (1u64 << i) as f64;
        (low, low * 2.0)
    }

    /// Mean observed latency in seconds (0 when empty).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }

    /// Largest observed latency in seconds.
    pub fn max_seconds(&self) -> f64 {
        self.max_seconds
    }

    /// Observations added since `earlier` (an older copy of this
    /// histogram): bucket-wise and total-count saturating differences.
    /// `max_seconds` cannot be recovered from two cumulative snapshots, so
    /// the delta keeps the later value (an upper bound for the window).
    pub fn since(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, (now, then)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *b = now.saturating_sub(*then);
        }
        LatencyHistogram {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            total_seconds: (self.total_seconds - earlier.total_seconds).max(0.0),
            max_seconds: self.max_seconds,
        }
    }

    /// Upper bound of the smallest bucket such that at least `q` (0..=1)
    /// of observations fall at or below it. 0 when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Self::bucket_bounds(i).1;
            }
        }
        Self::bucket_bounds(HISTOGRAM_BUCKETS - 1).1
    }
}

/// Aggregated transfer metrics for one route.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouteMetrics {
    /// Number of transfers recorded.
    pub ops: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Total wall seconds spent in transfers on this route.
    pub seconds: f64,
    /// Latency distribution of individual transfers.
    pub histogram: LatencyHistogram,
}

impl RouteMetrics {
    /// Achieved bandwidth in bytes/second (`None` if no time was spent).
    pub fn achieved_bandwidth(&self) -> Option<f64> {
        if self.seconds > 0.0 {
            Some(self.bytes as f64 / self.seconds)
        } else {
            None
        }
    }

    /// Metrics accumulated since `earlier` (an older copy): saturating
    /// counter differences, histogram bucket deltas.
    pub fn since(&self, earlier: &RouteMetrics) -> RouteMetrics {
        RouteMetrics {
            ops: self.ops.saturating_sub(earlier.ops),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            seconds: (self.seconds - earlier.seconds).max(0.0),
            histogram: self.histogram.since(&earlier.histogram),
        }
    }
}

/// Default cap on buffered (recorded but not yet drained) spans. An
/// instrumented step of even a deep model records a few thousand spans,
/// so a step-draining engine never comes close; the cap exists for the
/// pathological case — telemetry enabled but never drained — which used
/// to grow without bound.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

#[derive(Debug, Default)]
struct Shared {
    spans: VecDeque<SpanRecord>,
    routes: [RouteMetrics; 4],
}

/// Robustness counters: SSD retries, give-ups, and host-pressure spills.
///
/// Unlike spans and route metrics these are **always on** — they count
/// error-path events, which are rare and must never be silently dropped
/// just because tracing was off (chaos tests and operators both read them
/// after the fact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// SSD operations that failed and were re-issued.
    pub retries: u64,
    /// SSD operations that kept failing until the retry budget ran out.
    pub give_ups: u64,
    /// Blobs headed for the host pool that spilled to the SSD tier under
    /// memory pressure (graceful degradation events).
    pub host_spills: u64,
}

impl FaultStats {
    /// Events counted since `earlier` (an older snapshot): saturating
    /// per-counter differences. This is how per-step fault deltas in
    /// `StepTelemetry` are computed from the cumulative counters.
    pub fn since(&self, earlier: &FaultStats) -> FaultStats {
        FaultStats {
            retries: self.retries.saturating_sub(earlier.retries),
            give_ups: self.give_ups.saturating_sub(earlier.give_ups),
            host_spills: self.host_spills.saturating_sub(earlier.host_spills),
        }
    }

    /// True when no fault-path event was counted.
    pub fn is_empty(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// Lock-cheap span and metrics recorder shared between the store, the
/// engine's threads, and the caller (via `Arc`).
///
/// Disabled (the default) it records nothing and costs one relaxed atomic
/// load per would-be event. Enabled, each event takes a short
/// tracked critical section to push a span and bump route metrics.
#[derive(Debug)]
pub struct TelemetryRecorder {
    enabled: AtomicBool,
    epoch: Instant,
    shared: Mutex<Shared>,
    span_capacity: AtomicUsize,
    dropped_spans: AtomicU64,
    retries: AtomicU64,
    give_ups: AtomicU64,
    host_spills: AtomicU64,
}

impl Default for TelemetryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryRecorder {
    /// A fresh, disabled recorder; its epoch is the creation instant.
    pub fn new() -> Self {
        TelemetryRecorder {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            shared: Mutex::named("storage.telemetry", Shared::default()),
            span_capacity: AtomicUsize::new(DEFAULT_SPAN_CAPACITY),
            dropped_spans: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            give_ups: AtomicU64::new(0),
            host_spills: AtomicU64::new(0),
        }
    }

    /// Whether recording is on. The hot-path guard: callers skip all
    /// timestamping when this is false.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Already-recorded data is kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Seconds since the recorder epoch (monotonic, shared by threads).
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Caps the buffered span store at `cap` (≥ 1): once full, the
    /// oldest span is evicted per new span (ring semantics) and the
    /// [`TelemetryRecorder::dropped_spans`] counter is bumped. Excess
    /// already-buffered spans are evicted immediately.
    pub fn set_span_capacity(&self, cap: usize) {
        let cap = cap.max(1);
        self.span_capacity.store(cap, Ordering::Relaxed);
        let mut shared = self.shared.lock();
        while shared.spans.len() > cap {
            shared.spans.pop_front();
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Spans evicted because the buffer was full and never drained.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans.load(Ordering::Relaxed)
    }

    /// Appends a span, evicting the oldest when the buffer is at
    /// capacity. Callers hold the `shared` lock.
    fn push_span(&self, shared: &mut Shared, span: SpanRecord) {
        let cap = self.span_capacity.load(Ordering::Relaxed);
        while shared.spans.len() >= cap {
            shared.spans.pop_front();
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
        }
        shared.spans.push_back(span);
    }

    /// Records a compute/stage span. No-op while disabled.
    pub fn record_span(
        &self,
        track: &str,
        category: SpanCategory,
        label: impl Into<String>,
        start: f64,
        end: f64,
    ) {
        if !self.enabled() {
            return;
        }
        let label = label.into();
        ratel_obs::flight().record(
            EventKind::Span,
            category.index() as u8,
            &label,
            0,
            ((end - start).max(0.0) * 1e6) as u64,
        );
        let mut shared = self.shared.lock();
        self.push_span(
            &mut shared,
            SpanRecord {
                track: track.to_string(),
                category,
                label,
                start,
                end,
                bytes: None,
                route: None,
            },
        );
    }

    /// Records a transfer span (route track, `Transfer` category) and
    /// folds it into the route's metrics. No-op while disabled.
    pub fn record_transfer(&self, route: Route, key: &str, bytes: u64, start: f64, end: f64) {
        if !self.enabled() {
            return;
        }
        let seconds = (end - start).max(0.0);
        let mut shared = self.shared.lock();
        let m = &mut shared.routes[route.index()];
        m.ops += 1;
        m.bytes += bytes;
        m.seconds += seconds;
        m.histogram.record(seconds);
        self.push_span(
            &mut shared,
            SpanRecord {
                track: route.name().to_string(),
                category: SpanCategory::Transfer,
                label: key.to_string(),
                start,
                end,
                bytes: Some(bytes),
                route: Some(route),
            },
        );
    }

    /// Takes all recorded spans, leaving the (cumulative) route metrics in
    /// place. The engine drains once per step to build `StepTelemetry`.
    pub fn drain_spans(&self) -> Vec<SpanRecord> {
        self.shared.lock().spans.drain(..).collect()
    }

    /// Copies the current per-route metrics, indexed like [`Route::ALL`].
    pub fn route_metrics(&self) -> [RouteMetrics; 4] {
        self.shared.lock().routes.clone()
    }

    /// Clears spans and route metrics (the epoch is unchanged). Fault
    /// counters are cleared too.
    pub fn reset(&self) {
        let mut shared = self.shared.lock();
        shared.spans.clear();
        shared.routes = Default::default();
        drop(shared);
        self.dropped_spans.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.give_ups.store(0, Ordering::Relaxed);
        self.host_spills.store(0, Ordering::Relaxed);
    }

    /// Counts one SSD retry (always on; see [`FaultStats`]).
    pub fn count_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one exhausted retry budget (always on; see [`FaultStats`]).
    pub fn count_give_up(&self) {
        self.give_ups.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one host-pressure spill to SSD (always on; see
    /// [`FaultStats`]).
    pub fn count_host_spill(&self) {
        self.host_spills.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the robustness counters.
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            retries: self.retries.load(Ordering::Relaxed),
            give_ups: self.give_ups.load(Ordering::Relaxed),
            host_spills: self.host_spills.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = TelemetryRecorder::new();
        rec.record_span("gpu", SpanCategory::Forward, "fwd L0", 0.0, 1.0);
        rec.record_transfer(Route::SsdToHost, "k", 100, 0.0, 0.5);
        assert!(rec.drain_spans().is_empty());
        assert_eq!(rec.route_metrics()[Route::SsdToHost.index()].ops, 0);
    }

    #[test]
    fn spans_and_metrics_accumulate_when_enabled() {
        let rec = TelemetryRecorder::new();
        rec.set_enabled(true);
        rec.record_span("gpu", SpanCategory::Forward, "fwd L0", 0.0, 1.0);
        rec.record_transfer(Route::SsdToHost, "blob", 1000, 1.0, 1.5);
        rec.record_transfer(Route::SsdToHost, "blob2", 500, 1.5, 2.0);
        let spans = rec.drain_spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[1].bytes, Some(1000));
        assert_eq!(spans[1].route, Some(Route::SsdToHost));
        assert_eq!(spans[1].track, "ssd->host");
        // Drain leaves metrics in place.
        assert!(rec.drain_spans().is_empty());
        let m = &rec.route_metrics()[Route::SsdToHost.index()];
        assert_eq!(m.ops, 2);
        assert_eq!(m.bytes, 1500);
        assert!((m.seconds - 1.0).abs() < 1e-9);
        let bw = m.achieved_bandwidth().unwrap();
        assert!((bw - 1500.0).abs() < 1e-6);
        assert_eq!(m.histogram.count(), 2);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        let mut h = LatencyHistogram::default();
        h.record(0.0); // below base -> bucket 0
        h.record(3e-6); // [2µs, 4µs) -> bucket 1
        h.record(1.0); // [~0.52s, ~1.05s) -> bucket 19
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(bucket_index(1.0)), 1);
        let (lo, hi) = LatencyHistogram::bucket_bounds(bucket_index(1.0));
        assert!(lo <= 1.0 && 1.0 < hi, "1s not in [{lo}, {hi})");
        assert!(h.max_seconds() == 1.0);
        // All observations are at or below the top bucket's bound.
        assert!(h.quantile_upper_bound(1.0) >= 1.0);
        // Way-out-of-range values clamp to the last bucket.
        h.record(1e9);
        assert_eq!(h.bucket_count(HISTOGRAM_BUCKETS - 1), 1);
    }

    #[test]
    fn route_metrics_since_subtracts_the_snapshot() {
        let rec = TelemetryRecorder::new();
        rec.set_enabled(true);
        rec.record_transfer(Route::SsdToHost, "warmup", 1000, 0.0, 0.001);
        let before = rec.route_metrics();
        rec.record_transfer(Route::SsdToHost, "step", 500, 1.0, 2.0);
        let m =
            rec.route_metrics()[Route::SsdToHost.index()].since(&before[Route::SsdToHost.index()]);
        assert_eq!(m.ops, 1);
        assert_eq!(m.bytes, 500);
        assert!((m.seconds - 1.0).abs() < 1e-9);
        assert_eq!(m.histogram.count(), 1);
        // The warm-up's 1 ms observation is subtracted out of its bucket.
        assert_eq!(m.histogram.bucket_count(bucket_index(0.001)), 0);
        assert_eq!(m.histogram.bucket_count(bucket_index(1.0)), 1);
        // Only the step's slow transfer remains -> bandwidth 500 B/s.
        assert!((m.achieved_bandwidth().unwrap() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn fault_counters_count_even_while_disabled() {
        let rec = TelemetryRecorder::new();
        assert!(!rec.enabled());
        rec.count_retry();
        rec.count_retry();
        rec.count_give_up();
        rec.count_host_spill();
        let s = rec.fault_stats();
        assert_eq!(s.retries, 2);
        assert_eq!(s.give_ups, 1);
        assert_eq!(s.host_spills, 1);
        rec.reset();
        assert_eq!(rec.fault_stats(), FaultStats::default());
    }

    #[test]
    fn span_store_is_bounded_with_ring_semantics() {
        // Regression: an enabled-but-never-drained recorder used to grow
        // its span Vec without limit. It must instead evict the oldest
        // span and count the drop.
        let rec = TelemetryRecorder::new();
        rec.set_enabled(true);
        rec.set_span_capacity(8);
        for i in 0..20 {
            rec.record_span("gpu", SpanCategory::Forward, format!("fwd L{i}"), 0.0, 1.0);
        }
        assert_eq!(rec.dropped_spans(), 12);
        let spans = rec.drain_spans();
        assert_eq!(spans.len(), 8);
        // Ring semantics: the *newest* spans survive.
        assert_eq!(spans[0].label, "fwd L12");
        assert_eq!(spans[7].label, "fwd L19");
        // Transfers share the same bounded store.
        for _ in 0..10 {
            rec.record_transfer(Route::SsdToHost, "k", 1, 0.0, 0.1);
        }
        assert_eq!(rec.drain_spans().len(), 8);
        assert_eq!(rec.dropped_spans(), 14);
        // Shrinking the cap evicts immediately.
        for _ in 0..8 {
            rec.record_transfer(Route::SsdToHost, "k", 1, 0.0, 0.1);
        }
        rec.set_span_capacity(2);
        assert_eq!(rec.drain_spans().len(), 2);
        rec.reset();
        assert_eq!(rec.dropped_spans(), 0);
    }

    #[test]
    fn fault_stats_since_subtracts_snapshots() {
        let a = FaultStats {
            retries: 5,
            give_ups: 1,
            host_spills: 2,
        };
        let b = FaultStats {
            retries: 7,
            give_ups: 1,
            host_spills: 4,
        };
        let d = b.since(&a);
        assert_eq!(
            d,
            FaultStats {
                retries: 2,
                give_ups: 0,
                host_spills: 2,
            }
        );
        assert!(!d.is_empty());
        assert!(a.since(&b).is_empty(), "saturating, not wrapping");
    }

    #[test]
    fn reset_clears_everything() {
        let rec = TelemetryRecorder::new();
        rec.set_enabled(true);
        rec.record_transfer(Route::HostToGpu, "k", 10, 0.0, 0.1);
        rec.reset();
        assert!(rec.drain_spans().is_empty());
        assert_eq!(rec.route_metrics()[Route::HostToGpu.index()].ops, 0);
        assert!(rec.enabled(), "reset must not flip the enable bit");
    }
}
